file(REMOVE_RECURSE
  "CMakeFiles/test_layer_math.dir/test_layer_math.cpp.o"
  "CMakeFiles/test_layer_math.dir/test_layer_math.cpp.o.d"
  "test_layer_math"
  "test_layer_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layer_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
