# Empty compiler generated dependencies file for test_layer_math.
# This may be replaced when dependencies are built.
