# Empty dependencies file for test_weipipe_schedule.
# This may be replaced when dependencies are built.
