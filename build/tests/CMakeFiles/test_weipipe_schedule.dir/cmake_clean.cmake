file(REMOVE_RECURSE
  "CMakeFiles/test_weipipe_schedule.dir/test_weipipe_schedule.cpp.o"
  "CMakeFiles/test_weipipe_schedule.dir/test_weipipe_schedule.cpp.o.d"
  "test_weipipe_schedule"
  "test_weipipe_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weipipe_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
