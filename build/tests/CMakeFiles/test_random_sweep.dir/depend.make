# Empty dependencies file for test_random_sweep.
# This may be replaced when dependencies are built.
