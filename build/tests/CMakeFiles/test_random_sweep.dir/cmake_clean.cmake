file(REMOVE_RECURSE
  "CMakeFiles/test_random_sweep.dir/test_random_sweep.cpp.o"
  "CMakeFiles/test_random_sweep.dir/test_random_sweep.cpp.o.d"
  "test_random_sweep"
  "test_random_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
