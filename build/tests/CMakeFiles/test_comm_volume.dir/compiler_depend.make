# Empty compiler generated dependencies file for test_comm_volume.
# This may be replaced when dependencies are built.
