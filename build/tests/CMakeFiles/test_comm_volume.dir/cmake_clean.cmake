file(REMOVE_RECURSE
  "CMakeFiles/test_comm_volume.dir/test_comm_volume.cpp.o"
  "CMakeFiles/test_comm_volume.dir/test_comm_volume.cpp.o.d"
  "test_comm_volume"
  "test_comm_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
