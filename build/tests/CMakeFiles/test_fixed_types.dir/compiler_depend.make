# Empty compiler generated dependencies file for test_fixed_types.
# This may be replaced when dependencies are built.
