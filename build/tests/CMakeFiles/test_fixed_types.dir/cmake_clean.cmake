file(REMOVE_RECURSE
  "CMakeFiles/test_fixed_types.dir/test_fixed_types.cpp.o"
  "CMakeFiles/test_fixed_types.dir/test_fixed_types.cpp.o.d"
  "test_fixed_types"
  "test_fixed_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixed_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
