# Empty dependencies file for test_blocks_model.
# This may be replaced when dependencies are built.
