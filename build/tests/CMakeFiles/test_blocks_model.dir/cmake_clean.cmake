file(REMOVE_RECURSE
  "CMakeFiles/test_blocks_model.dir/test_blocks_model.cpp.o"
  "CMakeFiles/test_blocks_model.dir/test_blocks_model.cpp.o.d"
  "test_blocks_model"
  "test_blocks_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blocks_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
