file(REMOVE_RECURSE
  "CMakeFiles/test_trainers.dir/test_trainers.cpp.o"
  "CMakeFiles/test_trainers.dir/test_trainers.cpp.o.d"
  "test_trainers"
  "test_trainers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trainers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
