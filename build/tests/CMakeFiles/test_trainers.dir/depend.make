# Empty dependencies file for test_trainers.
# This may be replaced when dependencies are built.
