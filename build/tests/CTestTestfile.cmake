# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_equivalence "/root/repo/build/tests/test_equivalence")
set_tests_properties(test_equivalence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;weipipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fixed_types "/root/repo/build/tests/test_fixed_types")
set_tests_properties(test_fixed_types PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;weipipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tensor "/root/repo/build/tests/test_tensor")
set_tests_properties(test_tensor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;weipipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_layer_math "/root/repo/build/tests/test_layer_math")
set_tests_properties(test_layer_math PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;weipipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_blocks_model "/root/repo/build/tests/test_blocks_model")
set_tests_properties(test_blocks_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;15;weipipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_comm "/root/repo/build/tests/test_comm")
set_tests_properties(test_comm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;weipipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_weipipe_schedule "/root/repo/build/tests/test_weipipe_schedule")
set_tests_properties(test_weipipe_schedule PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;17;weipipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;weipipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_comm_volume "/root/repo/build/tests/test_comm_volume")
set_tests_properties(test_comm_volume PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;weipipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_features "/root/repo/build/tests/test_features")
set_tests_properties(test_features PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;weipipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;weipipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_trainers "/root/repo/build/tests/test_trainers")
set_tests_properties(test_trainers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;22;weipipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_library "/root/repo/build/tests/test_library")
set_tests_properties(test_library PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;23;weipipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_random_sweep "/root/repo/build/tests/test_random_sweep")
set_tests_properties(test_random_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;24;weipipe_test;/root/repo/tests/CMakeLists.txt;0;")
