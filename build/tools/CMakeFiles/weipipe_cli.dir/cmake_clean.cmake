file(REMOVE_RECURSE
  "CMakeFiles/weipipe_cli.dir/weipipe_cli.cpp.o"
  "CMakeFiles/weipipe_cli.dir/weipipe_cli.cpp.o.d"
  "weipipe_cli"
  "weipipe_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weipipe_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
