# Empty compiler generated dependencies file for weipipe_cli.
# This may be replaced when dependencies are built.
