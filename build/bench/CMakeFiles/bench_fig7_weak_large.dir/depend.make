# Empty dependencies file for bench_fig7_weak_large.
# This may be replaced when dependencies are built.
