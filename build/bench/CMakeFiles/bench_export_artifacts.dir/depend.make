# Empty dependencies file for bench_export_artifacts.
# This may be replaced when dependencies are built.
