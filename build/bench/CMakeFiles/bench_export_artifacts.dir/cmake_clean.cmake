file(REMOVE_RECURSE
  "CMakeFiles/bench_export_artifacts.dir/bench_export_artifacts.cpp.o"
  "CMakeFiles/bench_export_artifacts.dir/bench_export_artifacts.cpp.o.d"
  "bench_export_artifacts"
  "bench_export_artifacts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_export_artifacts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
