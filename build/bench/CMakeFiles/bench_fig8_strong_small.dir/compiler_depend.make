# Empty compiler generated dependencies file for bench_fig8_strong_small.
# This may be replaced when dependencies are built.
