file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_strong_small.dir/bench_fig8_strong_small.cpp.o"
  "CMakeFiles/bench_fig8_strong_small.dir/bench_fig8_strong_small.cpp.o.d"
  "bench_fig8_strong_small"
  "bench_fig8_strong_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_strong_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
