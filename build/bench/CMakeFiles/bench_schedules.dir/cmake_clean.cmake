file(REMOVE_RECURSE
  "CMakeFiles/bench_schedules.dir/bench_schedules.cpp.o"
  "CMakeFiles/bench_schedules.dir/bench_schedules.cpp.o.d"
  "bench_schedules"
  "bench_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
