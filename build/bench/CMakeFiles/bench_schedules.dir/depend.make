# Empty dependencies file for bench_schedules.
# This may be replaced when dependencies are built.
