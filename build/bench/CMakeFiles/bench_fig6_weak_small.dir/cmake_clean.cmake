file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_weak_small.dir/bench_fig6_weak_small.cpp.o"
  "CMakeFiles/bench_fig6_weak_small.dir/bench_fig6_weak_small.cpp.o.d"
  "bench_fig6_weak_small"
  "bench_fig6_weak_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_weak_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
