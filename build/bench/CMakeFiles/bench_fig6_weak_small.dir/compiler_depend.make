# Empty compiler generated dependencies file for bench_fig6_weak_small.
# This may be replaced when dependencies are built.
