file(REMOVE_RECURSE
  "CMakeFiles/bench_insitu.dir/bench_insitu.cpp.o"
  "CMakeFiles/bench_insitu.dir/bench_insitu.cpp.o.d"
  "bench_insitu"
  "bench_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
