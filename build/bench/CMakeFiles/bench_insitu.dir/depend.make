# Empty dependencies file for bench_insitu.
# This may be replaced when dependencies are built.
