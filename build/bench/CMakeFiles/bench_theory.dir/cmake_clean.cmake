file(REMOVE_RECURSE
  "CMakeFiles/bench_theory.dir/bench_theory.cpp.o"
  "CMakeFiles/bench_theory.dir/bench_theory.cpp.o.d"
  "bench_theory"
  "bench_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
