# Empty compiler generated dependencies file for bench_theory.
# This may be replaced when dependencies are built.
