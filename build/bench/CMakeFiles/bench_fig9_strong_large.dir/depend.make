# Empty dependencies file for bench_fig9_strong_large.
# This may be replaced when dependencies are built.
