file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_strong_large.dir/bench_fig9_strong_large.cpp.o"
  "CMakeFiles/bench_fig9_strong_large.dir/bench_fig9_strong_large.cpp.o.d"
  "bench_fig9_strong_large"
  "bench_fig9_strong_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_strong_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
