# Empty dependencies file for weipipe_tensor.
# This may be replaced when dependencies are built.
