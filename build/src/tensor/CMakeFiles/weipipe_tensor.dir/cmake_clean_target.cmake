file(REMOVE_RECURSE
  "libweipipe_tensor.a"
)
