file(REMOVE_RECURSE
  "CMakeFiles/weipipe_tensor.dir/ops.cpp.o"
  "CMakeFiles/weipipe_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/weipipe_tensor.dir/tensor.cpp.o"
  "CMakeFiles/weipipe_tensor.dir/tensor.cpp.o.d"
  "libweipipe_tensor.a"
  "libweipipe_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weipipe_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
