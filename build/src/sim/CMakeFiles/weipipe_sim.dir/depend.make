# Empty dependencies file for weipipe_sim.
# This may be replaced when dependencies are built.
