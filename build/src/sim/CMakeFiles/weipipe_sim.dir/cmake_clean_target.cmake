file(REMOVE_RECURSE
  "libweipipe_sim.a"
)
