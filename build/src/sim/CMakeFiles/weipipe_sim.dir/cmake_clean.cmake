file(REMOVE_RECURSE
  "CMakeFiles/weipipe_sim.dir/cost_model.cpp.o"
  "CMakeFiles/weipipe_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/weipipe_sim.dir/engine.cpp.o"
  "CMakeFiles/weipipe_sim.dir/engine.cpp.o.d"
  "CMakeFiles/weipipe_sim.dir/experiment.cpp.o"
  "CMakeFiles/weipipe_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/weipipe_sim.dir/fabric_bridge.cpp.o"
  "CMakeFiles/weipipe_sim.dir/fabric_bridge.cpp.o.d"
  "CMakeFiles/weipipe_sim.dir/topology.cpp.o"
  "CMakeFiles/weipipe_sim.dir/topology.cpp.o.d"
  "libweipipe_sim.a"
  "libweipipe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weipipe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
