
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/weipipe_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/weipipe_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/weipipe_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/weipipe_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/weipipe_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/weipipe_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/fabric_bridge.cpp" "src/sim/CMakeFiles/weipipe_sim.dir/fabric_bridge.cpp.o" "gcc" "src/sim/CMakeFiles/weipipe_sim.dir/fabric_bridge.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/sim/CMakeFiles/weipipe_sim.dir/topology.cpp.o" "gcc" "src/sim/CMakeFiles/weipipe_sim.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/weipipe_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/weipipe_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/weipipe_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/weipipe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
