# Empty compiler generated dependencies file for weipipe_core.
# This may be replaced when dependencies are built.
