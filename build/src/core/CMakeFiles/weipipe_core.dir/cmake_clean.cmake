file(REMOVE_RECURSE
  "CMakeFiles/weipipe_core.dir/checkpoint.cpp.o"
  "CMakeFiles/weipipe_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/weipipe_core.dir/sequential_trainer.cpp.o"
  "CMakeFiles/weipipe_core.dir/sequential_trainer.cpp.o.d"
  "CMakeFiles/weipipe_core.dir/weipipe_trainer.cpp.o"
  "CMakeFiles/weipipe_core.dir/weipipe_trainer.cpp.o.d"
  "libweipipe_core.a"
  "libweipipe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weipipe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
