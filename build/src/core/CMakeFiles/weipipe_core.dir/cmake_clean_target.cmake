file(REMOVE_RECURSE
  "libweipipe_core.a"
)
