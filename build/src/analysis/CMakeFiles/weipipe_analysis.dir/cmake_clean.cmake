file(REMOVE_RECURSE
  "CMakeFiles/weipipe_analysis.dir/analysis.cpp.o"
  "CMakeFiles/weipipe_analysis.dir/analysis.cpp.o.d"
  "CMakeFiles/weipipe_analysis.dir/witness.cpp.o"
  "CMakeFiles/weipipe_analysis.dir/witness.cpp.o.d"
  "libweipipe_analysis.a"
  "libweipipe_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weipipe_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
