file(REMOVE_RECURSE
  "libweipipe_analysis.a"
)
