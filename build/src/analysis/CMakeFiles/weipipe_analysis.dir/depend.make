# Empty dependencies file for weipipe_analysis.
# This may be replaced when dependencies are built.
