
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analysis.cpp" "src/analysis/CMakeFiles/weipipe_analysis.dir/analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/weipipe_analysis.dir/analysis.cpp.o.d"
  "/root/repo/src/analysis/witness.cpp" "src/analysis/CMakeFiles/weipipe_analysis.dir/witness.cpp.o" "gcc" "src/analysis/CMakeFiles/weipipe_analysis.dir/witness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/weipipe_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/weipipe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
