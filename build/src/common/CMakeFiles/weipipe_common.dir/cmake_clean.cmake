file(REMOVE_RECURSE
  "CMakeFiles/weipipe_common.dir/check.cpp.o"
  "CMakeFiles/weipipe_common.dir/check.cpp.o.d"
  "CMakeFiles/weipipe_common.dir/log.cpp.o"
  "CMakeFiles/weipipe_common.dir/log.cpp.o.d"
  "CMakeFiles/weipipe_common.dir/thread_pool.cpp.o"
  "CMakeFiles/weipipe_common.dir/thread_pool.cpp.o.d"
  "libweipipe_common.a"
  "libweipipe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weipipe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
