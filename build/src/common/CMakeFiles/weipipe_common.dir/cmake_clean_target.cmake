file(REMOVE_RECURSE
  "libweipipe_common.a"
)
