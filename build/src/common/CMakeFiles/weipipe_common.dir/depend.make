# Empty dependencies file for weipipe_common.
# This may be replaced when dependencies are built.
