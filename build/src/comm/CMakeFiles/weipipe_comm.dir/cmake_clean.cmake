file(REMOVE_RECURSE
  "CMakeFiles/weipipe_comm.dir/collectives.cpp.o"
  "CMakeFiles/weipipe_comm.dir/collectives.cpp.o.d"
  "CMakeFiles/weipipe_comm.dir/fabric.cpp.o"
  "CMakeFiles/weipipe_comm.dir/fabric.cpp.o.d"
  "CMakeFiles/weipipe_comm.dir/wire.cpp.o"
  "CMakeFiles/weipipe_comm.dir/wire.cpp.o.d"
  "libweipipe_comm.a"
  "libweipipe_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weipipe_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
