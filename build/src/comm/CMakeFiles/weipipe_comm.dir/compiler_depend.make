# Empty compiler generated dependencies file for weipipe_comm.
# This may be replaced when dependencies are built.
