file(REMOVE_RECURSE
  "libweipipe_comm.a"
)
