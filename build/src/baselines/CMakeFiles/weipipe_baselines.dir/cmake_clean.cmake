file(REMOVE_RECURSE
  "CMakeFiles/weipipe_baselines.dir/factory.cpp.o"
  "CMakeFiles/weipipe_baselines.dir/factory.cpp.o.d"
  "CMakeFiles/weipipe_baselines.dir/fsdp_trainer.cpp.o"
  "CMakeFiles/weipipe_baselines.dir/fsdp_trainer.cpp.o.d"
  "CMakeFiles/weipipe_baselines.dir/pipeline_trainer.cpp.o"
  "CMakeFiles/weipipe_baselines.dir/pipeline_trainer.cpp.o.d"
  "libweipipe_baselines.a"
  "libweipipe_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weipipe_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
