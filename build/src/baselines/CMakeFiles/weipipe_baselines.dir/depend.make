# Empty dependencies file for weipipe_baselines.
# This may be replaced when dependencies are built.
