file(REMOVE_RECURSE
  "libweipipe_baselines.a"
)
