file(REMOVE_RECURSE
  "CMakeFiles/weipipe_trace.dir/export.cpp.o"
  "CMakeFiles/weipipe_trace.dir/export.cpp.o.d"
  "CMakeFiles/weipipe_trace.dir/timeline.cpp.o"
  "CMakeFiles/weipipe_trace.dir/timeline.cpp.o.d"
  "libweipipe_trace.a"
  "libweipipe_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weipipe_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
