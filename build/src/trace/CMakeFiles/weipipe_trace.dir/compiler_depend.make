# Empty compiler generated dependencies file for weipipe_trace.
# This may be replaced when dependencies are built.
