file(REMOVE_RECURSE
  "libweipipe_trace.a"
)
