file(REMOVE_RECURSE
  "libweipipe_sched.a"
)
