file(REMOVE_RECURSE
  "CMakeFiles/weipipe_sched.dir/builders.cpp.o"
  "CMakeFiles/weipipe_sched.dir/builders.cpp.o.d"
  "CMakeFiles/weipipe_sched.dir/validate.cpp.o"
  "CMakeFiles/weipipe_sched.dir/validate.cpp.o.d"
  "CMakeFiles/weipipe_sched.dir/weipipe_schedule.cpp.o"
  "CMakeFiles/weipipe_sched.dir/weipipe_schedule.cpp.o.d"
  "libweipipe_sched.a"
  "libweipipe_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weipipe_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
