
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/builders.cpp" "src/sched/CMakeFiles/weipipe_sched.dir/builders.cpp.o" "gcc" "src/sched/CMakeFiles/weipipe_sched.dir/builders.cpp.o.d"
  "/root/repo/src/sched/validate.cpp" "src/sched/CMakeFiles/weipipe_sched.dir/validate.cpp.o" "gcc" "src/sched/CMakeFiles/weipipe_sched.dir/validate.cpp.o.d"
  "/root/repo/src/sched/weipipe_schedule.cpp" "src/sched/CMakeFiles/weipipe_sched.dir/weipipe_schedule.cpp.o" "gcc" "src/sched/CMakeFiles/weipipe_sched.dir/weipipe_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/weipipe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
