# Empty dependencies file for weipipe_sched.
# This may be replaced when dependencies are built.
