file(REMOVE_RECURSE
  "libweipipe_nn.a"
)
