
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cpp" "src/nn/CMakeFiles/weipipe_nn.dir/adam.cpp.o" "gcc" "src/nn/CMakeFiles/weipipe_nn.dir/adam.cpp.o.d"
  "/root/repo/src/nn/block.cpp" "src/nn/CMakeFiles/weipipe_nn.dir/block.cpp.o" "gcc" "src/nn/CMakeFiles/weipipe_nn.dir/block.cpp.o.d"
  "/root/repo/src/nn/decode.cpp" "src/nn/CMakeFiles/weipipe_nn.dir/decode.cpp.o" "gcc" "src/nn/CMakeFiles/weipipe_nn.dir/decode.cpp.o.d"
  "/root/repo/src/nn/generate.cpp" "src/nn/CMakeFiles/weipipe_nn.dir/generate.cpp.o" "gcc" "src/nn/CMakeFiles/weipipe_nn.dir/generate.cpp.o.d"
  "/root/repo/src/nn/layer_math.cpp" "src/nn/CMakeFiles/weipipe_nn.dir/layer_math.cpp.o" "gcc" "src/nn/CMakeFiles/weipipe_nn.dir/layer_math.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/weipipe_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/weipipe_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/weipipe_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/weipipe_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/schedule_lr.cpp" "src/nn/CMakeFiles/weipipe_nn.dir/schedule_lr.cpp.o" "gcc" "src/nn/CMakeFiles/weipipe_nn.dir/schedule_lr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/weipipe_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/weipipe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
