file(REMOVE_RECURSE
  "CMakeFiles/weipipe_nn.dir/adam.cpp.o"
  "CMakeFiles/weipipe_nn.dir/adam.cpp.o.d"
  "CMakeFiles/weipipe_nn.dir/block.cpp.o"
  "CMakeFiles/weipipe_nn.dir/block.cpp.o.d"
  "CMakeFiles/weipipe_nn.dir/decode.cpp.o"
  "CMakeFiles/weipipe_nn.dir/decode.cpp.o.d"
  "CMakeFiles/weipipe_nn.dir/generate.cpp.o"
  "CMakeFiles/weipipe_nn.dir/generate.cpp.o.d"
  "CMakeFiles/weipipe_nn.dir/layer_math.cpp.o"
  "CMakeFiles/weipipe_nn.dir/layer_math.cpp.o.d"
  "CMakeFiles/weipipe_nn.dir/loss.cpp.o"
  "CMakeFiles/weipipe_nn.dir/loss.cpp.o.d"
  "CMakeFiles/weipipe_nn.dir/model.cpp.o"
  "CMakeFiles/weipipe_nn.dir/model.cpp.o.d"
  "CMakeFiles/weipipe_nn.dir/schedule_lr.cpp.o"
  "CMakeFiles/weipipe_nn.dir/schedule_lr.cpp.o.d"
  "libweipipe_nn.a"
  "libweipipe_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weipipe_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
