# Empty compiler generated dependencies file for weipipe_nn.
# This may be replaced when dependencies are built.
