# Empty compiler generated dependencies file for long_context_training.
# This may be replaced when dependencies are built.
