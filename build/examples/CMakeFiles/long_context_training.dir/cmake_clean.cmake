file(REMOVE_RECURSE
  "CMakeFiles/long_context_training.dir/long_context_training.cpp.o"
  "CMakeFiles/long_context_training.dir/long_context_training.cpp.o.d"
  "long_context_training"
  "long_context_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_context_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
