# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "3")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_long_context "/root/repo/build/examples/long_context_training" "288")
set_tests_properties(example_long_context PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_planner "/root/repo/build/examples/cluster_planner" "1024" "4096" "8" "16" "8" "8" "nvlink")
set_tests_properties(example_cluster_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_schedule_explorer "/root/repo/build/examples/schedule_explorer" "interleave" "4" "2")
set_tests_properties(example_schedule_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
