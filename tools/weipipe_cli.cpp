// weipipe_cli — the command-line front end to the library.
//
//   weipipe_cli train    [flags]   train a model with any strategy
//   weipipe_cli generate [flags]   sample from a checkpoint
//   weipipe_cli plan     [flags]   pick a strategy for a model x cluster
//   weipipe_cli schedule [flags]   render a schedule timeline
//   weipipe_cli analyze  [flags]   statically model-check schedules
//   weipipe_cli profile  [flags]   trace a real run; measured vs predicted
//   weipipe_cli anatomy  [flags]   critical-path step anatomy + comm gate
//   weipipe_cli bench    [flags]   run the canonical matrix; write trajectory
//   weipipe_cli chaos    [flags]   fault-inject a strategy; diff vs clean run
//   weipipe_cli health   [flags]   train under the watchdog + black box
//   weipipe_cli help
//
// Run `weipipe_cli help` for every flag.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "weipipe.hpp"

using namespace weipipe;

namespace {

// ---- tiny flag parser --------------------------------------------------------

class Flags {
 public:
  // Accepts `--flag value`, `--flag=value`, and bare boolean `--flag`;
  // every subcommand shares the same grammar.
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      WEIPIPE_CHECK_MSG(arg.rfind("--", 0) == 0, "expected --flag, got '"
                                                     << arg << "'");
      arg = arg.substr(2);
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "1";  // boolean flag
      }
    }
  }

  std::string str(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::int64_t i64(const std::string& key, std::int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  double f64(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  bool flag(const std::string& key) const {
    return values_.find(key) != values_.end();
  }

 private:
  std::map<std::string, std::string> values_;
};

// Shared `--metrics[=PATH]` handling: every subcommand that can produce a
// metrics snapshot spells the flag identically and writes through here.
bool write_metrics_snapshot(const Flags& flags, const std::string& json,
                            const std::string& default_path) {
  if (!flags.flag("metrics")) {
    return false;
  }
  const std::string path = flags.str("metrics", default_path);
  trace::write_file(path, json);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

// Shared `--telemetry[=PATH]` handling: runs a streaming telemetry sampler
// (obs/timeseries.hpp) over the process-global runtime metrics + memory
// ledger for the duration of a subcommand. finish() stops the sampler and
// writes the schema-versioned timeseries JSON plus a Prometheus text
// exposition next to it (PATH with the extension swapped to .prom).
class TelemetryScope {
 public:
  TelemetryScope(const Flags& flags, const std::string& job,
                 const std::string& strategy) {
    if (!flags.flag("telemetry")) {
      return;
    }
    path_ = flags.str("telemetry", job + "-timeseries.json");
    obs::TimeseriesOptions opt;
    opt.sample_period_seconds =
        flags.f64("telemetry-period-ms", 5.0) * 1e-3;
    opt.window_capacity =
        static_cast<std::size_t>(flags.i64("telemetry-window", 4096));
    opt.labels.job = job;
    opt.labels.strategy = strategy;
    sampler_ = std::make_unique<obs::TelemetrySampler>(opt);
    sampler_->watch_registry(&obs::runtime_metrics());
    sampler_->start();
  }

  // The sampler only reads atomics, but stop before teardown anyway so no
  // finish()-less early return leaves the thread running.
  ~TelemetryScope() {
    if (sampler_ != nullptr) {
      sampler_->stop();
    }
  }

  obs::TelemetrySampler* sampler() { return sampler_.get(); }

  void finish() {
    if (sampler_ == nullptr) {
      return;
    }
    sampler_->stop();
    const obs::TimeseriesSnapshot snap = sampler_->snapshot();
    const std::string json = snap.to_json();
    const obs::JsonParseResult parsed = obs::parse_json(json);
    WEIPIPE_CHECK_MSG(parsed.ok,
                      "telemetry emitted invalid JSON: " << parsed.error);
    trace::write_file(path_, json);
    std::string prom_path = path_;
    const std::size_t dot = prom_path.rfind('.');
    if (dot != std::string::npos && prom_path.find('/', dot) == std::string::npos) {
      prom_path.resize(dot);
    }
    prom_path += ".prom";
    trace::write_file(prom_path, snap.to_prometheus());
    std::printf("wrote %s + %s (%zu series, stride %lld, %lld/%lld samples kept)\n",
                path_.c_str(), prom_path.c_str(), snap.series.size(),
                static_cast<long long>(snap.stride),
                static_cast<long long>(snap.samples_taken -
                                       snap.samples_dropped),
                static_cast<long long>(snap.samples_taken));
    sampler_.reset();
  }

 private:
  std::string path_;
  std::unique_ptr<obs::TelemetrySampler> sampler_;
};

// Shared `--postmortem[=DIR]` handling: arms a black box for the duration of
// the subcommand (nullptr when the flag is absent).
std::unique_ptr<obs::BlackBox> arm_postmortem_from_flags(const Flags& flags) {
  if (!flags.flag("postmortem")) {
    return nullptr;
  }
  obs::BlackBoxOptions options;
  options.dir = flags.str("postmortem", "postmortem");
  auto box = std::make_unique<obs::BlackBox>(options);
  box->arm();
  return box;
}

TrainConfig config_from_flags(const Flags& flags) {
  TrainConfig cfg;
  cfg.model.vocab_size = flags.i64("vocab", 64);
  cfg.model.dim = flags.i64("dim", 64);
  cfg.model.n_layers = flags.i64("layers", 4);
  cfg.model.n_heads = flags.i64("heads", 4);
  cfg.model.n_kv_heads = flags.i64("kv-heads", 0);  // 0 = MHA
  cfg.model.seq_len = flags.i64("seq", 32);
  cfg.model.recompute = flags.flag("recompute");
  cfg.num_microbatches = flags.i64("microbatches", 8);
  cfg.microbatch_size = flags.i64("batch-size", 2);
  cfg.seq_len = cfg.model.seq_len;
  cfg.seed = static_cast<std::uint64_t>(flags.i64("seed", 1234));
  cfg.adam.lr = static_cast<float>(flags.f64("lr", 3e-3));
  cfg.clip.max_norm = static_cast<float>(flags.f64("clip", 0.0));
  cfg.lr_schedule.warmup_iters = flags.i64("warmup", 0);
  cfg.lr_schedule.total_iters = flags.i64("decay-iters", 0);
  if (flags.flag("fp16")) {
    cfg.precision = PrecisionConfig::paper();
  }
  // Optional override for the weight-gradient (D flow) wire format, on top
  // of whatever base precision --fp16 selected.
  if (flags.flag("wire-grads")) {
    const std::string wire = flags.str("wire-grads", "fp32");
    if (wire == "fp32") {
      cfg.precision.weight_grads = WirePrecision::Fp32;
    } else if (wire == "fp16") {
      cfg.precision.weight_grads = WirePrecision::Fp16;
    } else if (wire == "bf16") {
      cfg.precision.weight_grads = WirePrecision::Bf16;
    } else if (wire == "int8") {
      cfg.precision.weight_grads = WirePrecision::Int8;
    } else {
      WEIPIPE_CHECK_MSG(false, "unknown --wire-grads '"
                                   << wire << "' (fp32 | fp16 | bf16 | int8)");
    }
  }
  return cfg;
}

// Shared --transport/--base-port/--shm-name handling: parses the spec,
// folds the dedicated flags in, and installs it as the process-global
// default so every Fabric the subcommand constructs runs over it. Returns
// the spec for launchers that need to rewrite it per rank process.
comm::TransportSpec apply_transport_flags(const Flags& flags) {
  comm::TransportSpec spec =
      comm::parse_transport_spec(flags.str("transport", "inproc"));
  if (flags.flag("base-port")) {
    spec.base_port = static_cast<int>(flags.i64("base-port", 0));
  }
  if (flags.flag("shm-name")) {
    spec.shm_name = flags.str("shm-name", "");
  }
  comm::set_default_transport_spec(spec);
  return spec;
}

std::unique_ptr<Dataset> dataset_from_flags(const Flags& flags,
                                            const TrainConfig& cfg) {
  const std::string kind = flags.str("dataset", "affine");
  if (kind == "affine") {
    return std::make_unique<SyntheticDataset>(cfg.model.vocab_size, cfg.seed);
  }
  if (kind == "copy") {
    return std::make_unique<CopyDataset>(cfg.model.vocab_size, cfg.seed);
  }
  WEIPIPE_CHECK_MSG(false, "unknown --dataset '" << kind
                                                 << "' (affine | copy)");
  return nullptr;
}

// ---- subcommands ----------------------------------------------------------------

int cmd_train(const Flags& flags) {
  const TrainConfig cfg = config_from_flags(flags);
  const std::string strategy = flags.str("strategy", "weipipe");
  const std::int64_t workers = flags.i64("workers", 4);
  WEIPIPE_CHECK_MSG(workers >= 1, "need at least one worker");
  const std::int64_t iters = flags.i64("iters", 50);
  const std::int64_t dp = flags.i64("dp", 1);
  const bool quiet = flags.flag("quiet");

  std::unique_ptr<Trainer> trainer;
  if (dp > 1 || flags.flag("replicate-vocab")) {
    WEIPIPE_CHECK_MSG(strategy == "weipipe" ||
                          strategy == "weipipe-interleave",
                      "--dp/--replicate-vocab require the weipipe strategy");
    trainer = std::make_unique<WeiPipeTrainer>(
        cfg, workers,
        WeiPipeOptions{.dp_degree = dp,
                       .replicate_vocab = flags.flag("replicate-vocab")});
  } else {
    trainer = make_trainer(strategy, cfg, workers);
  }
  if (flags.flag("resume")) {
    trainer->import_state(load_checkpoint(flags.str("resume", "")));
    std::printf("resumed from %s\n", flags.str("resume", "").c_str());
  }
  const auto data = dataset_from_flags(flags, cfg);

  std::printf("training '%s' (%lld workers) for %lld iterations: H=%lld "
              "L=%lld S=%lld N=%lld G=%lld\n",
              trainer->name().c_str(), static_cast<long long>(workers * dp),
              static_cast<long long>(iters),
              static_cast<long long>(cfg.model.dim),
              static_cast<long long>(cfg.model.n_layers),
              static_cast<long long>(cfg.seq_len),
              static_cast<long long>(cfg.num_microbatches),
              static_cast<long long>(cfg.microbatch_size));
  double total_seconds = 0.0;
  std::uint64_t total_bytes = 0;
  for (std::int64_t it = 0; it < iters; ++it) {
    const IterationResult r = trainer->train_iteration(*data, it);
    total_seconds += r.wall_seconds;
    total_bytes += r.wire_bytes;
    if (!quiet && (it % std::max<std::int64_t>(1, iters / 10) == 0 ||
                   it == iters - 1)) {
      std::printf("iter %4lld  loss %.4f  ppl %7.2f  wire %6.1f MB\n",
                  static_cast<long long>(it), r.mean_loss,
                  perplexity(r.mean_loss),
                  static_cast<double>(r.wire_bytes) / 1e6);
    }
  }
  const double tokens = static_cast<double>(iters) * cfg.num_microbatches *
                        cfg.microbatch_size * cfg.seq_len;
  std::printf("done: %.0f tokens in %.2f s (%.0f tok/s), %.1f MB on the "
              "wire\n",
              tokens, total_seconds, tokens / total_seconds,
              static_cast<double>(total_bytes) / 1e6);
  if (flags.flag("checkpoint")) {
    save_checkpoint(flags.str("checkpoint", ""), trainer->export_state());
    std::printf("checkpoint written to %s\n",
                flags.str("checkpoint", "").c_str());
  }
  return 0;
}

int cmd_generate(const Flags& flags) {
  const TrainConfig cfg = config_from_flags(flags);
  WEIPIPE_CHECK_MSG(flags.flag("checkpoint"),
                    "generate requires --checkpoint (and matching model "
                    "flags)");
  Model model(cfg.model);
  SequentialTrainer holder(cfg);  // convenient state container
  holder.import_state(load_checkpoint(flags.str("checkpoint", "")));
  const auto params = holder.gather_block_params();

  std::vector<std::int32_t> prompt;
  std::string spec = flags.str("prompt", "1,2,3");
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    prompt.push_back(static_cast<std::int32_t>(
        std::atoi(spec.substr(pos, comma - pos).c_str())));
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }

  GenerateOptions opts;
  opts.max_new_tokens = flags.i64("tokens", 16);
  opts.temperature = static_cast<float>(flags.f64("temperature", 0.0));
  opts.seed = static_cast<std::uint64_t>(flags.i64("seed", 1));
  // Use the KV-cache decoder when everything fits the context window;
  // fall back to windowed full-forward generation otherwise.
  std::vector<std::int32_t> out;
  if (static_cast<std::int64_t>(prompt.size()) + opts.max_new_tokens <=
      cfg.model.seq_len) {
    out = generate_cached(model, params, prompt, opts.max_new_tokens,
                          opts.temperature, opts.seed);
  } else {
    out = generate(model, params, prompt, opts);
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::printf("%d%s", out[i], i + 1 < out.size() ? " " : "\n");
  }
  return 0;
}

int cmd_plan(const Flags& flags) {
  sim::ModelDims dims;
  dims.hidden = flags.i64("dim", 2048);
  dims.seq = flags.i64("seq", 8192);
  dims.microbatch = flags.i64("batch-size", 8);
  dims.layers = flags.i64("layers", 32);
  const int gpus = static_cast<int>(flags.i64("gpus", 16));
  const int per_node = static_cast<int>(flags.i64("gpus-per-node", 8));
  const std::string env = flags.str("env", "nvlink");
  const sim::Topology topo =
      env == "pcie" ? sim::Topology::pcie_ethernet(gpus, per_node)
      : env == "ethernet"
          ? sim::Topology::nvlink_ethernet(gpus, per_node)
          : sim::Topology::nvlink(gpus, per_node);

  std::vector<trace::ExperimentRow> rows;
  sim::Strategy best = sim::Strategy::k1F1B;
  double best_tp = 0.0;
  std::printf("%-20s | %14s | %9s | %8s\n", "strategy", "tokens/s/GPU",
              "mem GB", "bubble");
  for (sim::Strategy s :
       {sim::Strategy::k1F1B, sim::Strategy::kGPipe, sim::Strategy::kZB1,
        sim::Strategy::kZB2, sim::Strategy::kFSDP,
        sim::Strategy::kWeiPipeNaive, sim::Strategy::kWeiPipeInterleave}) {
    sim::ExperimentConfig cfg;
    cfg.dims = dims;
    cfg.num_microbatches = flags.i64("microbatches", 16 * gpus);
    cfg.strategy = s;
    const auto res = sim::run_experiment(cfg, topo);
    rows.push_back({env, res});
    if (res.oom) {
      std::printf("%-20s | %14s | %8.1fG | %7.1f%%\n", sim::to_string(s),
                  "OOM", res.peak_mem_bytes / 1e9, res.bubble_ratio * 100);
      continue;
    }
    std::printf("%-20s | %14.0f | %8.1fG | %7.1f%%\n", sim::to_string(s),
                res.tokens_per_second_per_gpu, res.peak_mem_bytes / 1e9,
                res.bubble_ratio * 100);
    if (res.tokens_per_second_per_gpu > best_tp) {
      best_tp = res.tokens_per_second_per_gpu;
      best = s;
    }
  }
  std::printf("\nrecommendation: %s\n", sim::to_string(best));
  if (flags.flag("csv")) {
    trace::write_file(flags.str("csv", "plan.csv"),
                      trace::experiments_to_csv(rows));
    std::printf("wrote %s\n", flags.str("csv", "plan.csv").c_str());
  }
  return 0;
}

// Shared by `schedule` and `analyze`: emit a strategy's program with unit
// synthetic costs (T_F = 1, T_B = ratio).
sched::Program build_schedule_program(const std::string& strategy,
                                      std::int64_t p, std::int64_t rounds,
                                      double ratio) {
  sched::StrategyCosts costs;
  for (std::int64_t i = 0; i < p; ++i) {
    costs.fwd_seconds.push_back(1.0);
    costs.bwd_seconds.push_back(ratio);
    costs.bwd_acts_seconds.push_back(ratio / 2.0);
    costs.bwd_weights_seconds.push_back(ratio / 2.0);
    costs.chunk_weight_bytes.push_back(1.0);
    costs.act_mem_bytes.push_back(1.0);
  }
  costs.act_bytes = 1.0;
  costs.act_grad_bytes = 1.0;

  const std::int64_t n = rounds * p;
  if (strategy == "naive") {
    return sched::build_weipipe(WeiPipeSchedule(p, rounds, WeiPipeMode::kNaive),
                                costs);
  }
  if (strategy == "interleave" || strategy == "weipipe") {
    return sched::build_weipipe(
        WeiPipeSchedule(p, rounds, WeiPipeMode::kInterleave), costs);
  }
  if (strategy == "no-prefetch") {
    return sched::build_weipipe(
        WeiPipeSchedule(p, rounds, WeiPipeMode::kInterleave), costs,
        /*prefetch=*/false);
  }
  if (strategy == "wzb1") {
    return sched::build_weipipe_zero_bubble(p, rounds,
                                            sched::WzbVariant::kWzb1, costs);
  }
  if (strategy == "wzb2") {
    return sched::build_weipipe_zero_bubble(p, rounds,
                                            sched::WzbVariant::kWzb2, costs);
  }
  if (strategy == "gpipe") {
    return sched::build_gpipe(p, n, costs);
  }
  if (strategy == "1f1b") {
    return sched::build_1f1b(p, n, costs);
  }
  if (strategy == "zb1") {
    return sched::build_zero_bubble(p, n, sched::ZbVariant::kZb1, costs);
  }
  if (strategy == "zb2") {
    return sched::build_zero_bubble(p, n, sched::ZbVariant::kZb2, costs);
  }
  if (strategy == "fsdp") {
    sched::FsdpCollectiveCosts coll;
    for (std::int64_t i = 0; i < p; ++i) {
      coll.all_gather_seconds.push_back(0.5);
      coll.reduce_scatter_seconds.push_back(0.5);
      coll.all_gather_bytes.push_back(1.0);
      coll.reduce_scatter_bytes.push_back(1.0);
    }
    return sched::build_fsdp(p, rounds, costs, coll,
                             /*overlap_prefetch=*/true);
  }
  WEIPIPE_CHECK_MSG(false, "unknown --strategy '" << strategy << "'");
  return {};
}

const char* kAllStrategies[] = {"naive", "interleave", "no-prefetch", "wzb1",
                                "wzb2",  "gpipe",      "1f1b",        "zb1",
                                "zb2",   "fsdp"};

int cmd_analyze(const Flags& flags) {
  const std::string strategy = flags.str("strategy", "all");
  const std::int64_t p = flags.i64("workers", 4);
  const std::int64_t rounds = flags.i64("rounds", 2);
  const double ratio = flags.f64("bwd-ratio", 2.0);

  std::vector<std::string> strategies;
  if (strategy == "all") {
    strategies.assign(std::begin(kAllStrategies), std::end(kAllStrategies));
  } else {
    strategies.push_back(strategy);
  }

  std::size_t total_findings = 0;
  for (const std::string& s : strategies) {
    const sched::Program prog = build_schedule_program(s, p, rounds, ratio);
    const analysis::AnalysisReport report = analysis::analyze(prog);
    std::printf("%s", report.summary().c_str());
    total_findings += report.findings.size() + report.findings_dropped;
    if (report.ok() && !report.deadlocked) {
      // The static memory bound is exact; prove it against the engine.
      const std::vector<std::string> issues = sim::analysis_cross_check(
          prog,
          sim::simulate(prog, sim::Topology::uniform(static_cast<int>(p),
                                                     sim::Link{1e15, 0.0},
                                                     "ideal")));
      if (issues.empty()) {
        std::printf("  engine cross-check: peaks match\n");
      } else {
        for (const std::string& issue : issues) {
          std::printf("  engine cross-check FAILED: %s\n", issue.c_str());
        }
        ++total_findings;
      }
    }
  }
  if (total_findings > 0) {
    std::printf("analysis found %zu problem(s)\n", total_findings);
    return 1;
  }
  std::printf("all analyzed schedules are clean\n");
  return 0;
}

int cmd_schedule(const Flags& flags) {
  const std::string strategy = flags.str("strategy", "interleave");
  const std::int64_t p = flags.i64("workers", 4);
  const std::int64_t rounds = flags.i64("rounds", 2);
  const double ratio = flags.f64("bwd-ratio", 2.0);

  sched::Program prog = build_schedule_program(strategy, p, rounds, ratio);

  const sched::ValidationReport report = sched::validate(prog);
  WEIPIPE_CHECK_MSG(report.ok, "schedule failed validation: "
                                   << report.problems.front());
  const sim::SimResult res = sim::simulate(
      prog,
      sim::Topology::uniform(static_cast<int>(p), sim::Link{1e15, 0.0},
                             "ideal"),
      {.record_ops = true});
  std::printf("%s", trace::render_timeline(
                        res, {.width = static_cast<int>(
                                  flags.i64("width", 110))})
                        .c_str());
  if (flags.flag("csv")) {
    trace::write_file(flags.str("csv", "schedule.csv"),
                      trace::records_to_csv(res));
    std::printf("wrote %s\n", flags.str("csv", "schedule.csv").c_str());
  }
  if (flags.flag("svg")) {
    trace::write_file(flags.str("svg", "schedule.svg"),
                      trace::records_to_svg(res));
    std::printf("wrote %s\n", flags.str("svg", "schedule.svg").c_str());
  }
  return 0;
}

// Shared by `profile` and `anatomy`: both subcommands drive run_profile()
// with the same flag grammar, differing only in the default strategy.
prof::ProfileOptions profile_options_from_flags(
    const Flags& flags, const std::string& default_strategy) {
  prof::ProfileOptions opt;
  opt.strategy = flags.str("strategy", default_strategy);
  opt.workers = flags.i64("workers", 4);
  opt.iters = flags.i64("iters", 2);
  opt.warmup_iters = flags.i64("warmup-iters", 1);
  opt.rounds = flags.i64("rounds", 2);
  opt.bwd_ratio = flags.f64("bwd-ratio", 2.0);
  opt.unit_seconds = flags.f64("unit-ms", 2.0) * 1e-3;
  opt.record_kernels = flags.flag("kernels");
  opt.ring_capacity =
      static_cast<std::size_t>(flags.i64("ring-capacity", 1 << 16));
  opt.train = config_from_flags(flags);
  opt.fault_spec = flags.str("faults", "");
  return opt;
}

int cmd_profile(const Flags& flags) {
  const std::unique_ptr<obs::BlackBox> blackbox =
      arm_postmortem_from_flags(flags);
  TelemetryScope telemetry(flags, "profile", flags.str("strategy", "wzb2"));
  const prof::ProfileOptions opt = profile_options_from_flags(flags, "wzb2");

  prof::ProfileReport report;
  try {
    report = prof::run_profile(opt);
  } catch (const Error& e) {
    // Leave a post-mortem before the recorder state unwinds (no-op unless
    // --postmortem armed a black box; recovery-exhausted comm errors have
    // already dumped from core/resilience.cpp).
    obs::blackbox_dump_once(std::string("profile failed: ") + e.what());
    throw;
  }
  std::printf("%s", report.summary().c_str());

  if (flags.flag("timeline") && !report.timeline.records.empty()) {
    std::printf("%s", trace::render_timeline(
                          report.timeline,
                          {.width = static_cast<int>(flags.i64("width", 110))})
                          .c_str());
  }
  if (flags.flag("trace")) {
    const std::string path = flags.str("trace", "profile-trace.json");
    trace::write_file(path, report.trace_json);
    std::printf("wrote %s (open in ui.perfetto.dev)\n", path.c_str());
  }
  write_metrics_snapshot(flags, report.metrics_json, "profile-metrics.json");
  if (flags.flag("svg") && !report.timeline.records.empty()) {
    const std::string path = flags.str("svg", "profile.svg");
    trace::write_file(path, trace::records_to_svg(report.timeline));
    std::printf("wrote %s\n", path.c_str());
  }
  telemetry.finish();
  return 0;
}

// `weipipe_cli anatomy` — critical-path step anatomy. Runs run_profile()
// like `profile` does, but the headline output is the per-step breakdown of
// where every nanosecond of the cross-rank critical path went: compute,
// exposed wire (by MsgKind), blocked recv, stall/fault, gap. With
// --gate-vs STRATEGY it profiles a second strategy under the identical
// configuration and exits nonzero unless the primary's mean exposed-comm
// fraction is strictly lower — the executable form of the paper's claim.
int cmd_anatomy(const Flags& flags) {
  TelemetryScope telemetry(flags, "anatomy", flags.str("strategy", "weipipe"));
  const prof::ProfileOptions opt = profile_options_from_flags(flags, "weipipe");
  const prof::ProfileReport report = prof::run_profile(opt);
  WEIPIPE_CHECK_MSG(!report.anatomy.empty(),
                    "profile of '" << opt.strategy
                                   << "' produced no step anatomy");

  for (const obs::StepAnatomy& a : report.anatomy) {
    std::printf("%s", a.summary().c_str());
    if (flags.flag("timeline")) {
      std::printf("%s", a.ascii_timeline(
                             static_cast<int>(flags.i64("width", 100)))
                            .c_str());
    }
  }
  std::printf("mean exposed comm fraction  %-12s %.4f  (predicted bubble "
              "%.4f)\n",
              opt.strategy.c_str(), report.mean_exposed_comm_fraction(),
              report.predicted_bubble);

  if (flags.flag("json")) {
    std::string json = "[\n";
    for (std::size_t i = 0; i < report.anatomy.size(); ++i) {
      std::string body = report.anatomy[i].to_json();
      while (!body.empty() && body.back() == '\n') {
        body.pop_back();
      }
      json += (i == 0 ? "" : ",\n") + body;
    }
    json += "\n]\n";
    const obs::JsonParseResult parsed = obs::parse_json(json);
    WEIPIPE_CHECK_MSG(parsed.ok,
                      "anatomy emitted invalid JSON: " << parsed.error);
    const std::string path = flags.str("json", "anatomy.json");
    trace::write_file(path, json);
    std::printf("wrote %s (%zu steps)\n", path.c_str(),
                report.anatomy.size());
  }

  int exit_code = 0;
  if (flags.flag("gate-vs")) {
    prof::ProfileOptions other = opt;
    other.strategy = flags.str("gate-vs", "1f1b");
    const prof::ProfileReport rival = prof::run_profile(other);
    WEIPIPE_CHECK_MSG(!rival.anatomy.empty(),
                      "profile of '" << other.strategy
                                     << "' produced no step anatomy");
    const double mine = report.mean_exposed_comm_fraction();
    const double theirs = rival.mean_exposed_comm_fraction();
    const bool ok = mine < theirs;
    std::printf("gate: exposed comm %-12s %.4f  %s  %-12s %.4f  -> %s\n",
                opt.strategy.c_str(), mine, ok ? "<" : ">=",
                other.strategy.c_str(), theirs, ok ? "PASS" : "FAIL");
    exit_code = ok ? 0 : 1;
  }
  telemetry.finish();
  return exit_code;
}

int cmd_bench(const Flags& flags) {
  TelemetryScope telemetry(flags, "bench", "matrix");
  prof::BenchOptions opt;
  opt.smoke = flags.flag("smoke");
  opt.iters = flags.i64("iters", 2);
  opt.warmup_iters = flags.i64("warmup-iters", 1);
  const std::string out = flags.str("out", "artifacts/BENCH_trajectory.json");

  const prof::BenchReport report = prof::run_bench(opt);

  std::printf("%-11s %5s %9s %10s %9s %10s %10s %s\n", "strategy", "ranks",
              "recompute", "step", "GFLOP/s", "peak mem", "wire", "closed-form");
  for (const prof::BenchCaseResult& c : report.cases) {
    double wire_bytes = 0.0;
    bool has_predicted = false;
    bool matches = true;
    for (const prof::BenchWireKind& w : c.wire) {
      wire_bytes += w.measured_bytes;
      if (w.predicted_bytes >= 0.0) {
        has_predicted = true;
        matches = matches && w.measured_bytes == w.predicted_bytes;
      }
    }
    std::printf("%-11s %5lld %9s %8.2fms %9.2f %7.2fMiB %7.2fMiB %s\n",
                c.strategy.c_str(), static_cast<long long>(c.ranks),
                c.recompute ? "yes" : "no", c.step_seconds * 1e3, c.gflops,
                c.measured_peak_footprint_bytes / (1024.0 * 1024.0),
                wire_bytes / (1024.0 * 1024.0),
                !has_predicted ? "-" : matches ? "MATCH" : "MISMATCH");
  }

  // Re-parse what we are about to write: the trajectory feeds bench_compare,
  // so an unparseable artifact must fail here, not in CI.
  const std::string json = prof::bench_report_to_json(report);
  const obs::JsonParseResult parsed = obs::parse_json(json);
  WEIPIPE_CHECK_MSG(parsed.ok, "bench emitted invalid JSON: " << parsed.error);
  trace::write_file(out, json);
  std::printf("wrote %s (%zu cases, schema v%d%s)\n", out.c_str(),
              report.cases.size(), report.schema_version,
              report.smoke ? ", smoke" : "");

  if (flags.flag("metrics")) {
    // Per-case gauges alongside the trajectory, in the same snapshot shape
    // every other subcommand's --metrics produces.
    obs::Registry metrics;
    for (const prof::BenchCaseResult& c : report.cases) {
      double wire_bytes = 0.0;
      for (const prof::BenchWireKind& w : c.wire) {
        wire_bytes += w.measured_bytes;
      }
      const std::string key = "bench." + c.strategy + ".r" +
                              std::to_string(c.ranks) +
                              (c.recompute ? ".recompute" : "");
      metrics.gauge(key + ".step_seconds").set(c.step_seconds);
      metrics.gauge(key + ".gflops").set(c.gflops);
      metrics.gauge(key + ".peak_footprint_bytes")
          .set(c.measured_peak_footprint_bytes);
      metrics.gauge(key + ".wire_bytes").set(wire_bytes);
    }
    write_metrics_snapshot(flags, metrics.to_json(), "bench-metrics.json");
  }
  telemetry.finish();
  return 0;
}

// ---- forked-rank chaos ------------------------------------------------------
//
// `chaos --transport shm|tcp` runs the differ as a real distributed system.
// Per strategy: the parent first computes the clean full-world reference in
// process (inproc transport) and keeps export_rank_state(r) for every rank;
// it then forks `workers` rank processes, each hosting exactly one rank of
// the same chaos run over the real wire (rendezvous by shm segment name or
// host:port, consistent across children because they fork from identical
// parent state). A child re-arms its own black box, runs the full
// clean-vs-faulted differ, writes its rank's post-chaos state blob, and
// exits 0 only if its own diff held bitwise. The parent aggregates exit
// codes and memcmps every child blob against the inproc reference — the
// result is checked bitwise across transports AND across process
// boundaries.

std::string rank_blob_path(const std::string& dir, const std::string& strategy,
                           int rank) {
  return dir + "/" + strategy + ".rank" + std::to_string(rank) + ".state";
}

[[noreturn]] void forked_chaos_child(const Flags& flags,
                                     chaos::ChaosConfig cc,
                                     comm::TransportSpec spec,
                                     const std::string& dir, int rank) {
  obs::reset_blackbox_after_fork();
  obs::set_process_rank(rank);
  spec.local_rank = rank;
  comm::set_default_transport_spec(spec);
  std::unique_ptr<obs::BlackBox> box;
  if (flags.flag("postmortem")) {
    obs::BlackBoxOptions opt;
    opt.dir = flags.str("postmortem", "postmortem") + "/rank" +
              std::to_string(rank);
    opt.install_signal_handlers = true;  // each child re-arms its own
    box = std::make_unique<obs::BlackBox>(opt);
    box->arm();
  }
  cc.capture_rank_state = rank;
  int code = 0;
  try {
    const chaos::ChaosReport r = chaos::run_chaos(cc);
    trace::write_file(rank_blob_path(dir, cc.strategy, rank),
                      std::string(r.chaos_rank_state.begin(),
                                  r.chaos_rank_state.end()));
    if (!r.completed) {
      std::fprintf(stderr, "[%s rank %d] failed: %s\n", cc.strategy.c_str(),
                   rank, r.error.c_str());
      code = 3;
    } else if (!r.bitwise_equal) {
      std::fprintf(stderr, "[%s rank %d] chaos run diverged from clean\n",
                   cc.strategy.c_str(), rank);
      code = 2;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "[%s rank %d] error: %s\n", cc.strategy.c_str(),
                 rank, e.what());
    obs::blackbox_dump_once(std::string("forked chaos rank failed: ") +
                            e.what());
    code = 4;
  }
  std::fflush(nullptr);
  // _exit: no destructors/atexit — the parent's inherited state (telemetry,
  // stdio buffers already flushed) must not be torn down twice.
  _exit(code);
}

struct ForkedStrategyResult {
  bool children_ok = true;       // every rank exited 0
  bool matches_inproc = true;    // every blob == the inproc reference
  std::string detail;            // first failure, for the table row
};

ForkedStrategyResult run_forked_strategy(const Flags& flags,
                                         chaos::ChaosConfig cc,
                                         const comm::TransportSpec& spec,
                                         const std::string& dir) {
  ForkedStrategyResult out;
  const int world = static_cast<int>(cc.world_size);

  // Clean inproc reference, full world in this process. Runs BEFORE the
  // forks so every child inherits identical post-reference process state
  // (in particular the fabric generation counter the rendezvous keys on).
  comm::set_default_transport_spec(comm::TransportSpec{});
  const std::vector<std::vector<std::uint8_t>> reference =
      chaos::run_clean_rank_states(cc);

  std::vector<pid_t> pids(static_cast<std::size_t>(world), -1);
  // Children inherit copies of the stdio buffers; flush now so their own
  // fflush at _exit cannot replay the parent's pending output.
  std::fflush(nullptr);
  for (int r = 0; r < world; ++r) {
    const pid_t pid = fork();
    WEIPIPE_CHECK_MSG(pid >= 0, "fork: " << std::strerror(errno));
    if (pid == 0) {
      forked_chaos_child(flags, cc, spec, dir, r);  // never returns
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  // Exit-code aggregation with a deadline: a wedged child (rendezvous with
  // a dead peer, unrecovered stall) must not hang the launcher.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::seconds(flags.i64("fork-timeout-s", 300));
  std::vector<int> codes(static_cast<std::size_t>(world), -1);
  int live = world;
  bool killed = false;
  while (live > 0) {
    for (int r = 0; r < world; ++r) {
      if (codes[static_cast<std::size_t>(r)] != -1) {
        continue;
      }
      int status = 0;
      const pid_t got = waitpid(pids[static_cast<std::size_t>(r)], &status,
                                WNOHANG);
      if (got <= 0) {
        continue;
      }
      codes[static_cast<std::size_t>(r)] =
          WIFEXITED(status) ? WEXITSTATUS(status)
                            : 128 + (WIFSIGNALED(status) ? WTERMSIG(status)
                                                         : 0);
      --live;
    }
    if (live == 0) {
      break;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      for (int r = 0; r < world; ++r) {
        if (codes[static_cast<std::size_t>(r)] == -1) {
          kill(pids[static_cast<std::size_t>(r)], SIGKILL);
        }
      }
      killed = true;
      // Loop again: SIGKILL guarantees the waitpid above reaps them.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  for (int r = 0; r < world; ++r) {
    const int code = codes[static_cast<std::size_t>(r)];
    if (code != 0) {
      out.children_ok = false;
      if (out.detail.empty()) {
        out.detail = "rank " + std::to_string(r) +
                     (killed && code >= 128 ? " timed out (killed)"
                                            : " exit " + std::to_string(code));
      }
    }
  }

  for (int r = 0; r < world; ++r) {
    std::ifstream in(rank_blob_path(dir, cc.strategy, r),
                     std::ios::binary);
    std::string blob((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const std::vector<std::uint8_t>& want =
        reference[static_cast<std::size_t>(r)];
    const bool same =
        in.good() && blob.size() == want.size() &&
        (want.empty() ||
         std::memcmp(blob.data(), want.data(), want.size()) == 0);
    if (!same) {
      out.matches_inproc = false;
      if (out.detail.empty()) {
        out.detail = "rank " + std::to_string(r) +
                     " state blob differs from the inproc reference";
      }
    }
  }
  return out;
}

int cmd_chaos_forked(const Flags& flags, comm::TransportSpec spec) {
  const std::unique_ptr<obs::BlackBox> blackbox =
      arm_postmortem_from_flags(flags);
  chaos::ChaosConfig cc;
  cc.train = config_from_flags(flags);
  cc.world_size = flags.i64("workers", 4);
  cc.iterations = flags.i64("iters", 2);
  cc.max_recovery_attempts =
      static_cast<int>(flags.i64("max-recoveries", 3));
  cc.recv_timeout =
      std::chrono::milliseconds(flags.i64("recv-timeout-ms", 0));
  const std::uint64_t fault_seed = static_cast<std::uint64_t>(
      flags.i64("fault-seed", flags.i64("seed", 1234)));
  const std::string fault_spec = flags.str(
      "faults", "delay:p=0.2:us=200,drop:p=0.05,dup:p=0.05,reorder:p=0.05");
  cc.plan = comm::parse_fault_plan(fault_spec, fault_seed);

  // Multi-process rendezvous needs coordinates every child agrees on.
  if (spec.kind == comm::TransportKind::kTcp && spec.base_port <= 0) {
    spec.base_port = 29417;
  }
  if (spec.kind == comm::TransportKind::kShm && spec.shm_name.empty()) {
    spec.shm_name = "weipipe-chaos-" + std::to_string(getpid());
  }

  const std::string dir = flags.str("forked-dir", "chaos-forked");
  {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    WEIPIPE_CHECK_MSG(!ec, "mkdir(" << dir << "): " << ec.message());
  }

  const std::string strategy = flags.str("strategy", "all");
  const std::vector<std::string> strategies =
      strategy == "all" ? trainer_names()
                        : std::vector<std::string>{strategy};

  std::printf("forked chaos: transport %s, %lld rank processes\n",
              comm::to_string(spec).c_str(),
              static_cast<long long>(cc.world_size));
  std::printf("fault plan: %s  (seed %llu)\n", comm::to_spec(cc.plan).c_str(),
              static_cast<unsigned long long>(fault_seed));
  std::printf("%-18s %6s %10s  %s\n", "strategy", "ranks", "vs-inproc",
              "detail");
  bool all_ok = true;
  for (const std::string& name : strategies) {
    cc.strategy = name;
    const ForkedStrategyResult r =
        run_forked_strategy(flags, cc, spec, dir);
    const bool ok = r.children_ok && r.matches_inproc;
    all_ok = all_ok && ok;
    std::printf("%-18s %6s %10s  %s\n", name.c_str(),
                r.children_ok ? "OK" : "FAIL",
                r.matches_inproc ? "equal" : "DIFF", r.detail.c_str());
    if (!ok && blackbox != nullptr) {
      blackbox->dump_once("forked chaos: strategy " + name + " failed: " +
                          r.detail);
    }
  }
  if (!all_ok) {
    std::printf(
        "CHAOS FAIL: at least one strategy diverged across processes\n");
  }
  return all_ok ? 0 : 1;
}

int cmd_chaos(const Flags& flags) {
  // A multi-process transport turns the differ into the forked launcher;
  // inproc (the default) keeps the original single-process threaded mode.
  const comm::TransportSpec transport = apply_transport_flags(flags);
  if (transport.kind != comm::TransportKind::kInproc &&
      transport.all_local()) {
    return cmd_chaos_forked(flags, transport);
  }
  const std::unique_ptr<obs::BlackBox> blackbox =
      arm_postmortem_from_flags(flags);
  TelemetryScope telemetry(flags, "chaos", flags.str("strategy", "all"));
  chaos::ChaosConfig cc;
  cc.train = config_from_flags(flags);
  cc.world_size = flags.i64("workers", 4);
  cc.iterations = flags.i64("iters", 2);
  cc.max_recovery_attempts =
      static_cast<int>(flags.i64("max-recoveries", 3));
  cc.recv_timeout =
      std::chrono::milliseconds(flags.i64("recv-timeout-ms", 0));
  const std::uint64_t fault_seed = static_cast<std::uint64_t>(
      flags.i64("fault-seed", flags.i64("seed", 1234)));
  const std::string spec = flags.str(
      "faults", "delay:p=0.2:us=200,drop:p=0.05,dup:p=0.05,reorder:p=0.05");
  cc.plan = comm::parse_fault_plan(spec, fault_seed);

  const std::string strategy = flags.str("strategy", "all");
  const std::vector<std::string> strategies =
      strategy == "all" ? trainer_names()
                        : std::vector<std::string>{strategy};

  std::printf("fault plan: %s  (seed %llu)\n", comm::to_spec(cc.plan).c_str(),
              static_cast<unsigned long long>(fault_seed));
  std::printf("%-18s %4s %8s %7s %7s %7s %7s %6s %s\n", "strategy", "ok",
              "bitwise", "delays", "drops", "dups", "reord", "recov",
              "max|diff|");
  bool all_ok = true;
  std::string log = "[\n";
  obs::Registry metrics;
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    cc.strategy = strategies[i];
    const chaos::ChaosReport r = chaos::run_chaos(cc);
    all_ok = all_ok && r.ok();
    std::printf("%-18s %4s %8s %7llu %7llu %7llu %7llu %6d %g\n",
                r.strategy.c_str(), r.ok() ? "OK" : "FAIL",
                r.bitwise_equal ? "equal" : "DIFF",
                static_cast<unsigned long long>(r.fault_stats.delays),
                static_cast<unsigned long long>(r.fault_stats.drops),
                static_cast<unsigned long long>(r.fault_stats.duplicates),
                static_cast<unsigned long long>(r.fault_stats.reorders),
                r.recoveries, r.max_abs_diff);
    if (!r.error.empty()) {
      std::printf("  error: %s\n", r.error.c_str());
    }
    if (!r.ok() && blackbox != nullptr) {
      // One dump per chaos invocation, attributed to the first divergence
      // (unrecovered comm errors inside run_chaos have already dumped).
      blackbox->dump_once("chaos: strategy " + r.strategy +
                          (r.error.empty() ? " diverged from the clean run"
                                           : " failed: " + r.error));
    }
    std::string body = chaos::report_to_json(r);
    if (!body.empty() && body.back() == '\n') {
      body.pop_back();
    }
    log += (i == 0 ? "" : ",\n") + body;
    chaos::fill_fault_metrics(metrics, r.fault_stats);
  }
  log += "\n]\n";
  if (flags.flag("log")) {
    const std::string path = flags.str("log", "chaos_log.json");
    trace::write_file(path, log);
    std::printf("wrote %s\n", path.c_str());
  }
  write_metrics_snapshot(flags, metrics.to_json(), "chaos_metrics.json");
  telemetry.finish();
  if (!all_ok) {
    std::printf("CHAOS FAIL: at least one strategy diverged under faults\n");
  }
  return all_ok ? 0 : 1;
}

// `weipipe_cli health` — run training under the full live health plane:
// flight recorder (overwrite-oldest span ring), stall/straggler watchdog,
// and an always-armed post-mortem black box with fatal-signal handlers.
int cmd_health(const Flags& flags) {
  const TrainConfig cfg = config_from_flags(flags);
  const std::string strategy = flags.str("strategy", "weipipe");
  const std::int64_t workers = flags.i64("workers", 4);
  WEIPIPE_CHECK_MSG(workers >= 1, "need at least one worker");
  const std::int64_t iters = flags.i64("iters", 8);
  const bool quiet = flags.flag("quiet");

  // The black box is always armed here (--postmortem only renames the
  // directory), including best-effort fatal-signal last words.
  obs::BlackBoxOptions box_opt;
  box_opt.dir = flags.str("postmortem", "postmortem");
  box_opt.install_signal_handlers = true;
  obs::BlackBox blackbox(box_opt);
  blackbox.arm();

  // Flight recorder: the ring keeps the most recent spans, so a dump shows
  // the moments before a wedge no matter how long the run has been up.
  obs::RecorderOptions rec_opt;
  rec_opt.ring_capacity =
      static_cast<std::size_t>(flags.i64("ring-capacity", 1 << 14));
  rec_opt.overwrite_oldest = true;
  obs::Recorder recorder(rec_opt);
  recorder.install();

  std::unique_ptr<Trainer> trainer = make_trainer(strategy, cfg, workers);
  comm::Fabric* fabric = trainer->fabric();
  if (flags.flag("faults")) {
    WEIPIPE_CHECK_MSG(fabric != nullptr,
                      "--faults requires a fabric-backed strategy");
    fabric->install_fault_plan(comm::parse_fault_plan(
        flags.str("faults", ""),
        static_cast<std::uint64_t>(
            flags.i64("fault-seed", flags.i64("seed", 1234)))));
  }
  if (fabric != nullptr) {
    blackbox.set_section("fault_events", [fabric]() {
      return comm::fault_events_to_json(fabric->fault_events());
    });
  }

  obs::WatchdogOptions wd_opt;
  wd_opt.poll_seconds = flags.f64("poll-ms", 50.0) * 1e-3;
  wd_opt.stall_timeout_seconds =
      flags.f64("stall-timeout-ms", 500.0) * 1e-3;
  wd_opt.dead_timeout_seconds =
      flags.f64("dead-timeout-ms", 5000.0) * 1e-3;
  obs::Watchdog watchdog(wd_opt);
  watchdog.set_on_dead([](const obs::HealthReport& rep) {
    obs::blackbox_dump_once("watchdog DEAD verdict: " + rep.one_line());
  });
  watchdog.start(static_cast<int>(workers));

  // Declared after the watchdog and fabric so the sampler (and its gauge
  // callbacks into both) is destroyed — i.e. stopped — before either dies.
  TelemetryScope telemetry(flags, "health", strategy);
  if (telemetry.sampler() != nullptr) {
    if (fabric != nullptr) {
      telemetry.sampler()->add_gauge_source(
          "telemetry.fabric.ring.spins", [fabric]() {
            return static_cast<double>(fabric->ring_stats().spins);
          });
      telemetry.sampler()->add_gauge_source(
          "telemetry.fabric.ring.parks", [fabric]() {
            return static_cast<double>(fabric->ring_stats().parks);
          });
      telemetry.sampler()->add_gauge_source(
          "telemetry.fabric.ring.notifies", [fabric]() {
            return static_cast<double>(fabric->ring_stats().notifies);
          });
      telemetry.sampler()->add_gauge_source(
          "telemetry.fabric.ring.overflow", [fabric]() {
            return static_cast<double>(fabric->ring_stats().overflow);
          });
    }
    telemetry.sampler()->add_gauge_source(
        "telemetry.health.unhealthy_ranks", [&watchdog]() {
          const obs::HealthReport rep = watchdog.evaluate_now();
          return static_cast<double>(
              rep.world - rep.count(obs::RankHealth::kOk));
        });
  }

  const auto data = dataset_from_flags(flags, cfg);
  RecoveryOptions recovery;
  recovery.max_attempts = static_cast<int>(flags.i64("max-recoveries", 1));

  std::printf("health: '%s' (%lld ranks), %lld iters, poll %.0fms "
              "stall %.0fms dead %.0fms\n",
              trainer->name().c_str(), static_cast<long long>(workers),
              static_cast<long long>(iters), wd_opt.poll_seconds * 1e3,
              wd_opt.stall_timeout_seconds * 1e3,
              wd_opt.dead_timeout_seconds * 1e3);

  int exit_code = 0;
  std::string run_error;
  try {
    for (std::int64_t it = 0; it < iters; ++it) {
      const RecoveryResult r =
          train_iteration_with_recovery(*trainer, *data, it, recovery);
      if (!quiet) {
        std::printf("iter %4lld  loss %.4f%s  | %s\n",
                    static_cast<long long>(it), r.result.mean_loss,
                    r.recoveries > 0 ? " (recovered)" : "",
                    watchdog.evaluate_now().one_line().c_str());
      }
    }
  } catch (const Error& e) {
    // train_iteration_with_recovery already dumped for unrecovered comm
    // errors; blackbox_dump_once makes any other failure path dump too.
    run_error = e.what();
    obs::blackbox_dump_once(std::string("health run failed: ") + run_error);
    exit_code = 1;
  }

  const obs::HealthReport final_report = watchdog.evaluate_now();
  const std::vector<obs::HealthTransition> transitions =
      watchdog.transitions();
  telemetry.finish();  // stops the sampler before the watchdog goes away
  watchdog.stop();
  recorder.uninstall();

  for (const obs::HealthTransition& t : transitions) {
    std::printf("verdict: rank %d %s -> %s%s\n", t.rank,
                obs::to_string(t.from), obs::to_string(t.to),
                t.blocked_on_peer >= 0
                    ? ("  (blocked on rank " +
                       std::to_string(t.blocked_on_peer) + ")")
                          .c_str()
                    : "");
    if (t.to == obs::RankHealth::kStalled ||
        t.to == obs::RankHealth::kDead) {
      exit_code = 1;
    }
  }
  if (!run_error.empty()) {
    std::printf("run FAILED: %s\n", run_error.c_str());
  }
  std::printf("final: %s\n", final_report.one_line().c_str());
  if (flags.flag("report")) {
    const std::string path = flags.str("report", "health-report.json");
    trace::write_file(path, final_report.to_json());
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::printf("%s", final_report.to_json().c_str());
  }
  if (blackbox.dumps() > 0) {
    std::printf("postmortem written under %s/\n", box_opt.dir.c_str());
  }
  return exit_code;
}

void print_help() {
  std::printf(R"(weipipe_cli — WeiPipe weight-pipeline training toolkit

USAGE: weipipe_cli <command> [--flag value ...]

COMMANDS
  train      train a model
    --strategy S       sequential | weipipe | weipipe-naive | 1f1b | gpipe | fsdp
    --workers N        ring size / stages / ranks        (default 4)
    --dp N             data-parallel replicas (weipipe)  (default 1)
    --iters N          training iterations               (default 50)
    --dim H --layers L --heads n --kv-heads n(GQA) --seq S --vocab V
    --microbatches N --batch-size G --lr f --clip f --warmup n --decay-iters n
    --dataset affine|copy   --seed n   --fp16   --recompute   --quiet
    --wire-grads fp32|fp16|bf16|int8   weight-gradient (D flow) wire format
    --replicate-vocab  hold embedding/head per worker, sync once per iter
    --checkpoint PATH  save state at the end
    --resume PATH      restore state before training
  generate   sample from a checkpoint (pass the same model flags)
    --checkpoint PATH --prompt "1,2,3" --tokens n --temperature f --seed n
  plan       simulate strategies for a model x cluster and recommend one
    --dim H --seq S --batch-size G --layers L --microbatches N
    --gpus N --gpus-per-node N --env nvlink|pcie|ethernet --csv PATH
  schedule   render a pipeline schedule as an ASCII timeline
    --strategy naive|interleave|no-prefetch|wzb1|wzb2|gpipe|1f1b|zb1|zb2|fsdp
    --workers P --rounds R --bwd-ratio f --width n --csv PATH --svg PATH
  analyze    statically model-check a schedule (deadlock cycles,
             weight-version consistency, peak-memory bounds)
    --strategy all|naive|interleave|no-prefetch|wzb1|wzb2|gpipe|1f1b|zb1|zb2|fsdp
    --workers P --rounds R --bwd-ratio f
  profile    run a strategy on the real engine with tracing on; report
             measured vs predicted bubble/step time and measured vs static
             peak activation memory
    --strategy S       trainer-backed: sequential|weipipe|weipipe-naive|1f1b|gpipe|fsdp
                       schedule-backed: wzb1|wzb2|zb1|zb2|naive|interleave|no-prefetch
    --workers P --iters N --warmup-iters N
    --rounds R --bwd-ratio f --unit-ms f       (schedule-backed programs)
    --dim H --layers L --microbatches N ...    (trainer-backed model flags)
    --trace PATH       write Chrome trace-event JSON (Perfetto-loadable)
    --metrics PATH     write metrics snapshot JSON (includes per-rank
                       obs.spans.dropped.* flight-ring overflow counters)
    --timeline         render the measured timeline as ASCII
    --svg PATH         write the measured timeline as SVG
    --kernels          also record per-dispatch thread-pool kernel spans
    --faults SPEC      inject a seeded fault plan (trainer-backed only);
                       faults appear as kFault trace spans + fault.* metrics
    --postmortem DIR   arm a black box: a fatal error dumps the span ring +
                       health snapshot as DIR/postmortem{,_trace}.json
  anatomy    critical-path step anatomy: profile a strategy (flags as
             profile; default strategy weipipe) and attribute every
             nanosecond of the cross-rank critical path to compute,
             exposed wire (split by message kind), blocked recv,
             stall/fault, or scheduling gap
    --timeline         per-rank ASCII anatomy timeline for each step
    --width N          timeline width in columns (default 100)
    --json PATH        write the per-step anatomy reports as a JSON array
    --gate-vs S        also profile strategy S with the identical config
                       and exit nonzero unless the primary's mean exposed
                       comm fraction is strictly lower
  bench      run the canonical strategy matrix and write the bench
             trajectory (step time, GFLOP/s, per-kind wire bytes vs the
             closed forms, full-footprint peak vs static bounds); diff two
             trajectories with tools/bench_compare
    --smoke            trimmed matrix (4-rank cases, 1 iteration, no warmup)
    --iters N --warmup-iters N                 (full runs; default 2 / 1)
    --out PATH         output path (default artifacts/BENCH_trajectory.json)
    --metrics PATH     also write per-case bench.* gauges as a metrics
                       snapshot JSON
  chaos      run a strategy clean and under a seeded fault plan and diff
             the final weights bitwise (docs/FAULTS.md); exits nonzero if
             any strategy diverges or fails to complete
    --strategy S|all   trainer strategy, or the whole matrix (default all)
    --faults SPEC      fault-plan spec, e.g. "drop:p=0.05,dup:p=0.1:tag=3"
                       kinds: delay|drop|dup|reorder|stall|nodedup|retries
                       keys: p src dst tag ns/us/ms rank op
                       (on stall clauses ns/us/ms set the hold time the
                       stalled rank stays frozen before aborting)
    --fault-seed N     fault-plan seed (default --seed)
    --workers P --iters N --max-recoveries N   (default 4 / 2 / 3)
    --dim H --layers L --microbatches N ...    (model flags, as train)
    --log PATH         write the per-strategy chaos reports + fault event
                       logs as a JSON array
    --metrics PATH     write fault.* metrics snapshot JSON
    --postmortem DIR   arm a black box; the first divergence or unrecovered
                       fault dumps DIR/postmortem{,_trace}.json (forked
                       mode: each rank process dumps DIR/rank<r>/...)
    --transport shm|tcp   forked-rank mode (docs/TRANSPORT.md): fork one
                       process per rank, run the differ over the real wire,
                       and additionally memcmp every rank's state blob
                       against the in-process inproc reference
    --recv-timeout-ms N   fabric recv timeout override (default: fabric's)
    --fork-timeout-s N    forked mode: SIGKILL + fail ranks still running
                          after this long                  (default 300)
    --forked-dir DIR      forked mode: rank state-blob exchange directory
                          (default chaos-forked)
  health     train under the live health plane (docs/OBSERVABILITY.md):
             flight-recorder span ring, stall/straggler watchdog with a
             periodic one-line status, and an always-armed post-mortem
             black box; exits nonzero if the run fails or any rank is
             judged STALLED or DEAD
    --strategy S       trainer strategy (default weipipe)
    --workers P --iters N                      (default 4 / 8)
    --dim H --layers L --microbatches N ...    (model flags, as train)
    --faults SPEC      inject a seeded fault plan (grammar as chaos)
    --fault-seed N     fault-plan seed (default --seed)
    --max-recoveries N step-boundary recovery attempts (default 1)
    --poll-ms F        watchdog poll period            (default 50)
    --stall-timeout-ms F   blocked-recv => STALLED     (default 500)
    --dead-timeout-ms F    no heartbeat => DEAD        (default 5000)
    --ring-capacity N  flight-recorder spans per rank  (default 16384)
    --postmortem DIR   black-box output dir (default postmortem)
    --report PATH      write the final HealthReport JSON (default: stdout)
    --quiet            suppress the per-iteration status line

  every subcommand accepts the transport flags (docs/TRANSPORT.md):
    --transport SPEC   fabric backend: inproc (default; lock-free in-process
                       mailboxes), shm (POSIX shared-memory rings + futex),
                       or tcp (nonblocking sockets, sendmsg scatter-gather).
                       Full spec grammar:
                       "inproc" | "shm[:name=SEG][:rank=R]" |
                       "tcp[:host=H][:port=P][:rank=R]" — rank=R makes this
                       process host exactly rank R (peers over the wire);
                       without it all ranks stay in-process as threads
                       (chaos instead forks rank processes itself)
    --base-port N      tcp rendezvous base port; rank r listens on N + r
    --shm-name SEG     shm segment name prefix shared by the rank processes

  profile, anatomy, bench, chaos, and health also accept the streaming
  telemetry flags (docs/OBSERVABILITY.md):
    --telemetry PATH       sample runtime metrics + memory ledger on a
                           background thread for the subcommand's duration;
                           write a timeseries JSON plus a Prometheus text
                           exposition sibling (PATH with extension .prom)
    --telemetry-period-ms F  sample period          (default 5)
    --telemetry-window N     samples retained before the window decimates
                             in place and doubles its stride (default 4096)

Every flag also accepts --flag=value.
)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_help();
    return 1;
  }
  const std::string cmd = argv[1];
  try {
    const Flags flags(argc, argv, 2);
    // Every subcommand honors --transport (chaos re-reads the spec to pick
    // the forked launcher; the rest just run their fabrics over it).
    apply_transport_flags(flags);
    if (cmd == "train") {
      return cmd_train(flags);
    }
    if (cmd == "generate") {
      return cmd_generate(flags);
    }
    if (cmd == "plan") {
      return cmd_plan(flags);
    }
    if (cmd == "schedule") {
      return cmd_schedule(flags);
    }
    if (cmd == "analyze") {
      return cmd_analyze(flags);
    }
    if (cmd == "profile") {
      return cmd_profile(flags);
    }
    if (cmd == "anatomy") {
      return cmd_anatomy(flags);
    }
    if (cmd == "bench") {
      return cmd_bench(flags);
    }
    if (cmd == "chaos") {
      return cmd_chaos(flags);
    }
    if (cmd == "health") {
      return cmd_health(flags);
    }
    if (cmd == "help" || cmd == "--help") {
      print_help();
      return 0;
    }
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    print_help();
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
