// bench_compare — the bench-trajectory regression gate.
//
//   bench_compare BASELINE.json CANDIDATE.json [--smoke]
//                 [--step-tol f] [--mem-tol f] [--wire-tol f]
//
// Diffs two trajectory files written by `weipipe_cli bench` over their
// overlapping (strategy, ranks, recompute) cases and exits nonzero if any
// metric regressed past its threshold (see prof::CompareThresholds). CI runs
// it with --smoke against the committed artifacts/BENCH_trajectory.json.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "prof/bench_run.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  weipipe::prof::CompareThresholds thr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> double {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return std::atof(argv[++i]);
    };
    if (arg == "--smoke") {
      thr = weipipe::prof::CompareThresholds::smoke();
    } else if (arg == "--step-tol") {
      thr.step_rel = next();
    } else if (arg == "--mem-tol") {
      thr.mem_rel = next();
    } else if (arg == "--wire-tol") {
      thr.wire_rel = next();
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_compare: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE.json CANDIDATE.json [--smoke] "
                 "[--step-tol f] [--mem-tol f] [--wire-tol f]\n");
    return 2;
  }

  const std::vector<std::string> regressions =
      weipipe::prof::compare_trajectories(read_file(paths[0]),
                                          read_file(paths[1]), thr);
  if (regressions.empty()) {
    std::printf("bench_compare: no regressions (%s vs %s)\n", paths[0].c_str(),
                paths[1].c_str());
    return 0;
  }
  std::fprintf(stderr, "bench_compare: %zu regression(s):\n",
               regressions.size());
  for (const std::string& r : regressions) {
    std::fprintf(stderr, "  %s\n", r.c_str());
  }
  return 1;
}
