#include "prof/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "analysis/analysis.hpp"
#include "baselines/chaos.hpp"
#include "baselines/factory.hpp"
#include "baselines/fsdp_trainer.hpp"
#include "baselines/pipeline_trainer.hpp"
#include "comm/fabric.hpp"
#include "common/check.hpp"
#include "core/accounting.hpp"
#include "core/resilience.hpp"
#include "core/weipipe_trainer.hpp"
#include "core/wire_tags.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "sched/builders.hpp"
#include "sched/weipipe_schedule.hpp"
#include "sim/program_runner.hpp"
#include "sim/topology.hpp"
#include "trace/runtime.hpp"

namespace weipipe::prof {

namespace {

const char* const kTrainerStrategies[] = {
    "sequential", "weipipe", "weipipe-interleave", "weipipe-naive",
    "1f1b",       "gpipe",   "fsdp"};
const char* const kScheduleStrategies[] = {
    "wzb1", "wzb2", "zb1", "zb2", "naive", "interleave", "no-prefetch"};

// The predicted side of every comparison: transfer over ideal links is free,
// so the engine measures pure schedule structure (dependency bubbles), which
// is what the runner's eager fabric + busy-wait compute realizes.
sim::Topology ideal_topology(std::int64_t ranks) {
  return sim::Topology::uniform(static_cast<int>(ranks),
                                sim::Link{1e15, 0.0}, "ideal");
}

// ---- schedule-backed path ---------------------------------------------------

sched::Program build_schedule_backed(const ProfileOptions& options) {
  const std::int64_t p = options.workers;
  sched::StrategyCosts costs;
  for (std::int64_t i = 0; i < p; ++i) {
    costs.fwd_seconds.push_back(options.unit_seconds);
    costs.bwd_seconds.push_back(options.bwd_ratio * options.unit_seconds);
    costs.bwd_acts_seconds.push_back(options.bwd_ratio * options.unit_seconds /
                                     2.0);
    costs.bwd_weights_seconds.push_back(options.bwd_ratio *
                                        options.unit_seconds / 2.0);
    costs.chunk_weight_bytes.push_back(options.chunk_bytes);
    costs.act_mem_bytes.push_back(options.act_bytes);
  }
  costs.act_bytes = options.act_bytes;
  costs.act_grad_bytes = options.act_bytes;

  const std::int64_t n = options.rounds * p;
  const std::string& s = options.strategy;
  if (s == "naive") {
    return sched::build_weipipe(
        WeiPipeSchedule(p, options.rounds, WeiPipeMode::kNaive), costs);
  }
  if (s == "interleave") {
    return sched::build_weipipe(
        WeiPipeSchedule(p, options.rounds, WeiPipeMode::kInterleave), costs);
  }
  if (s == "no-prefetch") {
    return sched::build_weipipe(
        WeiPipeSchedule(p, options.rounds, WeiPipeMode::kInterleave), costs,
        /*prefetch=*/false);
  }
  if (s == "wzb1") {
    return sched::build_weipipe_zero_bubble(p, options.rounds,
                                            sched::WzbVariant::kWzb1, costs);
  }
  if (s == "wzb2") {
    return sched::build_weipipe_zero_bubble(p, options.rounds,
                                            sched::WzbVariant::kWzb2, costs);
  }
  if (s == "zb1") {
    return sched::build_zero_bubble(p, n, sched::ZbVariant::kZb1, costs);
  }
  if (s == "zb2") {
    return sched::build_zero_bubble(p, n, sched::ZbVariant::kZb2, costs);
  }
  WEIPIPE_CHECK_MSG(false, "unknown profile strategy '" << s << "'");
  return {};
}

// ---- trainer-backed path ----------------------------------------------------

// acct speaks the canonical trainer names; prof accepts one alias.
std::string acct_strategy(const std::string& s) {
  return s == "weipipe-interleave" ? "weipipe" : s;
}

comm::Fabric* trainer_fabric(Trainer& trainer) {
  return trainer.fabric();  // nullptr for sequential
}

// obs/ cannot name sched::MsgKind (layering), so prof supplies the tag ->
// wire-kind classifier: the same mapping the wire.kind.* metrics use.
obs::AnatomyOptions anatomy_options() {
  obs::AnatomyOptions opts;
  opts.wire_kind_label = [](std::int64_t tag) {
    return std::string(sched::to_string(wire_tags::msg_kind(tag)));
  };
  return opts;
}

struct KindStats {
  double sum_seconds = 0.0;
  std::int64_t count = 0;
  double max_acquired_bytes = 0.0;  // max positive mem delta seen

  double mean_seconds() const {
    return count > 0 ? sum_seconds / static_cast<double>(count) : 0.0;
  }
};

// Fits sched::StrategyCosts to the measured spans of a trainer run and
// builds the schedule the trainer implements, so the discrete-event engine
// can predict what the measured timeline *should* look like. Returns false
// when the strategy has no schedule model (sequential, fsdp) or the spans do
// not cover every chunk.
bool derive_predicted_program(const ProfileOptions& options,
                              const std::vector<obs::Span>& spans,
                              std::int64_t iters, sched::Program* out) {
  const std::string& s = options.strategy;
  const bool is_weipipe =
      s == "weipipe" || s == "weipipe-interleave" || s == "weipipe-naive";
  const bool is_pipeline = s == "1f1b" || s == "gpipe";
  if (!is_weipipe && !is_pipeline) {
    return false;
  }
  const std::int64_t p = options.workers;
  const std::int64_t n = options.train.num_microbatches;
  if (p < 2 || n % p != 0) {
    return false;
  }

  // Per-chunk F/B stats; per-tag wire-message sizes.
  std::map<std::int64_t, KindStats> fwd;
  std::map<std::int64_t, KindStats> bwd;
  KindStats optimizer;
  std::map<std::int64_t, KindStats> send_by_tag;
  for (const obs::Span& span : spans) {
    if (span.kind == obs::SpanKind::kForward && span.chunk >= 0) {
      KindStats& k = fwd[span.chunk];
      k.sum_seconds += span.seconds();
      k.count += 1;
      k.max_acquired_bytes =
          std::max(k.max_acquired_bytes, static_cast<double>(span.bytes));
    } else if (span.kind == obs::SpanKind::kBackward && span.chunk >= 0) {
      KindStats& k = bwd[span.chunk];
      k.sum_seconds += span.seconds();
      k.count += 1;
    } else if (span.kind == obs::SpanKind::kOptimizer) {
      optimizer.sum_seconds += span.seconds();
      optimizer.count += 1;
    } else if (span.kind == obs::SpanKind::kSendTransfer) {
      KindStats& k = send_by_tag[span.tag];
      k.sum_seconds += static_cast<double>(span.bytes);  // reuse: byte sum
      k.count += 1;
    }
  }
  for (std::int64_t c = 0; c < p; ++c) {
    if (fwd.find(c) == fwd.end() || bwd.find(c) == bwd.end()) {
      return false;  // spans do not cover every chunk/stage
    }
  }

  auto mean_send_bytes = [&](std::int64_t tag, double fallback) {
    auto it = send_by_tag.find(tag);
    return (it != send_by_tag.end() && it->second.count > 0)
               ? it->second.sum_seconds /
                     static_cast<double>(it->second.count)
               : fallback;
  };

  sched::StrategyCosts costs;
  for (std::int64_t c = 0; c < p; ++c) {
    costs.fwd_seconds.push_back(fwd[c].mean_seconds());
    costs.bwd_seconds.push_back(bwd[c].mean_seconds());
    costs.bwd_acts_seconds.push_back(bwd[c].mean_seconds() / 2.0);
    costs.bwd_weights_seconds.push_back(bwd[c].mean_seconds() / 2.0);
    costs.chunk_weight_bytes.push_back(
        mean_send_bytes(wire_tags::kTagF, 1.0));
    costs.act_mem_bytes.push_back(fwd[c].max_acquired_bytes);
  }
  costs.act_bytes = mean_send_bytes(wire_tags::kTagAct, 1.0);
  costs.act_grad_bytes = mean_send_bytes(wire_tags::kTagGrad, 1.0);
  // The trainer's optimizer step covers all measured iterations' opt spans;
  // the schedule has one optimizer op per rank.
  costs.optimizer_seconds =
      iters > 0 ? optimizer.sum_seconds /
                      static_cast<double>(std::max<std::int64_t>(1, iters * p))
                : 0.0;

  if (is_weipipe) {
    const WeiPipeMode mode = (s == "weipipe-naive") ? WeiPipeMode::kNaive
                                                    : WeiPipeMode::kInterleave;
    *out = sched::build_weipipe(WeiPipeSchedule(p, n / p, mode), costs);
  } else if (s == "1f1b") {
    *out = sched::build_1f1b(p, n, costs);
  } else {
    *out = sched::build_gpipe(p, n, costs);
  }
  return true;
}

// ---- metrics ----------------------------------------------------------------

void fill_metrics(obs::MetricsRegistry& registry, const ProfileReport& report,
                  const std::vector<comm::FabricStats>& pair_stats) {
  for (const obs::Span& span : report.spans) {
    if (span.kind == obs::SpanKind::kStep) {
      registry.histogram("step.seconds").observe(span.seconds());
      continue;
    }
    registry.histogram(std::string("op.seconds.") + obs::to_string(span.kind))
        .observe(span.seconds());
    if (span.kind == obs::SpanKind::kSendTransfer && span.bytes > 0) {
      registry
          .counter(std::string("wire.bytes.") +
                   sched::to_string(wire_tags::msg_kind(span.tag)))
          .add(static_cast<std::uint64_t>(span.bytes));
    }
    if (obs::is_compute(span.kind) && span.act_bytes_after >= 0.0) {
      registry.gauge("mem.peak_act_bytes.measured")
          .set_max(span.act_bytes_after);
    }
  }

  registry.counter("spans.recorded").add(report.spans.size());
  registry.counter("spans.dropped").add(report.dropped_spans);
  // Canonical overflow metric (ISSUE 7): total plus a per-ring breakdown so
  // a lossy trace names which rank's ring truncated.
  registry.counter("obs.spans.dropped").add(report.dropped_spans);
  for (const obs::Recorder::RankDropped& d : report.dropped_by_rank) {
    registry
        .counter(d.rank < 0 ? std::string("obs.spans.dropped.unranked")
                            : "obs.spans.dropped.rank." +
                                  std::to_string(d.rank))
        .add(d.dropped);
  }

  registry.counter("pool.dispatches").add(report.pool_stats.dispatches);
  registry.counter("pool.serial_runs").add(report.pool_stats.serial_runs);
  registry.counter("pool.items").add(report.pool_stats.items);
  registry.counter("pool.chunks").add(report.pool_stats.chunks);
  registry.counter("pool.steals").add(report.pool_stats.steals);
  registry.counter("fabric.messages").add(report.wire_messages);
  registry.counter("fabric.bytes").add(report.wire_bytes);
  registry.gauge("fabric.max_in_flight")
      .set(static_cast<double>(report.max_in_flight));
  // Lock-free transport health: a high park share means receivers arrive
  // long before their data; overflow > 0 means eager bursts outran the
  // bounded per-edge rings and fell back to the mutex spillover path.
  registry.counter("fabric.ring.spins").add(report.ring_stats.spins);
  registry.counter("fabric.ring.parks").add(report.ring_stats.parks);
  registry.counter("fabric.ring.notifies").add(report.ring_stats.notifies);
  registry.counter("fabric.ring.overflow").add(report.ring_stats.overflow);

  if (report.fault_injected) {
    chaos::fill_fault_metrics(registry, report.fault_stats);
    registry.counter("fault.step_recoveries")
        .add(static_cast<std::uint64_t>(report.fault_recoveries));
  }

  const auto ranks = static_cast<std::size_t>(report.ranks);
  if (pair_stats.size() == ranks * ranks) {
    for (std::size_t src = 0; src < ranks; ++src) {
      for (std::size_t dst = 0; dst < ranks; ++dst) {
        const comm::FabricStats& st = pair_stats[src * ranks + dst];
        if (st.messages == 0) {
          continue;
        }
        std::ostringstream prefix;
        prefix << "fabric.pair." << src << "->" << dst;
        registry.counter(prefix.str() + ".messages").add(st.messages);
        registry.counter(prefix.str() + ".bytes").add(st.bytes);
        registry.gauge(prefix.str() + ".max_in_flight")
            .set(static_cast<double>(st.max_in_flight));
      }
    }
  }

  for (const ProfileReport::LedgerKindPeak& k : report.ledger_kinds) {
    registry.gauge("mem.ledger." + k.kind + ".peak_bytes").set(k.peak_bytes);
    registry.gauge("mem.ledger." + k.kind + ".live_bytes").set(k.live_bytes);
  }
  if (report.measured_peak_footprint_bytes >= 0.0) {
    registry.gauge("mem.ledger.total_peak_bytes")
        .set(report.measured_peak_footprint_bytes);
    registry.gauge("mem.ledger.max_rank_peak_bytes")
        .set(report.max_rank_peak_footprint_bytes);
  }
  if (report.static_weights_bound_bytes >= 0.0) {
    registry.gauge("mem.bound.weights_bytes")
        .set(report.static_weights_bound_bytes);
    registry.gauge("mem.bound.weight_grads_bytes")
        .set(report.static_grads_bound_bytes);
    registry.gauge("mem.bound.optimizer_bytes")
        .set(report.static_optimizer_bound_bytes);
  }
  for (const ProfileReport::WireKindVolume& w : report.wire_kinds) {
    registry.counter("wire.kind." + w.kind + ".bytes")
        .add(static_cast<std::uint64_t>(w.measured_bytes));
    registry.counter("wire.kind." + w.kind + ".messages")
        .add(static_cast<std::uint64_t>(w.measured_messages));
    if (w.predicted_bytes >= 0.0) {
      registry.gauge("wire.kind." + w.kind + ".predicted_bytes")
          .set(w.predicted_bytes);
    }
  }

  registry.gauge("step.seconds.measured.mean").set(report.measured_step_seconds);
  registry.gauge("bubble.measured").set(report.measured_bubble);
  if (report.predicted_step_seconds >= 0.0) {
    registry.gauge("step.seconds.predicted").set(report.predicted_step_seconds);
    registry.gauge("bubble.predicted").set(report.predicted_bubble);
  }
  if (report.static_peak_bound_bytes >= 0.0) {
    registry.gauge("mem.peak_act_bytes.static_bound")
        .set(report.static_peak_bound_bytes);
  }
  // Critical-path anatomy: per-category path time (mean over iterations)
  // plus the headline exposed fraction the CI gate compares across
  // strategies.
  if (!report.anatomy.empty()) {
    const double n = static_cast<double>(report.anatomy.size());
    double cats[obs::kNumPathCategories] = {};
    double path = 0.0;
    for (const obs::StepAnatomy& a : report.anatomy) {
      path += a.path_seconds();
      for (int c = 0; c < obs::kNumPathCategories; ++c) {
        cats[c] += a.category_seconds[c];
      }
    }
    registry.gauge("anatomy.path_seconds.mean").set(path / n);
    for (int c = 0; c < obs::kNumPathCategories; ++c) {
      registry
          .gauge(std::string("anatomy.") +
                 obs::to_string(static_cast<obs::PathCategory>(c)) +
                 ".seconds.mean")
          .set(cats[c] / n);
    }
    registry.gauge("anatomy.exposed_comm_fraction")
        .set(report.mean_exposed_comm_fraction());
    for (const obs::StepAnatomy& a : report.anatomy) {
      for (const obs::WireExposure& w : a.wire) {
        registry.gauge("anatomy.exposed_wire." + w.kind + ".seconds")
            .set(w.seconds);
      }
    }
  }
}

ThreadPoolStats pool_stats_delta(const ThreadPoolStats& before,
                                 const ThreadPoolStats& after) {
  return {after.dispatches - before.dispatches,
          after.serial_runs - before.serial_runs, after.items - before.items,
          after.chunks - before.chunks, after.steals - before.steals};
}

std::string format_seconds(double s) {
  char buf[64];
  if (s < 0.0) {
    return "n/a";
  }
  if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  }
  return buf;
}

std::string format_bytes(double b) {
  char buf[64];
  if (b < 0.0) {
    return "n/a";
  }
  if (b >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / (1024.0 * 1024.0));
  } else if (b >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", b);
  }
  return buf;
}

std::string format_percent(double frac) {
  if (frac < 0.0) {
    return "n/a";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", frac * 100.0);
  return buf;
}

}  // namespace

bool is_trainer_strategy(const std::string& name) {
  for (const char* s : kTrainerStrategies) {
    if (name == s) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> profile_strategies() {
  std::vector<std::string> out;
  for (const char* s : kTrainerStrategies) {
    out.emplace_back(s);
  }
  for (const char* s : kScheduleStrategies) {
    out.emplace_back(s);
  }
  return out;
}

std::string ProfileReport::summary() const {
  std::ostringstream oss;
  oss << "profile: " << strategy
      << (schedule_backed ? " (schedule-backed)" : " (trainer-backed)") << ", "
      << ranks << " rank(s), " << iters << " iteration(s)\n";
  oss << "  step time  measured " << format_seconds(measured_step_seconds)
      << "  predicted " << format_seconds(predicted_step_seconds);
  if (predicted_step_seconds > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "  (%+.1f%%)",
                  (measured_step_seconds / predicted_step_seconds - 1.0) *
                      100.0);
    oss << buf;
  }
  oss << '\n';
  oss << "  bubble     measured " << format_percent(measured_bubble)
      << "  predicted " << format_percent(predicted_bubble);
  if (predicted_bubble >= 0.0 && measured_bubble >= 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "  (%+.1f pp)", bubble_error() * 100.0);
    oss << buf;
  }
  oss << '\n';
  if (!anatomy.empty()) {
    // The anatomy's exposed fraction is the measured counterpart of the
    // simulator's bubble: wire + blocked time the schedule failed to hide.
    oss << "  crit path  exposed comm "
        << format_percent(mean_exposed_comm_fraction()) << "  vs predicted bubble "
        << format_percent(predicted_bubble);
    if (predicted_bubble >= 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "  (%+.1f pp)",
                    (mean_exposed_comm_fraction() - predicted_bubble) * 100.0);
      oss << buf;
    }
    oss << '\n';
    double cats[obs::kNumPathCategories] = {};
    for (const obs::StepAnatomy& a : anatomy) {
      for (int c = 0; c < obs::kNumPathCategories; ++c) {
        cats[c] += a.category_seconds[c] /
                   static_cast<double>(anatomy.size());
      }
    }
    oss << "    path mean";
    for (int c = 0; c < obs::kNumPathCategories; ++c) {
      oss << "  " << obs::to_string(static_cast<obs::PathCategory>(c)) << ' '
          << format_seconds(cats[c]);
    }
    oss << '\n';
  }
  oss << "  peak act   measured " << format_bytes(measured_peak_act_bytes)
      << "  static bound " << format_bytes(static_peak_bound_bytes);
  if (static_peak_bound_bytes >= 0.0) {
    oss << (measured_peak_act_bytes <= static_peak_bound_bytes + 0.5
                ? "  OK (measured <= bound)"
                : "  VIOLATION (measured > bound)");
  }
  oss << '\n';
  if (measured_peak_footprint_bytes >= 0.0) {
    const double bound_total =
        (static_weights_bound_bytes < 0.0)
            ? -1.0
            : static_weights_bound_bytes + static_grads_bound_bytes +
                  static_optimizer_bound_bytes;
    oss << "  footprint  measured peak "
        << format_bytes(measured_peak_footprint_bytes) << "  worst rank "
        << format_bytes(max_rank_peak_footprint_bytes)
        << "  static weights+grads+opt bound " << format_bytes(bound_total)
        << '\n';
    for (const LedgerKindPeak& k : ledger_kinds) {
      if (k.peak_bytes <= 0.0 && k.live_bytes <= 0.0) continue;
      oss << "    mem." << k.kind << "  peak " << format_bytes(k.peak_bytes)
          << "  residual " << format_bytes(k.live_bytes) << '\n';
    }
  }
  oss << "  wire       " << wire_messages << " message(s), "
      << format_bytes(static_cast<double>(wire_bytes))
      << ", max in flight " << max_in_flight << '\n';
  for (const WireKindVolume& w : wire_kinds) {
    oss << "    wire." << w.kind << "  measured "
        << format_bytes(w.measured_bytes) << " in "
        << static_cast<std::uint64_t>(w.measured_messages) << " msg(s)";
    if (w.predicted_bytes >= 0.0) {
      oss << "  predicted " << format_bytes(w.predicted_bytes)
          << (w.measured_bytes == w.predicted_bytes ? "  MATCH" : "  MISMATCH");
    }
    oss << '\n';
  }
  oss << "  spans      " << spans.size() << " recorded, " << dropped_spans
      << " dropped";
  if (dropped_spans > 0) {
    oss << "  (trace incomplete: raise ring_capacity)";
  }
  oss << '\n';
  for (const obs::Recorder::RankDropped& d : dropped_by_rank) {
    if (d.rank < 0) {
      oss << "    dropped.unranked  " << d.dropped << '\n';
    } else {
      oss << "    dropped.rank." << d.rank << "  " << d.dropped << '\n';
    }
  }
  oss << "  pool       " << pool_stats.dispatches << " dispatch(es) ("
      << pool_stats.serial_runs << " serial), " << pool_stats.items
      << " item(s) in " << pool_stats.chunks << " chunk(s), "
      << pool_stats.steals << " worker-claimed\n";
  return oss.str();
}

ProfileReport run_profile(const ProfileOptions& options) {
  WEIPIPE_CHECK_MSG(options.iters >= 1, "need at least one measured iteration");
  WEIPIPE_CHECK_MSG(options.warmup_iters >= 0, "negative warmup");
  WEIPIPE_CHECK_MSG(obs::Recorder::active() == nullptr,
                    "a recorder is already installed");

  ProfileReport report;
  report.strategy = options.strategy;
  report.iters = options.iters;
  report.schedule_backed = !is_trainer_strategy(options.strategy);

  obs::Recorder recorder(
      {.ring_capacity = options.ring_capacity,
       .record_kernels = options.record_kernels});

  // Memory ledger: enabled for the run, reported as deltas over the live
  // baseline so earlier runs in this process don't smear the numbers.
  obs::MemoryLedger& ledger = obs::ledger();
  const bool ledger_was_enabled = ledger.enabled();
  ledger.set_enabled(true);
  ledger.reset_peaks();
  const obs::LedgerSnapshot ledger_baseline = ledger.snapshot();

  double bubble_sum = 0.0;
  std::int64_t bubble_count = 0;
  std::vector<comm::FabricStats> pair_stats;

  if (report.schedule_backed) {
    WEIPIPE_CHECK_MSG(options.fault_spec.empty(),
                      "--faults requires a trainer-backed strategy with a "
                      "persistent fabric; '"
                          << options.strategy
                          << "' replays schedule IR on a per-run fabric "
                             "(use weipipe_cli chaos or a trainer strategy)");
    report.ranks = options.workers;
    const sched::Program program = build_schedule_backed(options);

    // Prediction and static bound come from the exact program we execute.
    const sim::SimResult predicted =
        sim::simulate(program, ideal_topology(report.ranks));
    report.predicted_step_seconds = predicted.makespan;
    report.predicted_bubble = predicted.bubble_ratio();
    const analysis::AnalysisReport analyzed = analysis::analyze(program);
    WEIPIPE_CHECK_MSG(!analyzed.deadlocked,
                      "schedule '" << options.strategy
                                   << "' deadlocks; not profiling it");
    report.static_peak_bound_bytes = 0.0;
    for (double b : analyzed.static_peak_bytes) {
      report.static_peak_bound_bytes =
          std::max(report.static_peak_bound_bytes, b);
    }

    for (std::int64_t i = 0; i < options.warmup_iters; ++i) {
      (void)sim::run_program(program);
    }
    const ThreadPoolStats pool_before = ThreadPool::global().stats();
    recorder.install();
    for (std::int64_t i = 0; i < options.iters; ++i) {
      const sim::ProgramRunResult run = sim::run_program(program);
      report.measured_step_seconds += run.wall_seconds;
      for (double b : run.peak_act_bytes) {
        report.measured_peak_act_bytes =
            std::max(report.measured_peak_act_bytes, b);
      }
      std::vector<obs::Span> iter_spans = recorder.drain();
      const sim::SimResult converted =
          trace::spans_to_sim_result(iter_spans);
      if (converted.makespan > 0.0) {
        bubble_sum += converted.bubble_ratio();
        bubble_count += 1;
      }
      {
        obs::StepAnatomy anat =
            obs::analyze_step(iter_spans, anatomy_options());
        if (anat.step_index < 0) anat.step_index = i;
        report.anatomy.push_back(std::move(anat));
      }
      if (i == options.iters - 1) {
        report.timeline = converted;
        report.wire_bytes = run.wire_bytes;
        report.wire_messages = run.wire_messages;
        report.max_in_flight = run.max_in_flight;
        pair_stats = run.pair_stats;
      }
      report.spans.insert(report.spans.end(),
                          std::make_move_iterator(iter_spans.begin()),
                          std::make_move_iterator(iter_spans.end()));
    }
    recorder.uninstall();
    report.pool_stats =
        pool_stats_delta(pool_before, ThreadPool::global().stats());
  } else {
    TrainConfig cfg = options.train;
    cfg.validate();
    report.ranks = options.strategy == "sequential" ? 1 : options.workers;

    // Parameter-derived static bounds for the measured footprint to close
    // against (the activation side is covered by static_peak_bound_bytes).
    const acct::FootprintBounds bounds = acct::static_footprint_bounds(
        acct_strategy(options.strategy), cfg, report.ranks);
    report.static_weights_bound_bytes =
        static_cast<double>(bounds.weights_bytes);
    report.static_grads_bound_bytes =
        static_cast<double>(bounds.weight_grads_bytes);
    report.static_optimizer_bound_bytes =
        static_cast<double>(bounds.optimizer_bytes);

    std::unique_ptr<Trainer> trainer =
        make_trainer(options.strategy, cfg, options.workers);
    SyntheticDataset data(cfg.model.vocab_size, cfg.seed);

    std::int64_t iter = 0;
    for (std::int64_t i = 0; i < options.warmup_iters; ++i) {
      (void)trainer->train_iteration(data, iter++);
    }
    if (!options.fault_spec.empty()) {
      comm::Fabric* fault_fabric = trainer->fabric();
      WEIPIPE_CHECK_MSG(fault_fabric != nullptr,
                        "--faults requires a fabric-backed strategy, not '"
                            << options.strategy << "'");
      fault_fabric->install_fault_plan(
          comm::parse_fault_plan(options.fault_spec, cfg.seed));
      report.fault_injected = true;
    }
    const ThreadPoolStats pool_before = ThreadPool::global().stats();
    recorder.install();
    for (std::int64_t i = 0; i < options.iters; ++i) {
      const RecoveryResult rec =
          train_iteration_with_recovery(*trainer, data, iter++);
      const IterationResult& res = rec.result;
      report.fault_recoveries += rec.recoveries;
      report.measured_step_seconds += res.wall_seconds;
      std::vector<obs::Span> iter_spans = recorder.drain();
      const sim::SimResult converted =
          trace::spans_to_sim_result(iter_spans);
      if (converted.makespan > 0.0) {
        bubble_sum += converted.bubble_ratio();
        bubble_count += 1;
      }
      report.measured_peak_act_bytes = std::max(
          report.measured_peak_act_bytes, converted.max_peak_act_bytes());
      {
        obs::StepAnatomy anat =
            obs::analyze_step(iter_spans, anatomy_options());
        if (anat.step_index < 0) anat.step_index = iter - 1;
        report.anatomy.push_back(std::move(anat));
      }
      if (i == options.iters - 1) {
        report.timeline = converted;
        report.wire_bytes = res.wire_bytes;
        report.wire_messages = res.wire_messages;
        if (comm::Fabric* fabric = trainer_fabric(*trainer)) {
          pair_stats = fabric->stats_matrix();
          report.max_in_flight = fabric->max_in_flight();
          report.ring_stats = fabric->ring_stats();
          if (fabric->has_fault_plan()) {
            report.fault_stats = fabric->fault_stats();
          }

          // Per-kind wire ledger for the last iteration, against the paper's
          // closed-form volumes when the config sits in the envelope.
          const std::string acct_name = acct_strategy(options.strategy);
          acct::KindVolumes measured = acct::measured_kind_volumes(*fabric);
          acct::KindVolumes predicted;
          if (acct::has_predicted_kind_volumes(acct_name, cfg)) {
            predicted =
                acct::predicted_kind_volumes(acct_name, cfg, report.ranks);
            for (const auto& [kind, kv] : predicted) {
              measured[kind];  // surface predicted-but-unmeasured kinds too
              (void)kv;
            }
          }
          for (const auto& [kind, kv] : measured) {
            ProfileReport::WireKindVolume w;
            w.kind = sched::to_string(kind);
            w.measured_bytes = static_cast<double>(kv.bytes);
            w.measured_messages = static_cast<double>(kv.messages);
            if (auto it = predicted.find(kind); it != predicted.end()) {
              w.predicted_bytes = static_cast<double>(it->second.bytes);
              w.predicted_messages = static_cast<double>(it->second.messages);
            }
            report.wire_kinds.push_back(std::move(w));
          }
        }
      }
      report.spans.insert(report.spans.end(),
                          std::make_move_iterator(iter_spans.begin()),
                          std::make_move_iterator(iter_spans.end()));
    }
    recorder.uninstall();
    report.pool_stats =
        pool_stats_delta(pool_before, ThreadPool::global().stats());

    sched::Program predicted_program;
    if (derive_predicted_program(options, report.spans, options.iters,
                                 &predicted_program)) {
      const sim::SimResult predicted =
          sim::simulate(predicted_program, ideal_topology(report.ranks));
      report.predicted_step_seconds = predicted.makespan;
      report.predicted_bubble = predicted.bubble_ratio();
      const analysis::AnalysisReport analyzed =
          analysis::analyze(predicted_program);
      if (!analyzed.deadlocked) {
        report.static_peak_bound_bytes = 0.0;
        for (double b : analyzed.static_peak_bytes) {
          report.static_peak_bound_bytes =
              std::max(report.static_peak_bound_bytes, b);
        }
      }
    }
  }

  // Final ledger snapshot: the trainer (if any) is destroyed by now, so live
  // deltas show post-teardown residue (≈0 when nothing leaked) while peaks
  // capture the in-flight footprint.
  {
    const obs::LedgerSnapshot snap = ledger.snapshot();
    for (int k = 0; k < obs::kNumMemKinds; ++k) {
      ProfileReport::LedgerKindPeak entry;
      entry.kind = obs::to_string(static_cast<obs::MemKind>(k));
      entry.live_bytes = static_cast<double>(std::max<std::int64_t>(
          0, snap.kinds[k].live_bytes - ledger_baseline.kinds[k].live_bytes));
      entry.peak_bytes = static_cast<double>(std::max<std::int64_t>(
          0, snap.kinds[k].peak_bytes - ledger_baseline.kinds[k].live_bytes));
      report.ledger_kinds.push_back(std::move(entry));
    }
    report.measured_peak_footprint_bytes =
        static_cast<double>(std::max<std::int64_t>(
            0, snap.total_peak_bytes - ledger_baseline.total_live_bytes));
    report.max_rank_peak_footprint_bytes =
        static_cast<double>(snap.max_rank_peak_bytes);
  }
  ledger.set_enabled(ledger_was_enabled);

  report.measured_step_seconds /= static_cast<double>(options.iters);
  if (bubble_count > 0) {
    bubble_sum /= static_cast<double>(bubble_count);
    report.measured_bubble = bubble_sum;
  }
  report.dropped_spans = recorder.dropped();
  report.dropped_by_rank = recorder.dropped_by_rank();

  report.trace_json = obs::spans_to_chrome_trace(report.spans);
  obs::MetricsRegistry registry;
  fill_metrics(registry, report, pair_stats);
  report.metrics_json = registry.to_json();
  return report;
}

}  // namespace weipipe::prof
