// Profiling harness: runs a strategy on the real execution engine with the
// span recorder installed, aggregates the measured spans into metrics, and
// closes the loop against the static stack — measured bubble/step time vs
// the discrete-event simulator's prediction, measured peak activation bytes
// vs the analyzer's static bound.
//
// Two execution paths, selected by strategy name:
//  * trainer-backed (sequential, weipipe, weipipe-naive, 1f1b, gpipe, fsdp):
//    instruments a real training loop (real tensors, real loss). Predictions
//    are derived by fitting sched::StrategyCosts to the measured spans and
//    simulating the matching schedule on an ideal topology.
//  * schedule-backed (wzb1, wzb2, zb1, zb2, naive, interleave, no-prefetch):
//    builds the sched::Program with synthetic costs (T_F = unit_seconds,
//    T_B = ratio * unit) and executes it on the real fabric via
//    sim::run_program. Here prediction and measurement share the exact same
//    program, so the comparison isolates engine-model fidelity.
//
// `weipipe_cli profile` is a thin wrapper over run_profile(); tests drive it
// directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/fabric.hpp"
#include "comm/fault.hpp"
#include "common/thread_pool.hpp"
#include "core/trainer.hpp"
#include "obs/critpath.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"
#include "sim/engine.hpp"

namespace weipipe::prof {

struct ProfileOptions {
  std::string strategy = "wzb2";
  std::int64_t workers = 4;
  std::int64_t iters = 2;         // measured iterations
  std::int64_t warmup_iters = 1;  // untraced warmup iterations

  // Schedule-backed strategies only:
  std::int64_t rounds = 2;     // microbatch rounds (N = rounds * workers)
  double bwd_ratio = 2.0;      // T_B / T_F
  double unit_seconds = 2e-3;  // wall seconds per modeled T_F unit
  // Modeled bytes per circulating weight chunk / per-chunk activation —
  // shipped for real by the runner, so keep them modest.
  double chunk_bytes = 1 << 16;
  double act_bytes = 1 << 20;

  // Trainer-backed strategies only: the model/run configuration.
  TrainConfig train;

  // Trainer-backed only: fault-plan spec (comm/fault.hpp grammar) installed
  // into the trainer's fabric for the measured iterations; empty = perfect
  // network. Seeded with train.seed. Injected faults surface as kFault
  // spans in the trace and fault.* counters in the metrics snapshot.
  std::string fault_spec;

  // Recorder configuration.
  std::size_t ring_capacity = 1 << 16;
  bool record_kernels = false;
};

struct ProfileReport {
  std::string strategy;
  std::int64_t ranks = 0;
  std::int64_t iters = 0;
  bool schedule_backed = false;  // executed via sim::run_program

  // Measured over the traced iterations.
  double measured_step_seconds = 0.0;  // mean iteration wall time
  double measured_bubble = -1.0;       // 1 - busy / (ranks * makespan)
  double measured_peak_act_bytes = 0.0;
  std::uint64_t wire_bytes = 0;     // last iteration
  std::uint64_t wire_messages = 0;  // last iteration
  std::uint64_t max_in_flight = 0;  // last iteration, max over pairs
  // Lock-free transport counters since fabric construction (trainer-backed
  // strategies only): receiver spin/park split, producer notifies, ring
  // overflow spills. Surfaces as the fabric.ring.* metrics.
  comm::RingStats ring_stats;
  std::uint64_t dropped_spans = 0;  // ring overflow (nonzero = trace gaps)
  // dropped_spans broken down by producer ring (rank -1 = unranked
  // threads); only rings that lost spans appear. Surfaces as the
  // obs.spans.dropped.rank.<r> metrics so lossy traces name the rank.
  std::vector<obs::Recorder::RankDropped> dropped_by_rank;

  // Fault injection (only when ProfileOptions::fault_spec was set).
  bool fault_injected = false;
  comm::FaultStats fault_stats;
  int fault_recoveries = 0;  // step-boundary rollbacks (stall plans)

  // Predictions; negative = unavailable for this strategy.
  double predicted_step_seconds = -1.0;  // engine makespan, ideal topology
  double predicted_bubble = -1.0;
  double static_peak_bound_bytes = -1.0;  // analyzer max per-rank bound

  // Full-footprint memory ledger (obs/ledger.hpp), enabled for the run's
  // duration. Peaks are deltas over the pre-run live baseline, so residue
  // from earlier runs in the same process does not smear the numbers.
  struct LedgerKindPeak {
    std::string kind;         // obs::to_string(MemKind)
    double live_bytes = 0.0;  // residual after teardown (≈0 = leak-free)
    double peak_bytes = 0.0;
  };
  std::vector<LedgerKindPeak> ledger_kinds;
  double measured_peak_footprint_bytes = -1.0;  // all categories, all ranks
  double max_rank_peak_footprint_bytes = -1.0;  // worst single rank bucket
  // Parameter-derived static bounds, summed over ranks (trainer-backed
  // only; see acct::static_footprint_bounds). Negative = unavailable.
  double static_weights_bound_bytes = -1.0;
  double static_grads_bound_bytes = -1.0;
  double static_optimizer_bound_bytes = -1.0;

  // Per-MsgKind wire ledger over the last measured iteration (trainer-backed
  // only), against the paper's closed-form volumes when the config sits in
  // the analytical envelope (negative predicted = unavailable).
  struct WireKindVolume {
    std::string kind;  // sched::to_string(MsgKind)
    double measured_bytes = 0.0;
    double measured_messages = 0.0;
    double predicted_bytes = -1.0;
    double predicted_messages = -1.0;
  };
  std::vector<WireKindVolume> wire_kinds;

  // Every span from the traced iterations (trace_json renders these), and
  // the last iteration converted to the simulator's record shape (feeds the
  // ASCII timeline / SVG renderers).
  std::vector<obs::Span> spans;
  sim::SimResult timeline;

  // Critical-path anatomy per measured iteration (obs/critpath.hpp): where
  // every nanosecond of the step went, with exposed wire split by MsgKind.
  // The mean exposed_comm_fraction is the measured counterpart of
  // predicted_bubble.
  std::vector<obs::StepAnatomy> anatomy;
  double mean_exposed_comm_fraction() const {
    if (anatomy.empty()) return -1.0;
    double sum = 0.0;
    for (const obs::StepAnatomy& a : anatomy) {
      sum += a.exposed_comm_fraction();
    }
    return sum / static_cast<double>(anatomy.size());
  }

  std::string trace_json;    // Chrome trace-event JSON (Perfetto-loadable)
  std::string metrics_json;  // obs::MetricsRegistry snapshot

  // Global thread-pool dispatch-arena counters, as a delta over the measured
  // iterations (kernel parallelism: chunked dispatches vs serial fallbacks,
  // worker-claimed chunk count).
  ThreadPoolStats pool_stats;

  // Convenience deltas; meaningful only when the prediction exists.
  double bubble_error() const {
    return (predicted_bubble < 0.0 || measured_bubble < 0.0)
               ? -1.0
               : measured_bubble - predicted_bubble;
  }

  // One-screen human-readable report (measured vs predicted vs static).
  std::string summary() const;
};

// True if `name` runs a real trainer (vs a schedule-only program).
bool is_trainer_strategy(const std::string& name);

// Every strategy name run_profile accepts.
std::vector<std::string> profile_strategies();

// Runs the profile. Installs its own obs::Recorder for the duration; throws
// weipipe::Error if another recorder is already installed or the strategy is
// unknown.
ProfileReport run_profile(const ProfileOptions& options);

}  // namespace weipipe::prof
