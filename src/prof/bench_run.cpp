#include "prof/bench_run.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/check.hpp"
#include "obs/json.hpp"
#include "prof/profile.hpp"
#include "sim/cost_model.hpp"

namespace weipipe::prof {

namespace {

// The canonical bench model: small enough that the full matrix runs in
// seconds, large enough that every chunk carries real layers at 8 ranks.
TrainConfig bench_config(bool recompute) {
  TrainConfig cfg;
  cfg.model.vocab_size = 64;
  cfg.model.dim = 32;
  cfg.model.n_heads = 4;
  cfg.model.n_layers = 8;
  cfg.model.seq_len = 16;
  cfg.model.recompute = recompute;
  cfg.num_microbatches = 8;
  cfg.microbatch_size = 2;
  cfg.seq_len = 16;
  cfg.seed = 1234;
  return cfg;
}

// Model FLOPs per iteration (all N microbatches): forward + 2x backward,
// plus one re-forward when recomputing. Uses the same per-layer accounting
// as the simulator's cost model.
double iteration_flops(const TrainConfig& cfg) {
  sim::ModelDims dims;
  dims.hidden = cfg.model.dim;
  dims.seq = cfg.seq_len;
  dims.microbatch = cfg.microbatch_size;
  dims.layers = cfg.model.n_layers;
  dims.heads = cfg.model.n_heads;
  dims.vocab = cfg.model.vocab_size;
  const sim::CostModel cost(dims, sim::GpuSpec{}, sim::ExecPolicy{});
  const double fwd = static_cast<double>(cfg.model.n_layers) *
                         cost.fwd_flops_layer() +
                     cost.head_flops();
  const double factor = cfg.model.recompute ? 4.0 : 3.0;
  return static_cast<double>(cfg.num_microbatches) * fwd * factor;
}

std::string case_key(const std::string& strategy, std::int64_t ranks,
                     bool recompute) {
  std::ostringstream oss;
  oss << strategy << "/p" << ranks << (recompute ? "/recompute" : "/full");
  return oss.str();
}

double field(const obs::JsonValue& obj, const std::string& key,
             double fallback) {
  const obs::JsonValue* v = obj.find(key);
  return (v != nullptr && v->type == obs::JsonValue::Type::kNumber)
             ? v->number
             : fallback;
}

}  // namespace

std::vector<BenchCase> canonical_bench_cases(bool smoke) {
  std::vector<BenchCase> cases;
  for (const bool recompute : {false, true}) {
    cases.push_back({"sequential", 1, recompute});
    for (const char* strategy : {"weipipe", "1f1b", "fsdp"}) {
      cases.push_back({strategy, 4, recompute});
      if (!smoke) {
        cases.push_back({strategy, 8, recompute});
      }
    }
  }
  return cases;
}

BenchReport run_bench(const BenchOptions& options) {
  BenchReport report;
  report.smoke = options.smoke;
  report.iters = options.smoke ? 1 : options.iters;
  report.warmup_iters = options.smoke ? 0 : options.warmup_iters;

  for (const BenchCase& c : canonical_bench_cases(options.smoke)) {
    ProfileOptions popt;
    popt.strategy = c.strategy;
    popt.workers = c.ranks;
    popt.iters = report.iters;
    popt.warmup_iters = report.warmup_iters;
    popt.train = bench_config(c.recompute);
    const ProfileReport prof = run_profile(popt);

    BenchCaseResult r;
    r.strategy = c.strategy;
    r.ranks = c.ranks;
    r.recompute = c.recompute;
    r.step_seconds = prof.measured_step_seconds;
    if (prof.measured_step_seconds > 0.0) {
      r.gflops = iteration_flops(popt.train) / prof.measured_step_seconds /
                 1e9;
    }
    r.measured_peak_footprint_bytes = prof.measured_peak_footprint_bytes;
    r.max_rank_peak_footprint_bytes = prof.max_rank_peak_footprint_bytes;
    if (prof.static_weights_bound_bytes >= 0.0) {
      r.static_bound_total_bytes = prof.static_weights_bound_bytes +
                                   prof.static_grads_bound_bytes +
                                   prof.static_optimizer_bound_bytes;
    }
    r.static_act_bound_bytes = prof.static_peak_bound_bytes;
    for (const ProfileReport::WireKindVolume& w : prof.wire_kinds) {
      r.wire.push_back({w.kind, w.measured_bytes, w.measured_messages,
                        w.predicted_bytes, w.predicted_messages});
    }
    report.cases.push_back(std::move(r));
  }
  return report;
}

std::string bench_report_to_json(const BenchReport& report) {
  std::string out;
  out += "{\n";
  out += "  \"schema_version\": " + std::to_string(report.schema_version) +
         ",\n";
  out += std::string("  \"smoke\": ") + (report.smoke ? "true" : "false") +
         ",\n";
  out += "  \"iters\": " + std::to_string(report.iters) + ",\n";
  out += "  \"warmup_iters\": " + std::to_string(report.warmup_iters) + ",\n";
  out += "  \"cases\": [\n";
  for (std::size_t i = 0; i < report.cases.size(); ++i) {
    const BenchCaseResult& c = report.cases[i];
    out += "    {\n      \"strategy\": ";
    obs::append_json_string(out, c.strategy);
    out += ",\n      \"ranks\": " + std::to_string(c.ranks);
    out += std::string(",\n      \"recompute\": ") +
           (c.recompute ? "true" : "false");
    out += ",\n      \"step_seconds\": " + obs::json_number(c.step_seconds);
    out += ",\n      \"gflops\": " + obs::json_number(c.gflops);
    out += ",\n      \"measured_peak_footprint_bytes\": " +
           obs::json_number(c.measured_peak_footprint_bytes);
    out += ",\n      \"max_rank_peak_footprint_bytes\": " +
           obs::json_number(c.max_rank_peak_footprint_bytes);
    out += ",\n      \"static_bound_total_bytes\": " +
           obs::json_number(c.static_bound_total_bytes);
    out += ",\n      \"static_act_bound_bytes\": " +
           obs::json_number(c.static_act_bound_bytes);
    out += ",\n      \"wire\": [";
    for (std::size_t j = 0; j < c.wire.size(); ++j) {
      const BenchWireKind& w = c.wire[j];
      out += j == 0 ? "\n" : ",\n";
      out += "        {\"kind\": ";
      obs::append_json_string(out, w.kind);
      out += ", \"measured_bytes\": " + obs::json_number(w.measured_bytes);
      out += ", \"measured_messages\": " +
             obs::json_number(w.measured_messages);
      out += ", \"predicted_bytes\": " + obs::json_number(w.predicted_bytes);
      out += ", \"predicted_messages\": " +
             obs::json_number(w.predicted_messages);
      out += "}";
    }
    out += c.wire.empty() ? "]" : "\n      ]";
    out += "\n    }";
    out += i + 1 < report.cases.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::vector<std::string> compare_trajectories(const std::string& baseline_json,
                                              const std::string& candidate_json,
                                              const CompareThresholds& thr) {
  std::vector<std::string> regressions;
  const obs::JsonParseResult base = obs::parse_json(baseline_json);
  const obs::JsonParseResult cand = obs::parse_json(candidate_json);
  if (!base.ok) {
    regressions.push_back("baseline: JSON parse error: " + base.error);
    return regressions;
  }
  if (!cand.ok) {
    regressions.push_back("candidate: JSON parse error: " + cand.error);
    return regressions;
  }
  const double base_schema = field(base.value, "schema_version", -1.0);
  const double cand_schema = field(cand.value, "schema_version", -1.0);
  if (base_schema != kBenchSchemaVersion ||
      cand_schema != kBenchSchemaVersion) {
    std::ostringstream oss;
    oss << "schema_version mismatch: baseline " << base_schema
        << ", candidate " << cand_schema << ", expected "
        << kBenchSchemaVersion;
    regressions.push_back(oss.str());
    return regressions;
  }

  // Index each document's cases by (strategy, ranks, recompute).
  const auto index = [](const obs::JsonValue& doc) {
    std::map<std::string, const obs::JsonValue*> by_key;
    if (const obs::JsonValue* cases = doc.find("cases");
        cases != nullptr && cases->is_array()) {
      for (const obs::JsonValue& c : cases->array) {
        if (!c.is_object()) continue;
        const obs::JsonValue* strategy = c.find("strategy");
        const obs::JsonValue* recompute = c.find("recompute");
        if (strategy == nullptr) continue;
        by_key[case_key(
            strategy->as_string(),
            static_cast<std::int64_t>(field(c, "ranks", 0.0)),
            recompute != nullptr && recompute->boolean)] = &c;
      }
    }
    return by_key;
  };
  const auto base_cases = index(base.value);
  const auto cand_cases = index(cand.value);

  std::size_t overlap = 0;
  for (const auto& [key, cand_case] : cand_cases) {
    const auto it = base_cases.find(key);
    if (it == base_cases.end()) continue;
    ++overlap;
    const obs::JsonValue& b = *it->second;
    const obs::JsonValue& c = *cand_case;

    const double b_step = field(b, "step_seconds", -1.0);
    const double c_step = field(c, "step_seconds", -1.0);
    if (b_step > 0.0 && c_step > b_step * (1.0 + thr.step_rel)) {
      std::ostringstream oss;
      oss << key << ": step_seconds regressed " << b_step << " -> " << c_step
          << " (tolerance +" << thr.step_rel * 100.0 << "%)";
      regressions.push_back(oss.str());
    }

    const double b_mem = field(b, "measured_peak_footprint_bytes", -1.0);
    const double c_mem = field(c, "measured_peak_footprint_bytes", -1.0);
    if (b_mem > 0.0 && c_mem > b_mem * (1.0 + thr.mem_rel)) {
      std::ostringstream oss;
      oss << key << ": peak footprint regressed " << b_mem << " -> " << c_mem
          << " bytes (tolerance +" << thr.mem_rel * 100.0 << "%)";
      regressions.push_back(oss.str());
    }

    // Wire bytes are deterministic: compare per-kind against the baseline
    // and against the candidate's own closed-form prediction.
    std::map<std::string, double> base_wire;
    if (const obs::JsonValue* wire = b.find("wire");
        wire != nullptr && wire->is_array()) {
      for (const obs::JsonValue& w : wire->array) {
        if (const obs::JsonValue* kind = w.find("kind")) {
          base_wire[kind->as_string()] = field(w, "measured_bytes", -1.0);
        }
      }
    }
    if (const obs::JsonValue* wire = c.find("wire");
        wire != nullptr && wire->is_array()) {
      for (const obs::JsonValue& w : wire->array) {
        const obs::JsonValue* kind = w.find("kind");
        if (kind == nullptr) continue;
        const double measured = field(w, "measured_bytes", -1.0);
        if (const auto bw = base_wire.find(kind->as_string());
            bw != base_wire.end() && bw->second >= 0.0 && measured >= 0.0) {
          const double rel = std::abs(measured - bw->second) /
                             std::max(bw->second, 1.0);
          if (rel > thr.wire_rel) {
            std::ostringstream oss;
            oss << key << ": wire." << kind->as_string() << " bytes changed "
                << bw->second << " -> " << measured << " (tolerance "
                << thr.wire_rel * 100.0 << "%)";
            regressions.push_back(oss.str());
          }
        }
        const double predicted = field(w, "predicted_bytes", -1.0);
        if (predicted >= 0.0 && measured >= 0.0 && measured != predicted) {
          std::ostringstream oss;
          oss << key << ": wire." << kind->as_string() << " measured "
              << measured << " != closed-form " << predicted;
          regressions.push_back(oss.str());
        }
      }
    }
  }

  if (overlap == 0) {
    regressions.push_back(
        "no overlapping cases between baseline and candidate (nothing was "
        "compared)");
  }
  return regressions;
}

}  // namespace weipipe::prof
