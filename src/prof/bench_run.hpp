// Bench trajectory harness: runs a canonical strategy matrix through
// run_profile and emits one schema-versioned JSON document per run —
// step time, GFLOP/s, per-MsgKind wire bytes against the closed forms,
// and the ledger's full-footprint peak against the static bounds.
//
// The intent is a *trajectory*: each PR appends/refreshes
// artifacts/BENCH_trajectory.json, and tools/bench_compare diffs two such
// files with per-metric thresholds so CI catches perf and footprint
// regressions (and any measured-vs-predicted wire drift, which is exact
// by construction) without anyone eyeballing tables.
//
// `weipipe_cli bench` is a thin wrapper over run_bench(); tests and the
// compare gate drive compare_trajectories() directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace weipipe::prof {

// Bumped whenever the JSON layout changes incompatibly; bench_compare
// refuses to diff mismatched versions.
inline constexpr int kBenchSchemaVersion = 1;

struct BenchOptions {
  bool smoke = false;             // trimmed matrix (4-rank cases, 1 iter)
  std::int64_t iters = 2;         // measured iterations per case
  std::int64_t warmup_iters = 1;  // untimed warmup per case
};

// One (strategy, ranks, recompute) point of the canonical matrix.
struct BenchCase {
  std::string strategy;
  std::int64_t ranks = 1;
  bool recompute = false;
};

struct BenchWireKind {
  std::string kind;  // sched::to_string(MsgKind)
  double measured_bytes = 0.0;
  double measured_messages = 0.0;
  double predicted_bytes = -1.0;  // negative = no closed form
  double predicted_messages = -1.0;
};

struct BenchCaseResult {
  std::string strategy;
  std::int64_t ranks = 1;
  bool recompute = false;

  double step_seconds = 0.0;  // mean measured iteration wall time
  double gflops = 0.0;        // model FLOPs / step_seconds / 1e9

  // Ledger full-footprint peak (all categories, all ranks) and the static
  // bounds it closes against.
  double measured_peak_footprint_bytes = 0.0;
  double max_rank_peak_footprint_bytes = 0.0;
  double static_bound_total_bytes = -1.0;  // weights + grads + optimizer
  double static_act_bound_bytes = -1.0;    // analyzer per-rank activation max

  std::vector<BenchWireKind> wire;
};

struct BenchReport {
  int schema_version = kBenchSchemaVersion;
  bool smoke = false;
  std::int64_t iters = 0;
  std::int64_t warmup_iters = 0;
  std::vector<BenchCaseResult> cases;
};

// The canonical matrix: sequential at 1 rank plus {weipipe, 1f1b, fsdp} at
// {4, 8} ranks (smoke: 4 only), each with and without recomputation, over a
// fixed small model (deterministic seed).
std::vector<BenchCase> canonical_bench_cases(bool smoke);

// Runs every case through run_profile. Each case takes well under a second
// at the canonical model size.
BenchReport run_bench(const BenchOptions& options);

// Serializes a report to the trajectory JSON document (ends with '\n').
std::string bench_report_to_json(const BenchReport& report);

// Per-metric relative regression thresholds for compare_trajectories.
// Wall-time metrics are noisy; wire bytes are deterministic and compared
// exactly by default.
struct CompareThresholds {
  double step_rel = 0.5;  // candidate step time may exceed baseline by 50%
  double mem_rel = 0.25;  // footprint peak may exceed baseline by 25%
  double wire_rel = 0.0;  // wire bytes must match exactly

  // Smoke runs measure one iteration on shared CI runners: wide timing
  // slack, but wire bytes stay exact.
  static CompareThresholds smoke() { return {3.0, 0.5, 0.0}; }
};

// Diffs two trajectory JSON documents over their overlapping cases (keyed by
// strategy/ranks/recompute). Returns one human-readable line per regression;
// empty = pass. Parse failures, schema mismatches, and an empty case
// intersection are reported as regressions rather than silently passing.
// Also cross-checks each candidate case's measured wire bytes against its
// own recorded closed-form prediction.
std::vector<std::string> compare_trajectories(const std::string& baseline_json,
                                              const std::string& candidate_json,
                                              const CompareThresholds& thr);

}  // namespace weipipe::prof
