// Chaos differ: runs a trainer strategy clean and under a seeded FaultPlan
// and diffs the final weights bitwise.
//
// This is the dynamic counterpart of the static schedule model-checker
// (src/analysis): instead of proving the schedule correct on a perfect
// network, it executes the schedule on a deliberately bad one (delays,
// drops, duplicates, reorders, transient rank stalls — comm/fault.hpp) and
// asserts the result is *exactly* the clean run's, down to the last bit.
// Any tolerated fault must therefore cost latency only; a fault that leaks
// into the numerics (double-accumulated gradient, stale weight version,
// missed rollback) shows up as a bitwise diff, not a statistical wobble.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "core/trainer.hpp"
#include "obs/metrics.hpp"

namespace weipipe::chaos {

struct ChaosConfig {
  std::string strategy = "weipipe";
  TrainConfig train;
  std::int64_t world_size = 4;
  std::int64_t iterations = 2;
  comm::FaultPlan plan;
  // Total tries per iteration when a stall aborts the step (resilience.hpp).
  int max_recovery_attempts = 3;
  // Forked-rank mode: >= 0 captures Trainer::export_rank_state(rank) of
  // both runs into the report, so a rank child can hand its shard to the
  // parent's cross-process differ. -1 (single-process mode) skips capture.
  int capture_rank_state = -1;
  // Fabric recv timeout override for both runs; 0 keeps the fabric default.
  // Mutation tests that deliberately wedge the stream use a short one so
  // the surviving ranks fail fast instead of waiting out the default 60s.
  std::chrono::milliseconds recv_timeout{0};
};

// Location/value of the first bitwise mismatch, for diagnostics.
struct FirstDiff {
  std::size_t block = 0;
  std::size_t index = 0;
  float clean = 0.0f;
  float chaos = 0.0f;
};

struct ChaosReport {
  std::string strategy;
  std::string spec;        // canonical fault-plan spec (comm::to_spec)
  std::uint64_t seed = 0;  // fault-plan seed
  // The chaos run finished all iterations (recoveries included) without an
  // unrecovered error.
  bool completed = false;
  bool bitwise_equal = false;
  std::string error;  // what() of the failure when !completed
  std::size_t blocks = 0;
  std::size_t mismatched_blocks = 0;
  FirstDiff first_diff;        // valid when completed && !bitwise_equal
  double max_abs_diff = 0.0;   // over all weights
  float clean_loss = 0.0f;     // final-iteration mean loss, clean run
  float chaos_loss = 0.0f;     // same, chaos run
  int recoveries = 0;          // rollback + re-run cycles across the run
  comm::FaultStats fault_stats;
  std::vector<comm::FaultEvent> events;  // deterministic order
  // Filled when config.capture_rank_state >= 0: that rank's state blob
  // after the clean and the chaos run (Trainer::export_rank_state).
  std::vector<std::uint8_t> clean_rank_state;
  std::vector<std::uint8_t> chaos_rank_state;

  bool ok() const { return completed && bitwise_equal; }
};

// Runs `strategy` twice on a fresh SyntheticDataset — once clean, once with
// `plan` installed in the trainer's fabric — and compares final weights
// bitwise. A strategy without a fabric (sequential) runs both times clean
// and trivially matches; it stays in the matrix as a control. Throws
// weipipe::Error only for configuration errors (unknown strategy, bad
// shapes); faults during the chaos run are reported, not thrown.
ChaosReport run_chaos(const ChaosConfig& config);

// The parent side of the forked multi-process differ: one clean full-world
// run of config.strategy on the current (typically inproc) transport,
// returning export_rank_state(r) for every rank r — the reference blobs the
// forked rank processes must reproduce bitwise over their real wire.
std::vector<std::vector<std::uint8_t>> run_clean_rank_states(
    const ChaosConfig& config);

std::string report_to_json(const ChaosReport& report);

// Mirrors the fault/retry/redelivery counters into a metrics registry as
// fault.* (the observability contract from docs/FAULTS.md).
void fill_fault_metrics(obs::Registry& registry, const comm::FaultStats& stats);

}  // namespace weipipe::chaos
