// Trainer factory: construct any strategy by name — the entry point CLIs and
// sweep harnesses use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/trainer.hpp"

namespace weipipe {

// Strategy names accepted by make_trainer.
std::vector<std::string> trainer_names();

// Builds a trainer by name: "sequential", "weipipe" / "weipipe-interleave",
// "weipipe-naive", "1f1b", "gpipe", "fsdp". `world` is ignored by
// "sequential". Throws weipipe::Error for unknown names or invalid shapes.
std::unique_ptr<Trainer> make_trainer(const std::string& name,
                                      const TrainConfig& cfg,
                                      std::int64_t world);

}  // namespace weipipe
