#include "baselines/chaos.hpp"

#include <cmath>
#include <cstring>
#include <memory>
#include <sstream>
#include <utility>

#include "baselines/factory.hpp"
#include "comm/fabric.hpp"
#include "common/check.hpp"
#include "core/resilience.hpp"
#include "nn/microbatch.hpp"

namespace weipipe::chaos {

namespace {

struct RunOutcome {
  std::vector<std::vector<float>> weights;
  std::vector<std::uint8_t> rank_state;  // capture_rank_state >= 0 only
  float final_loss = 0.0f;
  int recoveries = 0;
};

RunOutcome run_once(const ChaosConfig& config, const comm::FaultPlan* plan) {
  std::unique_ptr<Trainer> trainer =
      make_trainer(config.strategy, config.train, config.world_size);
  comm::Fabric* fabric = trainer->fabric();
  if (fabric != nullptr && config.recv_timeout.count() > 0) {
    fabric->set_recv_timeout(config.recv_timeout);
  }
  if (plan != nullptr && !plan->empty() && fabric != nullptr) {
    fabric->install_fault_plan(*plan);
  }
  const SyntheticDataset data(config.train.model.vocab_size,
                              config.train.seed);
  RunOutcome out;
  const RecoveryOptions recovery{config.max_recovery_attempts};
  for (std::int64_t iter = 0; iter < config.iterations; ++iter) {
    const RecoveryResult r =
        train_iteration_with_recovery(*trainer, data, iter, recovery);
    out.final_loss = r.result.mean_loss;
    out.recoveries += r.recoveries;
  }
  out.weights = trainer->gather_block_params();
  if (config.capture_rank_state >= 0) {
    out.rank_state = trainer->export_rank_state(config.capture_rank_state);
  }
  return out;
}

}  // namespace

std::vector<std::vector<std::uint8_t>> run_clean_rank_states(
    const ChaosConfig& config) {
  config.train.validate();
  std::unique_ptr<Trainer> trainer =
      make_trainer(config.strategy, config.train, config.world_size);
  const SyntheticDataset data(config.train.model.vocab_size,
                              config.train.seed);
  for (std::int64_t iter = 0; iter < config.iterations; ++iter) {
    trainer->train_iteration(data, iter);
  }
  std::vector<std::vector<std::uint8_t>> states;
  states.reserve(static_cast<std::size_t>(config.world_size));
  for (int r = 0; r < config.world_size; ++r) {
    states.push_back(trainer->export_rank_state(r));
  }
  return states;
}

ChaosReport run_chaos(const ChaosConfig& config) {
  config.train.validate();
  ChaosReport report;
  report.strategy = config.strategy;
  report.spec = comm::to_spec(config.plan);
  report.seed = config.plan.seed;

  const RunOutcome clean = run_once(config, nullptr);
  report.clean_loss = clean.final_loss;
  report.blocks = clean.weights.size();
  report.clean_rank_state = std::move(clean.rank_state);

  // The chaos run is inlined (not run_once) so fault stats and the event log
  // can be harvested from the fabric before the trainer is destroyed — also
  // when an iteration fails.
  std::unique_ptr<Trainer> trainer =
      make_trainer(config.strategy, config.train, config.world_size);
  comm::Fabric* fabric = trainer->fabric();
  if (fabric != nullptr && config.recv_timeout.count() > 0) {
    fabric->set_recv_timeout(config.recv_timeout);
  }
  if (!config.plan.empty() && fabric != nullptr) {
    fabric->install_fault_plan(config.plan);
  }
  const SyntheticDataset data(config.train.model.vocab_size,
                              config.train.seed);
  std::vector<std::vector<float>> chaos_weights;
  try {
    const RecoveryOptions recovery{config.max_recovery_attempts};
    for (std::int64_t iter = 0; iter < config.iterations; ++iter) {
      const RecoveryResult r =
          train_iteration_with_recovery(*trainer, data, iter, recovery);
      report.chaos_loss = r.result.mean_loss;
      report.recoveries += r.recoveries;
    }
    chaos_weights = trainer->gather_block_params();
    if (config.capture_rank_state >= 0) {
      report.chaos_rank_state =
          trainer->export_rank_state(config.capture_rank_state);
    }
    report.completed = true;
  } catch (const Error& e) {
    report.error = e.what();
  }
  if (fabric != nullptr) {
    report.fault_stats = fabric->fault_stats();
    report.events = fabric->fault_events();
  }
  if (!report.completed) {
    return report;
  }

  WEIPIPE_CHECK_MSG(chaos_weights.size() == clean.weights.size(),
                    "chaos run produced " << chaos_weights.size()
                                          << " blocks, clean run "
                                          << clean.weights.size());
  report.bitwise_equal = true;
  bool have_first = false;
  for (std::size_t b = 0; b < clean.weights.size(); ++b) {
    const std::vector<float>& cw = clean.weights[b];
    const std::vector<float>& xw = chaos_weights[b];
    WEIPIPE_CHECK_MSG(cw.size() == xw.size(),
                      "block " << b << " size mismatch: " << cw.size()
                               << " vs " << xw.size());
    if (cw.empty() ||
        std::memcmp(cw.data(), xw.data(), cw.size() * sizeof(float)) == 0) {
      continue;
    }
    report.bitwise_equal = false;
    ++report.mismatched_blocks;
    for (std::size_t i = 0; i < cw.size(); ++i) {
      const double diff = std::abs(static_cast<double>(cw[i]) -
                                   static_cast<double>(xw[i]));
      if (diff > report.max_abs_diff) {
        report.max_abs_diff = diff;
      }
      if (!have_first &&
          std::memcmp(&cw[i], &xw[i], sizeof(float)) != 0) {
        have_first = true;
        report.first_diff = FirstDiff{b, i, cw[i], xw[i]};
      }
    }
  }
  return report;
}

std::string report_to_json(const ChaosReport& report) {
  std::ostringstream oss;
  oss << "{\n";
  oss << "  \"strategy\": \"" << report.strategy << "\",\n";
  oss << "  \"faults\": \"" << report.spec << "\",\n";
  oss << "  \"seed\": " << report.seed << ",\n";
  oss << "  \"ok\": " << (report.ok() ? "true" : "false") << ",\n";
  oss << "  \"completed\": " << (report.completed ? "true" : "false")
      << ",\n";
  oss << "  \"bitwise_equal\": " << (report.bitwise_equal ? "true" : "false")
      << ",\n";
  if (!report.error.empty()) {
    std::string escaped;
    for (char c : report.error) {
      if (c == '"' || c == '\\') {
        escaped.push_back('\\');
      }
      escaped.push_back(c == '\n' ? ' ' : c);
    }
    oss << "  \"error\": \"" << escaped << "\",\n";
  }
  oss << "  \"blocks\": " << report.blocks << ",\n";
  oss << "  \"mismatched_blocks\": " << report.mismatched_blocks << ",\n";
  oss << "  \"max_abs_diff\": " << report.max_abs_diff << ",\n";
  if (report.completed && !report.bitwise_equal) {
    oss << "  \"first_diff\": {\"block\": " << report.first_diff.block
        << ", \"index\": " << report.first_diff.index
        << ", \"clean\": " << report.first_diff.clean
        << ", \"chaos\": " << report.first_diff.chaos << "},\n";
  }
  oss << "  \"clean_loss\": " << report.clean_loss << ",\n";
  oss << "  \"chaos_loss\": " << report.chaos_loss << ",\n";
  oss << "  \"recoveries\": " << report.recoveries << ",\n";
  const comm::FaultStats& fs = report.fault_stats;
  oss << "  \"fault_stats\": {\"delays\": " << fs.delays
      << ", \"drops\": " << fs.drops << ", \"retries\": " << fs.retries
      << ", \"duplicates\": " << fs.duplicates
      << ", \"duplicates_discarded\": " << fs.duplicates_discarded
      << ", \"reorders\": " << fs.reorders << ", \"stalls\": " << fs.stalls
      << ", \"recoveries\": " << fs.recoveries << "},\n";
  oss << "  \"events\": " << comm::fault_events_to_json(report.events);
  oss << "}\n";
  return oss.str();
}

void fill_fault_metrics(obs::Registry& registry,
                        const comm::FaultStats& stats) {
  registry.counter("fault.delays").add(stats.delays);
  registry.counter("fault.drops").add(stats.drops);
  registry.counter("fault.retries").add(stats.retries);
  registry.counter("fault.duplicates").add(stats.duplicates);
  registry.counter("fault.duplicates_discarded")
      .add(stats.duplicates_discarded);
  registry.counter("fault.reorders").add(stats.reorders);
  registry.counter("fault.stalls").add(stats.stalls);
  registry.counter("fault.recoveries").add(stats.recoveries);
}

}  // namespace weipipe::chaos
