#include "baselines/fsdp_trainer.hpp"

#include "comm/collectives.hpp"
#include "common/stopwatch.hpp"
#include "nn/loss.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace weipipe {

FsdpTrainer::FsdpTrainer(const TrainConfig& cfg, std::int64_t num_ranks,
                         FsdpOptions options)
    : cfg_(cfg), p_(num_ranks), opts_(options), model_(cfg.model) {
  cfg_.validate();
  WEIPIPE_CHECK_MSG(p_ >= 2, "FSDP needs >= 2 ranks (use sequential)");
  WEIPIPE_CHECK_MSG(cfg_.num_microbatches % p_ == 0,
                    "N=" << cfg_.num_microbatches
                         << " must divide by P=" << p_);
  chunks_ = model_.make_chunks(p_);
  fabric_ = std::make_unique<comm::Fabric>(static_cast<int>(p_),
                                           opts_.link_model);
  master_ = model_.init_chunk_params(chunks_, cfg_.seed);
  adam_.reserve(chunks_.size());
  for (const ChunkSpec& spec : chunks_) {
    adam_.emplace_back(spec.param_count);
  }
  recharge_ledger();
}

void FsdpTrainer::recharge_ledger() {
  std::int64_t weight_floats = 0;
  for (const auto& m : master_) {
    weight_floats += static_cast<std::int64_t>(m.size());
  }
  std::int64_t adam_floats = 0;
  for (const AdamShard& shard : adam_) {
    adam_floats += 2 * shard.size();
  }
  master_charge_.set(obs::MemKind::kWeights, 4 * weight_floats);
  adam_charge_.set(obs::MemKind::kOptimizer, 4 * adam_floats);
}

IterationResult FsdpTrainer::train_iteration(const Dataset& data,
                                             std::int64_t iter_index) {
  Stopwatch sw;
  obs::SpanScope step_span(obs::SpanKind::kStep, iter_index);
  // Uniform step cadence signal: every strategy bumps the same counter at
  // the same point, so telemetry windows align across strategies.
  obs::runtime_metrics().counter("step.index").increment();
  // Step-cadence heartbeat for the live health plane (obs/health.hpp).
  obs::HealthStepScope health_step(iter_index);
  fabric_->reset_stats();
  std::vector<double> losses(
      static_cast<std::size_t>(cfg_.num_microbatches), 0.0);
  comm::run_workers(*fabric_, [&](int rank, comm::Endpoint& ep) {
    rank_body(rank, ep, data, iter_index, losses);
  });
  IterationResult res;
  double sum = 0.0;
  for (double l : losses) {
    sum += l;
  }
  res.mean_loss =
      static_cast<float>(sum / static_cast<double>(cfg_.num_microbatches));
  res.wall_seconds = sw.seconds();
  res.wire_bytes = fabric_->total_bytes();
  res.wire_messages = fabric_->total_messages();
  return res;
}

void FsdpTrainer::rank_body(int rank, comm::Endpoint& ep,
                            const Dataset& data,
                            std::int64_t iter_index,
                            std::vector<double>& losses) {
  const std::int64_t r = rank;
  const std::int64_t n = cfg_.num_microbatches;
  const std::int64_t local_rounds = n / p_;
  const WirePrecision wp = cfg_.precision.weights;
  const WirePrecision dp = cfg_.precision.weight_grads;

  // Materialize chunk c's (quantized) weights into `buf`, via ring broadcast
  // from the owner. All ranks call this in lockstep.
  obs::MemCharge wbuf_charge;
  auto gather_chunk = [&](std::int64_t c, std::vector<float>& buf) {
    const ChunkSpec& spec = chunks_[static_cast<std::size_t>(c)];
    buf.resize(static_cast<std::size_t>(spec.param_count));
    wbuf_charge.set(obs::MemKind::kWeights,
                    4 * static_cast<std::int64_t>(buf.size()));
    if (c == r) {
      const std::vector<float>& m = master_[static_cast<std::size_t>(c)];
      for (std::size_t i = 0; i < m.size(); ++i) {
        buf[i] = quantize(m[i], wp);
      }
    }
    comm::ring_broadcast(ep, static_cast<int>(c),
                         std::span<float>(buf.data(), buf.size()), wp);
  };

  // Per-chunk local gradient accumulators (partial sums over local mbs).
  std::vector<std::vector<float>> grads(static_cast<std::size_t>(p_));
  std::int64_t grad_floats = 0;
  for (std::int64_t c = 0; c < p_; ++c) {
    grads[static_cast<std::size_t>(c)].assign(
        static_cast<std::size_t>(
            chunks_[static_cast<std::size_t>(c)].param_count),
        0.0f);
    grad_floats += chunks_[static_cast<std::size_t>(c)].param_count;
  }
  obs::MemCharge grads_charge(obs::MemKind::kWeightGrads, 4 * grad_floats);

  std::vector<float> wbuf;
  for (std::int64_t k = 0; k < local_rounds; ++k) {
    const std::int64_t j = k * p_ + r;  // global microbatch index
    const Microbatch mb =
        data.make(iter_index * n + j, cfg_.microbatch_size, cfg_.seq_len);

    // Forward sweep: gather -> compute -> free, chunk by chunk (ZeRO-3).
    obs::MemScope act_scope(obs::MemKind::kActivations);
    std::vector<std::vector<BlockCtx>> ctxs(static_cast<std::size_t>(p_));
    std::int64_t act_resident_bytes = 0;
    Tensor x;
    for (std::int64_t c = 0; c < p_; ++c) {
      gather_chunk(c, wbuf);
      obs::SpanScope fwd_span(obs::SpanKind::kForward, j, c);
      const ChunkSpec& spec = chunks_[static_cast<std::size_t>(c)];
      std::int64_t off = 0;
      for (std::int64_t b = spec.begin; b < spec.end; ++b) {
        const std::int64_t np = model_.block_param_count(b);
        ctxs[static_cast<std::size_t>(c)].emplace_back();
        x = model_.block(b).forward(
            std::span<const float>(wbuf.data() + off,
                                   static_cast<std::size_t>(np)),
            mb, x, ctxs[static_cast<std::size_t>(c)].back(),
            !cfg_.model.recompute);
        off += np;
      }
      if (fwd_span.armed()) {
        std::int64_t delta = 0;
        for (const BlockCtx& ctx : ctxs[static_cast<std::size_t>(c)]) {
          delta += ctx.bytes();
        }
        act_resident_bytes += delta;
        fwd_span.set_bytes(delta);
        fwd_span.set_act_bytes_after(static_cast<double>(act_resident_bytes));
      }
    }
    Tensor d;
    {
      obs::SpanScope loss_span(obs::SpanKind::kLoss, j);
      LossResult lr = cross_entropy_loss(x, mb);
      losses[static_cast<std::size_t>(j)] = lr.loss;
      lr.dlogits.scale_(1.0f / static_cast<float>(n));
      d = std::move(lr.dlogits);
    }

    // Backward sweep: ZeRO-3 gathers every chunk a second time.
    for (std::int64_t c = p_ - 1; c >= 0; --c) {
      gather_chunk(c, wbuf);
      obs::SpanScope bwd_span(obs::SpanKind::kBackward, j, c);
      const ChunkSpec& spec = chunks_[static_cast<std::size_t>(c)];
      std::vector<float>& g = grads[static_cast<std::size_t>(c)];
      for (std::int64_t b = spec.end - 1; b >= spec.begin; --b) {
        const std::int64_t off = model_.block_offset_in_chunk(spec, b);
        const std::int64_t np = model_.block_param_count(b);
        d = model_.block(b).backward(
            std::span<const float>(wbuf.data() + off,
                                   static_cast<std::size_t>(np)),
            mb, ctxs[static_cast<std::size_t>(c)]
                    [static_cast<std::size_t>(b - spec.begin)],
            d,
            std::span<float>(g.data() + off, static_cast<std::size_t>(np)));
      }
      if (bwd_span.armed()) {
        std::int64_t freed = 0;
        for (const BlockCtx& ctx : ctxs[static_cast<std::size_t>(c)]) {
          freed += ctx.bytes();
        }
        act_resident_bytes -= freed;
        bwd_span.set_bytes(-freed);
        bwd_span.set_act_bytes_after(static_cast<double>(act_resident_bytes));
      }
    }
  }

  // Reduce each chunk's gradient to its owner; the owner keeps its shard.
  std::vector<float> own_grad;
  std::vector<float> reduced;
  obs::MemCharge own_grad_charge;
  obs::MemCharge reduced_charge;
  for (std::int64_t c = 0; c < p_; ++c) {
    const std::vector<float>& g = grads[static_cast<std::size_t>(c)];
    reduced.assign(g.size(), 0.0f);
    reduced_charge.set(obs::MemKind::kWeightGrads,
                       4 * static_cast<std::int64_t>(reduced.size()));
    comm::ring_reduce_to_root(
        ep, static_cast<int>(c), std::span<const float>(g.data(), g.size()),
        std::span<float>(reduced.data(), reduced.size()), dp);
    if (c == r) {
      own_grad = reduced;
      own_grad_charge.set(obs::MemKind::kWeightGrads,
                          4 * static_cast<std::int64_t>(own_grad.size()));
    }
  }
  // Global-norm clipping over the *reduced* gradients (what Adam consumes).
  if (cfg_.clip.enabled()) {
    const double local_sq =
        grad_sq_norm(std::span<const float>(own_grad.data(), own_grad.size()));
    const double total_sq = comm::ring_all_reduce_scalar(ep, local_sq);
    const float scale = clip_scale(cfg_.clip, total_sq);
    if (scale != 1.0f) {
      for (float& v : own_grad) {
        v *= scale;
      }
    }
  }
  obs::SpanScope opt_span(obs::SpanKind::kOptimizer, -1, r);
  std::vector<float>& m = master_[static_cast<std::size_t>(r)];
  adam_[static_cast<std::size_t>(r)].step(
      std::span<float>(m.data(), m.size()),
      std::span<const float>(own_grad.data(), own_grad.size()),
      cfg_.adam_for_iteration(iter_index));
}

std::vector<std::vector<float>> FsdpTrainer::gather_block_params() const {
  std::vector<std::vector<float>> out(
      static_cast<std::size_t>(model_.num_blocks()));
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    const ChunkSpec& spec = chunks_[c];
    for (std::int64_t b = spec.begin; b < spec.end; ++b) {
      const std::int64_t off = model_.block_offset_in_chunk(spec, b);
      const std::int64_t np = model_.block_param_count(b);
      out[static_cast<std::size_t>(b)] = std::vector<float>(
          master_[c].begin() + off, master_[c].begin() + off + np);
    }
  }
  return out;
}

TrainerState FsdpTrainer::export_state() const {
  return export_sharded_state(model_, chunks_, master_, adam_);
}

void FsdpTrainer::import_state(const TrainerState& state) {
  import_sharded_state(model_, chunks_, state, master_, adam_);
  recharge_ledger();
}


std::vector<std::uint8_t> FsdpTrainer::export_rank_state(int rank) const {
  // ZeRO-3 ownership: rank r keeps chunk r's master + Adam state.
  const std::size_t s = static_cast<std::size_t>(rank);
  WEIPIPE_CHECK_MSG(rank >= 0 && s < master_.size(),
                    "export_rank_state: rank " << rank << " of "
                                               << master_.size());
  RankStateBlob blob;
  blob.u64(1);
  blob.record(s, adam_[s].step_count(), master_[s],
              adam_[s].first_moment(), adam_[s].second_moment());
  return blob.take();
}
}  // namespace weipipe
