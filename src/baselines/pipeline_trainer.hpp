// Activation-passing pipeline parallelism baselines: GPipe and 1F1B (Dapple),
// the schedules the paper compares against (its Megatron-LM baselines).
//
// Stage s permanently owns chunk s (weights + Adam state); microbatches flow
// through stages; activations (wire precision cfg.precision.activations) and
// activation gradients (.activation_grads) cross the fabric — the volumes
// that blow up with G*S*H and motivate WeiPipe.
#pragma once

#include <memory>

#include "comm/fabric.hpp"
#include "core/checkpoint.hpp"
#include "core/trainer.hpp"
#include "nn/adam.hpp"
#include "nn/model.hpp"
#include "obs/ledger.hpp"

namespace weipipe {

enum class PipelineMode {
  kGPipe,  // all forwards, then all backwards
  k1F1B,   // warmup + steady one-forward-one-backward + drain
};

const char* to_string(PipelineMode mode);

struct PipelineOptions {
  PipelineMode mode = PipelineMode::k1F1B;
  comm::LinkModel link_model = nullptr;
};

class PipelineTrainer final : public Trainer {
 public:
  PipelineTrainer(const TrainConfig& cfg, std::int64_t num_stages,
                  PipelineOptions options = {});

  std::string name() const override { return to_string(opts_.mode); }
  IterationResult train_iteration(const Dataset& data,
                                  std::int64_t iter_index) override;
  std::vector<std::vector<float>> gather_block_params() const override;
  TrainerState export_state() const override;
  void import_state(const TrainerState& state) override;
  std::vector<std::uint8_t> export_rank_state(int rank) const override;

  comm::Fabric* fabric() override { return fabric_.get(); }

 private:
  void stage_body(int rank, comm::Endpoint& ep, const Dataset& data,
                  std::int64_t iter_index, std::vector<double>& losses);

  TrainConfig cfg_;
  std::int64_t p_;
  PipelineOptions opts_;
  Model model_;
  std::vector<ChunkSpec> chunks_;
  std::unique_ptr<comm::Fabric> fabric_;
  std::vector<std::vector<float>> master_;  // [stage]
  std::vector<AdamShard> adam_;             // [stage]
  // Ledger charges for the plain-vector state above.
  obs::MemCharge master_charge_;
  obs::MemCharge adam_charge_;

  void recharge_ledger();
};

}  // namespace weipipe
