#include "baselines/pipeline_trainer.hpp"

#include <algorithm>
#include <map>

#include "comm/collectives.hpp"
#include "common/stopwatch.hpp"
#include "core/wire_tags.hpp"
#include "nn/loss.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace weipipe {

using wire_tags::kTagAct;
using wire_tags::kTagGrad;

namespace {
struct MbCtx {
  Microbatch mb;
  std::vector<BlockCtx> ctxs;  // one per block in this stage's chunk
  Tensor grad_seed;            // last stage only: scaled dlogits
};
}  // namespace

const char* to_string(PipelineMode mode) {
  switch (mode) {
    case PipelineMode::kGPipe: return "gpipe";
    case PipelineMode::k1F1B: return "1f1b";
  }
  return "?";
}

PipelineTrainer::PipelineTrainer(const TrainConfig& cfg,
                                 std::int64_t num_stages,
                                 PipelineOptions options)
    : cfg_(cfg), p_(num_stages), opts_(options), model_(cfg.model) {
  cfg_.validate();
  WEIPIPE_CHECK_MSG(p_ >= 2, "pipeline needs >= 2 stages (use sequential)");
  chunks_ = model_.make_chunks(p_);
  fabric_ = std::make_unique<comm::Fabric>(static_cast<int>(p_),
                                           opts_.link_model);
  master_ = model_.init_chunk_params(chunks_, cfg_.seed);
  adam_.reserve(chunks_.size());
  for (const ChunkSpec& spec : chunks_) {
    adam_.emplace_back(spec.param_count);
  }
  recharge_ledger();
}

void PipelineTrainer::recharge_ledger() {
  std::int64_t weight_floats = 0;
  for (const auto& m : master_) {
    weight_floats += static_cast<std::int64_t>(m.size());
  }
  std::int64_t adam_floats = 0;
  for (const AdamShard& shard : adam_) {
    adam_floats += 2 * shard.size();
  }
  master_charge_.set(obs::MemKind::kWeights, 4 * weight_floats);
  adam_charge_.set(obs::MemKind::kOptimizer, 4 * adam_floats);
}

IterationResult PipelineTrainer::train_iteration(const Dataset& data,
                                                 std::int64_t iter_index) {
  Stopwatch sw;
  obs::SpanScope step_span(obs::SpanKind::kStep, iter_index);
  // Uniform step cadence signal: every strategy bumps the same counter at
  // the same point, so telemetry windows align across strategies.
  obs::runtime_metrics().counter("step.index").increment();
  // Step-cadence heartbeat for the live health plane (obs/health.hpp).
  obs::HealthStepScope health_step(iter_index);
  fabric_->reset_stats();
  std::vector<double> losses(
      static_cast<std::size_t>(cfg_.num_microbatches), 0.0);
  comm::run_workers(*fabric_, [&](int rank, comm::Endpoint& ep) {
    stage_body(rank, ep, data, iter_index, losses);
  });
  IterationResult res;
  double sum = 0.0;
  for (double l : losses) {
    sum += l;
  }
  res.mean_loss =
      static_cast<float>(sum / static_cast<double>(cfg_.num_microbatches));
  res.wall_seconds = sw.seconds();
  res.wire_bytes = fabric_->total_bytes();
  res.wire_messages = fabric_->total_messages();
  return res;
}

void PipelineTrainer::stage_body(int rank, comm::Endpoint& ep,
                                 const Dataset& data,
                                 std::int64_t iter_index,
                                 std::vector<double>& losses) {
  const std::int64_t s = rank;
  const std::int64_t n = cfg_.num_microbatches;
  const ChunkSpec& spec = chunks_[static_cast<std::size_t>(s)];
  const bool first = s == 0;
  const bool last = s == p_ - 1;
  const std::int64_t rows = cfg_.microbatch_size * cfg_.seq_len;
  const std::int64_t H = cfg_.model.dim;

  // Stage compute weights: quantized copy of the fp32 master (mixed
  // precision emulation; identity in fp32 mode).
  const std::vector<float>& m = master_[static_cast<std::size_t>(s)];
  std::vector<float> w(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    w[i] = quantize(m[i], cfg_.precision.weights);
  }
  std::vector<float> grads(m.size(), 0.0f);
  obs::MemCharge w_charge(obs::MemKind::kWeights,
                          4 * static_cast<std::int64_t>(w.size()));
  obs::MemCharge grads_charge(obs::MemKind::kWeightGrads,
                              4 * static_cast<std::int64_t>(grads.size()));

  std::map<std::int64_t, MbCtx> inflight;
  // Resident saved-activation bytes on this stage (tracked while tracing).
  std::int64_t act_resident_bytes = 0;

  auto forward_mb = [&](std::int64_t j) {
    obs::MemScope act_scope(obs::MemKind::kActivations);
    MbCtx st;
    st.mb = data.make(iter_index * n + j, cfg_.microbatch_size, cfg_.seq_len);
    Tensor x;
    if (!first) {
      x = Tensor({rows, H});
      ep.recv_floats(static_cast<int>(s - 1), kTagAct, x.span(),
                     cfg_.precision.activations);
    }
    st.ctxs.clear();
    std::int64_t off = 0;
    {
      obs::SpanScope fwd_span(obs::SpanKind::kForward, j, s);
      for (std::int64_t b = spec.begin; b < spec.end; ++b) {
        const std::int64_t np = model_.block_param_count(b);
        st.ctxs.emplace_back();
        x = model_.block(b).forward(
            std::span<const float>(w.data() + off,
                                   static_cast<std::size_t>(np)),
            st.mb, x, st.ctxs.back(), !cfg_.model.recompute);
        off += np;
      }
      if (fwd_span.armed()) {
        std::int64_t delta = 0;
        for (const BlockCtx& ctx : st.ctxs) {
          delta += ctx.bytes();
        }
        act_resident_bytes += delta;
        fwd_span.set_bytes(delta);
        fwd_span.set_act_bytes_after(static_cast<double>(act_resident_bytes));
      }
    }
    if (last) {
      obs::SpanScope loss_span(obs::SpanKind::kLoss, j, s);
      LossResult lr = cross_entropy_loss(x, st.mb);
      losses[static_cast<std::size_t>(j)] = lr.loss;
      lr.dlogits.scale_(1.0f / static_cast<float>(n));
      st.grad_seed = std::move(lr.dlogits);
    } else {
      ep.send_floats(static_cast<int>(s + 1), kTagAct, x.span(),
                     cfg_.precision.activations);
    }
    inflight.emplace(j, std::move(st));
  };

  auto backward_mb = [&](std::int64_t j) {
    obs::MemScope act_scope(obs::MemKind::kActivations);
    auto it = inflight.find(j);
    WEIPIPE_CHECK(it != inflight.end());
    MbCtx& st = it->second;
    Tensor d;
    if (last) {
      d = std::move(st.grad_seed);
    } else {
      d = Tensor({rows, H});
      ep.recv_floats(static_cast<int>(s + 1), kTagGrad, d.span(),
                     cfg_.precision.activation_grads);
    }
    {
      obs::SpanScope bwd_span(obs::SpanKind::kBackward, j, s);
      for (std::int64_t b = spec.end - 1; b >= spec.begin; --b) {
        const std::int64_t off = model_.block_offset_in_chunk(spec, b);
        const std::int64_t np = model_.block_param_count(b);
        d = model_.block(b).backward(
            std::span<const float>(w.data() + off,
                                   static_cast<std::size_t>(np)),
            st.mb, st.ctxs[static_cast<std::size_t>(b - spec.begin)], d,
            std::span<float>(grads.data() + off,
                             static_cast<std::size_t>(np)));
      }
      if (bwd_span.armed()) {
        std::int64_t freed = 0;
        for (const BlockCtx& ctx : st.ctxs) {
          freed += ctx.bytes();
        }
        act_resident_bytes -= freed;
        bwd_span.set_bytes(-freed);
        bwd_span.set_act_bytes_after(static_cast<double>(act_resident_bytes));
      }
    }
    if (!first) {
      ep.send_floats(static_cast<int>(s - 1), kTagGrad, d.span(),
                     cfg_.precision.activation_grads);
    }
    inflight.erase(it);
  };

  if (opts_.mode == PipelineMode::kGPipe) {
    for (std::int64_t j = 0; j < n; ++j) {
      forward_mb(j);
    }
    for (std::int64_t j = 0; j < n; ++j) {
      backward_mb(j);
    }
  } else {
    // 1F1B: stage s runs (P-1-s) warmup forwards, then alternates.
    const std::int64_t warmup = std::min(p_ - 1 - s, n);
    std::int64_t f = 0;
    std::int64_t b = 0;
    for (std::int64_t i = 0; i < warmup; ++i) {
      forward_mb(f++);
    }
    while (f < n) {
      forward_mb(f++);
      backward_mb(b++);
    }
    while (b < n) {
      backward_mb(b++);
    }
  }
  WEIPIPE_CHECK(inflight.empty());

  if (cfg_.clip.enabled()) {
    const double local_sq =
        grad_sq_norm(std::span<const float>(grads.data(), grads.size()));
    const double total_sq = comm::ring_all_reduce_scalar(ep, local_sq);
    const float scale = clip_scale(cfg_.clip, total_sq);
    if (scale != 1.0f) {
      for (float& v : grads) {
        v *= scale;
      }
    }
  }
  obs::SpanScope opt_span(obs::SpanKind::kOptimizer, -1, s);
  adam_[static_cast<std::size_t>(s)].step(
      std::span<float>(master_[static_cast<std::size_t>(s)].data(),
                       master_[static_cast<std::size_t>(s)].size()),
      std::span<const float>(grads.data(), grads.size()),
      cfg_.adam_for_iteration(iter_index));
}

std::vector<std::vector<float>> PipelineTrainer::gather_block_params() const {
  std::vector<std::vector<float>> out(
      static_cast<std::size_t>(model_.num_blocks()));
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    const ChunkSpec& spec = chunks_[c];
    for (std::int64_t b = spec.begin; b < spec.end; ++b) {
      const std::int64_t off = model_.block_offset_in_chunk(spec, b);
      const std::int64_t np = model_.block_param_count(b);
      out[static_cast<std::size_t>(b)] = std::vector<float>(
          master_[c].begin() + off, master_[c].begin() + off + np);
    }
  }
  return out;
}

TrainerState PipelineTrainer::export_state() const {
  return export_sharded_state(model_, chunks_, master_, adam_);
}

void PipelineTrainer::import_state(const TrainerState& state) {
  import_sharded_state(model_, chunks_, state, master_, adam_);
  recharge_ledger();
}


std::vector<std::uint8_t> PipelineTrainer::export_rank_state(
    int rank) const {
  // Stage `rank` permanently owns chunk `rank`.
  const std::size_t s = static_cast<std::size_t>(rank);
  WEIPIPE_CHECK_MSG(rank >= 0 && s < master_.size(),
                    "export_rank_state: rank " << rank << " of "
                                               << master_.size());
  RankStateBlob blob;
  blob.u64(1);
  blob.record(s, adam_[s].step_count(), master_[s],
              adam_[s].first_moment(), adam_[s].second_moment());
  return blob.take();
}
}  // namespace weipipe
