// FSDP / ZeRO-3-style baseline: fully sharded data parallelism over the same
// fabric (the paper's DeepSpeed ZeRO-3 comparator).
//
// Rank r owns chunk r's fp32 master + Adam state. Every rank runs the full
// model on its own microbatches; non-owned chunk weights are materialized on
// demand by a ring broadcast from the owner (same total bytes as NCCL's ring
// all-gather of a sharded parameter) for the forward AND again for the
// backward, then freed. Weight gradients are chain-reduced to the owner at
// iteration end. Collective traffic therefore scales with total parameter
// bytes * 3 * (P-1)/P per microbatch-round — the cost WeiPipe's P2P
// circulation undercuts in communication-constrained settings.
#pragma once

#include <memory>

#include "comm/fabric.hpp"
#include "core/checkpoint.hpp"
#include "core/trainer.hpp"
#include "nn/adam.hpp"
#include "nn/model.hpp"
#include "obs/ledger.hpp"

namespace weipipe {

struct FsdpOptions {
  comm::LinkModel link_model = nullptr;
};

class FsdpTrainer final : public Trainer {
 public:
  FsdpTrainer(const TrainConfig& cfg, std::int64_t num_ranks,
              FsdpOptions options = {});

  std::string name() const override { return "fsdp"; }
  IterationResult train_iteration(const Dataset& data,
                                  std::int64_t iter_index) override;
  std::vector<std::vector<float>> gather_block_params() const override;
  TrainerState export_state() const override;
  void import_state(const TrainerState& state) override;
  std::vector<std::uint8_t> export_rank_state(int rank) const override;

  comm::Fabric* fabric() override { return fabric_.get(); }

 private:
  void rank_body(int rank, comm::Endpoint& ep, const Dataset& data,
                 std::int64_t iter_index, std::vector<double>& losses);

  TrainConfig cfg_;
  std::int64_t p_;
  FsdpOptions opts_;
  Model model_;
  std::vector<ChunkSpec> chunks_;
  std::unique_ptr<comm::Fabric> fabric_;
  std::vector<std::vector<float>> master_;  // [chunk], owned by rank==chunk
  std::vector<AdamShard> adam_;
  // Ledger charges for the plain-vector state above.
  obs::MemCharge master_charge_;
  obs::MemCharge adam_charge_;

  void recharge_ledger();
};

}  // namespace weipipe
