#include "baselines/factory.hpp"

#include "baselines/fsdp_trainer.hpp"
#include "baselines/pipeline_trainer.hpp"
#include "common/check.hpp"
#include "core/sequential_trainer.hpp"
#include "core/weipipe_trainer.hpp"

namespace weipipe {

std::vector<std::string> trainer_names() {
  return {"sequential", "weipipe", "weipipe-interleave",
          "weipipe-naive", "1f1b",  "gpipe",
          "fsdp"};
}

std::unique_ptr<Trainer> make_trainer(const std::string& name,
                                      const TrainConfig& cfg,
                                      std::int64_t world) {
  if (name == "sequential") {
    return std::make_unique<SequentialTrainer>(cfg);
  }
  if (name == "weipipe" || name == "weipipe-interleave") {
    return std::make_unique<WeiPipeTrainer>(cfg, world);
  }
  if (name == "weipipe-naive") {
    return std::make_unique<WeiPipeTrainer>(
        cfg, world, WeiPipeOptions{.mode = WeiPipeMode::kNaive});
  }
  if (name == "1f1b") {
    return std::make_unique<PipelineTrainer>(cfg, world);
  }
  if (name == "gpipe") {
    return std::make_unique<PipelineTrainer>(
        cfg, world, PipelineOptions{.mode = PipelineMode::kGPipe});
  }
  if (name == "fsdp") {
    return std::make_unique<FsdpTrainer>(cfg, world);
  }
  WEIPIPE_CHECK_MSG(false, "unknown trainer '" << name
                                               << "' (try: sequential, "
                                                  "weipipe, weipipe-naive, "
                                                  "1f1b, gpipe, fsdp)");
  return nullptr;
}

}  // namespace weipipe
