#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace weipipe {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_emit_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lk(g_emit_mu);
  std::fprintf(stderr, "[weipipe %s] %s\n", level_name(level), message.c_str());
}

}  // namespace detail

}  // namespace weipipe
