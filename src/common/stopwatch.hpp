// Wall-clock stopwatch used by the in-situ benchmarks and the trace module.
#pragma once

#include <chrono>

namespace weipipe {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace weipipe
