// Wall-clock stopwatch used by the in-situ benchmarks and the trace module.
#pragma once

#include <chrono>
#include <cstdint>

namespace weipipe {

// The one steady-clock nanosecond epoch shared by every timestamp producer
// in the process: obs spans, health heartbeats, fault-event markers, and
// black-box dumps. Merging per-rank timelines (flight recorder + Perfetto
// export) is only sound if every producer samples the same clock base.
inline std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace weipipe
