// Wall-clock stopwatch used by the in-situ benchmarks and the trace module.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace weipipe {

namespace detail {
// Process-wide correction added to steady_now_ns(): 0 in single-process
// mode; in a forked rank process, the skew to the world's reference clock
// (rank 0) measured at transport rendezvous. Ranks on one host share
// CLOCK_MONOTONIC, so the offset stays 0 there and only a genuinely distinct
// clock domain (a remote tcp host) shifts the epoch — see docs/TRANSPORT.md.
inline std::atomic<std::int64_t> g_steady_epoch_offset{0};
}  // namespace detail

// The one steady-clock nanosecond epoch shared by every timestamp producer
// in the process: obs spans, health heartbeats, fault-event markers, wire
// delivery deadlines, and black-box dumps. Merging per-rank timelines
// (flight recorder + Perfetto export, and cross-process trace merges) is
// only sound if every producer samples the same clock base — which is why
// multi-process transports exchange epochs at rendezvous and park the
// correction here rather than in any single consumer.
inline std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() +
         detail::g_steady_epoch_offset.load(std::memory_order_relaxed);
}

// Installed once per process by the transport rendezvous (before worker
// threads exist); tests may set it directly.
inline void set_steady_epoch_offset(std::int64_t offset_ns) {
  detail::g_steady_epoch_offset.store(offset_ns, std::memory_order_relaxed);
}

inline std::int64_t steady_epoch_offset() {
  return detail::g_steady_epoch_offset.load(std::memory_order_relaxed);
}

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace weipipe
