// Minimal leveled logger. Worker threads log concurrently during pipelined
// training, so emission is serialized; level is a process-wide atomic so
// benches can silence the library without recompiling.
#pragma once

#include <sstream>
#include <string>

namespace weipipe {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace weipipe

#define WEIPIPE_LOG(level, msg)                                      \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::weipipe::log_level())) {                  \
      std::ostringstream weipipe_log_oss_;                           \
      weipipe_log_oss_ << msg; /* NOLINT */                          \
      ::weipipe::detail::log_emit(level, weipipe_log_oss_.str());    \
    }                                                                \
  } while (0)

#define WEIPIPE_DEBUG(msg) WEIPIPE_LOG(::weipipe::LogLevel::Debug, msg)
#define WEIPIPE_INFO(msg) WEIPIPE_LOG(::weipipe::LogLevel::Info, msg)
#define WEIPIPE_WARN(msg) WEIPIPE_LOG(::weipipe::LogLevel::Warn, msg)
#define WEIPIPE_ERROR(msg) WEIPIPE_LOG(::weipipe::LogLevel::Error, msg)
