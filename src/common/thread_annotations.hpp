// Clang thread-safety-analysis annotations, compiled away elsewhere.
//
// With clang and -Wthread-safety these turn locking contracts into
// compile-time checks: WEIPIPE_GUARDED_BY(mu) fields may only be touched with
// `mu` held, WEIPIPE_REQUIRES(mu) functions may only be called with it held.
// gcc (this repo's default toolchain) defines none of the attributes, so the
// macros expand to nothing and the annotations are pure documentation there;
// CI's clang job enforces them. See
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define WEIPIPE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define WEIPIPE_THREAD_ANNOTATION(x)
#endif

// On a mutex-like member: declares which lock serializes access.
#define WEIPIPE_GUARDED_BY(x) WEIPIPE_THREAD_ANNOTATION(guarded_by(x))

// On a pointer member: the *pointed-to* data is guarded by x.
#define WEIPIPE_PT_GUARDED_BY(x) WEIPIPE_THREAD_ANNOTATION(pt_guarded_by(x))

// On a function: caller must hold the lock(s).
#define WEIPIPE_REQUIRES(...) \
  WEIPIPE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// On a function: acquires/releases the lock(s) itself.
#define WEIPIPE_ACQUIRE(...) \
  WEIPIPE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define WEIPIPE_RELEASE(...) \
  WEIPIPE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// On a function: caller must NOT hold the lock(s) (deadlock prevention).
#define WEIPIPE_EXCLUDES(...) \
  WEIPIPE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Escape hatch for code the analysis cannot follow.
#define WEIPIPE_NO_THREAD_SAFETY_ANALYSIS \
  WEIPIPE_THREAD_ANNOTATION(no_thread_safety_analysis)
