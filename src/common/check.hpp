// Error-handling primitives. All invariant violations in the library throw
// weipipe::Error with a message naming the failing expression and location;
// we never abort, so tests can assert on failure paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace weipipe {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file, int line,
                                      const std::string& extra);

// Invoked (when set) with the composed failure message immediately before
// the Error is thrown. Not a recovery hook — the throw always proceeds; it
// exists so an armed obs::BlackBox can capture CHECK failures as post-mortem
// dumps. nullptr clears it.
using CheckFailureObserver = void (*)(const char* what);
void set_check_failure_observer(CheckFailureObserver observer);
}  // namespace detail

}  // namespace weipipe

// Checked in every build type (these guard API misuse, not hot inner loops).
#define WEIPIPE_CHECK(expr)                                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::weipipe::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
    }                                                                        \
  } while (0)

// Variant carrying a streamed message: WEIPIPE_CHECK_MSG(a == b, "a=" << a).
#define WEIPIPE_CHECK_MSG(expr, msg)                                          \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream weipipe_check_oss_;                                  \
      weipipe_check_oss_ << msg; /* NOLINT */                                 \
      ::weipipe::detail::throw_check_failure(#expr, __FILE__, __LINE__,       \
                                             weipipe_check_oss_.str());      \
    }                                                                         \
  } while (0)
