#include "common/check.hpp"

#include <atomic>

namespace weipipe::detail {

namespace {
std::atomic<CheckFailureObserver> g_check_observer{nullptr};
}  // namespace

void set_check_failure_observer(CheckFailureObserver observer) {
  g_check_observer.store(observer, std::memory_order_release);
}

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& extra) {
  std::ostringstream oss;
  oss << "WEIPIPE_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!extra.empty()) {
    oss << " — " << extra;
  }
  const std::string what = oss.str();
  if (CheckFailureObserver observer =
          g_check_observer.load(std::memory_order_acquire)) {
    observer(what.c_str());
  }
  throw Error(what);
}

}  // namespace weipipe::detail
