#include "common/check.hpp"

namespace weipipe::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& extra) {
  std::ostringstream oss;
  oss << "WEIPIPE_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!extra.empty()) {
    oss << " — " << extra;
  }
  throw Error(oss.str());
}

}  // namespace weipipe::detail
