// Deterministic, platform-independent random number generation.
//
// All model initialization and synthetic data generation flows through Rng so
// that every trainer (sequential ground truth, WeiPipe, 1F1B, FSDP, ...) sees
// bit-identical inputs from the same seed — the cornerstone of the
// strategy-equivalence tests. std::mt19937 + std::normal_distribution are
// avoided because their output is not pinned across standard libraries.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace weipipe {

// splitmix64: tiny, fast, passes BigCrush as a 64-bit mixer; ideal for seeding
// and for reproducible streams keyed by (seed, stream-id).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  // Derives an independent stream, e.g. one per layer or per microbatch.
  Rng fork(std::uint64_t stream) const {
    Rng r(state_ ^ (0xBF58476D1CE4E5B9ull * (stream + 1)));
    (void)r.next_u64();  // decorrelate from the parent at stream boundaries
    return r;
  }

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, 1) with 53 bits of precision.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  float uniform(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  // Box–Muller; deterministic across platforms (unlike std::normal_distribution).
  float normal(float mean = 0.0f, float stddev = 1.0f) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double ang = 2.0 * std::numbers::pi * u2;
    spare_ = static_cast<float>(mag * std::sin(ang));
    have_spare_ = true;
    return mean + stddev * static_cast<float>(mag * std::cos(ang));
  }

  // Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire-style rejection-free reduction is fine here: bias is < 2^-32 for
    // the small n (vocab sizes, indices) this library draws.
    return static_cast<std::uint64_t>(next_double() * static_cast<double>(n));
  }

 private:
  std::uint64_t state_;
  float spare_ = 0.0f;
  bool have_spare_ = false;
};

}  // namespace weipipe
