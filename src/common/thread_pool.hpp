// A small thread pool with chunked range dispatch and atomic work-claiming.
//
// Used only inside tensor kernels (GEMM, attention, layer math) to make the
// CPU substrate fast enough for the in-situ benchmarks; the *worker* threads
// of the distributed fabric are separate (one std::thread per simulated rank)
// so kernel parallelism never interferes with schedule semantics.
//
// Dispatch model: a caller publishes one stack-allocated Dispatch record into
// a fixed-capacity slot arena (no per-task heap allocation, no per-chunk
// std::function), wakes the workers, and then participates in the same
// atomic chunk-claiming loop itself. Each claim grabs `chunk` consecutive
// indices with one fetch_add, so uneven per-index cost (e.g. causal attention
// rows) load-balances without a task queue. Multiple rank threads can
// dispatch concurrently — each occupies its own arena slot.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.hpp"

namespace weipipe {

// Monotone dispatch counters since pool construction (relaxed atomics; exact
// under quiescence, approximate while kernels are in flight). `steals` counts
// chunks executed by pool workers rather than the dispatching thread — a
// caller-only dispatch (steals == 0) means the workers never got to the work
// before the caller finished it.
struct ThreadPoolStats {
  std::uint64_t dispatches = 0;  // parallel dispatches published to the arena
  std::uint64_t serial_runs = 0;  // calls that ran inline (tiny/nested/full)
  std::uint64_t items = 0;        // indices covered by published dispatches
  std::uint64_t chunks = 0;       // chunks claimed across all dispatches
  std::uint64_t steals = 0;       // chunks claimed by pool workers
};

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Type-erased range body: process the half-open index block [lo, hi).
  using RangeFn = void (*)(void* ctx, std::size_t lo, std::size_t hi);

  // Runs fn over [begin, end) in chunks of at least `grain` indices,
  // splitting across the pool and the calling thread; returns when every
  // index is done. Exceptions from fn propagate to the caller (first one
  // wins; once one chunk throws, unclaimed chunks are abandoned).
  void parallel_for_range(std::size_t begin, std::size_t end, RangeFn fn,
                          void* ctx, std::size_t grain);

  // Typed convenience over parallel_for_range; f is void(size_t lo, size_t hi).
  template <typename F>
  void for_range(std::size_t begin, std::size_t end, F&& f,
                 std::size_t grain = 1) {
    using Fn = std::remove_reference_t<F>;
    parallel_for_range(
        begin, end,
        [](void* ctx, std::size_t lo, std::size_t hi) {
          (*static_cast<Fn*>(ctx))(lo, hi);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(f))), grain);
  }

  // Per-index form kept for existing call sites; `grain` is the minimum
  // number of indices per claimed chunk.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

  ThreadPoolStats stats() const;

  // Process-wide pool sized to the hardware; lazily constructed.
  static ThreadPool& global();

 private:
  struct Dispatch;  // stack-allocated per call; defined in the .cpp

  // Concurrent dispatch capacity: one slot per simultaneously-dispatching
  // thread (rank threads + main). Overflow falls back to inline execution,
  // which is always correct.
  static constexpr std::size_t kMaxDispatches = 32;

  void worker_loop();
  // Claim-and-run loop shared by workers and the dispatching thread.
  void run_dispatch(Dispatch& d, bool is_worker);

  std::vector<std::thread> workers_;  // written only in ctor/dtor
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Dispatch* slots_[kMaxDispatches] WEIPIPE_GUARDED_BY(mu_) = {};
  bool stop_ WEIPIPE_GUARDED_BY(mu_) = false;

  // Stats (relaxed; see ThreadPoolStats).
  std::atomic<std::uint64_t> stat_dispatches_{0};
  std::atomic<std::uint64_t> stat_serial_runs_{0};
  std::atomic<std::uint64_t> stat_items_{0};
  std::atomic<std::uint64_t> stat_chunks_{0};
  std::atomic<std::uint64_t> stat_steals_{0};
};

// Convenience: global-pool parallel loop. Falls back to serial execution when
// the whole range fits inside one grain-sized chunk.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

// Range-chunk variant on the global pool: f(lo, hi) sees contiguous blocks,
// so per-chunk setup (scratch buffers, partial reductions) amortizes and the
// inner loop stays vectorizable. Preferred for new kernels.
template <typename F>
void parallel_for_range(std::size_t begin, std::size_t end, std::size_t grain,
                        F&& f) {
  if (begin >= end) {
    return;
  }
  if (end - begin <= grain) {
    f(begin, end);
    return;
  }
  ThreadPool::global().for_range(begin, end, std::forward<F>(f), grain);
}

// Observability hook: when set, called on the dispatching thread after every
// ThreadPool::parallel_for_range with the range size and the dispatch
// interval in steady-clock nanoseconds. A raw function pointer (not
// std::function) so the disabled cost is one relaxed atomic load; installed
// by obs::Recorder when kernel spans are requested — common/ must not depend
// on obs/.
using KernelObserver = void (*)(std::size_t items, std::int64_t start_ns,
                                std::int64_t end_ns);
void set_kernel_observer(KernelObserver observer);  // nullptr disables

}  // namespace weipipe
