// A small work-stealing-free thread pool plus parallel_for.
//
// Used only inside tensor kernels (matmul, attention) to make the CPU
// substrate fast enough for the in-situ benchmarks; the *worker* threads of
// the distributed fabric are separate (one std::thread per simulated rank) so
// kernel parallelism never interferes with schedule semantics.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace weipipe {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Runs fn(i) for i in [begin, end), splitting the range into chunks across
  // the pool and the calling thread; returns when every index is done.
  // Exceptions from fn propagate to the caller (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  // Process-wide pool sized to the hardware; lazily constructed.
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();

  std::vector<std::thread> workers_;  // written only in ctor/dtor
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<Task> tasks_ WEIPIPE_GUARDED_BY(mu_);
  bool stop_ WEIPIPE_GUARDED_BY(mu_) = false;
};

// Convenience: global-pool parallel loop. Falls back to serial execution for
// tiny ranges where task overhead would dominate.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

// Observability hook: when set, called on the dispatching thread after every
// ThreadPool::parallel_for with the range size and the dispatch interval in
// steady-clock nanoseconds. A raw function pointer (not std::function) so the
// disabled cost is one relaxed atomic load; installed by obs::Recorder when
// kernel spans are requested — common/ must not depend on obs/.
using KernelObserver = void (*)(std::size_t items, std::int64_t start_ns,
                                std::int64_t end_ns);
void set_kernel_observer(KernelObserver observer);  // nullptr disables

}  // namespace weipipe
