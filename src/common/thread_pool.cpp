#include "common/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <exception>

#include "common/check.hpp"

namespace weipipe {

namespace {
// Set while a pool worker executes a task. A nested parallel_for from inside a
// task runs serially: queueing sub-tasks while every worker may be blocked
// waiting on its own sub-tasks is a classic self-deadlock.
thread_local bool g_inside_pool_task = false;

std::atomic<KernelObserver> g_kernel_observer{nullptr};

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Fires the observer on every exit path (including exceptions) of a dispatch.
struct KernelDispatchNotifier {
  KernelObserver observer;
  std::size_t items;
  std::int64_t start_ns;
  ~KernelDispatchNotifier() {
    if (observer != nullptr) {
      observer(items, start_ns, steady_ns());
    }
  }
};
}  // namespace

void set_kernel_observer(KernelObserver observer) {
  g_kernel_observer.store(observer, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    g_inside_pool_task = true;
    struct Reset {  // exception-safe: a throwing task must not leave the
      ~Reset() { g_inside_pool_task = false; }  // flag stuck on this thread
    } reset;
    task.fn();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  const KernelObserver observer =
      g_kernel_observer.load(std::memory_order_relaxed);
  KernelDispatchNotifier notifier{observer, end - begin,
                                  observer != nullptr ? steady_ns() : 0};
  const std::size_t n = end - begin;
  const std::size_t num_chunks = std::min(n, workers_.size() + 1);
  if (num_chunks <= 1 || g_inside_pool_task) {
    for (std::size_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }

  std::atomic<std::size_t> next{begin};
  std::exception_ptr first_error;
  std::mutex err_mu;
  std::size_t done = 0;  // guarded by done_mu
  std::mutex done_mu;
  std::condition_variable done_cv;

  // Dynamic scheduling with chunk size ~ n / (4 * chunks): balances uneven
  // per-index cost (e.g. causal attention rows) without queue thrash.
  const std::size_t chunk = std::max<std::size_t>(1, n / (4 * num_chunks));
  const std::size_t n_tasks = num_chunks;

  // Every local the tasks touch by reference lives on this frame, so the
  // completion count must be published entirely under done_mu: the waiter
  // below holds done_mu while testing it, which means it cannot observe
  // done == n_tasks (and destroy the frame) until the last task has
  // released the lock — after its final access to any local.
  auto body = [&] {
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk);
      if (lo >= end) {
        break;
      }
      const std::size_t hi = std::min(end, lo + chunk);
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          fn(i);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
        // Drain the remaining range so other tasks stop quickly.
        next.store(end);
      }
    }
    std::lock_guard<std::mutex> lk(done_mu);
    if (++done == n_tasks) {
      done_cv.notify_all();
    }
  };

  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t t = 0; t + 1 < n_tasks; ++t) {
      tasks_.push(Task{body});
    }
  }
  cv_.notify_all();
  body();  // the caller participates as the final task

  {
    std::unique_lock<std::mutex> lk(done_mu);
    done_cv.wait(lk, [&] { return done == n_tasks; });
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(
      std::max(1u, std::thread::hardware_concurrency()) - 0);
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (begin >= end) {
    return;
  }
  if (end - begin <= grain) {
    for (std::size_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }
  ThreadPool::global().parallel_for(begin, end, fn);
}

}  // namespace weipipe
