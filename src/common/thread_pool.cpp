#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "common/check.hpp"

namespace weipipe {

namespace {
// Set while a pool worker executes a chunk. A nested parallel_for from inside
// a chunk runs serially: claiming sub-chunks while every worker may be
// blocked waiting on its own sub-dispatch is a classic self-deadlock.
thread_local bool g_inside_pool_task = false;

// Claimed chunks per dispatch slot, beyond the caller-provided grain: small
// enough to amortize the claim fetch_add, large enough that uneven per-index
// cost still load-balances.
constexpr std::size_t kChunksPerThread = 4;

std::atomic<KernelObserver> g_kernel_observer{nullptr};

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Fires the observer on every exit path (including exceptions) of a dispatch.
struct KernelDispatchNotifier {
  KernelObserver observer;
  std::size_t items;
  std::int64_t start_ns;
  ~KernelDispatchNotifier() {
    if (observer != nullptr) {
      observer(items, start_ns, steady_ns());
    }
  }
};
}  // namespace

void set_kernel_observer(KernelObserver observer) {
  g_kernel_observer.store(observer, std::memory_order_relaxed);
}

// One per parallel_for_range call, on the dispatching thread's stack. The
// arena slot holds a pointer to it for the duration of the dispatch; workers
// may only dereference that pointer under the pool mutex (scan + join) or
// after registering themselves in `joined` (execution), and the caller does
// not return until `joined` drops back to zero — so the frame outlives every
// access.
struct ThreadPool::Dispatch {
  RangeFn fn;
  void* ctx;
  std::size_t end;
  std::size_t chunk;
  std::atomic<std::size_t> next;  // next unclaimed index; >= end when drained

  std::mutex mu;
  std::condition_variable cv;
  int joined WEIPIPE_GUARDED_BY(mu) = 0;  // threads inside run_dispatch
  std::exception_ptr error WEIPIPE_GUARDED_BY(mu);
};

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::run_dispatch(Dispatch& d, bool is_worker) {
  std::uint64_t claimed = 0;
  for (;;) {
    const std::size_t lo = d.next.fetch_add(d.chunk);
    if (lo >= d.end) {
      break;
    }
    const std::size_t hi = std::min(d.end, lo + d.chunk);
    ++claimed;
    try {
      d.fn(d.ctx, lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lk(d.mu);
      if (!d.error) {
        d.error = std::current_exception();
      }
      // Abandon the remaining range so other participants stop quickly.
      d.next.store(d.end);
    }
  }
  if (claimed > 0) {
    stat_chunks_.fetch_add(claimed, std::memory_order_relaxed);
    if (is_worker) {
      stat_steals_.fetch_add(claimed, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    Dispatch* d = nullptr;
    for (Dispatch* slot : slots_) {
      if (slot != nullptr &&
          slot->next.load(std::memory_order_relaxed) < slot->end) {
        d = slot;
        break;
      }
    }
    if (d == nullptr) {
      if (stop_) {
        return;
      }
      cv_.wait(lk);
      continue;
    }
    {
      // Registered while the pool mutex pins the slot (and so the frame);
      // from here the caller cannot return until we deregister.
      std::lock_guard<std::mutex> dlk(d->mu);
      ++d->joined;
    }
    lk.unlock();

    g_inside_pool_task = true;
    struct Reset {  // exception-safe: run_dispatch never throws, but keep the
      ~Reset() { g_inside_pool_task = false; }  // flag robust anyway
    } reset;
    run_dispatch(*d, /*is_worker=*/true);

    {
      std::lock_guard<std::mutex> dlk(d->mu);
      if (--d->joined == 0) {
        d->cv.notify_all();
      }
    }
    lk.lock();
  }
}

void ThreadPool::parallel_for_range(std::size_t begin, std::size_t end,
                                    RangeFn fn, void* ctx, std::size_t grain) {
  if (begin >= end) {
    return;
  }
  const KernelObserver observer =
      g_kernel_observer.load(std::memory_order_relaxed);
  KernelDispatchNotifier notifier{observer, end - begin,
                                  observer != nullptr ? steady_ns() : 0};
  const std::size_t n = end - begin;
  grain = std::max<std::size_t>(1, grain);
  // Chunk size honors the caller's grain as a floor, then widens so each
  // participant claims ~kChunksPerThread chunks (claim overhead amortizes,
  // uneven per-index cost still balances).
  const std::size_t participants = workers_.size() + 1;
  const std::size_t chunk =
      std::max(grain, n / (kChunksPerThread * participants));
  if (n <= chunk || workers_.empty() || g_inside_pool_task) {
    stat_serial_runs_.fetch_add(1, std::memory_order_relaxed);
    fn(ctx, begin, end);
    return;
  }

  Dispatch d;
  d.fn = fn;
  d.ctx = ctx;
  d.end = end;
  d.chunk = chunk;
  d.next.store(begin, std::memory_order_relaxed);

  std::size_t slot = kMaxDispatches;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < kMaxDispatches; ++i) {
      if (slots_[i] == nullptr) {
        slots_[i] = &d;
        slot = i;
        break;
      }
    }
  }
  if (slot == kMaxDispatches) {
    // Arena full (more concurrent dispatchers than slots): run inline.
    stat_serial_runs_.fetch_add(1, std::memory_order_relaxed);
    fn(ctx, begin, end);
    return;
  }
  stat_dispatches_.fetch_add(1, std::memory_order_relaxed);
  stat_items_.fetch_add(n, std::memory_order_relaxed);
  cv_.notify_all();

  run_dispatch(d, /*is_worker=*/false);  // the caller participates

  std::exception_ptr error;
  {
    // Workers register in `joined` before their first claim while the pool
    // mutex pins the slot, and no claim can succeed once next >= end — so
    // when joined reaches 0 here, no worker will touch `d` again outside the
    // pool mutex.
    std::unique_lock<std::mutex> dlk(d.mu);
    d.cv.wait(dlk, [&] { return d.joined == 0; });
    error = d.error;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    slots_[slot] = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  for_range(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          fn(i);
        }
      },
      grain);
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats s;
  s.dispatches = stat_dispatches_.load(std::memory_order_relaxed);
  s.serial_runs = stat_serial_runs_.load(std::memory_order_relaxed);
  s.items = stat_items_.load(std::memory_order_relaxed);
  s.chunks = stat_chunks_.load(std::memory_order_relaxed);
  s.steals = stat_steals_.load(std::memory_order_relaxed);
  return s;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (begin >= end) {
    return;
  }
  if (end - begin <= grain) {
    for (std::size_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }
  ThreadPool::global().parallel_for(begin, end, fn, grain);
}

}  // namespace weipipe
