// Software IEEE-754 binary16 (Float16) and bfloat16 (BFloat16).
//
// WeiPipe circulates weights (W) and weight-gradients (D) in fp16 and
// activation-gradients (B) in bf16 (paper §5, "Mixed Precision"); optimizer
// state stays fp32. These types reproduce that quantization on commodity CPUs:
// round-to-nearest-even on narrowing, exact widening. They are storage types —
// arithmetic happens in float after widening, as on tensor-core hardware.
#pragma once

#include <cstdint>
#include <cstring>

namespace weipipe {

namespace detail {

inline std::uint32_t float_bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

inline float bits_float(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

// Narrow fp32 -> fp16 bits with round-to-nearest-even, handling subnormals,
// overflow to infinity, and NaN payloads (quieted).
inline std::uint16_t f32_to_f16_bits(float f) {
  const std::uint32_t x = float_bits(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7FFFFFFFu;

  if (abs >= 0x7F800000u) {  // inf or NaN
    if (abs > 0x7F800000u) {
      return static_cast<std::uint16_t>(sign | 0x7E00u);  // quiet NaN
    }
    return static_cast<std::uint16_t>(sign | 0x7C00u);  // infinity
  }
  if (abs >= 0x477FF000u) {  // rounds to >= 2^16 -> overflow to inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (abs < 0x38800000u) {  // subnormal half (exp < -14) or zero
    if (abs < 0x33000000u) {  // below half of min subnormal -> zero
      return static_cast<std::uint16_t>(sign);
    }
    // Subnormal half = m * 2^-24; align the 24-bit fp32 significand so that
    // bit 0 is worth 2^-24. shift in [14, 24] for exponents in range.
    const int exp = static_cast<int>(abs >> 23);  // biased fp32 exponent
    const int shift = 126 - exp;
    const std::uint32_t mant = (abs & 0x007FFFFFu) | 0x00800000u;
    const std::uint32_t dropped = mant & ((1u << shift) - 1u);
    std::uint32_t half = mant >> shift;
    const std::uint32_t round_bit = 1u << (shift - 1);
    if (dropped > round_bit || (dropped == round_bit && (half & 1u))) {
      ++half;
    }
    return static_cast<std::uint16_t>(sign | half);
  }
  // Normal range: re-bias exponent (127 -> 15), keep top 10 mantissa bits.
  std::uint32_t half = (abs - 0x38000000u) >> 13;
  const std::uint32_t dropped = abs & 0x1FFFu;
  if (dropped > 0x1000u || (dropped == 0x1000u && (half & 1u))) {
    ++half;  // may carry into exponent; that is correct rounding behaviour
  }
  return static_cast<std::uint16_t>(sign | half);
}

inline float f16_bits_to_f32(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  const std::uint32_t mant = h & 0x3FFu;

  if (exp == 0) {
    if (mant == 0) {
      return bits_float(sign);  // signed zero
    }
    // Subnormal: normalize into fp32.
    int e = -1;
    std::uint32_t m = mant;
    do {
      ++e;
      m <<= 1;
    } while ((m & 0x400u) == 0);
    const std::uint32_t exp32 = static_cast<std::uint32_t>(127 - 15 - e) << 23;
    return bits_float(sign | exp32 | ((m & 0x3FFu) << 13));
  }
  if (exp == 0x1Fu) {
    return bits_float(sign | 0x7F800000u | (mant << 13));  // inf / NaN
  }
  return bits_float(sign | ((exp + 112u) << 23) | (mant << 13));
}

inline std::uint16_t f32_to_bf16_bits(float f) {
  std::uint32_t x = float_bits(f);
  if ((x & 0x7FFFFFFFu) > 0x7F800000u) {  // NaN: quiet, keep top payload bit set
    return static_cast<std::uint16_t>((x >> 16) | 0x0040u);
  }
  const std::uint32_t rounding = 0x7FFFu + ((x >> 16) & 1u);  // RNE
  x += rounding;
  return static_cast<std::uint16_t>(x >> 16);
}

inline float bf16_bits_to_f32(std::uint16_t b) {
  return bits_float(static_cast<std::uint32_t>(b) << 16);
}

}  // namespace detail

// IEEE binary16 storage type.
class Float16 {
 public:
  Float16() = default;
  explicit Float16(float f) : bits_(detail::f32_to_f16_bits(f)) {}

  static Float16 from_bits(std::uint16_t bits) {
    Float16 h;
    h.bits_ = bits;
    return h;
  }

  float to_float() const { return detail::f16_bits_to_f32(bits_); }
  explicit operator float() const { return to_float(); }
  std::uint16_t bits() const { return bits_; }

  friend bool operator==(Float16 a, Float16 b) { return a.bits_ == b.bits_; }

 private:
  std::uint16_t bits_ = 0;
};

// bfloat16 storage type (fp32 with truncated mantissa, RNE on narrowing).
class BFloat16 {
 public:
  BFloat16() = default;
  explicit BFloat16(float f) : bits_(detail::f32_to_bf16_bits(f)) {}

  static BFloat16 from_bits(std::uint16_t bits) {
    BFloat16 b;
    b.bits_ = bits;
    return b;
  }

  float to_float() const { return detail::bf16_bits_to_f32(bits_); }
  explicit operator float() const { return to_float(); }
  std::uint16_t bits() const { return bits_; }

  friend bool operator==(BFloat16 a, BFloat16 b) { return a.bits_ == b.bits_; }

 private:
  std::uint16_t bits_ = 0;
};

// Round-trips a float through the given 16-bit storage precision.
inline float quantize_f16(float f) { return Float16(f).to_float(); }
inline float quantize_bf16(float f) { return BFloat16(f).to_float(); }

// Precision used for a circulated tensor; Fp32 disables quantization (used by
// the precision-ablation tests and the ground-truth sequential trainer).
// Int8 is a *wire* format only (block-quantized with per-chunk fp32 scales,
// see comm/wire.hpp); it is intended for the weight-gradient flow, where the
// owner rank accumulates in fp32 after widening.
enum class WirePrecision { Fp32, Fp16, Bf16, Int8 };

// Strategy-knob alias: the circulated-tensor formats double as the fabric's
// wire formats (PrecisionConfig in nn/config.hpp picks one per flow).
using WireFormat = WirePrecision;

inline const char* to_string(WirePrecision p) {
  switch (p) {
    case WirePrecision::Fp32: return "fp32";
    case WirePrecision::Fp16: return "fp16";
    case WirePrecision::Bf16: return "bf16";
    case WirePrecision::Int8: return "int8";
  }
  return "?";
}

// Payload bytes per element. Int8 carries one byte per element plus a small
// per-chunk scale header; use comm::packed_size for exact wire sizes.
inline std::size_t wire_bytes_per_element(WirePrecision p) {
  switch (p) {
    case WirePrecision::Fp32: return 4;
    case WirePrecision::Fp16: return 2;
    case WirePrecision::Bf16: return 2;
    case WirePrecision::Int8: return 1;
  }
  return 4;
}

inline float quantize(float f, WirePrecision p) {
  switch (p) {
    case WirePrecision::Fp32: return f;
    case WirePrecision::Fp16: return quantize_f16(f);
    case WirePrecision::Bf16: return quantize_bf16(f);
    case WirePrecision::Int8:
      // Int8 quantization is block-wise (the scale depends on the chunk's
      // max-abs); a single element has no chunk context, so the element-wise
      // identity is returned and callers must go through pack/unpack.
      return f;
  }
  return f;
}

}  // namespace weipipe
