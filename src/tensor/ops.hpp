// Dense kernels: the three GEMM orientations needed by forward/backward
// linear layers, plus row softmax and small elementwise utilities.
//
// Two layers of API:
//  * kernels::* operate on raw pointers (used by nn/ on flat weight chunks —
//    a circulated WeiPipe weight chunk is one contiguous buffer, so layers
//    address sub-matrices inside it without copies);
//  * Tensor-level wrappers with shape checking (public API, tests, examples).
#pragma once

#include <cstdint>

#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"

namespace weipipe {

namespace kernels {

// The three GEMM orientations are thin wrappers over the tiled strided
// engine in tensor/gemm.hpp (a transpose is a stride swap, not a copy).

// C[m,n] (+)= A[m,k] * B[k,n]
void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n, bool accumulate);

// C[m,n] (+)= A[m,k] * B[n,k]^T   (PyTorch nn.Linear forward: y = x W^T)
void matmul_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate);

// C[m,n] (+)= A[k,m]^T * B[k,n]   (weight gradient: dW = dy^T x)
void matmul_at(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate);

// In-place numerically-stable softmax over each row of x[rows, cols].
// `valid_cols`, if non-null, limits row r to its first valid_cols[r] entries
// (causal attention); the remainder is set to 0.
void softmax_rows(float* x, std::int64_t rows, std::int64_t cols,
                  const std::int64_t* valid_cols);

}  // namespace kernels

// ---- Tensor-level wrappers -------------------------------------------------

// a[m,k] * b[k,n] -> [m,n]
Tensor matmul(const Tensor& a, const Tensor& b);
// a[m,k] * b[n,k]^T -> [m,n]
Tensor matmul_bt(const Tensor& a, const Tensor& b);
// a[k,m]^T * b[k,n] -> [m,n]
Tensor matmul_at(const Tensor& a, const Tensor& b);

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);

// Softmax along the last dimension.
Tensor softmax_lastdim(const Tensor& a);

// SiLU (x * sigmoid(x)) and its derivative, used by the SwiGLU FFN.
float silu(float x);
float silu_grad(float x);

}  // namespace weipipe
