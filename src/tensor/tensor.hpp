// A small owning, contiguous, row-major float32 tensor.
//
// Design notes:
//  * float32 storage everywhere; 16-bit precisions are *wire/storage* formats
//    applied when tensors cross the fabric (see common/fixed_types.hpp),
//    mirroring GPU training where compute happens in wider accumulators.
//  * Owning and contiguous keeps the distributed executors simple: a weight
//    chunk is one span, so quantize+send is a single pass.
//  * Shapes use int64_t to match the paper's parameter regimes (billions of
//    elements) in the cost model even though in-situ tensors are small.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "obs/ledger.hpp"

namespace weipipe {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::int64_t> shape);

  static Tensor zeros(std::vector<std::int64_t> shape);
  static Tensor full(std::vector<std::int64_t> shape, float value);
  // Gaussian init, deterministic from rng (shared across strategies).
  static Tensor randn(std::vector<std::int64_t> shape, Rng& rng,
                      float mean = 0.0f, float stddev = 1.0f);
  static Tensor from_data(std::vector<std::int64_t> shape,
                          std::vector<float> data);

  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t ndim() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t dim(std::int64_t i) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& at(std::initializer_list<std::int64_t> idx);
  float at(std::initializer_list<std::int64_t> idx) const;

  // 2-D convenience accessors (bounds-checked only via WEIPIPE_CHECK in at()).
  float& operator()(std::int64_t i, std::int64_t j) {
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
  }
  float operator()(std::int64_t i, std::int64_t j) const {
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
  }

  // Same storage, new shape; numel must match.
  Tensor reshaped(std::vector<std::int64_t> shape) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  // In-place elementwise helpers (shapes must match exactly).
  Tensor& add_(const Tensor& other);
  Tensor& sub_(const Tensor& other);
  Tensor& mul_(const Tensor& other);
  Tensor& scale_(float s);
  // this += s * other (axpy)
  Tensor& axpy_(float s, const Tensor& other);

  float sum() const;
  float mean() const;
  float abs_max() const;
  // L2 norm of all elements.
  float norm() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  std::string shape_str() const;

 private:
  std::vector<std::int64_t> shape_;
  // Tensor storage routes through the memory ledger: when accounting is
  // enabled, each buffer is attributed to the allocating thread's MemScope
  // category and RankScope rank (default scratch / unranked).
  std::vector<float, obs::TrackedAllocator<float>> data_;
};

// Returns max_i |a_i - b_i|; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

// True if every pair differs by at most atol + rtol*|b|.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);

}  // namespace weipipe
