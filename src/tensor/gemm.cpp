#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/thread_pool.hpp"

namespace weipipe::kernels {

namespace {

// Register micro-tile: MR rows of A against NR columns of B, held in an
// MR x (NR/VL) grid of SIMD vectors. The vector width is pinned to the
// target ISA with GCC/Clang vector extensions — leaving it to the
// auto-vectorizer produces pathological register shuffling (GCC 12 emits
// dozens of vmovaps per iteration for the equivalent scalar loop, ~6% of
// peak). NR is two vectors wide so the FMA latency chain per accumulator is
// hidden; MR is sized to the architectural register file (AVX-512 has 32
// vector registers, SSE/AVX2 have 16).
#if defined(__GNUC__) || defined(__clang__)
#if defined(__AVX512F__)
#define WEIPIPE_GEMM_VEC_BYTES 64
#elif defined(__AVX__)
#define WEIPIPE_GEMM_VEC_BYTES 32
#else
#define WEIPIPE_GEMM_VEC_BYTES 16
#endif
#endif

#if defined(WEIPIPE_GEMM_VEC_BYTES)
// may_alias: the accumulator spill buffer and packed panels are plain float
// arrays; aligned(4): packed panels are only element-aligned.
typedef float vfloat __attribute__((
    vector_size(WEIPIPE_GEMM_VEC_BYTES), aligned(4), may_alias));
constexpr std::int64_t kVL = WEIPIPE_GEMM_VEC_BYTES / 4;
constexpr std::int64_t kMR = (kVL == 16) ? 8 : 6;
#else
constexpr std::int64_t kVL = 4;  // scalar fallback: shape only
constexpr std::int64_t kMR = 6;
#endif
constexpr std::int64_t kNR = 2 * kVL;

// Cache blocking: the packed A block (MC x KC) lives in L2 across the whole
// NC sweep, the packed B block (KC x NC) streams through L2/L3 once per
// macro-tile, and one B micro-panel (KC x NR) stays hot in L1.
constexpr std::int64_t kMC = 16 * kMR;
constexpr std::int64_t kKC = 256;
constexpr std::int64_t kNC = 512;
static_assert(kNC % kNR == 0, "B macro block must hold whole micro-panels");

// Tiles whose flop count falls below this run in one chunk; the dispatch
// grain scales so every claimed chunk carries at least this much work (the
// per-kernel replacement for the old global kParallelFlops heuristic —
// a matmul_bt with tiny n now gets a coarse grain instead of a task per
// row block).
constexpr std::int64_t kMinFlopsPerChunk = 1 << 21;  // ~2 MFLOP

struct Scratch {
  std::vector<float> a;  // kMC x kKC, MR-interleaved panels
  std::vector<float> b;  // kKC x kNC, NR-interleaved panels
};

Scratch& scratch() {
  thread_local Scratch s;
  if (s.a.empty()) {
    s.a.resize(static_cast<std::size_t>(kMC * kKC));
    s.b.resize(static_cast<std::size_t>(kKC * kNC));
  }
  return s;
}

// Packs A[i0 : i0+mc, pc : pc+kc] into MR-row panels: panel ip holds
// dst[ip*kc + pp*MR + i] = A(i0+ip+i, pc+pp), zero-padded to MR rows so the
// micro-kernel never branches on the row edge.
void pack_a(float* dst, const float* a, std::int64_t a_rs, std::int64_t a_cs,
            std::int64_t i0, std::int64_t mc, std::int64_t pc,
            std::int64_t kc) {
  for (std::int64_t ip = 0; ip < mc; ip += kMR) {
    const std::int64_t mr = std::min(kMR, mc - ip);
    float* panel = dst + ip * kc;
    const float* src = a + (i0 + ip) * a_rs + pc * a_cs;
    if (mr == kMR) {
      for (std::int64_t pp = 0; pp < kc; ++pp) {
        float* out = panel + pp * kMR;
        const float* col = src + pp * a_cs;
        for (std::int64_t i = 0; i < kMR; ++i) {
          out[i] = col[i * a_rs];
        }
      }
    } else {
      for (std::int64_t pp = 0; pp < kc; ++pp) {
        float* out = panel + pp * kMR;
        const float* col = src + pp * a_cs;
        for (std::int64_t i = 0; i < mr; ++i) {
          out[i] = col[i * a_rs];
        }
        for (std::int64_t i = mr; i < kMR; ++i) {
          out[i] = 0.0f;
        }
      }
    }
  }
}

// Packs B[pc : pc+kc, j0 : j0+nc] into NR-column panels: panel jp holds
// dst[jp*kc + pp*NR + j] = B(pc+pp, j0+jp+j), zero-padded to NR columns.
void pack_b(float* dst, const float* b, std::int64_t b_rs, std::int64_t b_cs,
            std::int64_t pc, std::int64_t kc, std::int64_t j0,
            std::int64_t nc) {
  for (std::int64_t jp = 0; jp < nc; jp += kNR) {
    const std::int64_t nr = std::min(kNR, nc - jp);
    float* panel = dst + jp * kc;
    const float* src = b + pc * b_rs + (j0 + jp) * b_cs;
    if (nr == kNR) {
      for (std::int64_t pp = 0; pp < kc; ++pp) {
        float* out = panel + pp * kNR;
        const float* row = src + pp * b_rs;
        for (std::int64_t j = 0; j < kNR; ++j) {
          out[j] = row[j * b_cs];
        }
      }
    } else {
      for (std::int64_t pp = 0; pp < kc; ++pp) {
        float* out = panel + pp * kNR;
        const float* row = src + pp * b_rs;
        for (std::int64_t j = 0; j < nr; ++j) {
          out[j] = row[j * b_cs];
        }
        for (std::int64_t j = nr; j < kNR; ++j) {
          out[j] = 0.0f;
        }
      }
    }
  }
}

// acc[MR x NR] = sum over kc of (A micro-panel column) x (B micro-panel row).
// The scalar a[i] against a vector of b broadcasts into the FMA (gcc folds
// the splat into the instruction's memory operand); fixed trip counts fully
// unroll the register tile.
#if defined(WEIPIPE_GEMM_VEC_BYTES)
inline void micro_kernel(const float* __restrict ap, const float* __restrict bp,
                         std::int64_t kc, float* __restrict acc) {
  constexpr std::int64_t kNV = kNR / kVL;
  vfloat c[kMR][kNV] = {};
  for (std::int64_t pp = 0; pp < kc; ++pp) {
    const float* a = ap + pp * kMR;
    const float* b = bp + pp * kNR;
    vfloat bv[kNV];
    for (std::int64_t v = 0; v < kNV; ++v) {
      bv[v] = *reinterpret_cast<const vfloat*>(b + v * kVL);
    }
    for (std::int64_t i = 0; i < kMR; ++i) {
      const float ai = a[i];
      for (std::int64_t v = 0; v < kNV; ++v) {
        c[i][v] += ai * bv[v];
      }
    }
  }
  for (std::int64_t i = 0; i < kMR; ++i) {
    for (std::int64_t v = 0; v < kNV; ++v) {
      *reinterpret_cast<vfloat*>(acc + i * kNR + v * kVL) = c[i][v];
    }
  }
}
#else
inline void micro_kernel(const float* __restrict ap, const float* __restrict bp,
                         std::int64_t kc, float* __restrict acc) {
  for (std::int64_t x = 0; x < kMR * kNR; ++x) {
    acc[x] = 0.0f;
  }
  for (std::int64_t pp = 0; pp < kc; ++pp) {
    const float* a = ap + pp * kMR;
    const float* b = bp + pp * kNR;
    for (std::int64_t i = 0; i < kMR; ++i) {
      const float ai = a[i];
      float* cr = acc + i * kNR;
      for (std::int64_t j = 0; j < kNR; ++j) {
        cr[j] += ai * b[j];
      }
    }
  }
}
#endif

// One MC x NC macro-tile: full K loop with KC blocking. B is packed per
// (tile, KC block) into this thread's scratch — re-packing across M-tiles
// costs ~1/MC of the tile's flops and keeps tiles fully independent (no
// shared pack buffers, no synchronization).
void gemm_tile(const float* a, std::int64_t a_rs, std::int64_t a_cs,
               const float* b, std::int64_t b_rs, std::int64_t b_cs, float* c,
               std::int64_t c_rs, std::int64_t i0, std::int64_t mc,
               std::int64_t j0, std::int64_t nc, std::int64_t k,
               bool accumulate) {
  Scratch& s = scratch();
  float acc[kMR * kNR];
  for (std::int64_t pc = 0; pc < k; pc += kKC) {
    const std::int64_t kc = std::min(kKC, k - pc);
    pack_b(s.b.data(), b, b_rs, b_cs, pc, kc, j0, nc);
    pack_a(s.a.data(), a, a_rs, a_cs, i0, mc, pc, kc);
    const bool overwrite = (pc == 0) && !accumulate;
    for (std::int64_t jp = 0; jp < nc; jp += kNR) {
      const std::int64_t nr = std::min(kNR, nc - jp);
      const float* bpanel = s.b.data() + jp * kc;
      for (std::int64_t ip = 0; ip < mc; ip += kMR) {
        const std::int64_t mr = std::min(kMR, mc - ip);
        micro_kernel(s.a.data() + ip * kc, bpanel, kc, acc);
        float* cblock = c + (i0 + ip) * c_rs + (j0 + jp);
        if (mr == kMR && nr == kNR) {
          if (overwrite) {
            for (std::int64_t i = 0; i < kMR; ++i) {
              float* crow = cblock + i * c_rs;
              const float* arow = acc + i * kNR;
              for (std::int64_t j = 0; j < kNR; ++j) {
                crow[j] = arow[j];
              }
            }
          } else {
            for (std::int64_t i = 0; i < kMR; ++i) {
              float* crow = cblock + i * c_rs;
              const float* arow = acc + i * kNR;
              for (std::int64_t j = 0; j < kNR; ++j) {
                crow[j] += arow[j];
              }
            }
          }
        } else {
          for (std::int64_t i = 0; i < mr; ++i) {
            float* crow = cblock + i * c_rs;
            const float* arow = acc + i * kNR;
            for (std::int64_t j = 0; j < nr; ++j) {
              if (overwrite) {
                crow[j] = arow[j];
              } else {
                crow[j] += arow[j];
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

void gemm(const float* a, std::int64_t a_rs, std::int64_t a_cs,
          const float* b, std::int64_t b_rs, std::int64_t b_cs, float* c,
          std::int64_t c_rs, std::int64_t m, std::int64_t k, std::int64_t n,
          bool accumulate) {
  if (m <= 0 || n <= 0) {
    return;
  }
  if (k <= 0) {
    if (!accumulate) {
      for (std::int64_t i = 0; i < m; ++i) {
        std::memset(c + i * c_rs, 0, static_cast<std::size_t>(n) * sizeof(float));
      }
    }
    return;
  }

  const std::int64_t n_mtiles = (m + kMC - 1) / kMC;
  const std::int64_t n_ntiles = (n + kNC - 1) / kNC;
  const std::int64_t tiles = n_mtiles * n_ntiles;

  auto run_tiles = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t t = lo; t < hi; ++t) {
      // Consecutive indices walk M-tiles first so one chunk reuses its
      // packed-B macro block layout along the better-cached dimension.
      const std::int64_t ic = static_cast<std::int64_t>(t) % n_mtiles;
      const std::int64_t jc = static_cast<std::int64_t>(t) / n_mtiles;
      const std::int64_t i0 = ic * kMC;
      const std::int64_t j0 = jc * kNC;
      gemm_tile(a, a_rs, a_cs, b, b_rs, b_cs, c, c_rs, i0,
                std::min(kMC, m - i0), j0, std::min(kNC, n - j0), k,
                accumulate);
    }
  };

  // Per-kernel grain: enough tiles per chunk that each claim carries
  // >= kMinFlopsPerChunk of work (a tiny-n or tiny-k call stops fanning out
  // into per-tile tasks).
  const std::int64_t tile_flops =
      2 * std::min(kMC, m) * k * std::min(kNC, n);
  const std::size_t grain = static_cast<std::size_t>(
      std::max<std::int64_t>(1, kMinFlopsPerChunk / std::max<std::int64_t>(
                                                        1, tile_flops)));
  parallel_for_range(0, static_cast<std::size_t>(tiles), grain, run_tiles);
}

void matmul_naive(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n, bool accumulate) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (!accumulate) {
      std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
    }
    const float* arow = a + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

void matmul_bt_naive(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n, bool accumulate) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += arow[p] * brow[p];
      }
      if (accumulate) {
        crow[j] += acc;
      } else {
        crow[j] = acc;
      }
    }
  }
}

void matmul_at_naive(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n, bool accumulate) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (!accumulate) {
      std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
    }
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = a[p * m + i];
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  }
}

}  // namespace weipipe::kernels
