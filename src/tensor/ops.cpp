#include "tensor/ops.hpp"

#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace weipipe {

namespace kernels {

namespace {
// Rows below this (times n) run serially; above, parallel over row blocks.
constexpr std::int64_t kParallelFlops = 1 << 16;
}  // namespace

void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n, bool accumulate) {
  auto row_block = [&](std::size_t i_sz) {
    const std::int64_t i = static_cast<std::int64_t>(i_sz);
    float* crow = c + i * n;
    if (!accumulate) {
      std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
    }
    const float* arow = a + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) {
        continue;
      }
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  };
  if (m * k * n < kParallelFlops) {
    for (std::int64_t i = 0; i < m; ++i) {
      row_block(static_cast<std::size_t>(i));
    }
  } else {
    parallel_for(0, static_cast<std::size_t>(m), row_block);
  }
}

void matmul_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate) {
  auto row_block = [&](std::size_t i_sz) {
    const std::int64_t i = static_cast<std::int64_t>(i_sz);
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += arow[p] * brow[p];
      }
      if (accumulate) {
        crow[j] += acc;
      } else {
        crow[j] = acc;
      }
    }
  };
  if (m * k * n < kParallelFlops) {
    for (std::int64_t i = 0; i < m; ++i) {
      row_block(static_cast<std::size_t>(i));
    }
  } else {
    parallel_for(0, static_cast<std::size_t>(m), row_block);
  }
}

void matmul_at(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate) {
  auto row_block = [&](std::size_t i_sz) {
    const std::int64_t i = static_cast<std::int64_t>(i_sz);
    float* crow = c + i * n;
    if (!accumulate) {
      std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
    }
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = a[p * m + i];
      if (av == 0.0f) {
        continue;
      }
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * brow[j];
      }
    }
  };
  if (m * k * n < kParallelFlops) {
    for (std::int64_t i = 0; i < m; ++i) {
      row_block(static_cast<std::size_t>(i));
    }
  } else {
    parallel_for(0, static_cast<std::size_t>(m), row_block);
  }
}

void softmax_rows(float* x, std::int64_t rows, std::int64_t cols,
                  const std::int64_t* valid_cols) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = x + r * cols;
    const std::int64_t valid = valid_cols ? valid_cols[r] : cols;
    WEIPIPE_CHECK_MSG(valid >= 1 && valid <= cols,
                      "softmax valid=" << valid << " cols=" << cols);
    float mx = row[0];
    for (std::int64_t j = 1; j < valid; ++j) {
      mx = std::max(mx, row[j]);
    }
    float denom = 0.0f;
    for (std::int64_t j = 0; j < valid; ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    const float inv = 1.0f / denom;
    for (std::int64_t j = 0; j < valid; ++j) {
      row[j] *= inv;
    }
    for (std::int64_t j = valid; j < cols; ++j) {
      row[j] = 0.0f;
    }
  }
}

}  // namespace kernels

namespace {
void check_2d(const Tensor& t, const char* name) {
  WEIPIPE_CHECK_MSG(t.ndim() == 2, name << " must be 2-D, got " << t.shape_str());
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_2d(a, "a");
  check_2d(b, "b");
  WEIPIPE_CHECK_MSG(a.dim(1) == b.dim(0),
                    "matmul shape mismatch " << a.shape_str() << " x "
                                             << b.shape_str());
  Tensor c({a.dim(0), b.dim(1)});
  kernels::matmul(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1),
                  /*accumulate=*/false);
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  check_2d(a, "a");
  check_2d(b, "b");
  WEIPIPE_CHECK_MSG(a.dim(1) == b.dim(1),
                    "matmul_bt shape mismatch " << a.shape_str() << " x "
                                                << b.shape_str());
  Tensor c({a.dim(0), b.dim(0)});
  kernels::matmul_bt(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(0),
                     /*accumulate=*/false);
  return c;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  check_2d(a, "a");
  check_2d(b, "b");
  WEIPIPE_CHECK_MSG(a.dim(0) == b.dim(0),
                    "matmul_at shape mismatch " << a.shape_str() << " x "
                                                << b.shape_str());
  Tensor c({a.dim(1), b.dim(1)});
  kernels::matmul_at(a.data(), b.data(), c.data(), a.dim(1), a.dim(0), b.dim(1),
                     /*accumulate=*/false);
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.add_(b);
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.sub_(b);
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.mul_(b);
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a;
  c.scale_(s);
  return c;
}

Tensor softmax_lastdim(const Tensor& a) {
  WEIPIPE_CHECK(a.ndim() >= 1);
  const std::int64_t cols = a.dim(-1);
  WEIPIPE_CHECK(cols >= 1);
  const std::int64_t rows = a.numel() / cols;
  Tensor out = a;
  kernels::softmax_rows(out.data(), rows, cols, nullptr);
  return out;
}

float silu(float x) {
  const float s = 1.0f / (1.0f + std::exp(-x));
  return x * s;
}

float silu_grad(float x) {
  const float s = 1.0f / (1.0f + std::exp(-x));
  return s * (1.0f + x * (1.0f - s));
}

}  // namespace weipipe
