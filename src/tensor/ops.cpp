#include "tensor/ops.hpp"

#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace weipipe {

namespace kernels {

void matmul(const float* a, const float* b, float* c, std::int64_t m,
            std::int64_t k, std::int64_t n, bool accumulate) {
  gemm(a, k, 1, b, n, 1, c, n, m, k, n, accumulate);
}

void matmul_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate) {
  gemm(a, k, 1, b, 1, k, c, n, m, k, n, accumulate);
}

void matmul_at(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, bool accumulate) {
  gemm(a, 1, m, b, n, 1, c, n, m, k, n, accumulate);
}

void softmax_rows(float* x, std::int64_t rows, std::int64_t cols,
                  const std::int64_t* valid_cols) {
  // Grain keeps each chunk at a few thousand elements; single-row calls
  // (attention inner loops) stay serial.
  const std::size_t grain = static_cast<std::size_t>(
      std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(1, cols)));
  parallel_for_range(
      0, static_cast<std::size_t>(rows), grain,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          float* row = x + static_cast<std::int64_t>(r) * cols;
          const std::int64_t valid = valid_cols ? valid_cols[r] : cols;
          WEIPIPE_CHECK_MSG(valid >= 1 && valid <= cols,
                            "softmax valid=" << valid << " cols=" << cols);
          float mx = row[0];
          for (std::int64_t j = 1; j < valid; ++j) {
            mx = std::max(mx, row[j]);
          }
          float denom = 0.0f;
          for (std::int64_t j = 0; j < valid; ++j) {
            row[j] = std::exp(row[j] - mx);
            denom += row[j];
          }
          const float inv = 1.0f / denom;
          for (std::int64_t j = 0; j < valid; ++j) {
            row[j] *= inv;
          }
          for (std::int64_t j = valid; j < cols; ++j) {
            row[j] = 0.0f;
          }
        }
      });
}

}  // namespace kernels

namespace {
void check_2d(const Tensor& t, const char* name) {
  WEIPIPE_CHECK_MSG(t.ndim() == 2, name << " must be 2-D, got " << t.shape_str());
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_2d(a, "a");
  check_2d(b, "b");
  WEIPIPE_CHECK_MSG(a.dim(1) == b.dim(0),
                    "matmul shape mismatch " << a.shape_str() << " x "
                                             << b.shape_str());
  Tensor c({a.dim(0), b.dim(1)});
  kernels::matmul(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1),
                  /*accumulate=*/false);
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  check_2d(a, "a");
  check_2d(b, "b");
  WEIPIPE_CHECK_MSG(a.dim(1) == b.dim(1),
                    "matmul_bt shape mismatch " << a.shape_str() << " x "
                                                << b.shape_str());
  Tensor c({a.dim(0), b.dim(0)});
  kernels::matmul_bt(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(0),
                     /*accumulate=*/false);
  return c;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  check_2d(a, "a");
  check_2d(b, "b");
  WEIPIPE_CHECK_MSG(a.dim(0) == b.dim(0),
                    "matmul_at shape mismatch " << a.shape_str() << " x "
                                                << b.shape_str());
  Tensor c({a.dim(1), b.dim(1)});
  kernels::matmul_at(a.data(), b.data(), c.data(), a.dim(1), a.dim(0), b.dim(1),
                     /*accumulate=*/false);
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.add_(b);
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.sub_(b);
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.mul_(b);
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a;
  c.scale_(s);
  return c;
}

Tensor softmax_lastdim(const Tensor& a) {
  WEIPIPE_CHECK(a.ndim() >= 1);
  const std::int64_t cols = a.dim(-1);
  WEIPIPE_CHECK(cols >= 1);
  const std::int64_t rows = a.numel() / cols;
  Tensor out = a;
  kernels::softmax_rows(out.data(), rows, cols, nullptr);
  return out;
}

float silu(float x) {
  const float s = 1.0f / (1.0f + std::exp(-x));
  return x * s;
}

float silu_grad(float x) {
  const float s = 1.0f / (1.0f + std::exp(-x));
  return s * (1.0f + x * (1.0f - s));
}

}  // namespace weipipe
