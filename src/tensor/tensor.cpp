#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace weipipe {

namespace {
std::int64_t shape_numel(const std::vector<std::int64_t>& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    WEIPIPE_CHECK_MSG(d >= 0, "negative dimension " << d);
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<std::int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(shape_numel(shape_)), 0.0f);
}

Tensor Tensor::zeros(std::vector<std::int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::full(std::vector<std::int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<std::int64_t> shape, Rng& rng, float mean,
                     float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = rng.normal(mean, stddev);
  }
  return t;
}

Tensor Tensor::from_data(std::vector<std::int64_t> shape,
                         std::vector<float> data) {
  WEIPIPE_CHECK_MSG(
      shape_numel(shape) == static_cast<std::int64_t>(data.size()),
      "shape/data mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  // Copy (allocator types differ): the payload lands in tracked storage.
  t.data_.assign(data.begin(), data.end());
  return t;
}

std::int64_t Tensor::dim(std::int64_t i) const {
  if (i < 0) {
    i += ndim();
  }
  WEIPIPE_CHECK_MSG(i >= 0 && i < ndim(), "dim index " << i << " out of range");
  return shape_[static_cast<std::size_t>(i)];
}

namespace {
std::int64_t flat_offset(const std::vector<std::int64_t>& shape,
                         std::initializer_list<std::int64_t> idx) {
  WEIPIPE_CHECK_MSG(idx.size() == shape.size(), "rank mismatch in at()");
  std::int64_t offset = 0;
  std::size_t k = 0;
  for (std::int64_t i : idx) {
    WEIPIPE_CHECK_MSG(i >= 0 && i < shape[k],
                      "index " << i << " out of bounds for dim " << k);
    offset = offset * shape[k] + i;
    ++k;
  }
  return offset;
}
}  // namespace

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return data_[static_cast<std::size_t>(flat_offset(shape_, idx))];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return data_[static_cast<std::size_t>(flat_offset(shape_, idx))];
}

Tensor Tensor::reshaped(std::vector<std::int64_t> shape) const {
  WEIPIPE_CHECK_MSG(shape_numel(shape) == numel(),
                    "reshape numel mismatch: " << shape_str());
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) {
  for (float& v : data_) {
    v = value;
  }
}

Tensor& Tensor::add_(const Tensor& other) {
  WEIPIPE_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  WEIPIPE_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= other.data_[i];
  }
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  WEIPIPE_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] *= other.data_[i];
  }
  return *this;
}

Tensor& Tensor::scale_(float s) {
  for (float& v : data_) {
    v *= s;
  }
  return *this;
}

Tensor& Tensor::axpy_(float s, const Tensor& other) {
  WEIPIPE_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += s * other.data_[i];
  }
  return *this;
}

float Tensor::sum() const {
  // Pairwise-ish accumulation in double keeps strategy-equivalence tests tight.
  double acc = 0.0;
  for (float v : data_) {
    acc += v;
  }
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  WEIPIPE_CHECK(!data_.empty());
  return static_cast<float>(static_cast<double>(sum()) /
                            static_cast<double>(data_.size()));
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) {
    m = std::max(m, std::fabs(v));
  }
  return m;
}

float Tensor::norm() const {
  double acc = 0.0;
  for (float v : data_) {
    acc += static_cast<double>(v) * static_cast<double>(v);
  }
  return static_cast<float>(std::sqrt(acc));
}

std::string Tensor::shape_str() const {
  std::ostringstream oss;
  oss << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    oss << (i ? ", " : "") << shape_[i];
  }
  oss << "]";
  return oss.str();
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  WEIPIPE_CHECK(a.same_shape(b));
  float m = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  }
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!a.same_shape(b)) {
    return false;
  }
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const float tol = atol + rtol * std::fabs(pb[i]);
    if (std::fabs(pa[i] - pb[i]) > tol) {
      return false;
    }
  }
  return true;
}

}  // namespace weipipe
