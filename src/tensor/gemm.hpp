// Cache-blocked, register-tiled single-precision GEMM.
//
// One strided engine serves every orientation the layers need: an element of
// A is addressed as a[i*a_rs + p*a_cs], so a transpose is just a stride swap
// and never a copy. Internally the engine packs panels of A and B into
// thread-local scratch (MC x KC and KC x NC blocks, micro-panel interleaved)
// and runs an MR x NR micro-kernel written so the compiler auto-vectorizes
// the register tile; build with -DWEIPIPE_NATIVE_ARCH=ON to let it use the
// host's full SIMD width (AVX2/FMA/AVX-512). Parallelism is over the 2-D
// grid of MC x NC macro-tiles, dispatched in flop-scaled chunks on the
// kernel thread pool.
//
// The naive triple-loop kernels are retained as the test/bench reference:
// tests/test_gemm.cpp sweeps the tiled engine against them, and
// bench_micro_tensor records the tiled-vs-naive GFLOP/s ratio in
// BENCH_kernels.json.
#pragma once

#include <cstdint>

namespace weipipe::kernels {

// C[m,n] (+)= A[m,k] * B[k,n] with arbitrary element strides for A and B:
// A(i,p) = a[i*a_rs + p*a_cs], B(p,j) = b[p*b_rs + j*b_cs]. C is row-major
// with row stride c_rs (columns contiguous). `accumulate` adds into C
// instead of overwriting it. Deterministic: the K reduction order is fixed
// by the blocking, independent of thread count.
void gemm(const float* a, std::int64_t a_rs, std::int64_t a_cs,
          const float* b, std::int64_t b_rs, std::int64_t b_cs, float* c,
          std::int64_t c_rs, std::int64_t m, std::int64_t k, std::int64_t n,
          bool accumulate);

// Naive reference implementations (serial triple loops). Retained so tests
// and benches always have the pre-tiling semantics to compare against.
void matmul_naive(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n, bool accumulate);
void matmul_bt_naive(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n, bool accumulate);
void matmul_at_naive(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n, bool accumulate);

}  // namespace weipipe::kernels
