// Post-mortem black box: when a run dies, leave a causal timeline behind.
//
// An armed BlackBox turns the four ways a distributed step can die — a
// comm::CommError that exhausts recovery, a watchdog DEAD verdict, a fatal
// signal, or a WEIPIPE_CHECK failure — into one atomic dump: every rank's
// flight-recorder ring is drained into <dir>/postmortem.json together with
// the final HealthReport and any caller-registered sections (fault-event
// logs, config), and the same span timeline is exported through the Chrome
// trace writer as <dir>/postmortem_trace.json so the last moments open
// directly in Perfetto.
//
// Layering: obs cannot include comm, so comm-side context (fault events)
// arrives through set_section() providers registered by the caller, and the
// CommError path is wired at the catch sites (core/resilience.cpp, the
// health CLI) via blackbox_dump_once().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "obs/span.hpp"

namespace weipipe::obs {

struct JsonValue;

struct BlackBoxOptions {
  // Output directory; created on demand. Dump files are postmortem.json and
  // postmortem_trace.json inside it.
  std::string dir = "postmortem";
  // Also export the drained spans through the Perfetto/Chrome-trace writer.
  bool write_perfetto = true;
  // Dump when a WEIPIPE_CHECK fails (hooked via common/check.hpp's
  // failure observer; the throw still proceeds).
  bool dump_on_check_failure = true;
  // Install SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT handlers that dump and
  // re-raise. Off by default: best-effort last words (the dump allocates,
  // which is not async-signal-safe); the health CLI turns it on.
  bool install_signal_handlers = false;
};

class BlackBox {
 public:
  explicit BlackBox(BlackBoxOptions options = {});
  ~BlackBox();  // disarms if still armed
  BlackBox(const BlackBox&) = delete;
  BlackBox& operator=(const BlackBox&) = delete;

  // Makes this instance the process-wide dump target. One at a time.
  void arm();
  void disarm();
  static BlackBox* armed();  // nullptr = no black box armed

  const BlackBoxOptions& options() const { return options_; }

  // Registers a JSON section emitted under `name` in postmortem.json. The
  // provider runs at dump time and must return a complete JSON value (the
  // caller typically closes over a fabric: fault events, wire stats).
  void set_section(const std::string& name,
                   std::function<std::string()> provider);

  // Drains the active recorder (if any) and the health board into
  // <dir>/postmortem.json (+ the Perfetto trace); returns the postmortem
  // path. Thread-safe; every call writes.
  std::string dump(const std::string& reason);
  // First trigger wins: later calls are no-ops returning "". All the
  // failure hooks funnel through this so cascading aborts (every rank
  // throws when the fabric dies) produce exactly one dump.
  std::string dump_once(const std::string& reason);

  std::uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }

 private:
  BlackBoxOptions options_;
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> dumps_{0};
  std::mutex mu_;
  std::map<std::string, std::function<std::string()>> sections_
      WEIPIPE_GUARDED_BY(mu_);
};

// dump_once on the armed black box; "" when none is armed. The one-liner
// the failure paths call.
std::string blackbox_dump_once(const std::string& reason);

// Call first thing in a forked rank child. The child inherits the parent's
// armed pointer, once-latch, check-failure observer, and fatal-signal
// handlers — all aimed at the parent's BlackBox and dump directory. This
// drops them (handlers back to SIG_DFL, observer cleared, latch reset) so
// the child can arm its own instance with a per-rank directory; until it
// does, failures die the default way instead of dumping into the parent's
// files.
void reset_blackbox_after_fork();

// ---- span timeline serialization --------------------------------------------

// The black-box span schema: a JSON array of objects with every Span field
// (kind as its to_string name). spans_from_json inverts it — labels are
// re-interned into static storage so reconstructed spans satisfy the
// Span::label lifetime contract and re-export byte-identically through the
// Chrome trace writer.
std::string spans_to_json(const std::vector<Span>& spans);
std::vector<Span> spans_from_json(const JsonValue& value);

}  // namespace weipipe::obs
