// The runtime span model: what one instrumented interval of the real
// execution engine looks like.
//
// A Span is a closed interval of steady-clock nanoseconds on one rank's
// thread, tagged with what happened inside it. Compute spans carry the
// (microbatch, chunk) identity the schedule algebra reasons about plus the
// activation-memory delta of the op; communication spans are split into the
// *wait* phase (blocked on a message that has not landed) and the *transfer*
// phase (pack/unpack of the payload), and carry peer/tag/bytes plus a flow id
// that pairs each receive with the send that produced its message — the
// Chrome-trace exporter turns those pairs into Perfetto flow arrows.
#pragma once

#include <cstdint>

namespace weipipe::obs {

enum class SpanKind : std::uint8_t {
  // Compute phases (mirror sched::ComputeKind; see sched/span_map.hpp).
  kForward,
  kBackward,         // fused B+W backward
  kBackwardActs,     // zero-bubble B pass
  kBackwardWeights,  // zero-bubble W pass
  kOptimizer,
  kLoss,
  // Communication phases.
  kSendTransfer,  // pack + hand payload to the fabric (eager send)
  kRecvWait,      // blocked until the matching message has landed
  kRecvTransfer,  // unpack/widen the landed payload into the user buffer
  kCollective,    // one ring collective, end to end
  kBarrier,
  // Substrate.
  kKernel,  // one parallel_for dispatch on the tensor thread pool
  kStep,    // one whole train_iteration (recorded by the driving thread)
  kFault,   // one injected fault (comm/fault.hpp); zero-duration marker whose
            // tag/bytes carry the fault kind and injected delay
};

const char* to_string(SpanKind kind);
bool is_compute(SpanKind kind);
bool is_comm(SpanKind kind);

struct Span {
  std::int64_t start_ns = 0;  // steady-clock, same epoch across threads
  std::int64_t end_ns = 0;
  SpanKind kind = SpanKind::kForward;
  std::int32_t rank = -1;  // -1 = unranked thread (driver, pool worker)
  // Compute identity (compute spans; -1 = not applicable).
  std::int64_t microbatch = -1;
  std::int64_t chunk = -1;
  // Communication identity (comm spans; -1 = not applicable).
  std::int32_t peer = -1;
  std::int64_t tag = -1;
  // Payload bytes for comm spans; signed activation-byte delta for compute
  // spans (mirrors sched::ComputeOp::mem_delta).
  std::int64_t bytes = 0;
  // Pairs a receive with the send whose message it consumed (assigned by the
  // fabric, unique per message); -1 = no flow.
  std::int64_t flow_id = -1;
  // Resident activation bytes on this rank after the op (compute spans;
  // negative = untracked).
  double act_bytes_after = -1.0;
  // Optional display-name override. MUST point at static storage (string
  // literal): spans outlive the instrumented scope inside ring buffers.
  const char* label = nullptr;

  double seconds() const {
    return static_cast<double>(end_ns - start_ns) * 1e-9;
  }
};

}  // namespace weipipe::obs
