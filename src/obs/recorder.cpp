#include "obs/recorder.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"

namespace weipipe::obs {

namespace {

std::atomic<Recorder*> g_active{nullptr};

// Installed as the thread pool's KernelObserver when record_kernels is on.
void record_kernel_dispatch(std::size_t items, std::int64_t start_ns,
                            std::int64_t end_ns) {
  Span span;
  span.kind = SpanKind::kKernel;
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  // Loop range size; kernel spans have no payload, so reuse the bytes slot.
  span.bytes = static_cast<std::int64_t>(items);
  record(span);
}

thread_local int t_rank = -1;

// Forked-rank mode (set_process_rank): fallback rank for threads outside
// any RankScope. Atomic only for the cheap relaxed read on the record fast
// path; it is written once per process, before workers exist.
std::atomic<int> g_process_rank{-1};

// Bumped on every install(). The per-thread ring cache keys on this epoch,
// NOT on the recorder's address: a new recorder can be allocated at the
// address of a destroyed one, and an address-keyed cache would then hand out
// rings owned by the dead instance (use-after-free).
std::atomic<std::uint64_t> g_install_epoch{1};

// Per-thread cache of the ring resolved for (install epoch, rank);
// re-resolved whenever either changes (new recorder installed, RankScope
// entered).
struct RingCache {
  std::uint64_t epoch = 0;  // 0 = never resolved
  int rank = -2;
  internal::ThreadRing* ring = nullptr;
};
thread_local RingCache t_cache;

}  // namespace

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kForward: return "F";
    case SpanKind::kBackward: return "B";
    case SpanKind::kBackwardActs: return "Ba";
    case SpanKind::kBackwardWeights: return "Bw";
    case SpanKind::kOptimizer: return "opt";
    case SpanKind::kLoss: return "loss";
    case SpanKind::kSendTransfer: return "send";
    case SpanKind::kRecvWait: return "recv-wait";
    case SpanKind::kRecvTransfer: return "recv-unpack";
    case SpanKind::kCollective: return "collective";
    case SpanKind::kBarrier: return "barrier";
    case SpanKind::kKernel: return "kernel";
    case SpanKind::kStep: return "step";
    case SpanKind::kFault: return "fault";
  }
  return "?";
}

bool is_compute(SpanKind kind) {
  switch (kind) {
    case SpanKind::kForward:
    case SpanKind::kBackward:
    case SpanKind::kBackwardActs:
    case SpanKind::kBackwardWeights:
    case SpanKind::kOptimizer:
    case SpanKind::kLoss:
      return true;
    default:
      return false;
  }
}

bool is_comm(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSendTransfer:
    case SpanKind::kRecvWait:
    case SpanKind::kRecvTransfer:
    case SpanKind::kCollective:
    case SpanKind::kBarrier:
      return true;
    default:
      return false;
  }
}

Recorder::Recorder(RecorderOptions options) : options_(options) {
  WEIPIPE_CHECK_MSG(options_.ring_capacity >= 16,
                    "ring_capacity too small to be useful");
}

Recorder::~Recorder() { uninstall(); }

void Recorder::install() {
  Recorder* expected = nullptr;
  const bool took =
      g_active.compare_exchange_strong(expected, this,
                                       std::memory_order_acq_rel);
  WEIPIPE_CHECK_MSG(took || expected == this,
                    "another obs::Recorder is already installed");
  if (took) {
    g_install_epoch.fetch_add(1, std::memory_order_acq_rel);
  }
  if (options_.record_kernels) {
    set_kernel_observer(&record_kernel_dispatch);
  }
}

void Recorder::uninstall() {
  Recorder* expected = this;
  // Clear the hook before deactivating: a dispatch racing the uninstall may
  // still call the observer, whose record() then sees no active recorder.
  if (options_.record_kernels) {
    set_kernel_observer(nullptr);
  }
  g_active.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_acq_rel);
}

Recorder* Recorder::active() {
  return g_active.load(std::memory_order_relaxed);
}

internal::ThreadRing* Recorder::ring_for(int rank) {
  std::lock_guard<std::mutex> lk(mu_);
  if (rank >= 0) {
    const auto idx = static_cast<std::size_t>(rank);
    if (idx >= rank_rings_.size()) {
      rank_rings_.resize(idx + 1);
    }
    if (!rank_rings_[idx]) {
      rank_rings_[idx] =
          std::make_unique<internal::ThreadRing>(options_.ring_capacity);
    }
    return rank_rings_[idx].get();
  }
  const std::thread::id tid = std::this_thread::get_id();
  for (auto& [id, ring] : thread_rings_) {
    if (id == tid) {
      return ring.get();
    }
  }
  thread_rings_.emplace_back(
      tid, std::make_unique<internal::ThreadRing>(options_.ring_capacity));
  return thread_rings_.back().second.get();
}

std::vector<Span> Recorder::drain() {
  std::vector<internal::ThreadRing*> rings;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& r : rank_rings_) {
      if (r) {
        rings.push_back(r.get());
      }
    }
    for (auto& [id, r] : thread_rings_) {
      rings.push_back(r.get());
    }
  }
  std::vector<Span> out;
  for (internal::ThreadRing* ring : rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
    for (; tail < head; ++tail) {
      out.push_back(ring->slots[tail % ring->slots.size()]);
    }
    ring->tail.store(head, std::memory_order_release);
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.rank != b.rank) {
      return a.rank < b.rank;
    }
    if (a.start_ns != b.start_ns) {
      return a.start_ns < b.start_ns;
    }
    return a.end_ns < b.end_ns;
  });
  return out;
}

std::uint64_t Recorder::dropped() const {
  std::uint64_t n = 0;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& r : rank_rings_) {
    if (r) {
      n += r->dropped.load(std::memory_order_relaxed);
    }
  }
  for (const auto& [id, r] : thread_rings_) {
    n += r->dropped.load(std::memory_order_relaxed);
  }
  return n;
}

std::vector<Recorder::RankDropped> Recorder::dropped_by_rank() const {
  std::vector<RankDropped> out;
  std::uint64_t unranked = 0;
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t i = 0; i < rank_rings_.size(); ++i) {
    if (!rank_rings_[i]) {
      continue;
    }
    const std::uint64_t n =
        rank_rings_[i]->dropped.load(std::memory_order_relaxed);
    if (n > 0) {
      out.push_back({static_cast<int>(i), n});
    }
  }
  for (const auto& [id, r] : thread_rings_) {
    unranked += r->dropped.load(std::memory_order_relaxed);
  }
  if (unranked > 0) {
    out.push_back({-1, unranked});
  }
  return out;
}

bool enabled() { return Recorder::active() != nullptr; }

bool kernels_enabled() {
  Recorder* rec = Recorder::active();
  return rec != nullptr && rec->options().record_kernels;
}

std::int64_t now_ns() { return steady_now_ns(); }

void record(Span span) {
  Recorder* rec = Recorder::active();
  if (rec == nullptr) {
    return;
  }
  if (span.rank < 0) {
    // Attribution only (current_rank() falls back to the process rank in
    // forked mode); ring selection below stays keyed on t_rank so rank
    // rings keep exactly one producer thread.
    span.rank = current_rank();
  }
  const std::uint64_t epoch = g_install_epoch.load(std::memory_order_acquire);
  RingCache& cache = t_cache;
  if (cache.epoch != epoch || cache.rank != t_rank ||
      cache.ring == nullptr) {
    cache.ring = rec->ring_for(t_rank);
    cache.epoch = epoch;
    cache.rank = t_rank;
  }
  internal::ThreadRing* ring = cache.ring;
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
  if (head - tail >= ring->slots.size()) {
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    if (!rec->options().overwrite_oldest) {
      return;
    }
    // Flight-recorder mode: evict the oldest span. Only the producer moves
    // tail while recording; drain() runs at quiescent points, so this store
    // cannot race a concurrent drain of the same ring.
    ring->tail.store(tail + 1, std::memory_order_relaxed);
  }
  ring->slots[head % ring->slots.size()] = span;
  ring->head.store(head + 1, std::memory_order_release);
}

int current_rank() {
  return t_rank >= 0 ? t_rank
                     : g_process_rank.load(std::memory_order_relaxed);
}

void set_process_rank(int rank) {
  g_process_rank.store(rank, std::memory_order_relaxed);
}

int process_rank() { return g_process_rank.load(std::memory_order_relaxed); }

RankScope::RankScope(int rank) : previous_(t_rank) { t_rank = rank; }

RankScope::~RankScope() { t_rank = previous_; }

SpanScope::SpanScope(SpanKind kind, std::int64_t microbatch,
                     std::int64_t chunk)
    : armed_(enabled()) {
  if (!armed_) {
    return;
  }
  span_.kind = kind;
  span_.microbatch = microbatch;
  span_.chunk = chunk;
  span_.start_ns = now_ns();
}

SpanScope::~SpanScope() {
  if (!armed_) {
    return;
  }
  span_.end_ns = now_ns();
  record(span_);
}

}  // namespace weipipe::obs
