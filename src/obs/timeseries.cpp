#include "obs/timeseries.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "obs/json.hpp"
#include "obs/ledger.hpp"

namespace weipipe::obs {

TelemetrySampler::TelemetrySampler(TimeseriesOptions options)
    : options_([&] {
        options.sample_period_seconds =
            std::max(options.sample_period_seconds, 1e-4);
        options.window_capacity = std::max<std::size_t>(
            options.window_capacity, 4);
        return options;
      }()) {}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::watch_registry(const Registry* registry) {
  WEIPIPE_CHECK(registry != nullptr);
  std::lock_guard<std::mutex> lk(mu_);
  if (std::find(registries_.begin(), registries_.end(), registry) ==
      registries_.end()) {
    registries_.push_back(registry);
  }
}

TelemetrySampler::SourceId TelemetrySampler::add_gauge_source(std::string name,
                                                              GaugeFn fn) {
  WEIPIPE_CHECK_MSG(valid_metric_name(name),
                    "invalid telemetry source name: '" << name << "'");
  WEIPIPE_CHECK(fn != nullptr);
  std::lock_guard<std::mutex> lk(mu_);
  Source src;
  src.id = next_source_id_++;
  src.name = std::move(name);
  src.fn = std::move(fn);
  sources_.push_back(std::move(src));
  return sources_.back().id;
}

void TelemetrySampler::remove_source(SourceId id) {
  std::lock_guard<std::mutex> lk(mu_);
  sources_.erase(std::remove_if(sources_.begin(), sources_.end(),
                                [&](const Source& s) { return s.id == id; }),
                 sources_.end());
}

void TelemetrySampler::start() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  thread_ = std::thread(&TelemetrySampler::run, this);
}

void TelemetrySampler::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // One final edge sample so short runs always leave a window behind.
  sample_now();
  std::lock_guard<std::mutex> lk(mu_);
  running_ = false;
}

bool TelemetrySampler::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return running_;
}

void TelemetrySampler::run() {
  const auto period = std::chrono::duration<double>(
      options_.sample_period_seconds);
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_requested_) {
    sample_locked(steady_now_ns());
    cv_.wait_for(lk, period, [&]() WEIPIPE_REQUIRES(mu_) {
      return stop_requested_;
    });
  }
}

void TelemetrySampler::sample_now() {
  std::lock_guard<std::mutex> lk(mu_);
  sample_locked(steady_now_ns());
}

std::uint32_t TelemetrySampler::series_id_locked(const std::string& name) {
  const auto it = series_ids_.find(name);
  if (it != series_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(series_names_.size());
  series_ids_.emplace(name, id);
  series_names_.push_back(name);
  return id;
}

void TelemetrySampler::sample_locked(std::int64_t now_ns) {
  ++samples_taken_;
  // Stride skip: after a decimation, only every stride_-th tick is kept so
  // the window drains capacity at the same decimated cadence.
  if (stride_ > 1 && (tick_++ % stride_) != 0) {
    ++samples_dropped_;
    return;
  }
  if (stride_ == 1) ++tick_;

  Sample sample;
  sample.t_ns = now_ns;
  for (const Registry* reg : registries_) {
    for (auto& [name, value] : reg->flat_snapshot()) {
      sample.values.emplace_back(series_id_locked(name), value);
    }
  }
  if (options_.watch_ledger && ledger().enabled()) {
    const LedgerSnapshot snap = ledger().snapshot();
    for (int k = 0; k < kNumMemKinds; ++k) {
      const std::string base =
          std::string("telemetry.mem.") + to_string(static_cast<MemKind>(k));
      sample.values.emplace_back(
          series_id_locked(base + ".live_bytes"),
          static_cast<double>(snap.kinds[k].live_bytes));
      sample.values.emplace_back(
          series_id_locked(base + ".peak_bytes"),
          static_cast<double>(snap.kinds[k].peak_bytes));
    }
    sample.values.emplace_back(
        series_id_locked("telemetry.mem.total_live_bytes"),
        static_cast<double>(snap.total_live_bytes));
    sample.values.emplace_back(
        series_id_locked("telemetry.mem.max_rank_peak_bytes"),
        static_cast<double>(snap.max_rank_peak_bytes));
  }
  for (const Source& src : sources_) {
    sample.values.emplace_back(series_id_locked(src.name), src.fn());
  }
  window_.push_back(std::move(sample));

  if (window_.size() >= options_.window_capacity) {
    // Keep every second retained sample (newest-first parity so the latest
    // sample always survives) and double the stride going forward.
    std::vector<Sample> kept;
    kept.reserve(window_.size() / 2 + 1);
    const std::size_t n = window_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const bool keep = ((n - 1 - i) % 2) == 0;
      if (keep) {
        kept.push_back(std::move(window_[i]));
      } else {
        ++samples_dropped_;
      }
    }
    window_ = std::move(kept);
    stride_ *= 2;
    tick_ = 1;  // the sample just kept counts as this stride's phase 0
  }
}

TimeseriesSnapshot TelemetrySampler::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  TimeseriesSnapshot out;
  out.labels = options_.labels;
  out.sample_period_seconds = options_.sample_period_seconds;
  out.stride = stride_;
  out.samples_taken = samples_taken_;
  out.samples_dropped = samples_dropped_;
  out.sample_t_ns.reserve(window_.size());
  for (const Sample& s : window_) {
    out.sample_t_ns.push_back(s.t_ns);
  }
  out.series.resize(series_names_.size());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 0; i < series_names_.size(); ++i) {
    out.series[i].name = series_names_[i];
    out.series[i].values.assign(window_.size(), nan);
  }
  for (std::size_t s = 0; s < window_.size(); ++s) {
    for (const auto& [id, value] : window_[s].values) {
      out.series[id].values[s] = value;
    }
  }
  return out;
}

std::string TimeseriesSnapshot::to_json() const {
  std::string j = "{\"schema_version\":";
  j += std::to_string(kTimeseriesSchemaVersion);
  j += ",\"labels\":{\"job\":";
  append_json_string(j, labels.job);
  j += ",\"strategy\":";
  append_json_string(j, labels.strategy);
  j += "},\"sample_period_seconds\":" + json_number(sample_period_seconds);
  j += ",\"stride\":" + std::to_string(stride);
  j += ",\"samples_taken\":" + std::to_string(samples_taken);
  j += ",\"samples_dropped\":" + std::to_string(samples_dropped);
  j += ",\"sample_t_ns\":[";
  for (std::size_t i = 0; i < sample_t_ns.size(); ++i) {
    if (i > 0) j += ',';
    j += std::to_string(sample_t_ns[i]);
  }
  j += "],\"series\":[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i > 0) j += ',';
    j += "{\"name\":";
    append_json_string(j, series[i].name);
    j += ",\"values\":[";
    for (std::size_t v = 0; v < series[i].values.size(); ++v) {
      if (v > 0) j += ',';
      j += json_number(series[i].values[v]);  // NaN -> null, stays parseable
    }
    j += "]}";
  }
  j += "]}";
  return j;
}

std::string TimeseriesSnapshot::to_prometheus() const {
  // Reuse the registry exposition by materializing the latest value of each
  // series as a gauge, labeled with the sampler's job/strategy.
  Registry latest;
  for (const TimeseriesSeries& s : series) {
    for (auto it = s.values.rbegin(); it != s.values.rend(); ++it) {
      if (!std::isnan(*it)) {
        latest.gauge(s.name).set(*it);
        break;
      }
    }
  }
  std::map<std::string, std::string> labels;
  if (!this->labels.job.empty()) labels["job"] = this->labels.job;
  if (!this->labels.strategy.empty()) {
    labels["strategy"] = this->labels.strategy;
  }
  return latest.to_prometheus(labels);
}

}  // namespace weipipe::obs
