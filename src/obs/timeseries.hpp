// Streaming telemetry plane: a periodic sampler thread that snapshots the
// process's live signals — metrics registries, the memory ledger, and any
// caller-registered gauges (fabric ring counters, watchdog verdicts) — into
// a windowed, fixed-capacity time-series ring.
//
// Design contract with the hot path: the sampler only ever *reads* relaxed
// atomics (counters, gauges, ledger watermarks); trainer and fabric threads
// are never blocked or even touched by a sample tick. The sampler's own
// storage is mutex-guarded, but that mutex is private to the sampler thread
// and snapshot() readers — it is never on a training-step path.
//
// The window is bounded: when `window_capacity` samples have accumulated,
// the ring decimates in place (every second sample dropped) and doubles its
// keep-stride, so an arbitrarily long run degrades resolution instead of
// growing memory — the newest samples are always present at the current
// stride. Exports: a schema-versioned timeseries.json and Prometheus text
// exposition, both stamped with {job=,rank=,strategy=} labels — the
// groundwork for the control plane's per-job metric namespaces (ROADMAP 3).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"

namespace weipipe::obs {

inline constexpr int kTimeseriesSchemaVersion = 1;

struct TelemetryLabels {
  std::string job;       // e.g. "profile", "bench", "chaos", "health"
  std::string strategy;  // e.g. "weipipe", "pipeline"
};

struct TimeseriesOptions {
  double sample_period_seconds = 0.010;
  // Samples retained before the ring decimates; >= 4.
  std::size_t window_capacity = 4096;
  TelemetryLabels labels;
  // Snapshot the global memory ledger's gauges each tick.
  bool watch_ledger = true;
};

struct TimeseriesSeries {
  std::string name;
  // Parallel to TimeseriesSnapshot::sample_t_ns; NaN = not sampled yet at
  // that tick (series appeared later).
  std::vector<double> values;
};

struct TimeseriesSnapshot {
  TelemetryLabels labels;
  double sample_period_seconds = 0.0;
  std::int64_t stride = 1;          // current decimation stride
  std::int64_t samples_taken = 0;   // ticks observed over the run
  std::int64_t samples_dropped = 0; // decimated or stride-skipped
  std::vector<std::int64_t> sample_t_ns;  // steady-clock tick times
  std::vector<TimeseriesSeries> series;

  // {"schema_version":1,"labels":{...},"samples":[...],"series":[...]}
  std::string to_json() const;
  // Latest value per series in Prometheus text exposition (gauges; the
  // sampler cannot know producer-side counter semantics).
  std::string to_prometheus() const;
};

class TelemetrySampler {
 public:
  using SourceId = std::uint64_t;
  using GaugeFn = std::function<double()>;

  explicit TelemetrySampler(TimeseriesOptions options = {});
  ~TelemetrySampler();  // stops the thread if still running

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  // Adds a registry whose counters/gauges/histogram(count,sum) are sampled
  // each tick. The registry must outlive the sampler (or be removed first
  // via stop()); typically runtime_metrics() plus a profile-local registry.
  void watch_registry(const Registry* registry);

  // Registers a caller-owned gauge callback, sampled each tick. The
  // callback must stay valid until remove_source() or stop() — sources
  // whose backing object dies mid-run (fabric stats, watchdogs) must be
  // removed before that object is destroyed.
  SourceId add_gauge_source(std::string name, GaugeFn fn);
  void remove_source(SourceId id);

  void start();
  void stop();  // joins the thread; the window stays readable
  bool running() const;

  // Takes one synchronous sample on the calling thread (also used by tests
  // and by stop() for a final edge sample).
  void sample_now();

  TimeseriesSnapshot snapshot() const;

  const TimeseriesOptions& options() const { return options_; }

 private:
  struct Sample {
    std::int64_t t_ns = 0;
    // (series id, value) pairs; sparse so late-appearing series are cheap.
    std::vector<std::pair<std::uint32_t, double>> values;
  };
  struct Source {
    SourceId id = 0;
    std::string name;
    GaugeFn fn;
  };

  void run();
  void sample_locked(std::int64_t now_ns) WEIPIPE_REQUIRES(mu_);
  std::uint32_t series_id_locked(const std::string& name)
      WEIPIPE_REQUIRES(mu_);

  const TimeseriesOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ WEIPIPE_GUARDED_BY(mu_) = false;
  bool running_ WEIPIPE_GUARDED_BY(mu_) = false;
  std::vector<const Registry*> registries_ WEIPIPE_GUARDED_BY(mu_);
  std::vector<Source> sources_ WEIPIPE_GUARDED_BY(mu_);
  SourceId next_source_id_ WEIPIPE_GUARDED_BY(mu_) = 1;
  std::map<std::string, std::uint32_t> series_ids_ WEIPIPE_GUARDED_BY(mu_);
  std::vector<std::string> series_names_ WEIPIPE_GUARDED_BY(mu_);
  std::vector<Sample> window_ WEIPIPE_GUARDED_BY(mu_);
  std::int64_t stride_ WEIPIPE_GUARDED_BY(mu_) = 1;
  std::int64_t tick_ WEIPIPE_GUARDED_BY(mu_) = 0;
  std::int64_t samples_taken_ WEIPIPE_GUARDED_BY(mu_) = 0;
  std::int64_t samples_dropped_ WEIPIPE_GUARDED_BY(mu_) = 0;

  std::thread thread_;
};

}  // namespace weipipe::obs
