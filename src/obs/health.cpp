#include "obs/health.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/stopwatch.hpp"
#include "obs/json.hpp"

namespace weipipe::obs {

namespace {

constexpr double kNsPerSecond = 1e9;

double seconds_since(std::int64_t since_ns, std::int64_t now_ns) {
  return since_ns <= 0 ? 0.0
                       : static_cast<double>(now_ns - since_ns) / kNsPerSecond;
}

}  // namespace

const char* to_string(RankHealth health) {
  switch (health) {
    case RankHealth::kOk: return "ok";
    case RankHealth::kSlow: return "slow";
    case RankHealth::kStalled: return "stalled";
    case RankHealth::kDead: return "dead";
  }
  return "?";
}

// ---- HealthBoard ------------------------------------------------------------

HealthBoard& HealthBoard::instance() {
  static HealthBoard board;
  return board;
}

void HealthBoard::reset(int world) {
  world_.store(std::min(world, kMaxRanks), std::memory_order_relaxed);
  for (Slot& s : slots_) {
    s.last_beat_ns.store(0, std::memory_order_relaxed);
    s.in_step.store(false, std::memory_order_relaxed);
    s.steps.store(0, std::memory_order_relaxed);
    s.comm_ops.store(0, std::memory_order_relaxed);
    s.wait_peer.store(-1, std::memory_order_relaxed);
    s.wait_tag.store(-1, std::memory_order_relaxed);
    s.wait_since_ns.store(0, std::memory_order_relaxed);
    for (auto& w : s.window) {
      w.store(0, std::memory_order_relaxed);
    }
    s.window_count.store(0, std::memory_order_relaxed);
    s.err_kind.store(nullptr, std::memory_order_relaxed);
    s.err_peer.store(-1, std::memory_order_relaxed);
    s.err_tag.store(-1, std::memory_order_relaxed);
    s.err_expected_seq.store(0, std::memory_order_relaxed);
    s.err_pending.store(0, std::memory_order_relaxed);
  }
  job_step_.store(-1, std::memory_order_relaxed);
  job_in_step_.store(false, std::memory_order_relaxed);
  job_begin_ns_.store(0, std::memory_order_relaxed);
  job_end_ns_.store(0, std::memory_order_relaxed);
  for (auto& w : job_window_) {
    w.store(0, std::memory_order_relaxed);
  }
  job_window_count_.store(0, std::memory_order_relaxed);
}

void HealthBoard::on_step_begin(std::int64_t step_index) {
  if (!enabled()) {
    return;
  }
  job_step_.store(step_index, std::memory_order_relaxed);
  job_begin_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  job_in_step_.store(true, std::memory_order_relaxed);
}

void HealthBoard::on_step_end(std::int64_t step_index,
                              std::int64_t duration_ns) {
  if (!enabled()) {
    return;
  }
  job_step_.store(step_index, std::memory_order_relaxed);
  job_in_step_.store(false, std::memory_order_relaxed);
  job_end_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  const std::int64_t n =
      job_window_count_.fetch_add(1, std::memory_order_relaxed);
  job_window_[n % kWindow].store(duration_ns, std::memory_order_relaxed);
}

void HealthBoard::on_worker_begin(int rank) {
  Slot* s = slot(rank);
  if (!enabled() || s == nullptr) {
    return;
  }
  s->last_beat_ns.store(steady_now_ns(), std::memory_order_relaxed);
  s->in_step.store(true, std::memory_order_relaxed);
}

void HealthBoard::on_worker_end(int rank, std::int64_t duration_ns,
                                bool completed) {
  Slot* s = slot(rank);
  if (!enabled() || s == nullptr) {
    return;
  }
  s->in_step.store(false, std::memory_order_relaxed);
  s->wait_peer.store(-1, std::memory_order_relaxed);
  s->wait_tag.store(-1, std::memory_order_relaxed);
  s->wait_since_ns.store(0, std::memory_order_relaxed);
  s->last_beat_ns.store(steady_now_ns(), std::memory_order_relaxed);
  if (completed) {
    record_step_duration(rank, duration_ns);
  }
}

void HealthBoard::on_comm_progress(int rank) {
  Slot* s = slot(rank);
  if (!enabled() || s == nullptr) {
    return;
  }
  s->comm_ops.fetch_add(1, std::memory_order_relaxed);
  s->last_beat_ns.store(steady_now_ns(), std::memory_order_relaxed);
}

void HealthBoard::on_wait_begin(int rank, int peer, std::int64_t tag) {
  Slot* s = slot(rank);
  if (!enabled() || s == nullptr) {
    return;
  }
  const std::int64_t now = steady_now_ns();
  s->wait_tag.store(tag, std::memory_order_relaxed);
  s->wait_since_ns.store(now, std::memory_order_relaxed);
  s->wait_peer.store(peer, std::memory_order_relaxed);
  s->last_beat_ns.store(now, std::memory_order_relaxed);
}

void HealthBoard::on_wait_end(int rank) {
  Slot* s = slot(rank);
  if (!enabled() || s == nullptr) {
    return;
  }
  s->wait_peer.store(-1, std::memory_order_relaxed);
  s->wait_tag.store(-1, std::memory_order_relaxed);
  s->wait_since_ns.store(0, std::memory_order_relaxed);
  s->last_beat_ns.store(steady_now_ns(), std::memory_order_relaxed);
}

void HealthBoard::on_comm_error(int rank, const char* kind, int peer,
                                std::int64_t tag, std::uint64_t expected_seq,
                                std::uint64_t pending_messages) {
  Slot* s = slot(rank);
  if (!enabled() || s == nullptr) {
    return;
  }
  s->err_peer.store(peer, std::memory_order_relaxed);
  s->err_tag.store(tag, std::memory_order_relaxed);
  s->err_expected_seq.store(expected_seq, std::memory_order_relaxed);
  s->err_pending.store(pending_messages, std::memory_order_relaxed);
  // kind last: status_of treats a non-null kind as "error present".
  s->err_kind.store(kind, std::memory_order_release);
}

void HealthBoard::record_step_duration(int rank, std::int64_t duration_ns) {
  Slot* s = slot(rank);
  if (s == nullptr) {
    return;
  }
  // A duration sample is by definition a completed worker body, so this is
  // also where `steps` advances — the straggler gate compares it against
  // min_window, and the synthetic-ingestion path must count the same way as
  // on_worker_end.
  s->steps.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t n =
      s->window_count.fetch_add(1, std::memory_order_relaxed);
  s->window[n % kWindow].store(duration_ns, std::memory_order_relaxed);
}

RankStatus HealthBoard::status_of(int rank, std::int64_t now_ns) const {
  RankStatus st;
  st.rank = rank;
  const Slot* s = slot(rank);
  if (s == nullptr) {
    return st;
  }
  st.in_step = s->in_step.load(std::memory_order_relaxed);
  st.steps = s->steps.load(std::memory_order_relaxed);
  st.comm_ops = s->comm_ops.load(std::memory_order_relaxed);
  st.idle_seconds =
      seconds_since(s->last_beat_ns.load(std::memory_order_relaxed), now_ns);
  const int peer = s->wait_peer.load(std::memory_order_relaxed);
  if (peer >= 0) {
    st.waiting = true;
    st.blocked_on_peer = peer;
    st.blocked_on_tag = s->wait_tag.load(std::memory_order_relaxed);
    st.waiting_seconds = seconds_since(
        s->wait_since_ns.load(std::memory_order_relaxed), now_ns);
  }
  const std::int64_t count =
      std::min<std::int64_t>(s->window_count.load(std::memory_order_relaxed),
                             kWindow);
  if (count > 0) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < count; ++i) {
      sum += static_cast<double>(s->window[i].load(std::memory_order_relaxed));
    }
    st.mean_step_seconds = sum / static_cast<double>(count) / kNsPerSecond;
  }
  if (const char* kind = s->err_kind.load(std::memory_order_acquire)) {
    st.last_error.present = true;
    st.last_error.kind = kind;
    st.last_error.peer = s->err_peer.load(std::memory_order_relaxed);
    st.last_error.tag = s->err_tag.load(std::memory_order_relaxed);
    st.last_error.expected_seq =
        s->err_expected_seq.load(std::memory_order_relaxed);
    st.last_error.pending_messages =
        s->err_pending.load(std::memory_order_relaxed);
  }
  return st;
}

HealthReport HealthBoard::job_status(std::int64_t now_ns) const {
  HealthReport report;
  report.now_ns = now_ns;
  report.world = world();
  report.job_step = job_step_.load(std::memory_order_relaxed);
  report.job_in_step = job_in_step_.load(std::memory_order_relaxed);
  const std::int64_t count = std::min<std::int64_t>(
      job_window_count_.load(std::memory_order_relaxed), kWindow);
  if (count > 0) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < count; ++i) {
      sum += static_cast<double>(
          job_window_[i].load(std::memory_order_relaxed));
    }
    report.job_mean_step_seconds =
        sum / static_cast<double>(count) / kNsPerSecond;
  }
  if (report.job_mean_step_seconds > 0.0) {
    const std::int64_t anchor =
        report.job_in_step ? job_begin_ns_.load(std::memory_order_relaxed)
                           : job_end_ns_.load(std::memory_order_relaxed);
    report.job_cadence_lag =
        seconds_since(anchor, now_ns) / report.job_mean_step_seconds;
  }
  return report;
}

// ---- RAII scopes ------------------------------------------------------------

HealthWorkerScope::HealthWorkerScope(int rank)
    : rank_(rank), armed_(health_enabled()) {
  if (!armed_) {
    return;
  }
  begin_ns_ = steady_now_ns();
  health().on_worker_begin(rank_);
}

HealthWorkerScope::~HealthWorkerScope() {
  if (!armed_) {
    return;
  }
  health().on_worker_end(rank_, steady_now_ns() - begin_ns_, completed_);
}

HealthWaitScope::HealthWaitScope(int rank, int peer, std::int64_t tag)
    : rank_(rank), armed_(health_enabled()) {
  if (!armed_) {
    return;
  }
  health().on_wait_begin(rank_, peer, tag);
}

HealthWaitScope::~HealthWaitScope() {
  if (!armed_) {
    return;
  }
  health().on_wait_end(rank_);
  health().on_comm_progress(rank_);
}

HealthStepScope::HealthStepScope(std::int64_t step_index)
    : step_(step_index), armed_(health_enabled()) {
  if (!armed_) {
    return;
  }
  begin_ns_ = steady_now_ns();
  health().on_step_begin(step_);
}

HealthStepScope::~HealthStepScope() {
  if (!armed_) {
    return;
  }
  health().on_step_end(step_, steady_now_ns() - begin_ns_);
}

// ---- HealthReport -----------------------------------------------------------

int HealthReport::count(RankHealth health) const {
  int n = 0;
  for (const RankStatus& r : ranks) {
    n += r.health == health ? 1 : 0;
  }
  return n;
}

bool HealthReport::all_ok() const {
  return count(RankHealth::kOk) == static_cast<int>(ranks.size());
}

std::string HealthReport::one_line() const {
  std::ostringstream oss;
  oss << "ok=" << count(RankHealth::kOk)
      << " slow=" << count(RankHealth::kSlow)
      << " stalled=" << count(RankHealth::kStalled)
      << " dead=" << count(RankHealth::kDead);
  if (job_step >= 0) {
    oss << " | step " << job_step;
    if (job_mean_step_seconds > 0.0) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), " mean %.1fms lag %.1fx",
                    job_mean_step_seconds * 1e3, job_cadence_lag);
      oss << buf;
    }
  }
  for (const RankStatus& r : ranks) {
    if (r.health == RankHealth::kStalled) {
      oss << " | rank" << r.rank << "->peer" << r.blocked_on_peer;
    } else if (r.health == RankHealth::kDead) {
      oss << " | rank" << r.rank << " DEAD";
    }
  }
  return oss.str();
}

std::string HealthReport::to_json() const {
  std::string out = "{\n  \"schema\": 1,\n  \"now_ns\": ";
  out += std::to_string(now_ns);
  out += ",\n  \"world\": " + std::to_string(world);
  out += ",\n  \"all_ok\": ";
  out += all_ok() ? "true" : "false";
  out += ",\n  \"counts\": {\"ok\": " + std::to_string(count(RankHealth::kOk));
  out += ", \"slow\": " + std::to_string(count(RankHealth::kSlow));
  out += ", \"stalled\": " + std::to_string(count(RankHealth::kStalled));
  out += ", \"dead\": " + std::to_string(count(RankHealth::kDead)) + "},\n";
  out += "  \"job\": {\"step\": " + std::to_string(job_step);
  out += ", \"in_step\": ";
  out += job_in_step ? "true" : "false";
  out += ", \"mean_step_seconds\": " + json_number(job_mean_step_seconds);
  out += ", \"cadence_lag\": " + json_number(job_cadence_lag) + "},\n";
  out += "  \"ranks\": [";
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const RankStatus& r = ranks[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"rank\": " + std::to_string(r.rank) + ", \"health\": ";
    append_json_string(out, to_string(r.health));
    out += ", \"in_step\": ";
    out += r.in_step ? "true" : "false";
    out += ", \"steps\": " + std::to_string(r.steps);
    out += ", \"comm_ops\": " + std::to_string(r.comm_ops);
    out += ", \"mean_step_seconds\": " + json_number(r.mean_step_seconds);
    out += ", \"straggler_z\": " + json_number(r.straggler_z);
    out += ", \"idle_seconds\": " + json_number(r.idle_seconds);
    out += ", \"waiting\": ";
    out += r.waiting ? "true" : "false";
    out += ", \"blocked_on_peer\": " + std::to_string(r.blocked_on_peer);
    out += ", \"blocked_on_tag\": " + std::to_string(r.blocked_on_tag);
    out += ", \"waiting_seconds\": " + json_number(r.waiting_seconds);
    out += ", \"last_error\": ";
    if (r.last_error.present) {
      out += "{\"kind\": ";
      append_json_string(out, r.last_error.kind);
      out += ", \"peer\": " + std::to_string(r.last_error.peer);
      out += ", \"tag\": " + std::to_string(r.last_error.tag);
      out += ", \"expected_seq\": " +
             std::to_string(r.last_error.expected_seq);
      out += ", \"pending_messages\": " +
             std::to_string(r.last_error.pending_messages);
      out += "}";
    } else {
      out += "null";
    }
    out += "}";
  }
  out += ranks.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

// ---- verdict logic ----------------------------------------------------------

namespace {

// Leave-one-out straggler z-scores over the per-rank window means. A plain
// z-score saturates near sqrt(world) with one outlier because the outlier
// itself inflates sigma; excluding the scored rank keeps a single wedged
// rank separable at any world size. Sigma is floored at 5% of the peer mean
// so identical peers (sigma == 0) still produce finite scores.
void fill_straggler_scores(std::vector<RankStatus>& ranks,
                           const WatchdogOptions& options) {
  const std::size_t n = ranks.size();
  if (n < 2) {
    return;
  }
  for (const RankStatus& r : ranks) {
    if (r.steps < options.min_window || r.mean_step_seconds <= 0.0) {
      return;  // scoring needs a full picture of every rank
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    double peer_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      peer_sum += j == i ? 0.0 : ranks[j].mean_step_seconds;
    }
    const double peer_mean = peer_sum / static_cast<double>(n - 1);
    double var = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) {
        continue;
      }
      const double d = ranks[j].mean_step_seconds - peer_mean;
      var += d * d;
    }
    const double sigma = std::max(std::sqrt(var / static_cast<double>(n - 1)),
                                  0.05 * peer_mean);
    if (sigma > 0.0) {
      ranks[i].straggler_z = (ranks[i].mean_step_seconds - peer_mean) / sigma;
    }
    if (ranks[i].straggler_z > options.straggler_z_threshold &&
        ranks[i].mean_step_seconds >
            options.straggler_min_ratio * peer_mean) {
      ranks[i].health = RankHealth::kSlow;
    }
  }
}

HealthReport build_report(std::int64_t now_ns,
                          const WatchdogOptions& options) {
  const HealthBoard& board = health();
  HealthReport report = board.job_status(now_ns);
  report.ranks.reserve(static_cast<std::size_t>(report.world));
  for (int r = 0; r < report.world; ++r) {
    RankStatus st = board.status_of(r, now_ns);
    // Verdict precedence: a published wait proves the thread is alive and
    // parked in the fabric, so STALLED (with attribution) wins over DEAD
    // even though a blocked rank also goes heartbeat-silent. A rank that is
    // in-step with no wait published and no heartbeats is indistinguishable
    // from a wedge: DEAD.
    if (st.waiting && st.waiting_seconds > options.stall_timeout_seconds) {
      st.health = RankHealth::kStalled;
    } else if (st.in_step && !st.waiting &&
               st.idle_seconds > options.dead_timeout_seconds) {
      st.health = RankHealth::kDead;
    }
    report.ranks.push_back(st);
  }
  fill_straggler_scores(report.ranks, options);
  return report;
}

}  // namespace

HealthReport snapshot_health(const WatchdogOptions& options) {
  return build_report(steady_now_ns(), options);
}

// ---- Watchdog ---------------------------------------------------------------

Watchdog::Watchdog(WatchdogOptions options) : options_(options) {}

Watchdog::~Watchdog() { stop(); }

void Watchdog::start(int world) {
  stop();
  HealthBoard& board = health();
  board.reset(world);
  board.set_enabled(true);
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = false;
    dead_fired_ = false;
    prev_.assign(static_cast<std::size_t>(board.world()), RankHealth::kOk);
    transitions_.clear();
    latest_ = HealthReport{};
    latest_.world = board.world();
  }
  running_.store(true, std::memory_order_release);
  monitor_ = std::thread(&Watchdog::loop, this);
}

void Watchdog::stop() {
  if (!monitor_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  monitor_.join();
  running_.store(false, std::memory_order_release);
  health().set_enabled(false);
}

void Watchdog::loop() {
  const auto poll = std::chrono::duration<double>(options_.poll_seconds);
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_requested_) {
    HealthReport report = evaluate(steady_now_ns());
    const bool newly_dead =
        !dead_fired_ && report.count(RankHealth::kDead) > 0;
    if (newly_dead) {
      dead_fired_ = true;
    }
    if (newly_dead && on_dead_) {
      // Callback runs unlocked: it may dump a black box, which reads the
      // watchdog-independent board and recorder.
      auto cb = on_dead_;
      lk.unlock();
      cb(report);
      lk.lock();
    }
    cv_.wait_for(lk, poll, [this]() WEIPIPE_REQUIRES(mu_) {
      return stop_requested_;
    });
  }
}

HealthReport Watchdog::evaluate(std::int64_t now_ns) {
  HealthReport report = build_report(now_ns, options_);
  for (std::size_t i = 0; i < report.ranks.size(); ++i) {
    if (i >= prev_.size()) {
      prev_.resize(report.ranks.size(), RankHealth::kOk);
    }
    const RankHealth to = report.ranks[i].health;
    if (prev_[i] != to) {
      HealthTransition t;
      t.at_ns = now_ns;
      t.rank = report.ranks[i].rank;
      t.from = prev_[i];
      t.to = to;
      t.blocked_on_peer = report.ranks[i].blocked_on_peer;
      transitions_.push_back(t);
      prev_[i] = to;
    }
  }
  latest_ = report;
  return report;
}

HealthReport Watchdog::report() const {
  std::lock_guard<std::mutex> lk(mu_);
  return latest_;
}

HealthReport Watchdog::evaluate_now() {
  std::lock_guard<std::mutex> lk(mu_);
  return evaluate(steady_now_ns());
}

std::vector<HealthTransition> Watchdog::transitions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return transitions_;
}

void Watchdog::set_on_dead(std::function<void(const HealthReport&)> on_dead) {
  on_dead_ = std::move(on_dead);
}

}  // namespace weipipe::obs
