// Low-overhead runtime span recorder.
//
// Design (DESIGN.md-style contract, enforced by tests/test_obs.cpp):
//  * recording is off by default; every instrumentation site begins with one
//    relaxed atomic load (`enabled()`), so compiled-in-but-disabled tracing
//    costs a branch per would-be span — the <5% bench_insitu budget;
//  * each producer thread writes to its own fixed-capacity ring buffer
//    (single producer, no locks on the hot path; registration of a new
//    thread takes a mutex once). Rank threads are re-spawned every
//    train_iteration, so rings for rank >= 0 are keyed by rank and reused
//    across iterations — the join at the end of run_workers provides the
//    happens-before edge between the old and new owner thread;
//  * a full ring drops new spans and counts them (never blocks, never
//    reallocates);
//  * drain() is only legal at quiescent points (after worker joins /
//    barriers), which is when the trainers call it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "obs/span.hpp"

namespace weipipe::obs {

struct RecorderOptions {
  // Spans kept per producer thread between drains.
  std::size_t ring_capacity = 1 << 16;
  // Record a kKernel span per thread-pool parallel_for dispatch. Off by
  // default: tensor kernels fire orders of magnitude more often than
  // schedule-level ops and would drown the rings.
  bool record_kernels = false;
  // Full-ring policy. false (default, the profiling mode): drop the new span
  // so an already-drained prefix stays exact. true (the flight-recorder mode
  // used by the health plane): overwrite the oldest span so the ring always
  // holds the most recent `ring_capacity` spans — a post-mortem wants the
  // moments before the wedge, not the start of the run. Either way every
  // lost span is counted in dropped().
  bool overwrite_oldest = false;
};

class Recorder;

namespace internal {

// Single-producer ring. The producer publishes with a release store of
// `head`; drain() (which runs while the producer is quiescent) acquires it.
struct ThreadRing {
  explicit ThreadRing(std::size_t capacity) : slots(capacity) {}

  std::vector<Span> slots;
  std::atomic<std::uint64_t> head{0};  // next write position
  std::atomic<std::uint64_t> tail{0};  // next drain position
  std::atomic<std::uint64_t> dropped{0};
};

}  // namespace internal

class Recorder {
 public:
  explicit Recorder(RecorderOptions options = {});
  ~Recorder();  // uninstalls if still the active recorder

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // Makes this recorder the process-wide span sink and enables recording.
  void install();
  void uninstall();
  static Recorder* active();  // nullptr = recording disabled

  const RecorderOptions& options() const { return options_; }

  // Collects every recorded span (all threads), ordered by (rank, start),
  // and advances the rings past them. Call only at quiescent points: no
  // rank thread may be recording concurrently.
  std::vector<Span> drain();

  // Spans lost to full rings since construction (never reset by drain —
  // a nonzero value means the trace is incomplete and says so).
  std::uint64_t dropped() const;

  // dropped() broken down by producer ring: one entry per rank ring that
  // lost spans, plus a single rank = -1 entry aggregating unranked threads.
  // Empty when nothing was lost. Feeds the obs.spans.dropped{rank} metrics.
  struct RankDropped {
    int rank = -1;
    std::uint64_t dropped = 0;
  };
  std::vector<RankDropped> dropped_by_rank() const;

  // Internal (instrumentation fast path): the calling thread's ring.
  internal::ThreadRing* ring_for(int rank);

 private:
  RecorderOptions options_;
  mutable std::mutex mu_;
  // rank >= 0: one ring per rank, reused across worker generations.
  std::vector<std::unique_ptr<internal::ThreadRing>> rank_rings_
      WEIPIPE_GUARDED_BY(mu_);
  // rank < 0: one ring per (long-lived) unranked thread.
  std::vector<std::pair<std::thread::id, std::unique_ptr<internal::ThreadRing>>>
      thread_rings_ WEIPIPE_GUARDED_BY(mu_);
};

// ---- fast-path free functions -----------------------------------------------

// One relaxed atomic load; every instrumentation site gates on this.
bool enabled();
// enabled() && active recorder wants kernel spans.
bool kernels_enabled();

std::int64_t now_ns();

// Appends to the calling thread's ring of the active recorder; no-op when
// recording is disabled. `span.rank` < 0 is filled from current_rank().
void record(Span span);

// ---- thread rank scoping ----------------------------------------------------

// The fabric's run_workers() tags each worker thread with its rank for the
// duration of the worker body; instrumentation picks it up implicitly.
int current_rank();  // -1 outside any RankScope (and no process rank set)

// Forked-rank mode: the global rank this process hosts, or -1 in the
// default single-process mode. When set, threads outside any RankScope
// (the driver, prefetch helpers) report it from current_rank(), so spans
// and ledger charges from a rank process land in that rank's bucket
// instead of the unranked one — merged traces and per-process snapshots
// then attribute by global rank with no post-hoc rewriting. Set it once,
// right after fork, before any instrumentation runs.
void set_process_rank(int rank);
int process_rank();

class RankScope {
 public:
  explicit RankScope(int rank);
  ~RankScope();
  RankScope(const RankScope&) = delete;
  RankScope& operator=(const RankScope&) = delete;

 private:
  int previous_;
};

// ---- RAII span --------------------------------------------------------------

// Measures construction..destruction. Arms only if recording was enabled at
// construction; fields besides the interval can be adjusted before close.
class SpanScope {
 public:
  explicit SpanScope(SpanKind kind, std::int64_t microbatch = -1,
                     std::int64_t chunk = -1);
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  bool armed() const { return armed_; }
  void set_peer(int peer) { span_.peer = peer; }
  void set_tag(std::int64_t tag) { span_.tag = tag; }
  void set_bytes(std::int64_t bytes) { span_.bytes = bytes; }
  void set_flow_id(std::int64_t id) { span_.flow_id = id; }
  void set_act_bytes_after(double bytes) { span_.act_bytes_after = bytes; }
  void set_rank(int rank) { span_.rank = rank; }
  // `label` must be a string literal (static storage); see Span::label.
  void set_label(const char* label) { span_.label = label; }

 private:
  bool armed_;
  Span span_;
};

}  // namespace weipipe::obs
