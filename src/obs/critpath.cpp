#include "obs/critpath.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "common/check.hpp"
#include "obs/json.hpp"

namespace weipipe::obs {

namespace {

// One maximal stretch of a rank's timeline during which `span` was the
// innermost (deepest) active span — nesting flattened, so leaves tile each
// rank's busy time without overlap.
struct Leaf {
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  const Span* span = nullptr;
};

// Flattens one rank's (possibly nested) spans into non-overlapping leaves,
// sorted by start. Deepest span wins: a child's interval is carved out of
// its parent, and the parent resumes when the child ends.
std::vector<Leaf> flatten_rank(std::vector<const Span*> spans) {
  std::sort(spans.begin(), spans.end(), [](const Span* a, const Span* b) {
    if (a->start_ns != b->start_ns) return a->start_ns < b->start_ns;
    return a->end_ns > b->end_ns;  // parent before same-start child
  });
  std::vector<Leaf> leaves;
  std::vector<const Span*> stack;
  std::int64_t cursor = spans.empty() ? 0 : spans.front()->start_ns;
  auto advance = [&](std::int64_t until) {
    while (cursor < until) {
      while (!stack.empty() && stack.back()->end_ns <= cursor) {
        stack.pop_back();
      }
      if (stack.empty()) {
        cursor = until;  // idle: no span active — the walk sees a gap
        break;
      }
      const Span* top = stack.back();
      const std::int64_t e = std::min(top->end_ns, until);
      if (e > cursor) {
        leaves.push_back(Leaf{cursor, e, top});
        cursor = e;
      }
      if (top->end_ns <= cursor) {
        stack.pop_back();
      }
    }
  };
  for (const Span* s : spans) {
    advance(s->start_ns);
    cursor = std::max(cursor, s->start_ns);
    stack.push_back(s);
  }
  if (!spans.empty()) {
    std::int64_t last = 0;
    for (const Span* s : spans) last = std::max(last, s->end_ns);
    advance(last);
  }
  return leaves;
}

// Index of the last leaf with start_ns < t, or -1.
int last_leaf_before(const std::vector<Leaf>& leaves, std::int64_t t) {
  int lo = 0;
  int hi = static_cast<int>(leaves.size()) - 1;
  int best = -1;
  while (lo <= hi) {
    const int mid = lo + (hi - lo) / 2;
    if (leaves[static_cast<std::size_t>(mid)].start_ns < t) {
      best = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return best;
}

PathCategory categorize(SpanKind kind) {
  switch (kind) {
    case SpanKind::kForward:
    case SpanKind::kBackward:
    case SpanKind::kBackwardActs:
    case SpanKind::kBackwardWeights:
    case SpanKind::kOptimizer:
    case SpanKind::kLoss:
    case SpanKind::kKernel:
      return PathCategory::kCompute;
    case SpanKind::kSendTransfer:
    case SpanKind::kRecvTransfer:
    case SpanKind::kCollective:
    case SpanKind::kBarrier:
      return PathCategory::kExposedWire;
    case SpanKind::kRecvWait:
      return PathCategory::kBlockedRecv;  // refined by the flow lookup
    case SpanKind::kFault:
      return PathCategory::kStallFault;
    case SpanKind::kStep:
      return PathCategory::kGap;
  }
  return PathCategory::kGap;
}

std::string default_wire_kind(std::int64_t tag) {
  return "tag" + std::to_string(tag);
}

std::string format_ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  return buf;
}

std::string format_pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%", fraction * 1e2);
  return buf;
}

}  // namespace

const char* to_string(PathCategory category) {
  switch (category) {
    case PathCategory::kCompute:
      return "compute";
    case PathCategory::kExposedWire:
      return "exposed_wire";
    case PathCategory::kBlockedRecv:
      return "blocked_recv";
    case PathCategory::kStallFault:
      return "stall_fault";
    case PathCategory::kGap:
      return "gap";
  }
  return "?";
}

StepAnatomy analyze_step(const std::vector<Span>& spans,
                         const AnatomyOptions& options) {
  StepAnatomy out;
  const std::function<std::string(std::int64_t)> wire_label =
      options.wire_kind_label ? options.wire_kind_label : default_wire_kind;

  // Partition: ranked spans form the DAG; kStep markers name the step.
  std::map<int, std::vector<const Span*>> by_rank;
  std::unordered_map<std::int64_t, const Span*> send_by_flow;
  std::vector<const Span*> faults;
  bool any_ranked = false;
  for (const Span& s : spans) {
    if (s.kind == SpanKind::kStep) {
      if (s.microbatch >= 0) out.step_index = s.microbatch;
      continue;
    }
    if (s.rank < 0) continue;
    by_rank[s.rank].push_back(&s);
    if (s.kind == SpanKind::kSendTransfer && s.flow_id >= 0) {
      send_by_flow.emplace(s.flow_id, &s);
    }
    if (s.kind == SpanKind::kFault) {
      faults.push_back(&s);
    }
    if (!any_ranked) {
      out.window_start_ns = s.start_ns;
      out.window_end_ns = s.end_ns;
    } else {
      out.window_start_ns = std::min(out.window_start_ns, s.start_ns);
      out.window_end_ns = std::max(out.window_end_ns, s.end_ns);
    }
    any_ranked = true;
  }
  if (!any_ranked) return out;
  out.ranks = static_cast<int>(by_rank.size());

  std::map<int, std::vector<Leaf>> leaves;
  for (auto& [rank, rs] : by_rank) {
    leaves[rank] = flatten_rank(std::move(rs));
  }

  // The walk starts on the rank whose timeline ends last (ties: lowest
  // rank — std::map order makes `>` keep the first maximal rank).
  int rank = -1;
  std::int64_t last_end = out.window_start_ns - 1;
  for (const auto& [r, ls] : leaves) {
    for (const Leaf& l : ls) {
      if (l.end_ns > last_end) {
        last_end = l.end_ns;
        rank = r;
      }
    }
  }
  WEIPIPE_CHECK(rank >= 0);

  // Backward walk: t strictly decreases every turn, and each emitted
  // segment abuts the previous one, so the path tiles the window exactly.
  std::vector<PathSegment> backward;
  std::int64_t t = out.window_end_ns;
  auto emit = [&](std::int64_t start, std::int64_t end, int seg_rank,
                  PathCategory cat, const Span* span) {
    if (end <= start) return;
    PathSegment seg;
    seg.start_ns = start;
    seg.end_ns = end;
    seg.rank = seg_rank;
    seg.category = cat;
    if (span != nullptr) {
      seg.kind = span->kind;
      seg.peer = span->peer;
      seg.tag = span->tag;
      seg.flow_id = span->flow_id;
      if (cat == PathCategory::kExposedWire && span->tag >= 0) {
        seg.wire_kind = wire_label(span->tag);
      }
    }
    backward.push_back(std::move(seg));
  };
  while (t > out.window_start_ns) {
    const std::vector<Leaf>& lane = leaves[rank];
    const int idx = last_leaf_before(lane, t);
    if (idx < 0) {
      emit(out.window_start_ns, t, rank, PathCategory::kGap, nullptr);
      t = out.window_start_ns;
      break;
    }
    const Leaf& leaf = lane[static_cast<std::size_t>(idx)];
    if (leaf.end_ns < t) {
      // Idle tail: the rank had nothing running in (leaf.end, t].
      emit(leaf.end_ns, t, rank, PathCategory::kGap, nullptr);
      t = leaf.end_ns;
      continue;
    }
    const Span* span = leaf.span;
    const PathCategory cat = categorize(span->kind);
    if (span->kind == SpanKind::kRecvWait) {
      const Span* send = nullptr;
      if (span->flow_id >= 0) {
        const auto it = send_by_flow.find(span->flow_id);
        if (it != send_by_flow.end()) send = it->second;
      }
      if (send != nullptr) {
        if (send->end_ns > leaf.start_ns && send->end_ns < t) {
          // The transfer landed mid-wait: the tail after landing is the
          // exposed hop (receiver wakeup); before that, the path continues
          // on the producer rank, whose transfer leaf is walked next.
          emit(send->end_ns, t, rank, PathCategory::kExposedWire, span);
          t = send->end_ns;
          rank = send->rank;
          continue;
        }
        if (send->end_ns >= t && send->start_ns < t) {
          // The receiver dequeued before the producer finished closing its
          // transfer span (spin receive): only the overlap with the
          // transfer is exposed wire; the wait before the transfer began
          // was pacing on the producer's compute, so jump there.
          const std::int64_t hop = std::max(leaf.start_ns, send->start_ns);
          emit(hop, t, rank, PathCategory::kExposedWire, span);
          t = hop;
          rank = send->rank;
          continue;
        }
        // The transfer completed before the wait began (fabric/wakeup
        // latency), or the matched send lies entirely outside the wait:
        // the whole stretch is exposed wire here.
        emit(leaf.start_ns, t, rank, PathCategory::kExposedWire, span);
        t = leaf.start_ns;
        continue;
      }
      // No producing send known (aborted/timed-out waits carry no flow id;
      // a dropped span loses the flow). If an injected fault froze a rank
      // while this wait was pending (stall plans abort every wait with no
      // send ever recorded), the wait IS the stall: emit it as kStallFault
      // carrying the wait's (peer, tag) so the report names the frozen
      // edge. Faults on the wait's peer win over faults elsewhere; any
      // concurrent fault still explains the dead wait.
      const Span* fault = nullptr;
      for (const Span* f : faults) {
        if (f->start_ns >= t || f->end_ns <= leaf.start_ns) continue;
        if (f->rank == span->peer) {
          fault = f;
          break;
        }
        if (fault == nullptr) fault = f;
      }
      if (fault != nullptr) {
        emit(leaf.start_ns, t, rank, PathCategory::kStallFault, span);
        t = leaf.start_ns;
        continue;
      }
      emit(leaf.start_ns, t, rank, PathCategory::kBlockedRecv, span);
      t = leaf.start_ns;
      continue;
    }
    emit(leaf.start_ns, t, rank, cat, span);
    t = leaf.start_ns;
  }

  // Chronological order, merging contiguous same-identity pieces.
  std::reverse(backward.begin(), backward.end());
  for (PathSegment& seg : backward) {
    if (!out.segments.empty()) {
      PathSegment& prev = out.segments.back();
      if (prev.end_ns == seg.start_ns && prev.rank == seg.rank &&
          prev.category == seg.category && prev.kind == seg.kind &&
          prev.peer == seg.peer && prev.tag == seg.tag &&
          prev.flow_id == seg.flow_id) {
        prev.end_ns = seg.end_ns;
        continue;
      }
    }
    out.segments.push_back(std::move(seg));
  }

  // Aggregations.
  std::map<int, RankAttribution> per_rank;
  std::map<std::string, WireExposure> per_wire;
  for (const PathSegment& seg : out.segments) {
    const double s = seg.seconds();
    out.category_seconds[static_cast<int>(seg.category)] += s;
    RankAttribution& ra = per_rank[seg.rank];
    ra.rank = seg.rank;
    ra.seconds[static_cast<int>(seg.category)] += s;
    if (seg.category == PathCategory::kExposedWire && !seg.wire_kind.empty()) {
      WireExposure& w = per_wire[seg.wire_kind];
      w.kind = seg.wire_kind;
      w.seconds += s;
      ++w.segments;
    }
  }
  out.rank_attribution.reserve(per_rank.size());
  for (auto& [r, ra] : per_rank) out.rank_attribution.push_back(ra);
  out.wire.reserve(per_wire.size());
  for (auto& [k, w] : per_wire) out.wire.push_back(w);
  std::sort(out.wire.begin(), out.wire.end(),
            [](const WireExposure& a, const WireExposure& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.kind < b.kind;
            });
  return out;
}

std::vector<StepAnatomy> analyze_steps(const std::vector<Span>& spans,
                                       const AnatomyOptions& options) {
  std::vector<const Span*> steps;
  for (const Span& s : spans) {
    if (s.kind == SpanKind::kStep) steps.push_back(&s);
  }
  if (steps.size() <= 1) {
    std::vector<StepAnatomy> out;
    out.push_back(analyze_step(spans, options));
    return out;
  }
  std::sort(steps.begin(), steps.end(), [](const Span* a, const Span* b) {
    return a->start_ns < b->start_ns;
  });
  // Assign every span to the latest step marker starting at or before it;
  // spans before the first marker join the first step.
  std::vector<std::vector<Span>> groups(steps.size());
  for (const Span& s : spans) {
    int lo = 0;
    int hi = static_cast<int>(steps.size()) - 1;
    int g = 0;
    while (lo <= hi) {
      const int mid = lo + (hi - lo) / 2;
      if (steps[static_cast<std::size_t>(mid)]->start_ns <= s.start_ns) {
        g = mid;
        lo = mid + 1;
      } else {
        hi = mid - 1;
      }
    }
    groups[static_cast<std::size_t>(g)].push_back(s);
  }
  std::vector<StepAnatomy> out;
  out.reserve(groups.size());
  for (const std::vector<Span>& g : groups) {
    out.push_back(analyze_step(g, options));
  }
  return out;
}

std::string StepAnatomy::to_json() const {
  std::string j = "{\"schema_version\":";
  j += std::to_string(kAnatomySchemaVersion);
  j += ",\"step_index\":" + std::to_string(step_index);
  j += ",\"window_start_ns\":" + std::to_string(window_start_ns);
  j += ",\"window_end_ns\":" + std::to_string(window_end_ns);
  j += ",\"ranks\":" + std::to_string(ranks);
  j += ",\"step_seconds\":" + json_number(step_seconds());
  j += ",\"path_seconds\":" + json_number(path_seconds());
  j += ",\"exposed_comm_fraction\":" + json_number(exposed_comm_fraction());
  j += ",\"compute_fraction\":" + json_number(compute_fraction());
  j += ",\"categories\":{";
  for (int c = 0; c < kNumPathCategories; ++c) {
    if (c > 0) j += ',';
    append_json_string(j, to_string(static_cast<PathCategory>(c)));
    j += ':' + json_number(category_seconds[c]);
  }
  j += "},\"wire\":[";
  for (std::size_t i = 0; i < wire.size(); ++i) {
    if (i > 0) j += ',';
    j += "{\"kind\":";
    append_json_string(j, wire[i].kind);
    j += ",\"seconds\":" + json_number(wire[i].seconds);
    j += ",\"segments\":" + std::to_string(wire[i].segments) + '}';
  }
  j += "],\"ranks_attribution\":[";
  for (std::size_t i = 0; i < rank_attribution.size(); ++i) {
    if (i > 0) j += ',';
    const RankAttribution& ra = rank_attribution[i];
    j += "{\"rank\":" + std::to_string(ra.rank);
    for (int c = 0; c < kNumPathCategories; ++c) {
      j += ',';
      append_json_string(j, to_string(static_cast<PathCategory>(c)));
      j += ':' + json_number(ra.seconds[c]);
    }
    j += '}';
  }
  j += "],\"segments\":[";
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (i > 0) j += ',';
    const PathSegment& seg = segments[i];
    j += "{\"start_ns\":" + std::to_string(seg.start_ns);
    j += ",\"end_ns\":" + std::to_string(seg.end_ns);
    j += ",\"rank\":" + std::to_string(seg.rank);
    j += ",\"category\":";
    append_json_string(j, to_string(seg.category));
    j += ",\"kind\":";
    append_json_string(j, obs::to_string(seg.kind));
    j += ",\"peer\":" + std::to_string(seg.peer);
    j += ",\"tag\":" + std::to_string(seg.tag);
    j += ",\"flow_id\":" + std::to_string(seg.flow_id);
    j += ",\"wire_kind\":";
    append_json_string(j, seg.wire_kind);
    j += '}';
  }
  j += "]}";
  return j;
}

std::string StepAnatomy::ascii_timeline(int width) const {
  std::string out;
  if (segments.empty() || window_end_ns <= window_start_ns) {
    return "(empty step window)\n";
  }
  width = std::max(width, 20);
  const double ns_per_col =
      static_cast<double>(window_end_ns - window_start_ns) / width;
  char head[96];
  std::snprintf(head, sizeof(head),
                "step %lld  |%s| = 1 column %.3f us, window %s\n",
                static_cast<long long>(step_index), "critical path",
                ns_per_col * 1e-3, format_ms(step_seconds()).c_str());
  out += head;
  static const char kGlyph[kNumPathCategories] = {'C', 'W', 'R', 'S', '-'};
  for (const RankAttribution& ra : rank_attribution) {
    char lane[16];
    std::snprintf(lane, sizeof(lane), "r%-3d ", ra.rank);
    out += lane;
    for (int col = 0; col < width; ++col) {
      const std::int64_t c0 =
          window_start_ns + static_cast<std::int64_t>(col * ns_per_col);
      const std::int64_t c1 =
          window_start_ns + static_cast<std::int64_t>((col + 1) * ns_per_col);
      // Dominant path category inside this column on this rank, if any.
      double best = 0.0;
      int best_cat = -1;
      for (const PathSegment& seg : segments) {
        if (seg.rank != ra.rank) continue;
        const std::int64_t lo = std::max(seg.start_ns, c0);
        const std::int64_t hi = std::min(seg.end_ns, std::max(c1, c0 + 1));
        if (hi <= lo) continue;
        const double overlap = static_cast<double>(hi - lo);
        if (overlap > best) {
          best = overlap;
          best_cat = static_cast<int>(seg.category);
        }
      }
      out += best_cat < 0 ? '.' : kGlyph[best_cat];
    }
    out += '\n';
  }
  out +=
      "     C compute  W exposed wire  R blocked recv  S stall  - gap  "
      ". off-path\n";
  return out;
}

std::string StepAnatomy::summary() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "step %lld: critical path %s across %d ranks, "
                "exposed comm %s\n",
                static_cast<long long>(step_index),
                format_ms(path_seconds()).c_str(), ranks,
                format_pct(exposed_comm_fraction()).c_str());
  out += line;
  const double total = path_seconds();
  for (int c = 0; c < kNumPathCategories; ++c) {
    const double s = category_seconds[c];
    std::snprintf(line, sizeof(line), "  %-13s %12s  %s\n",
                  to_string(static_cast<PathCategory>(c)),
                  format_ms(s).c_str(),
                  format_pct(total > 0.0 ? s / total : 0.0).c_str());
    out += line;
  }
  if (!wire.empty()) {
    out += "  exposed wire by kind:";
    for (const WireExposure& w : wire) {
      std::snprintf(line, sizeof(line), " %s=%s/%lldseg", w.kind.c_str(),
                    format_ms(w.seconds).c_str(),
                    static_cast<long long>(w.segments));
      out += line;
    }
    out += '\n';
  }
  out += "  path residency by rank:";
  for (const RankAttribution& ra : rank_attribution) {
    std::snprintf(line, sizeof(line), " r%d=%s", ra.rank,
                  format_ms(ra.total_seconds()).c_str());
    out += line;
  }
  out += '\n';
  return out;
}

}  // namespace weipipe::obs
