#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <map>

#include "obs/json.hpp"
#include "obs/recorder.hpp"

namespace weipipe::obs {

namespace {

// Track id for a span: ranks map to themselves, every unranked thread's
// spans share one "driver/other" track.
constexpr int kUnrankedTid = 999;

int tid_of(const Span& s) { return s.rank >= 0 ? s.rank : kUnrankedTid; }

void append_common(std::string& out, const char* ph, int tid, double ts_us) {
  out += "{\"ph\":\"";
  out += ph;
  out += "\",\"pid\":1,\"tid\":" + std::to_string(tid) +
         ",\"ts\":" + json_number(ts_us);
}

}  // namespace

std::string spans_to_chrome_trace(const std::vector<Span>& spans,
                                  ChromeTraceOptions options) {
  std::vector<Span> sorted = spans;
  std::sort(sorted.begin(), sorted.end(), [](const Span& a, const Span& b) {
    if (tid_of(a) != tid_of(b)) {
      return tid_of(a) < tid_of(b);
    }
    if (a.start_ns != b.start_ns) {
      return a.start_ns < b.start_ns;
    }
    return a.end_ns > b.end_ns;  // parents before their nested children
  });

  std::int64_t epoch_ns = 0;
  bool have_epoch = false;
  std::map<int, bool> tracks;
  for (const Span& s : sorted) {
    if (!have_epoch || s.start_ns < epoch_ns) {
      epoch_ns = s.start_ns;
      have_epoch = true;
    }
    tracks[tid_of(s)] = true;
  }
  auto to_us = [&](std::int64_t ns) {
    return static_cast<double>(ns - epoch_ns) * 1e-3;
  };

  // A flow arrow needs both ends; index send/recv spans by flow id.
  std::map<std::int64_t, const Span*> flow_send;
  std::map<std::int64_t, const Span*> flow_recv;
  if (options.flow_arrows) {
    for (const Span& s : sorted) {
      if (s.flow_id < 0) {
        continue;
      }
      if (s.kind == SpanKind::kSendTransfer) {
        flow_send[s.flow_id] = &s;
      } else if (s.kind == SpanKind::kRecvWait ||
                 s.kind == SpanKind::kRecvTransfer) {
        // Prefer the wait span (it ends when the message lands).
        auto it = flow_recv.find(s.flow_id);
        if (it == flow_recv.end() || s.kind == SpanKind::kRecvWait) {
          flow_recv[s.flow_id] = &s;
        }
      }
    }
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) {
      out += ",\n";
    }
    first = false;
  };

  // Process + thread naming metadata.
  sep();
  out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{"
         "\"name\":";
  append_json_string(out, options.process_name);
  out += "}}";
  for (const auto& [tid, unused] : tracks) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_json_string(out, tid == kUnrankedTid
                                ? std::string("driver/other")
                                : "rank " + std::to_string(tid));
    out += "}}";
  }

  for (const Span& s : sorted) {
    sep();
    append_common(out, "X", tid_of(s), to_us(s.start_ns));
    out += ",\"dur\":" +
           json_number(static_cast<double>(s.end_ns - s.start_ns) * 1e-3);
    out += ",\"cat\":";
    append_json_string(out, is_compute(s.kind) ? "compute"
                            : is_comm(s.kind)  ? "comm"
                                               : "runtime");
    out += ",\"name\":";
    append_json_string(out, s.label != nullptr ? s.label : to_string(s.kind));
    out += ",\"args\":{";
    bool first_arg = true;
    auto arg = [&](const char* key, const std::string& value) {
      if (!first_arg) {
        out += ",";
      }
      first_arg = false;
      append_json_string(out, key);
      out += ":" + value;
    };
    if (s.microbatch >= 0) {
      arg("microbatch", std::to_string(s.microbatch));
    }
    if (s.chunk >= 0) {
      arg("chunk", std::to_string(s.chunk));
    }
    if (s.peer >= 0) {
      arg("peer", std::to_string(s.peer));
    }
    if (s.tag >= 0) {
      arg("tag", std::to_string(s.tag));
    }
    if (s.bytes != 0) {
      arg("bytes", std::to_string(s.bytes));
    }
    if (s.flow_id >= 0) {
      arg("flow", std::to_string(s.flow_id));
    }
    if (s.act_bytes_after >= 0.0) {
      arg("act_bytes_after", json_number(s.act_bytes_after));
    }
    out += "}}";
  }

  if (options.flow_arrows) {
    for (const auto& [id, send] : flow_send) {
      const auto it = flow_recv.find(id);
      if (it == flow_recv.end()) {
        continue;  // message landed outside the traced window
      }
      const Span* recv = it->second;
      sep();
      append_common(out, "s", tid_of(*send), to_us(send->start_ns));
      out += ",\"cat\":\"wire\",\"name\":\"msg\",\"id\":" +
             std::to_string(id) + "}";
      sep();
      append_common(out, "f", tid_of(*recv), to_us(recv->end_ns));
      out += ",\"cat\":\"wire\",\"name\":\"msg\",\"bp\":\"e\",\"id\":" +
             std::to_string(id) + "}";
    }
  }

  out += "\n]}\n";
  return out;
}

}  // namespace weipipe::obs
