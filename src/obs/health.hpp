// Live health plane: per-rank heartbeat board + stall/straggler watchdog.
//
// WeiPipe's weight-circulation ring serializes the whole step behind its
// slowest rank, so "is every rank keeping pace, and if not, who is it stuck
// behind?" must be answerable *while the run is live* — not after the fact
// from a Perfetto trace. Three pieces:
//
//  * HealthBoard — a process-global, all-atomic scoreboard. Rank worker
//    threads and the fabric publish heartbeats into fixed per-rank slots
//    (worker begin/end, send/recv progress, blocked-on-peer waits, last
//    structured CommError); the driving thread publishes step boundaries.
//    Every hook is one relaxed load when disabled and a handful of relaxed
//    stores when armed — cheap enough to leave compiled into every run,
//    same budget discipline as the span recorder and the memory ledger.
//  * Watchdog — a monitor thread that periodically folds the board into a
//    HealthReport: per-rank OK/SLOW/STALLED/DEAD verdicts, expected-vs-
//    observed step cadence, a straggler z-score over a sliding window of
//    step times, and ring-edge attribution of *which* peer a stalled rank
//    is blocked on (from the fabric's live wait publication plus the
//    structured CommError context of comm/fault.hpp).
//  * obs/blackbox.hpp consumes both on the way down: a fatal error drains
//    the flight-recorder rings and the final HealthReport into
//    postmortem.json.
//
// Layering: obs must not depend on comm, so the board stores only plain
// ints and static strings; the fabric and comm::CommError push their context
// in through the hook functions below.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace weipipe::obs {

enum class RankHealth : std::uint8_t {
  kOk,
  kSlow,     // straggler: step times are a statistical outlier vs peers
  kStalled,  // blocked on one peer for longer than the stall timeout
  kDead,     // in-step but publishing no heartbeats at all
};

const char* to_string(RankHealth health);

// Last structured communication failure a rank observed (mirrors
// comm::CommErrorInfo without the layering dependency; `kind` is the static
// string from comm::to_string(CommErrorKind)).
struct RankCommError {
  bool present = false;
  const char* kind = "";
  int peer = -1;
  std::int64_t tag = -1;
  std::uint64_t expected_seq = 0;
  std::uint64_t pending_messages = 0;
};

struct RankStatus {
  int rank = 0;
  RankHealth health = RankHealth::kOk;
  bool in_step = false;            // inside a worker body right now
  std::int64_t steps = 0;          // completed worker bodies
  std::int64_t comm_ops = 0;       // fabric sends/recvs observed
  double mean_step_seconds = 0.0;  // sliding-window mean worker-body time
  double straggler_z = 0.0;        // leave-one-out z-score vs peers
  double idle_seconds = 0.0;       // since the last heartbeat of any kind
  // Live blocked-on attribution, published by Fabric::take while waiting.
  bool waiting = false;
  int blocked_on_peer = -1;
  std::int64_t blocked_on_tag = -1;
  double waiting_seconds = 0.0;
  RankCommError last_error;
};

struct HealthReport {
  std::int64_t now_ns = 0;
  int world = 0;
  std::int64_t job_step = -1;         // last step index the driver started
  bool job_in_step = false;
  double job_mean_step_seconds = 0.0;  // sliding mean of completed steps
  // Expected-vs-observed cadence: elapsed time since the current step began
  // (or the last one ended), in units of the mean step time. ~1 is on pace;
  // >> 1 means the job has gone quiet. 0 when no cadence is established.
  double job_cadence_lag = 0.0;
  std::vector<RankStatus> ranks;

  int count(RankHealth health) const;
  bool all_ok() const;
  // "ok=4 slow=0 stalled=0 dead=0 | step 7 mean 12.3ms" — the periodic
  // status line `weipipe_cli health` prints.
  std::string one_line() const;
  std::string to_json() const;
};

// ---- heartbeat board --------------------------------------------------------

class HealthBoard {
 public:
  // Fixed slot count: heartbeats index an array, never allocate.
  static constexpr int kMaxRanks = 64;
  // Sliding window of recent step/worker durations per rank.
  static constexpr int kWindow = 16;

  static HealthBoard& instance();

  // One relaxed load; every hook gates on this. Armed by Watchdog::start.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Clears every slot and sets the rank count (clamped to kMaxRanks).
  void reset(int world);
  int world() const { return world_.load(std::memory_order_relaxed); }

  // Driver-thread step boundaries (trainer train_iteration entry/exit).
  void on_step_begin(std::int64_t step_index);
  void on_step_end(std::int64_t step_index, std::int64_t duration_ns);

  // Rank worker-thread heartbeats (fabric run_workers / trainer bodies).
  void on_worker_begin(int rank);
  void on_worker_end(int rank, std::int64_t duration_ns, bool completed);
  void on_comm_progress(int rank);
  void on_wait_begin(int rank, int peer, std::int64_t tag);
  void on_wait_end(int rank);
  // Called by the comm::CommError constructor; `kind` must point at static
  // storage (it is comm::to_string(CommErrorKind)).
  void on_comm_error(int rank, const char* kind, int peer, std::int64_t tag,
                     std::uint64_t expected_seq,
                     std::uint64_t pending_messages);

  // Test/ingestion path: append a synthetic worker-duration sample.
  void record_step_duration(int rank, std::int64_t duration_ns);

  // Raw slot snapshot (no verdict; the Watchdog adds those). `now_ns` sets
  // the reference point for idle/waiting ages.
  RankStatus status_of(int rank, std::int64_t now_ns) const;
  // Job-level cadence fields of a report (ranks left empty).
  HealthReport job_status(std::int64_t now_ns) const;

 private:
  HealthBoard() = default;

  struct alignas(64) Slot {
    std::atomic<std::int64_t> last_beat_ns{0};
    std::atomic<bool> in_step{false};
    std::atomic<std::int64_t> steps{0};
    std::atomic<std::int64_t> comm_ops{0};
    std::atomic<int> wait_peer{-1};
    std::atomic<std::int64_t> wait_tag{-1};
    std::atomic<std::int64_t> wait_since_ns{0};
    std::atomic<std::int64_t> window[kWindow]{};
    std::atomic<std::int64_t> window_count{0};
    std::atomic<const char*> err_kind{nullptr};
    std::atomic<int> err_peer{-1};
    std::atomic<std::int64_t> err_tag{-1};
    std::atomic<std::uint64_t> err_expected_seq{0};
    std::atomic<std::uint64_t> err_pending{0};
  };

  Slot* slot(int rank) {
    return rank >= 0 && rank < kMaxRanks ? &slots_[rank] : nullptr;
  }
  const Slot* slot(int rank) const {
    return rank >= 0 && rank < kMaxRanks ? &slots_[rank] : nullptr;
  }

  std::atomic<bool> enabled_{false};
  std::atomic<int> world_{0};
  Slot slots_[kMaxRanks];

  std::atomic<std::int64_t> job_step_{-1};
  std::atomic<bool> job_in_step_{false};
  std::atomic<std::int64_t> job_begin_ns_{0};
  std::atomic<std::int64_t> job_end_ns_{0};
  std::atomic<std::int64_t> job_window_[kWindow]{};
  std::atomic<std::int64_t> job_window_count_{0};
};

inline HealthBoard& health() { return HealthBoard::instance(); }
inline bool health_enabled() { return health().enabled(); }

// ---- instrumentation RAII ---------------------------------------------------

// One rank worker body (run_workers spawns one per rank per iteration).
// Destruction publishes worker-end; call complete() on the clean-exit path
// so the duration sample only feeds the straggler window for finished
// bodies, not aborted ones.
class HealthWorkerScope {
 public:
  explicit HealthWorkerScope(int rank);
  ~HealthWorkerScope();
  HealthWorkerScope(const HealthWorkerScope&) = delete;
  HealthWorkerScope& operator=(const HealthWorkerScope&) = delete;
  void complete() { completed_ = true; }

 private:
  int rank_;
  std::int64_t begin_ns_ = 0;
  bool armed_;
  bool completed_ = false;
};

// One blocked receive (Fabric::take). Publishes which peer/tag the rank is
// waiting on for the duration; the destructor clears the wait and counts a
// comm-progress heartbeat.
class HealthWaitScope {
 public:
  HealthWaitScope(int rank, int peer, std::int64_t tag);
  ~HealthWaitScope();
  HealthWaitScope(const HealthWaitScope&) = delete;
  HealthWaitScope& operator=(const HealthWaitScope&) = delete;

 private:
  int rank_;
  bool armed_;
};

// One train_iteration on the driving thread (step-cadence heartbeat).
class HealthStepScope {
 public:
  explicit HealthStepScope(std::int64_t step_index);
  ~HealthStepScope();
  HealthStepScope(const HealthStepScope&) = delete;
  HealthStepScope& operator=(const HealthStepScope&) = delete;

 private:
  std::int64_t step_;
  std::int64_t begin_ns_ = 0;
  bool armed_;
};

// ---- watchdog ---------------------------------------------------------------

struct WatchdogOptions {
  double poll_seconds = 0.05;
  // Blocked on one peer longer than this => STALLED.
  double stall_timeout_seconds = 0.5;
  // In-step with no heartbeat at all longer than this => DEAD. Must cover
  // the longest legitimately silent compute stretch of the workload.
  double dead_timeout_seconds = 5.0;
  // Straggler scoring: a rank is SLOW when its window-mean step time is both
  // `straggler_z_threshold` leave-one-out standard deviations above its
  // peers AND `straggler_min_ratio` times the peer mean (the ratio guard
  // keeps tightly-clustered fast ranks from flagging noise). Scoring needs
  // >= min_window samples on every compared rank and >= 2 ranks.
  double straggler_z_threshold = 3.0;
  double straggler_min_ratio = 1.5;
  int min_window = 3;
};

// One verdict change, as observed by the poll loop (or evaluate_now).
struct HealthTransition {
  std::int64_t at_ns = 0;
  int rank = -1;
  RankHealth from = RankHealth::kOk;
  RankHealth to = RankHealth::kOk;
  int blocked_on_peer = -1;  // attribution at the moment of the transition
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options = {});
  ~Watchdog();  // stops if still running
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Resets + arms the board for `world` ranks and spawns the monitor
  // thread. One watchdog at a time (the board is process-global).
  void start(int world);
  void stop();  // joins the monitor thread and disarms the board
  bool running() const { return running_.load(std::memory_order_acquire); }

  const WatchdogOptions& options() const { return options_; }

  // Latest report computed by the poll loop (or evaluate_now).
  HealthReport report() const;
  // Folds the board into a report immediately on the calling thread,
  // recording verdict transitions; works with or without the poll thread.
  HealthReport evaluate_now();
  // Verdict changes observed so far, in observation order.
  std::vector<HealthTransition> transitions() const;

  // Invoked (from the monitor thread) the first time any rank is judged
  // DEAD — the black-box dump trigger. Set before start().
  void set_on_dead(std::function<void(const HealthReport&)> on_dead);

 private:
  void loop();
  HealthReport evaluate(std::int64_t now_ns) WEIPIPE_REQUIRES(mu_);

  WatchdogOptions options_;
  std::atomic<bool> running_{false};
  bool stop_requested_ WEIPIPE_GUARDED_BY(mu_) = false;
  std::thread monitor_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  HealthReport latest_ WEIPIPE_GUARDED_BY(mu_);
  std::vector<RankHealth> prev_ WEIPIPE_GUARDED_BY(mu_);
  std::vector<HealthTransition> transitions_ WEIPIPE_GUARDED_BY(mu_);
  std::function<void(const HealthReport&)> on_dead_;
  bool dead_fired_ WEIPIPE_GUARDED_BY(mu_) = false;
};

// Folds the current board into a report without a Watchdog (used by the
// black box at dump time; verdicts use `options` thresholds).
HealthReport snapshot_health(const WatchdogOptions& options = {});

}  // namespace weipipe::obs
