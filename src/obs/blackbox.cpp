#include "obs/blackbox.hpp"

#include <csignal>
#include <filesystem>
#include <fstream>
#include <set>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/recorder.hpp"

namespace weipipe::obs {

namespace {

std::atomic<BlackBox*> g_armed{nullptr};

// One-shot latch shared by every trigger path (watchdog, CHECK, signal,
// catch sites): only the first failure of a run writes the black box.
std::atomic<bool> g_dumped{false};

void check_failure_trampoline(const char* what) {
  blackbox_dump_once(std::string("check-failure: ") + what);
}

// ---- fatal signals ----------------------------------------------------------

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};
constexpr std::size_t kNumFatalSignals =
    sizeof(kFatalSignals) / sizeof(kFatalSignals[0]);
void (*g_previous_handlers[kNumFatalSignals])(int) = {};

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGABRT: return "SIGABRT";
  }
  return "signal";
}

// Best-effort last words: dumping allocates and locks, neither of which is
// async-signal-safe — but the process is dying anyway, and a torn dump
// beats no dump. The default action is restored first so a second fault
// inside the dump terminates instead of recursing.
void fatal_signal_handler(int sig) {
  std::signal(sig, SIG_DFL);
  blackbox_dump_once(std::string("fatal-signal: ") + signal_name(sig));
  std::raise(sig);
}

void install_signal_handlers() {
  for (std::size_t i = 0; i < kNumFatalSignals; ++i) {
    g_previous_handlers[i] =
        std::signal(kFatalSignals[i], &fatal_signal_handler);
  }
}

void restore_signal_handlers() {
  for (std::size_t i = 0; i < kNumFatalSignals; ++i) {
    std::signal(kFatalSignals[i],
                g_previous_handlers[i] != SIG_ERR ? g_previous_handlers[i]
                                                  : SIG_DFL);
  }
}

// ---- span JSON --------------------------------------------------------------

SpanKind span_kind_from_name(const std::string& name) {
  static constexpr SpanKind kAll[] = {
      SpanKind::kForward,      SpanKind::kBackward,
      SpanKind::kBackwardActs, SpanKind::kBackwardWeights,
      SpanKind::kOptimizer,    SpanKind::kLoss,
      SpanKind::kSendTransfer, SpanKind::kRecvWait,
      SpanKind::kRecvTransfer, SpanKind::kCollective,
      SpanKind::kBarrier,      SpanKind::kKernel,
      SpanKind::kStep,         SpanKind::kFault,
  };
  for (SpanKind k : kAll) {
    if (name == to_string(k)) {
      return k;
    }
  }
  WEIPIPE_CHECK_MSG(false, "unknown span kind '" << name << "'");
  return SpanKind::kForward;
}

// Span::label must point at static storage; labels parsed back from JSON are
// interned into a leaky pool (label vocabulary is tiny — collective names).
const char* intern_label(const std::string& label) {
  static std::mutex mu;
  static std::set<std::string>* pool = new std::set<std::string>();
  std::lock_guard<std::mutex> lk(mu);
  return pool->insert(label).first->c_str();
}

std::int64_t field_i64(const JsonValue& obj, const char* key,
                       std::int64_t fallback) {
  const JsonValue* v = obj.find(key);
  return v == nullptr ? fallback : static_cast<std::int64_t>(v->as_number());
}

}  // namespace

std::string spans_to_json(const std::vector<Span>& spans) {
  std::string out = "[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"kind\": ";
    append_json_string(out, to_string(s.kind));
    out += ", \"start_ns\": " + std::to_string(s.start_ns);
    out += ", \"end_ns\": " + std::to_string(s.end_ns);
    out += ", \"rank\": " + std::to_string(s.rank);
    out += ", \"microbatch\": " + std::to_string(s.microbatch);
    out += ", \"chunk\": " + std::to_string(s.chunk);
    out += ", \"peer\": " + std::to_string(s.peer);
    out += ", \"tag\": " + std::to_string(s.tag);
    out += ", \"bytes\": " + std::to_string(s.bytes);
    out += ", \"flow_id\": " + std::to_string(s.flow_id);
    out += ", \"act_bytes_after\": " + json_number(s.act_bytes_after);
    if (s.label != nullptr) {
      out += ", \"label\": ";
      append_json_string(out, s.label);
    }
    out += "}";
  }
  out += spans.empty() ? "]" : "\n]";
  return out;
}

std::vector<Span> spans_from_json(const JsonValue& value) {
  WEIPIPE_CHECK_MSG(value.is_array(), "span timeline must be a JSON array");
  std::vector<Span> spans;
  spans.reserve(value.array.size());
  for (const JsonValue& v : value.array) {
    WEIPIPE_CHECK_MSG(v.is_object(), "span entry must be a JSON object");
    Span s;
    const JsonValue* kind = v.find("kind");
    WEIPIPE_CHECK_MSG(kind != nullptr, "span entry missing 'kind'");
    s.kind = span_kind_from_name(kind->as_string());
    s.start_ns = field_i64(v, "start_ns", 0);
    s.end_ns = field_i64(v, "end_ns", 0);
    s.rank = static_cast<std::int32_t>(field_i64(v, "rank", -1));
    s.microbatch = field_i64(v, "microbatch", -1);
    s.chunk = field_i64(v, "chunk", -1);
    s.peer = static_cast<std::int32_t>(field_i64(v, "peer", -1));
    s.tag = field_i64(v, "tag", -1);
    s.bytes = field_i64(v, "bytes", 0);
    s.flow_id = field_i64(v, "flow_id", -1);
    if (const JsonValue* act = v.find("act_bytes_after")) {
      s.act_bytes_after = act->is_null() ? -1.0 : act->as_number();
    }
    if (const JsonValue* label = v.find("label")) {
      s.label = intern_label(label->as_string());
    }
    spans.push_back(s);
  }
  return spans;
}

// ---- BlackBox ---------------------------------------------------------------

BlackBox::BlackBox(BlackBoxOptions options) : options_(std::move(options)) {}

BlackBox::~BlackBox() { disarm(); }

void BlackBox::arm() {
  BlackBox* expected = nullptr;
  const bool took =
      g_armed.compare_exchange_strong(expected, this,
                                      std::memory_order_acq_rel);
  WEIPIPE_CHECK_MSG(took || expected == this,
                    "another obs::BlackBox is already armed");
  if (!took) {
    return;
  }
  armed_.store(true, std::memory_order_release);
  g_dumped.store(false, std::memory_order_relaxed);
  if (options_.dump_on_check_failure) {
    detail::set_check_failure_observer(&check_failure_trampoline);
  }
  if (options_.install_signal_handlers) {
    install_signal_handlers();
  }
}

void BlackBox::disarm() {
  BlackBox* expected = this;
  if (!g_armed.compare_exchange_strong(expected, nullptr,
                                       std::memory_order_acq_rel)) {
    return;
  }
  if (options_.install_signal_handlers) {
    restore_signal_handlers();
  }
  if (options_.dump_on_check_failure) {
    detail::set_check_failure_observer(nullptr);
  }
  armed_.store(false, std::memory_order_release);
}

BlackBox* BlackBox::armed() {
  return g_armed.load(std::memory_order_acquire);
}

void BlackBox::set_section(const std::string& name,
                           std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lk(mu_);
  sections_[name] = std::move(provider);
}

std::string BlackBox::dump(const std::string& reason) {
  std::lock_guard<std::mutex> lk(mu_);
  // Drain every rank's flight ring at once — the dump is the quiescent
  // point (workers have either joined or are wedged; a wedged producer can
  // at worst contribute one torn span, never corrupt the ring indices).
  std::vector<Span> spans;
  std::uint64_t dropped = 0;
  if (Recorder* rec = Recorder::active()) {
    spans = rec->drain();
    dropped = rec->dropped();
  }
  const HealthReport health_report = snapshot_health();

  std::string out = "{\n  \"schema\": 1,\n  \"reason\": ";
  append_json_string(out, reason);
  out += ",\n  \"now_ns\": " + std::to_string(steady_now_ns());
  out += ",\n  \"dropped_spans\": " + std::to_string(dropped);
  out += ",\n  \"health\": ";
  {
    std::string health_json = health_report.to_json();
    while (!health_json.empty() && health_json.back() == '\n') {
      health_json.pop_back();
    }
    out += health_json;
  }
  for (const auto& [name, provider] : sections_) {
    out += ",\n  ";
    append_json_string(out, name);
    out += ": ";
    std::string body = provider ? provider() : "null";
    while (!body.empty() && body.back() == '\n') {
      body.pop_back();
    }
    out += body.empty() ? "null" : body;
  }
  out += ",\n  \"spans\": " + spans_to_json(spans);
  out += "\n}\n";

  namespace fs = std::filesystem;
  const fs::path dir(options_.dir.empty() ? "." : options_.dir);
  std::error_code ec;
  fs::create_directories(dir, ec);  // best effort; the open below reports
  const fs::path postmortem = dir / "postmortem.json";
  {
    std::ofstream f(postmortem, std::ios::binary | std::ios::trunc);
    WEIPIPE_CHECK_MSG(f.good(), "cannot write " << postmortem.string());
    f << out;
  }
  if (options_.write_perfetto) {
    std::ofstream f(dir / "postmortem_trace.json",
                    std::ios::binary | std::ios::trunc);
    if (f.good()) {
      f << spans_to_chrome_trace(spans);
    }
  }
  dumps_.fetch_add(1, std::memory_order_relaxed);
  return postmortem.string();
}

std::string BlackBox::dump_once(const std::string& reason) {
  if (g_dumped.exchange(true, std::memory_order_acq_rel)) {
    return "";
  }
  return dump(reason);
}

std::string blackbox_dump_once(const std::string& reason) {
  BlackBox* box = BlackBox::armed();
  return box == nullptr ? "" : box->dump_once(reason);
}

void reset_blackbox_after_fork() {
  // Single-threaded right after fork: plain stores suffice, but keep the
  // atomics honest. The parent's BlackBox object still exists in our
  // copy-on-write image; dropping the global pointer is what matters —
  // nothing will ever dereference it again in this process.
  g_armed.store(nullptr, std::memory_order_relaxed);
  g_dumped.store(false, std::memory_order_relaxed);
  detail::set_check_failure_observer(nullptr);
  for (std::size_t i = 0; i < kNumFatalSignals; ++i) {
    std::signal(kFatalSignals[i], SIG_DFL);
    g_previous_handlers[i] = nullptr;
  }
}

}  // namespace weipipe::obs
