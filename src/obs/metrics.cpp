#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/json.hpp"

namespace weipipe::obs {

std::uint64_t Gauge::pack(double v) { return std::bit_cast<std::uint64_t>(v); }
double Gauge::unpack(std::uint64_t bits) {
  return std::bit_cast<double>(bits);
}

void Gauge::set_max(double v) {
  std::uint64_t current = bits_.load(std::memory_order_relaxed);
  while (unpack(current) < v &&
         !bits_.compare_exchange_weak(current, pack(v),
                                      std::memory_order_relaxed)) {
  }
}

int Histogram::bucket_of(double value) {
  if (!(value > 0.0)) {
    return 0;
  }
  // 8 buckets per decade starting at 1e-9.
  const double pos = (std::log10(value) + 9.0) * 8.0;
  const int b = static_cast<int>(std::floor(pos)) + 1;
  return std::clamp(b, 0, kBuckets - 1);
}

double Histogram::bucket_upper(int b) {
  if (b <= 0) {
    return 0.0;
  }
  return std::pow(10.0, static_cast<double>(b) / 8.0 - 9.0);
}

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lk(mu_);
  ++counts_[bucket_of(value)];
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (count_ == 0 || value > max_) {
    max_ = value;
  }
  sum_ += value;
  ++count_;
}

HistogramSnapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  HistogramSnapshot s;
  s.count = count_;
  if (count_ == 0) {
    return s;
  }
  s.min = min_;
  s.max = max_;
  s.sum = sum_;
  s.mean = sum_ / static_cast<double>(count_);
  auto quantile = [&](double q) {
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts_[b];
      if (seen > target) {
        return std::clamp(bucket_upper(b), min_, max_);
      }
    }
    return max_;
  };
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  return s;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  std::fill(std::begin(counts_), std::end(counts_), 0);
  count_ = 0;
  min_ = max_ = sum_ = 0.0;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(c->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + json_number(g->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"count\": " + std::to_string(s.count);
    out += ", \"min\": " + json_number(s.min);
    out += ", \"max\": " + json_number(s.max);
    out += ", \"sum\": " + json_number(s.sum);
    out += ", \"mean\": " + json_number(s.mean);
    out += ", \"p50\": " + json_number(s.p50);
    out += ", \"p90\": " + json_number(s.p90);
    out += ", \"p99\": " + json_number(s.p99);
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) {
    c->reset();
  }
  for (auto& [name, g] : gauges_) {
    g->reset();
  }
  for (auto& [name, h] : histograms_) {
    h->reset();
  }
}

}  // namespace weipipe::obs
