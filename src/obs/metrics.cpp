#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>

#include "common/check.hpp"
#include "obs/json.hpp"

namespace weipipe::obs {

std::uint64_t Gauge::pack(double v) { return std::bit_cast<std::uint64_t>(v); }
double Gauge::unpack(std::uint64_t bits) {
  return std::bit_cast<double>(bits);
}

void Gauge::set_max(double v) {
  std::uint64_t current = bits_.load(std::memory_order_relaxed);
  while (unpack(current) < v &&
         !bits_.compare_exchange_weak(current, pack(v),
                                      std::memory_order_relaxed)) {
  }
}

int Histogram::bucket_of(double value) {
  if (!(value > 0.0)) {
    return 0;
  }
  // 8 buckets per decade starting at 1e-9.
  const double pos = (std::log10(value) + 9.0) * 8.0;
  const int b = static_cast<int>(std::floor(pos)) + 1;
  return std::clamp(b, 0, kBuckets - 1);
}

double Histogram::bucket_upper(int b) {
  if (b <= 0) {
    return 0.0;
  }
  return std::pow(10.0, static_cast<double>(b) / 8.0 - 9.0);
}

double Histogram::bucket_lower(int b) { return bucket_upper(b - 1); }

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lk(mu_);
  ++counts_[bucket_of(value)];
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (count_ == 0 || value > max_) {
    max_ = value;
  }
  sum_ += value;
  ++count_;
}

HistogramSnapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  HistogramSnapshot s;
  s.count = count_;
  if (count_ == 0) {
    return s;
  }
  s.min = min_;
  s.max = max_;
  s.sum = sum_;
  s.mean = sum_ / static_cast<double>(count_);
  // Nearest-rank walk with linear interpolation inside the hit bucket:
  // `target` is the fractional rank of the quantile, and the element ranks
  // [seen_before, seen_after) inside the bucket are mapped affinely onto the
  // bucket's value range (clamped to the observed [min, max], which makes a
  // one-element histogram — and the extreme buckets of a tight population —
  // exact instead of snapping to a log-bucket boundary).
  auto quantile = [&](double q) {
    const double target = q * static_cast<double>(count_ - 1);
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      if (counts_[b] == 0) {
        continue;
      }
      const double first = static_cast<double>(seen);
      seen += counts_[b];
      const double last = static_cast<double>(seen - 1);
      if (static_cast<double>(seen) > target) {
        const double lo = std::clamp(bucket_lower(b), min_, max_);
        const double hi = std::clamp(bucket_upper(b), min_, max_);
        const double frac =
            last > first ? std::clamp((target - first) / (last - first), 0.0,
                                      1.0)
                         : 0.5;
        return lo + frac * (hi - lo);
      }
    }
    return max_;
  };
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  return s;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  std::fill(std::begin(counts_), std::end(counts_), 0);
  count_ = 0;
  min_ = max_ = sum_ = 0.0;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-' || c == '/' || c == '>';
    if (!ok) {
      return false;
    }
  }
  return true;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  WEIPIPE_CHECK_MSG(valid_metric_name(name),
                    "invalid metric name: '" << name << "'");
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  WEIPIPE_CHECK_MSG(valid_metric_name(name),
                    "invalid metric name: '" << name << "'");
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  WEIPIPE_CHECK_MSG(valid_metric_name(name),
                    "invalid metric name: '" << name << "'");
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(c->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + json_number(g->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"count\": " + std::to_string(s.count);
    out += ", \"min\": " + json_number(s.min);
    out += ", \"max\": " + json_number(s.max);
    out += ", \"sum\": " + json_number(s.sum);
    out += ", \"mean\": " + json_number(s.mean);
    out += ", \"p50\": " + json_number(s.p50);
    out += ", \"p90\": " + json_number(s.p90);
    out += ", \"p99\": " + json_number(s.p99);
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

namespace {

// Splits a trailing `.rank.<N>` component out of a metric name so per-rank
// families share one Prometheus family with a rank label.
void split_rank_label(const std::string& name, std::string& base,
                      std::string& rank) {
  base = name;
  rank.clear();
  const std::size_t pos = name.rfind(".rank.");
  if (pos == std::string::npos) {
    return;
  }
  const std::string suffix = name.substr(pos + 6);
  if (suffix.empty()) {
    return;
  }
  for (const char c : suffix) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return;
    }
  }
  base = name.substr(0, pos) + ".rank";
  rank = suffix;
}

// `weipipe_` prefix + [a-zA-Z0-9_] body; every other char collapses to '_'.
std::string prometheus_name(const std::string& name) {
  std::string out = "weipipe_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_labels(const std::map<std::string, std::string>& labels,
                              const std::string& rank) {
  if (labels.empty() && rank.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + v + '"';
  }
  if (!rank.empty()) {
    if (!first) out += ',';
    out += "rank=\"" + rank + '"';
  }
  out += '}';
  return out;
}

std::string prometheus_number(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  const std::string j = json_number(value);
  return j == "null" ? "NaN" : j;
}

}  // namespace

std::string MetricsRegistry::to_prometheus(
    const std::map<std::string, std::string>& labels) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  std::string last_family;
  auto sample = [&](const std::string& name, const char* type, double value) {
    std::string base;
    std::string rank;
    split_rank_label(name, base, rank);
    const std::string family = prometheus_name(base);
    if (family != last_family) {
      out += "# TYPE " + family + ' ' + type + '\n';
      last_family = family;
    }
    out += family + prometheus_labels(labels, rank) + ' ' +
           prometheus_number(value) + '\n';
  };
  for (const auto& [name, c] : counters_) {
    sample(name, "counter", static_cast<double>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    sample(name, "gauge", g->value());
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    sample(name + ".count", "counter", static_cast<double>(s.count));
    sample(name + ".sum", "gauge", s.sum);
    sample(name + ".min", "gauge", s.min);
    sample(name + ".max", "gauge", s.max);
    sample(name + ".p50", "gauge", s.p50);
    sample(name + ".p90", "gauge", s.p90);
    sample(name + ".p99", "gauge", s.p99);
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::flat_snapshot()
    const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters_.size() + gauges_.size() + 2 * histograms_.size());
  for (const auto& [name, c] : counters_) {
    out.emplace_back(name, static_cast<double>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    out.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    out.emplace_back(name + ".count", static_cast<double>(s.count));
    out.emplace_back(name + ".sum", s.sum);
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) {
    c->reset();
  }
  for (auto& [name, g] : gauges_) {
    g->reset();
  }
  for (auto& [name, h] : histograms_) {
    h->reset();
  }
}

Registry& runtime_metrics() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

}  // namespace weipipe::obs
