// Critical-path step anatomy: where did every nanosecond of a training step
// actually go?
//
// The span recorder (obs/recorder.hpp) gives us each rank's serial timeline
// and the fabric stamps every message with a flow id that pairs the sender's
// kSendTransfer span with the receiver's kRecvWait/kRecvTransfer spans
// (obs/span.hpp). Together they form a cross-rank dependency DAG per step:
// within a rank, spans are ordered by the thread's program order; across
// ranks, a receive depends on the send that produced its message.
//
// analyze_step() walks the *longest* path through that DAG backwards from
// the last-ending ranked span and attributes every nanosecond of the step
// window to exactly one of five categories on exactly one rank:
//
//   compute        the path sat in a compute span (F/B/Ba/Bw/opt/loss/kernel)
//   exposed wire   the path sat on wire work that no compute hid: pack or
//                  unpack transfer spans, and the in-flight hop between the
//                  matching send's completion and the blocked receive's end —
//                  broken down by wire kind (MsgKind via the tag classifier)
//   blocked recv   a receive wait whose producing send is unknown (missing
//                  flow — dropped spans, or an aborted/timed-out wait) and
//                  that no concurrent injected fault explains
//   stall/fault    an injected or organic stall: kFault spans with duration,
//                  plus producerless receive waits that overlap an injected
//                  fault (stall plans abort every pending wait) — the
//                  segment carries the starved edge's (peer, tag)
//   gap            the path rank was idle with every dependency satisfied —
//                  scheduler slack, thread wakeup latency, untraced driver
//                  work
//
// The attribution is exact by construction: the segment durations sum to the
// step window (earliest ranked span start to latest ranked span end — the
// same makespan convention as trace::spans_to_sim_result and the
// discrete-event engine), so `exposed_comm_fraction` is directly comparable
// to the simulator's predicted bubble and closes the paper's central claim —
// weight circulation makes communication hideable — on *measured* runs.
//
// obs/ sits below sched/ in the layering, so the analyzer does not name
// sched::MsgKind directly: callers pass a tag -> wire-kind-label classifier
// (prof/ passes wire_tags::msg_kind; the default stringifies the tag).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace weipipe::obs {

// Bumped whenever the anatomy JSON layout changes incompatibly.
inline constexpr int kAnatomySchemaVersion = 1;

enum class PathCategory : std::uint8_t {
  kCompute,
  kExposedWire,
  kBlockedRecv,
  kStallFault,
  kGap,
};
inline constexpr int kNumPathCategories = 5;

const char* to_string(PathCategory category);

// One contiguous stretch of the critical path on one rank.
struct PathSegment {
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  int rank = -1;
  PathCategory category = PathCategory::kGap;
  // The underlying span's kind for non-gap segments (kStep marks a gap).
  SpanKind kind = SpanKind::kStep;
  // Comm identity for wire/blocked/stall segments (-1 = not applicable).
  // For exposed-wire and blocked-recv segments `peer` names the other end of
  // the frozen or pacing edge; for stall segments it echoes the fault span.
  int peer = -1;
  std::int64_t tag = -1;
  std::int64_t flow_id = -1;
  // Wire-kind label (tag classifier) for exposed-wire segments; empty
  // otherwise.
  std::string wire_kind;

  double seconds() const {
    return static_cast<double>(end_ns - start_ns) * 1e-9;
  }
};

// Exposed wire time on the path, aggregated per wire kind.
struct WireExposure {
  std::string kind;
  double seconds = 0.0;
  std::int64_t segments = 0;
};

// The path's time attributed to one rank, split by category.
struct RankAttribution {
  int rank = -1;
  double seconds[kNumPathCategories] = {};

  double total_seconds() const {
    double t = 0.0;
    for (double s : seconds) {
      t += s;
    }
    return t;
  }
};

struct AnatomyOptions {
  // Maps a comm tag to a wire-kind label for per-kind exposure aggregation.
  // Default labels the raw tag ("tag7"). prof/ passes the wire_tags mapping.
  std::function<std::string(std::int64_t tag)> wire_kind_label;
};

struct StepAnatomy {
  // Step identity: the enclosing kStep span's microbatch field carries the
  // trainer's iteration index (-1 when the batch had no step marker).
  std::int64_t step_index = -1;
  // The analyzed window: earliest ranked span start .. latest ranked end.
  std::int64_t window_start_ns = 0;
  std::int64_t window_end_ns = 0;
  int ranks = 0;

  // Path attribution totals, indexed by PathCategory. Their sum equals
  // step_seconds() exactly (the walk covers the window gaplessly).
  double category_seconds[kNumPathCategories] = {};

  std::vector<PathSegment> segments;  // chronological
  std::vector<WireExposure> wire;     // exposed wire by kind, largest first
  std::vector<RankAttribution> rank_attribution;  // by rank

  double step_seconds() const {
    return static_cast<double>(window_end_ns - window_start_ns) * 1e-9;
  }
  double path_seconds() const {
    double t = 0.0;
    for (double s : category_seconds) {
      t += s;
    }
    return t;
  }
  double seconds(PathCategory c) const {
    return category_seconds[static_cast<int>(c)];
  }
  // Wire time the schedule failed to hide, as a fraction of the step:
  // exposed wire plus unattributable receive waits. The measured counterpart
  // of the simulator's predicted bubble.
  double exposed_comm_fraction() const {
    const double t = path_seconds();
    return t > 0.0 ? (seconds(PathCategory::kExposedWire) +
                      seconds(PathCategory::kBlockedRecv)) /
                         t
                   : 0.0;
  }
  double compute_fraction() const {
    const double t = path_seconds();
    return t > 0.0 ? seconds(PathCategory::kCompute) / t : 0.0;
  }

  // {"schema_version":1,"step_index":...,"categories":{...},"segments":[...]}
  std::string to_json() const;
  // One lane per rank; the critical path drawn with one glyph per category
  // (C compute, W exposed wire, R blocked recv, S stall, - gap); '.' marks
  // time the path spent on other ranks.
  std::string ascii_timeline(int width = 100) const;
  // One-screen human-readable attribution table.
  std::string summary() const;
};

// Analyzes ONE step: `spans` must hold the drained spans of a single
// iteration (ranked spans plus optional kStep/driver spans, which set
// step_index but are otherwise ignored). Returns a default StepAnatomy when
// no ranked spans are present.
StepAnatomy analyze_step(const std::vector<Span>& spans,
                         const AnatomyOptions& options = {});

// Splits a multi-iteration batch at its kStep markers (falling back to one
// window when there are none) and analyzes each step.
std::vector<StepAnatomy> analyze_steps(const std::vector<Span>& spans,
                                       const AnatomyOptions& options = {});

}  // namespace weipipe::obs
