// Minimal JSON support for the observability layer: an escaping writer used
// by the exporters, and a small DOM parser used to *verify* what we emit —
// the profile CLI re-parses its own trace/metrics files before declaring
// success, and the golden-file tests round-trip the Chrome trace through it.
//
// The parser handles the full JSON grammar (objects, arrays, strings with
// escapes, numbers, booleans, null); it is not performance-tuned and is not
// meant for multi-gigabyte traces.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace weipipe::obs {

// Appends `value` JSON-escaped (quotes included) to `out`.
void append_json_string(std::string& out, std::string_view value);

// Formats a double as a JSON number (finite values only; non-finite values
// are emitted as null, which keeps the output parseable).
std::string json_number(double value);

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Map keeps lookups simple; duplicate keys keep the last occurrence.
  std::map<std::string, JsonValue> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  // Object member access; returns nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  // Shorthand accessors that die (WEIPIPE_CHECK) on type mismatch.
  double as_number() const;
  const std::string& as_string() const;
};

struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;  // "offset 123: expected ':'" style
};

JsonParseResult parse_json(std::string_view text);

}  // namespace weipipe::obs
