// Chrome trace-event JSON export of runtime spans — open the output in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Layout: one process, one track (tid) per rank plus one track per unranked
// thread; compute spans are complete ("X") events named F/B/Ba/Bw/... with
// microbatch/chunk/bytes args; each matched send/recv message pair emits a
// flow arrow ("s" on the send span, "f" on the receive) keyed by the
// fabric-assigned flow id, which draws the weight/gradient chunks hopping
// around the ring.
#pragma once

#include <string>
#include <vector>

#include "obs/span.hpp"

namespace weipipe::obs {

struct ChromeTraceOptions {
  std::string process_name = "weipipe";
  // Emit flow ("s"/"f") arrow events for matched send/recv flow ids.
  bool flow_arrows = true;
};

// Serializes the spans (any order; they are sorted internally). Timestamps
// are rebased so the earliest span starts at t=0.
std::string spans_to_chrome_trace(const std::vector<Span>& spans,
                                  ChromeTraceOptions options = {});

}  // namespace weipipe::obs
