// Full-footprint memory ledger: tagged allocation accounting for the real
// execution engine.
//
// The span recorder measures *activation* bytes via per-op deltas; this
// ledger covers everything else — weights, weight gradients, optimizer
// state, comm buffers, scratch — so a trainer's measured peak footprint can
// be compared against the parameter-derived static bounds the paper reasons
// with (Tables 2-4 rank strategies by total per-worker memory, not
// activations alone).
//
// Three charging paths feed one global ledger:
//  * TrackedAllocator — Tensor storage charges automatically, attributed to
//    the thread's current MemScope category and RankScope rank. A 16-byte
//    out-of-band header records {kind, rank bucket, bytes} at allocation
//    time, so a buffer freed on a different thread (or after the scope
//    closed, or after the ledger was disabled) always credits exactly what
//    it charged.
//  * MemCharge — explicit RAII charge for trainer-owned plain vectors
//    (fp32 masters, Adam moments, circulating chunk buffers) that predate
//    the tracked allocator.
//  * Fabric mailboxes charge comm_buffers per delivered-but-unreceived
//    message (see comm/fabric.cpp).
//
// Accounting is off by default and gated by one relaxed atomic load per
// allocation, mirroring the span recorder's disabled-cost contract.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace weipipe::obs {

enum class MemKind : int {
  kWeights = 0,   // compute-precision weight copies + fp32 masters
  kWeightGrads,   // weight-gradient buffers (circulating D, accumulators)
  kOptimizer,     // Adam first/second moments
  kActivations,   // saved forward state + activation/grad cursors
  kCommBuffers,   // fabric mailbox residency (delivered, not yet received)
  kScratch,       // everything allocated outside an explicit scope
};
inline constexpr int kNumMemKinds = 6;

const char* to_string(MemKind kind);

struct MemKindSnapshot {
  std::int64_t live_bytes = 0;
  std::int64_t peak_bytes = 0;
};

struct LedgerSnapshot {
  MemKindSnapshot kinds[kNumMemKinds];  // global, summed over ranks
  std::int64_t total_live_bytes = 0;
  // Global full-footprint high watermark (all categories, all ranks), and
  // the worst single rank bucket's footprint watermark.
  std::int64_t total_peak_bytes = 0;
  std::int64_t max_rank_peak_bytes = 0;
};

// Global, process-wide ledger. All counters are atomics: charging from rank
// threads is wait-free; peaks use CAS-max so races resolve upward.
class MemoryLedger {
 public:
  // Rank attribution buckets: 0 = unranked (driver, pool threads), 1..N-1 =
  // ranks 0..N-2; out-of-range ranks fold into bucket 0.
  static constexpr int kRankBuckets = 33;

  static MemoryLedger& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  static int bucket_for_rank(int rank) {
    return (rank >= 0 && rank < kRankBuckets - 1) ? rank + 1 : 0;
  }
  // Bucket of the calling thread (from obs::current_rank()).
  static int current_bucket();

  // Charge/credit `bytes` of `kind` against a rank bucket. on_alloc uses the
  // calling thread's bucket. Callers record the bucket at charge time and
  // pass the same one to on_free (the TrackedAllocator header and MemCharge
  // both do), so balances never depend on which thread frees.
  void on_alloc(MemKind kind, std::int64_t bytes);
  void on_alloc(MemKind kind, int bucket, std::int64_t bytes);
  void on_free(MemKind kind, int bucket, std::int64_t bytes);

  std::int64_t live_bytes(MemKind kind) const;
  std::int64_t peak_bytes(MemKind kind) const;
  std::int64_t total_live_bytes() const;
  std::int64_t total_peak_bytes() const;
  std::int64_t rank_live_bytes(int bucket, MemKind kind) const;

  LedgerSnapshot snapshot() const;

  // Collapses every high watermark to the current live value, so repeated
  // profile/bench runs in one process don't smear each other's peaks.
  void reset_peaks();

 private:
  MemoryLedger() = default;

  std::atomic<bool> enabled_{false};

  // Per-(bucket, kind) live bytes; per-bucket total live/peak; global
  // per-kind live/peak and total live/peak.
  std::atomic<std::int64_t> rank_live_[kRankBuckets][kNumMemKinds] = {};
  std::atomic<std::int64_t> rank_total_live_[kRankBuckets] = {};
  std::atomic<std::int64_t> rank_total_peak_[kRankBuckets] = {};
  std::atomic<std::int64_t> kind_live_[kNumMemKinds] = {};
  std::atomic<std::int64_t> kind_peak_[kNumMemKinds] = {};
  std::atomic<std::int64_t> total_live_{0};
  std::atomic<std::int64_t> total_peak_{0};
};

inline MemoryLedger& ledger() { return MemoryLedger::instance(); }

// The calling thread's current allocation category (default kScratch).
MemKind current_mem_kind();

// RAII category scope: tracked allocations on this thread are attributed to
// `kind` until the scope closes. Nests; restores the previous kind.
class MemScope {
 public:
  explicit MemScope(MemKind kind);
  ~MemScope();
  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;

 private:
  MemKind prev_;
};

// Explicit RAII charge for buffers the ledger cannot see (plain std::vector
// members). Records {kind, bucket} at charge time; the destructor credits
// exactly what was charged even if the ledger was disabled in between.
class MemCharge {
 public:
  MemCharge() = default;
  MemCharge(MemKind kind, std::int64_t bytes) { set(kind, bytes); }
  ~MemCharge() { release(); }

  MemCharge(MemCharge&& other) noexcept { *this = std::move(other); }
  MemCharge& operator=(MemCharge&& other) noexcept {
    if (this != &other) {
      release();
      armed_ = other.armed_;
      kind_ = other.kind_;
      bucket_ = other.bucket_;
      bytes_ = other.bytes_;
      other.armed_ = false;
    }
    return *this;
  }
  MemCharge(const MemCharge&) = delete;
  MemCharge& operator=(const MemCharge&) = delete;

  // Releases any previous charge, then charges `bytes` of `kind` (no-op
  // while the ledger is disabled).
  void set(MemKind kind, std::int64_t bytes);
  // Adjusts the charged size in place (charges fresh if not yet armed).
  void resize(std::int64_t bytes);
  void release();

  std::int64_t bytes() const { return armed_ ? bytes_ : 0; }

 private:
  bool armed_ = false;
  MemKind kind_ = MemKind::kScratch;
  int bucket_ = 0;
  std::int64_t bytes_ = 0;
};

namespace detail {
// Over-allocating malloc/free pair used by TrackedAllocator: a 16-byte
// header in front of the payload records what was charged.
void* tracked_alloc(std::size_t payload_bytes);
void tracked_free(void* payload, std::size_t payload_bytes);
}  // namespace detail

// Minimal std::allocator replacement that routes through the ledger.
// Stateless; all instances compare equal, so container moves/swaps keep
// their buffers (and the buffers keep their allocation-time attribution).
template <typename T>
class TrackedAllocator {
 public:
  using value_type = T;
  using is_always_equal = std::true_type;

  TrackedAllocator() = default;
  template <typename U>
  TrackedAllocator(const TrackedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    static_assert(alignof(T) <= 16, "tracked header assumes <=16B alignment");
    return static_cast<T*>(detail::tracked_alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    detail::tracked_free(p, n * sizeof(T));
  }

  friend bool operator==(const TrackedAllocator&, const TrackedAllocator&) {
    return true;
  }
  friend bool operator!=(const TrackedAllocator&, const TrackedAllocator&) {
    return false;
  }
};

}  // namespace weipipe::obs
