#include "obs/ledger.hpp"

#include <new>

#include "obs/recorder.hpp"

namespace weipipe::obs {
namespace {

thread_local MemKind t_mem_kind = MemKind::kScratch;

void atomic_max(std::atomic<std::int64_t>& target, std::int64_t value) {
  std::int64_t cur = target.load(std::memory_order_relaxed);
  while (cur < value &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

const char* to_string(MemKind kind) {
  switch (kind) {
    case MemKind::kWeights:
      return "weights";
    case MemKind::kWeightGrads:
      return "weight_grads";
    case MemKind::kOptimizer:
      return "optimizer";
    case MemKind::kActivations:
      return "activations";
    case MemKind::kCommBuffers:
      return "comm_buffers";
    case MemKind::kScratch:
      return "scratch";
  }
  return "unknown";
}

MemoryLedger& MemoryLedger::instance() {
  static MemoryLedger ledger;
  return ledger;
}

int MemoryLedger::current_bucket() { return bucket_for_rank(current_rank()); }

void MemoryLedger::on_alloc(MemKind kind, std::int64_t bytes) {
  on_alloc(kind, current_bucket(), bytes);
}

void MemoryLedger::on_alloc(MemKind kind, int bucket, std::int64_t bytes) {
  if (bytes <= 0) return;
  const int k = static_cast<int>(kind);
  rank_live_[bucket][k].fetch_add(bytes, std::memory_order_relaxed);
  const std::int64_t rank_total =
      rank_total_live_[bucket].fetch_add(bytes, std::memory_order_relaxed) +
      bytes;
  atomic_max(rank_total_peak_[bucket], rank_total);
  const std::int64_t kind_live =
      kind_live_[k].fetch_add(bytes, std::memory_order_relaxed) + bytes;
  atomic_max(kind_peak_[k], kind_live);
  const std::int64_t total =
      total_live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  atomic_max(total_peak_, total);
}

void MemoryLedger::on_free(MemKind kind, int bucket, std::int64_t bytes) {
  if (bytes <= 0) return;
  const int k = static_cast<int>(kind);
  rank_live_[bucket][k].fetch_sub(bytes, std::memory_order_relaxed);
  rank_total_live_[bucket].fetch_sub(bytes, std::memory_order_relaxed);
  kind_live_[k].fetch_sub(bytes, std::memory_order_relaxed);
  total_live_.fetch_sub(bytes, std::memory_order_relaxed);
}

std::int64_t MemoryLedger::live_bytes(MemKind kind) const {
  return kind_live_[static_cast<int>(kind)].load(std::memory_order_relaxed);
}

std::int64_t MemoryLedger::peak_bytes(MemKind kind) const {
  return kind_peak_[static_cast<int>(kind)].load(std::memory_order_relaxed);
}

std::int64_t MemoryLedger::total_live_bytes() const {
  return total_live_.load(std::memory_order_relaxed);
}

std::int64_t MemoryLedger::total_peak_bytes() const {
  return total_peak_.load(std::memory_order_relaxed);
}

std::int64_t MemoryLedger::rank_live_bytes(int bucket, MemKind kind) const {
  return rank_live_[bucket][static_cast<int>(kind)].load(
      std::memory_order_relaxed);
}

LedgerSnapshot MemoryLedger::snapshot() const {
  LedgerSnapshot snap;
  for (int k = 0; k < kNumMemKinds; ++k) {
    snap.kinds[k].live_bytes = kind_live_[k].load(std::memory_order_relaxed);
    snap.kinds[k].peak_bytes = kind_peak_[k].load(std::memory_order_relaxed);
  }
  snap.total_live_bytes = total_live_.load(std::memory_order_relaxed);
  snap.total_peak_bytes = total_peak_.load(std::memory_order_relaxed);
  for (int b = 0; b < kRankBuckets; ++b) {
    const std::int64_t peak =
        rank_total_peak_[b].load(std::memory_order_relaxed);
    if (peak > snap.max_rank_peak_bytes) snap.max_rank_peak_bytes = peak;
  }
  return snap;
}

void MemoryLedger::reset_peaks() {
  for (int k = 0; k < kNumMemKinds; ++k) {
    kind_peak_[k].store(kind_live_[k].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  }
  for (int b = 0; b < kRankBuckets; ++b) {
    rank_total_peak_[b].store(
        rank_total_live_[b].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  total_peak_.store(total_live_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

MemKind current_mem_kind() { return t_mem_kind; }

MemScope::MemScope(MemKind kind) : prev_(t_mem_kind) { t_mem_kind = kind; }

MemScope::~MemScope() { t_mem_kind = prev_; }

void MemCharge::set(MemKind kind, std::int64_t bytes) {
  release();
  kind_ = kind;  // remembered even when disabled, for a later resize()
  if (!ledger().enabled()) return;
  bucket_ = MemoryLedger::current_bucket();
  bytes_ = bytes;
  armed_ = true;
  ledger().on_alloc(kind_, bucket_, bytes_);
}

void MemCharge::resize(std::int64_t bytes) {
  if (!armed_) {
    set(kind_, bytes);
    return;
  }
  if (bytes > bytes_) {
    ledger().on_alloc(kind_, bucket_, bytes - bytes_);
  } else if (bytes < bytes_) {
    ledger().on_free(kind_, bucket_, bytes_ - bytes);
  }
  bytes_ = bytes;
}

void MemCharge::release() {
  if (!armed_) return;
  ledger().on_free(kind_, bucket_, bytes_);
  armed_ = false;
  bytes_ = 0;
}

namespace detail {

namespace {
// Out-of-band record written in front of every tracked payload. 16 bytes
// keeps the payload at the default operator-new alignment.
struct MemAllocHeader {
  std::int32_t kind;  // -1 = allocated while the ledger was disabled
  std::int32_t bucket;
  std::int64_t bytes;
};
static_assert(sizeof(MemAllocHeader) == 16);
constexpr std::size_t kHeaderBytes = 16;
}  // namespace

void* tracked_alloc(std::size_t payload_bytes) {
  void* raw = ::operator new(kHeaderBytes + payload_bytes);
  auto* header = static_cast<MemAllocHeader*>(raw);
  MemoryLedger& led = ledger();
  if (led.enabled()) {
    const MemKind kind = current_mem_kind();
    const int bucket = MemoryLedger::current_bucket();
    header->kind = static_cast<std::int32_t>(kind);
    header->bucket = bucket;
    header->bytes = static_cast<std::int64_t>(payload_bytes);
    led.on_alloc(kind, bucket, header->bytes);
  } else {
    header->kind = -1;
    header->bucket = 0;
    header->bytes = 0;
  }
  return static_cast<char*>(raw) + kHeaderBytes;
}

void tracked_free(void* payload, std::size_t payload_bytes) {
  if (payload == nullptr) return;
  void* raw = static_cast<char*>(payload) - kHeaderBytes;
  auto* header = static_cast<MemAllocHeader*>(raw);
  if (header->kind >= 0) {
    ledger().on_free(static_cast<MemKind>(header->kind), header->bucket,
                     header->bytes);
  }
  ::operator delete(raw, kHeaderBytes + payload_bytes);
}

}  // namespace detail

}  // namespace weipipe::obs
