#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"

namespace weipipe::obs {

void append_json_string(std::string& out, std::string_view value) {
  out.push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  char buf[64];
  // %.17g round-trips doubles; trim to something readable when exact.
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

double JsonValue::as_number() const {
  WEIPIPE_CHECK_MSG(type == Type::kNumber, "JSON value is not a number");
  return number;
}

const std::string& JsonValue::as_string() const {
  WEIPIPE_CHECK_MSG(type == Type::kString, "JSON value is not a string");
  return string;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult result;
    skip_ws();
    if (!parse_value(result.value)) {
      result.error = error_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after top-level value");
      result.error = error_;
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = "offset " + std::to_string(pos_) + ": " + what;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) {
      return fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      case 't':
      case 'f': return parse_literal(out);
      case 'n': return parse_literal(out);
      default: return parse_number(out);
    }
  }

  bool parse_literal(JsonValue& out) {
    auto match = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) == word) {
        pos_ += word.size();
        return true;
      }
      return false;
    };
    if (match("true")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.type = JsonValue::Type::kNull;
      return true;
    }
    return fail("invalid literal");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return fail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return fail("malformed number '" + token + "'");
    }
    out.type = JsonValue::Type::kNumber;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      return fail("expected '\"'");
    }
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return fail("unterminated escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return fail("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("invalid \\u escape");
              }
            }
            // Keep it simple: encode as UTF-8 (no surrogate-pair joining;
            // the exporters never emit astral-plane characters).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return fail("invalid escape");
        }
        continue;
      }
      out.push_back(c);
    }
    return fail("unterminated string");
  }

  bool parse_object(JsonValue& out) {
    consume('{');
    out.type = JsonValue::Type::kObject;
    skip_ws();
    if (consume('}')) {
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) {
        return false;
      }
      skip_ws();
      if (!consume(':')) {
        return fail("expected ':'");
      }
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) {
        return false;
      }
      out.object[key] = std::move(value);
      skip_ws();
      if (consume(',')) {
        continue;
      }
      if (consume('}')) {
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    consume('[');
    out.type = JsonValue::Type::kArray;
    skip_ws();
    if (consume(']')) {
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) {
        return false;
      }
      out.array.push_back(std::move(value));
      skip_ws();
      if (consume(',')) {
        continue;
      }
      if (consume(']')) {
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult parse_json(std::string_view text) {
  return Parser(text).run();
}

}  // namespace weipipe::obs
