// Metrics registry: named counters, gauges, and histograms with a JSON
// snapshot export.
//
// Counters and gauges are single atomics (safe to bump from rank threads);
// histograms take a short per-histogram lock — they are fed from
// drain/aggregation points (per step, per drained span batch), not from
// per-message hot paths. Metric objects live as long as the registry; the
// references handed out by counter()/gauge()/histogram() are stable.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"

namespace weipipe::obs {

class Counter {
 public:
  void add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { bits_.store(pack(v), std::memory_order_relaxed); }
  // Monotone max update (races resolve to the max; used for peaks).
  void set_max(double v);
  double value() const { return unpack(bits_.load(std::memory_order_relaxed)); }
  void reset() { set(0.0); }

 private:
  static std::uint64_t pack(double v);
  static double unpack(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0};
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

// Log-bucketed histogram over positive values (values <= 0 land in the
// first bucket). Quantiles interpolate linearly inside the hit bucket and
// are clamped to the observed [min, max], so a single observation reports
// itself exactly and single-bucket populations do not collapse onto the
// bucket's upper boundary; an empty histogram snapshots as all zeros.
class Histogram {
 public:
  void observe(double value);
  HistogramSnapshot snapshot() const;
  void reset();

 private:
  static constexpr int kBuckets = 96;  // 8 buckets per decade, 1e-9 .. 1e3
  static int bucket_of(double value);
  static double bucket_lower(int b);
  static double bucket_upper(int b);

  mutable std::mutex mu_;
  std::uint64_t counts_[kBuckets] WEIPIPE_GUARDED_BY(mu_) = {};
  std::uint64_t count_ WEIPIPE_GUARDED_BY(mu_) = 0;
  double min_ WEIPIPE_GUARDED_BY(mu_) = 0.0;
  double max_ WEIPIPE_GUARDED_BY(mu_) = 0.0;
  double sum_ WEIPIPE_GUARDED_BY(mu_) = 0.0;
};

// True when `name` is a registrable metric name: nonempty and drawn from
// `[A-Za-z0-9._/>-]` (the charset every existing producer uses — dotted
// namespaces plus the `a->b` fabric pair edges). Spaces, control characters,
// quotes, and anything else are rejected at registration time.
bool valid_metric_name(const std::string& name);

class MetricsRegistry {
 public:
  // Registration WEIPIPE_CHECKs valid_metric_name(name); the returned
  // references are stable for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,min,...}}}
  std::string to_json() const;

  // Prometheus text exposition. Metric names are sanitized to the Prometheus
  // charset (`weipipe_` prefix, invalid chars -> `_`); a trailing
  // `.rank.<N>` name component is lifted into a `rank="N"` label so per-rank
  // families aggregate; `labels` (e.g. {{"job","profile"},{"strategy",
  // "weipipe"}}) is stamped onto every sample. Histograms export
  // _count/_sum/_min/_max/_p50/_p90/_p99 series.
  std::string to_prometheus(
      const std::map<std::string, std::string>& labels = {}) const;

  // Flattens every metric to (name, value) pairs for periodic samplers:
  // counters and gauges verbatim, histograms as name.count / name.sum.
  std::vector<std::pair<std::string, double>> flat_snapshot() const;

  // Zeroes every registered metric (names stay registered).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      WEIPIPE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      WEIPIPE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      WEIPIPE_GUARDED_BY(mu_);
};

// Conventional short name used by callers that hold a registry by value.
using Registry = MetricsRegistry;

// Process-global registry for always-on runtime signals that outlive any one
// profile/bench invocation (trainer step.index counters, telemetry sources).
// Scoped reports (profile/chaos) keep using their own local registries.
Registry& runtime_metrics();

}  // namespace weipipe::obs
