// Rendering helpers shared by the analyzer: op descriptions, witness
// formatting, report summaries. Split from the checking logic so the
// executor stays readable.
#pragma once

#include <string>

#include "analysis/analysis.hpp"

namespace weipipe::analysis {

// "rank 2 op 17: Recv(src=1, tag=5, expects B-weight)"
std::string locate_op(const sched::Program& program, int rank,
                      std::int64_t op_index);

// Builds an OpRef whose detail is `role` + ": " + the rendered op.
OpRef make_ref(const sched::Program& program, int rank, std::int64_t op_index,
               const std::string& role);

}  // namespace weipipe::analysis
