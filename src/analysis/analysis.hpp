// Static model-checker over sched::Program: proves schedule properties
// without executing the engine.
//
// Three families of checks (docs/ANALYSIS.md derives each):
//
//  1. Deadlock. Blocking recvs induce a cross-rank wait-for graph: a Recv
//     executes only after the send it FIFO-matches (per (src, dst, tag))
//     has executed, and ops on one rank execute in list order. The abstract
//     executor runs the program under exactly these rules; if it stalls
//     with ops remaining, every stuck rank is blocked at a Recv and the
//     rank-level wait-for graph (out-degree 1) necessarily contains a
//     cycle, which is reported as a witness trace — the op chain forming
//     the circular wait — instead of the engine's runtime timeout.
//
//  2. Weight-version consistency (weight-passing strategies). Builders
//     annotate sends/recvs with what rides the wire (sched::MsgKind) and
//     which chunk it is. The executor gives each rank one slot per
//     circulating flow (F-weight, B-weight, D-grad); receipt overwrites the
//     slot (double-buffer semantics), and the checker demands that every
//     forward/backward ComputeOp on chunk c holds the right shard at that
//     program point, that every annotated send ships the chunk the rank
//     actually holds, and that matched send/recv pairs agree on payload
//     kind (a swapped tag lands a B-flow weight in the F buffer — invisible
//     at runtime, a tag-mismatch finding here).
//
//  3. Memory bound. mem_delta only changes on a rank's own compute ops and
//     ops on one rank are totally ordered, so the per-rank peak — the max
//     prefix sum — is identical across *all* linearizations the
//     happens-before graph admits: the static bound is exact, and
//     sim::simulate() must measure it to the bit (see
//     sim::analysis_cross_check).
//
// Plus exactly-once compute coverage: each (microbatch, chunk) must run one
// forward and one backward (fused B, or a Ba/Bw pair — never both).
//
// analyze() also folds in sched::validate()'s structural checks, making it
// the single correctness gate every schedule builder must pass.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/program.hpp"

namespace weipipe::analysis {

enum class FindingKind {
  kValidation,        // structural problem (delegated sched::validate check)
  kUnmatchedRecv,     // a Recv no Send can ever satisfy: guaranteed stall
  kDeadlockCycle,     // circular wait among blocked ranks
  kTagMismatch,       // matched send/recv disagree on payload kind
  kWeightVersion,     // wrong weight shard held at a compute / send
  kGradAccumulation,  // weight-gradient never co-resident with its W pass
  kComputeCoverage,   // (microbatch, chunk) computed 0 or > 1 times
};

const char* to_string(FindingKind kind);

// One step of a witness trace: a concrete op in the program plus its role.
struct OpRef {
  int rank = -1;
  std::int64_t op = -1;  // index into program.rank_ops[rank]
  std::string detail;
};

struct Finding {
  FindingKind kind = FindingKind::kValidation;
  std::string message;        // one line naming the ranks + op indices
  std::vector<OpRef> witness; // op chain: wait cycle, or state provenance
};

struct AnalyzeOptions {
  // Weight-version checks need builder annotations (MsgKind on sends); they
  // are skipped automatically for programs that carry none.
  bool check_weight_versions = true;
  bool check_coverage = true;
};

struct AnalysisReport {
  std::string program_name;
  std::vector<Finding> findings;
  std::size_t findings_dropped = 0;  // beyond the per-report cap

  // Exact static peak activation bytes per rank (max mem_delta prefix sum in
  // program order — linearization-independent; see header comment).
  std::vector<double> static_peak_bytes;
  // Sum over ranks: an upper bound on simultaneous global residency.
  double static_peak_total_bound = 0.0;

  std::size_t ops_total = 0;
  std::size_t ops_executed = 0;  // < ops_total iff the program deadlocks
  bool deadlocked = false;
  bool weight_annotated = false;  // program carries weight-flow annotations

  bool ok() const { return findings.empty() && findings_dropped == 0; }

  // Human-readable report: findings with their witness traces, then the
  // static memory bounds.
  std::string summary() const;
};

AnalysisReport analyze(const sched::Program& program,
                       AnalyzeOptions options = {});

// Renders one op for diagnostics, e.g. "Send(dst=1, tag=4, F-weight chunk 3)".
std::string describe_op(const sched::Program& program, int rank,
                        std::int64_t op_index);

}  // namespace weipipe::analysis
