#include "analysis/witness.hpp"

#include <sstream>

namespace weipipe::analysis {

const char* to_string(FindingKind kind) {
  switch (kind) {
    case FindingKind::kValidation: return "validation";
    case FindingKind::kUnmatchedRecv: return "unmatched-recv";
    case FindingKind::kDeadlockCycle: return "deadlock-cycle";
    case FindingKind::kTagMismatch: return "tag-mismatch";
    case FindingKind::kWeightVersion: return "weight-version";
    case FindingKind::kGradAccumulation: return "grad-accumulation";
    case FindingKind::kComputeCoverage: return "compute-coverage";
  }
  return "?";
}

std::string describe_op(const sched::Program& program, int rank,
                        std::int64_t op_index) {
  const auto r = static_cast<std::size_t>(rank);
  if (r >= program.rank_ops.size() || op_index < 0 ||
      static_cast<std::size_t>(op_index) >= program.rank_ops[r].size()) {
    return "<no such op>";
  }
  const sched::Op& op = program.rank_ops[r][static_cast<std::size_t>(op_index)];
  std::ostringstream oss;
  if (const auto* c = std::get_if<sched::ComputeOp>(&op)) {
    oss << to_string(c->kind);
    if (c->microbatch >= 0) {
      oss << " m=" << c->microbatch;
    }
    if (c->chunk >= 0) {
      oss << " c=" << c->chunk;
    }
  } else if (const auto* s = std::get_if<sched::SendOp>(&op)) {
    oss << "Send(dst=" << s->dst << ", tag=" << s->tag;
    if (s->kind != sched::MsgKind::kOpaque) {
      oss << ", " << to_string(s->kind);
      if (s->chunk >= 0) {
        oss << " chunk " << s->chunk;
      }
    }
    if (s->blocking) {
      oss << ", blocking";
    }
    oss << ")";
  } else if (const auto* rc = std::get_if<sched::RecvOp>(&op)) {
    oss << "Recv(src=" << rc->src << ", tag=" << rc->tag;
    if (rc->kind != sched::MsgKind::kOpaque) {
      oss << ", expects " << to_string(rc->kind);
    }
    oss << ")";
  } else if (const auto* cs = std::get_if<sched::CollectiveStartOp>(&op)) {
    oss << "CollectiveStart(id=" << cs->id << ")";
  } else if (const auto* cw = std::get_if<sched::CollectiveWaitOp>(&op)) {
    oss << "CollectiveWait(id=" << cw->id << ")";
  }
  return oss.str();
}

std::string locate_op(const sched::Program& program, int rank,
                      std::int64_t op_index) {
  std::ostringstream oss;
  oss << "rank " << rank << " op " << op_index << ": "
      << describe_op(program, rank, op_index);
  return oss.str();
}

OpRef make_ref(const sched::Program& program, int rank, std::int64_t op_index,
               const std::string& role) {
  OpRef ref;
  ref.rank = rank;
  ref.op = op_index;
  ref.detail = role.empty() ? describe_op(program, rank, op_index)
                            : role + ": " + describe_op(program, rank, op_index);
  return ref;
}

std::string AnalysisReport::summary() const {
  std::ostringstream oss;
  oss << "analysis of '" << program_name << "': ";
  const std::size_t total = findings.size() + findings_dropped;
  if (total == 0) {
    oss << "0 findings";
  } else {
    oss << total << " finding" << (total == 1 ? "" : "s");
  }
  oss << " (" << ops_executed << "/" << ops_total << " ops reached";
  if (deadlocked) {
    oss << ", DEADLOCKED";
  }
  if (!weight_annotated) {
    oss << ", no weight annotations";
  }
  oss << ")\n";
  for (const Finding& f : findings) {
    oss << "  [" << to_string(f.kind) << "] " << f.message << "\n";
    for (const OpRef& step : f.witness) {
      oss << "      rank " << step.rank << " op " << step.op << ": "
          << step.detail << "\n";
    }
  }
  if (findings_dropped > 0) {
    oss << "  ... " << findings_dropped << " further findings dropped\n";
  }
  oss << "  static peak activation bytes per rank: [";
  for (std::size_t r = 0; r < static_peak_bytes.size(); ++r) {
    oss << (r ? ", " : "") << static_peak_bytes[r];
  }
  oss << "]; total bound " << static_peak_total_bound << "\n";
  return oss.str();
}

}  // namespace weipipe::analysis
