#include "analysis/analysis.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <sstream>
#include <tuple>

#include "analysis/witness.hpp"
#include "sched/validate.hpp"

namespace weipipe::analysis {

namespace {

using sched::MsgKind;
using sched::Program;

// Circulating weight flows get one slot per rank (double-buffer semantics:
// a receipt overwrites the previous holding of the same kind).
int slot_index(MsgKind kind) {
  switch (kind) {
    case MsgKind::kWeightF: return 0;
    case MsgKind::kWeightB: return 1;
    case MsgKind::kGradD: return 2;
    default: return -1;
  }
}

constexpr const char* kSlotName[3] = {"F-weight", "B-weight", "D-grad"};

struct ChannelKey {
  int src;
  int dst;
  std::int64_t tag;
  bool operator<(const ChannelKey& o) const {
    return std::tie(src, dst, tag) < std::tie(o.src, o.dst, o.tag);
  }
};

// What a message carries, as declared by its (annotated) send.
struct Carried {
  MsgKind kind = MsgKind::kOpaque;
  std::int64_t chunk = -1;
  int src_rank = -1;
  std::int64_t src_op = -1;
};

struct Slot {
  bool known = false;
  bool wildcard = false;  // set by an unannotated payload: matches anything
  std::int64_t chunk = -1;
  int prov_rank = -1;  // op that last set the slot (witness provenance)
  std::int64_t prov_op = -1;
};

struct RankExec {
  std::int64_t op_index = 0;
  Slot slots[3];
  // Bw computes whose D chunk was not resident yet; satisfied by a later
  // D-grad receipt of the same chunk (the paired D may arrive within the
  // same turn, after the compute in list order — see docs/ANALYSIS.md).
  std::vector<std::pair<std::int64_t, std::int64_t>> pending_bw;  // (chunk, op)
};

struct CoverageCell {
  std::vector<OpRef> fwd, bwd, bwd_acts, bwd_weights;
};

constexpr std::size_t kMaxFindings = 64;

class Analyzer {
 public:
  Analyzer(const Program& program, const AnalyzeOptions& options)
      : prog_(program), opts_(options) {}

  AnalysisReport run() {
    report_.program_name = prog_.name;
    report_.ops_total = prog_.total_ops();
    compute_static_peaks();
    const bool structural_ok = delegate_validation();
    detect_annotations();
    if (!structural_ok) {
      // Out-of-range ranks etc. would fault the executor; the validation
      // findings already explain the program.
      return std::move(report_);
    }
    index_sends();
    execute();
    if (opts_.check_coverage && !report_.deadlocked) {
      check_coverage();
    }
    finish_pending_bw();
    return std::move(report_);
  }

 private:
  // ---- report plumbing ------------------------------------------------------

  void add(Finding finding) {
    if (report_.findings.size() >= kMaxFindings) {
      ++report_.findings_dropped;
      return;
    }
    report_.findings.push_back(std::move(finding));
  }

  void add(FindingKind kind, std::string message,
           std::vector<OpRef> witness = {}) {
    add(Finding{kind, std::move(message), std::move(witness)});
  }

  // ---- passes ---------------------------------------------------------------

  void compute_static_peaks() {
    report_.static_peak_bytes.assign(prog_.rank_ops.size(), 0.0);
    for (std::size_t r = 0; r < prog_.rank_ops.size(); ++r) {
      double mem = 0.0;
      double peak = 0.0;
      for (const sched::Op& op : prog_.rank_ops[r]) {
        if (const auto* c = std::get_if<sched::ComputeOp>(&op)) {
          mem += c->mem_delta;
          peak = std::max(peak, mem);
        }
      }
      report_.static_peak_bytes[r] = peak;
      report_.static_peak_total_bound += peak;
    }
  }

  // Folds sched::validate() into the report; returns false when the program
  // is structurally unsafe to execute (references to nonexistent ranks).
  bool delegate_validation() {
    const sched::ValidationReport v = sched::validate(prog_);
    for (const std::string& problem : v.problems) {
      add(FindingKind::kValidation, problem);
    }
    const int p = prog_.num_ranks();
    for (int r = 0; r < p; ++r) {
      for (const sched::Op& op : prog_.rank_ops[static_cast<std::size_t>(r)]) {
        if (const auto* s = std::get_if<sched::SendOp>(&op)) {
          if (s->dst < 0 || s->dst >= p || s->dst == r) {
            return false;
          }
        } else if (const auto* rc = std::get_if<sched::RecvOp>(&op)) {
          if (rc->src < 0 || rc->src >= p || rc->src == r) {
            return false;
          }
        }
      }
    }
    return true;
  }

  void detect_annotations() {
    for (const auto& ops : prog_.rank_ops) {
      for (const sched::Op& op : ops) {
        if (const auto* s = std::get_if<sched::SendOp>(&op)) {
          if (slot_index(s->kind) >= 0) {
            report_.weight_annotated = true;
            return;
          }
        }
      }
    }
  }

  void index_sends() {
    for (int r = 0; r < prog_.num_ranks(); ++r) {
      const auto& ops = prog_.rank_ops[static_cast<std::size_t>(r)];
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (const auto* s = std::get_if<sched::SendOp>(&ops[i])) {
          send_index_[ChannelKey{r, s->dst, s->tag}].push_back(
              static_cast<std::int64_t>(i));
        }
      }
    }
  }

  // ---- the abstract executor ------------------------------------------------

  void execute() {
    const int p = prog_.num_ranks();
    ranks_.assign(static_cast<std::size_t>(p), RankExec{});
    std::size_t remaining = report_.ops_total;
    bool progress = true;
    while (remaining > 0 && progress) {
      progress = false;
      for (int r = 0; r < p; ++r) {
        RankExec& re = ranks_[static_cast<std::size_t>(r)];
        const auto& ops = prog_.rank_ops[static_cast<std::size_t>(r)];
        while (re.op_index < static_cast<std::int64_t>(ops.size())) {
          if (!step(r, re, ops[static_cast<std::size_t>(re.op_index)])) {
            break;
          }
          ++re.op_index;
          --remaining;
          ++report_.ops_executed;
          progress = true;
        }
      }
    }
    if (remaining > 0) {
      report_.deadlocked = true;
      diagnose_stall();
    }
  }

  // Executes one op; returns false when the rank blocks (Recv with no
  // matchable message yet).
  bool step(int r, RankExec& re, const sched::Op& op) {
    if (const auto* c = std::get_if<sched::ComputeOp>(&op)) {
      on_compute(r, re, *c);
    } else if (const auto* s = std::get_if<sched::SendOp>(&op)) {
      on_send(r, re, *s);
    } else if (const auto* rc = std::get_if<sched::RecvOp>(&op)) {
      return on_recv(r, re, *rc);
    }
    // CollectiveStart/Wait never block across ranks (same-rank pairing is a
    // validate() concern); nothing to track here.
    return true;
  }

  void on_compute(int r, RankExec& re, const sched::ComputeOp& c) {
    if (c.microbatch >= 0 && c.chunk >= 0) {
      CoverageCell& cell = coverage_[{c.microbatch, c.chunk}];
      OpRef ref = make_ref(prog_, r, re.op_index, "");
      switch (c.kind) {
        case sched::ComputeKind::kForward: cell.fwd.push_back(ref); break;
        case sched::ComputeKind::kBackward: cell.bwd.push_back(ref); break;
        case sched::ComputeKind::kBackwardActs:
          cell.bwd_acts.push_back(ref);
          break;
        case sched::ComputeKind::kBackwardWeights:
          cell.bwd_weights.push_back(ref);
          break;
        default: break;
      }
    }
    if (!checking_versions() || c.chunk < 0) {
      return;
    }
    switch (c.kind) {
      case sched::ComputeKind::kForward:
        require_slot(r, re, 0, c.chunk);
        break;
      case sched::ComputeKind::kBackward:
        require_slot(r, re, 1, c.chunk);
        require_slot(r, re, 2, c.chunk);
        break;
      case sched::ComputeKind::kBackwardActs:
        require_slot(r, re, 1, c.chunk);
        break;
      case sched::ComputeKind::kBackwardWeights: {
        // The paired D may be listed later in the same turn; defer to the
        // next D-grad receipt (finish_pending_bw reports leftovers).
        const Slot& d = re.slots[2];
        if (!(d.known && (d.wildcard || d.chunk == c.chunk))) {
          re.pending_bw.push_back({c.chunk, re.op_index});
        }
        break;
      }
      default: break;
    }
  }

  void require_slot(int r, RankExec& re, int idx, std::int64_t chunk) {
    Slot& slot = re.slots[idx];
    if (!slot.known) {
      // First use of this flow before any send or receipt: the rank held the
      // chunk at iteration start (non-prefetch variants compute before the
      // opening send). Like the first-send rule, this defines the initial
      // holding; all later uses are checked against it.
      slot.known = true;
      slot.chunk = chunk;
      slot.prov_rank = r;
      slot.prov_op = re.op_index;
      return;
    }
    if (slot.wildcard || slot.chunk == chunk) {
      return;
    }
    std::ostringstream oss;
    oss << locate_op(prog_, r, re.op_index) << " needs " << kSlotName[idx]
        << " chunk " << chunk << " but rank " << r << " holds chunk "
        << slot.chunk;
    add(FindingKind::kWeightVersion, oss.str(),
        {make_ref(prog_, r, re.op_index, "the compute"),
         make_ref(prog_, slot.prov_rank, slot.prov_op, "shard held since")});
  }

  void on_send(int r, RankExec& re, const sched::SendOp& s) {
    Carried carried{s.kind, s.chunk, r, re.op_index};
    const int idx = slot_index(s.kind);
    if (idx >= 0 && checking_versions()) {
      Slot& slot = re.slots[idx];
      if (!slot.known) {
        // First send of this flow before any receipt: the rank held the
        // chunk at iteration start — that defines the initial holding.
        slot.known = true;
        slot.chunk = s.chunk;
        slot.wildcard = s.chunk < 0;
        slot.prov_rank = r;
        slot.prov_op = re.op_index;
      } else if (!slot.wildcard && s.chunk >= 0 && slot.chunk != s.chunk) {
        std::ostringstream oss;
        oss << locate_op(prog_, r, re.op_index) << " ships " << kSlotName[idx]
            << " chunk " << s.chunk << " but rank " << r << " holds chunk "
            << slot.chunk << " — ring rotation is off";
        add(FindingKind::kWeightVersion, oss.str(),
            {make_ref(prog_, r, re.op_index, "the send"),
             make_ref(prog_, slot.prov_rank, slot.prov_op,
                      "shard held since")});
        // Trust the annotation from here on so one rotation bug does not
        // cascade into a finding per turn.
        slot.chunk = s.chunk;
        slot.prov_rank = r;
        slot.prov_op = re.op_index;
      }
    }
    inbox_[ChannelKey{r, s.dst, s.tag}].push(carried);
  }

  bool on_recv(int r, RankExec& re, const sched::RecvOp& rc) {
    const ChannelKey key{rc.src, r, rc.tag};
    auto it = inbox_.find(key);
    if (it == inbox_.end() || it->second.empty()) {
      // If the program holds fewer sends on this channel than recvs already
      // consumed + 1, no execution order can ever satisfy this Recv: report
      // it and skip, so analysis of the rest of the program continues.
      const auto si = send_index_.find(key);
      const std::size_t total_sends =
          si == send_index_.end() ? 0 : si->second.size();
      if (consumed_[key] >= total_sends) {
        std::ostringstream oss;
        oss << locate_op(prog_, r, re.op_index)
            << " can never complete: the program holds " << total_sends
            << " send(s) on channel (" << rc.src << " -> " << r << ", tag "
            << rc.tag << ") and this is recv #" << (consumed_[key] + 1);
        add(FindingKind::kUnmatchedRecv, oss.str(),
            {make_ref(prog_, r, re.op_index, "the doomed recv")});
        ++consumed_[key];  // keep later recvs on this channel consistent
        return true;
      }
      return false;  // blocked: the matching send exists but has not run
    }
    const Carried carried = it->second.front();
    it->second.pop();
    ++consumed_[key];

    if (carried.kind != MsgKind::kOpaque && rc.kind != MsgKind::kOpaque &&
        carried.kind != rc.kind) {
      std::ostringstream oss;
      oss << locate_op(prog_, r, re.op_index) << " expects "
          << to_string(rc.kind) << " but the matched send carries "
          << to_string(carried.kind)
          << (carried.chunk >= 0
                  ? " chunk " + std::to_string(carried.chunk)
                  : std::string())
          << " — tags are crossed";
      add(FindingKind::kTagMismatch, oss.str(),
          {make_ref(prog_, r, re.op_index, "the recv"),
           make_ref(prog_, carried.src_rank, carried.src_op,
                    "the matched send")});
    }

    // Receipt overwrites the flow's slot. Interpret by the receiver's
    // declared kind (that is the buffer the bytes land in); fall back to the
    // sender's kind for unannotated recvs.
    const int idx =
        slot_index(rc.kind != MsgKind::kOpaque ? rc.kind : carried.kind);
    if (idx >= 0 && checking_versions()) {
      Slot& slot = re.slots[idx];
      slot.known = true;
      slot.wildcard = carried.chunk < 0;
      slot.chunk = carried.chunk;
      slot.prov_rank = r;
      slot.prov_op = re.op_index;
      if (idx == 2 && !re.pending_bw.empty()) {
        auto match = std::find_if(
            re.pending_bw.begin(), re.pending_bw.end(), [&](const auto& pb) {
              return slot.wildcard || pb.first == carried.chunk;
            });
        if (match != re.pending_bw.end()) {
          re.pending_bw.erase(match);
        }
      }
    }
    return true;
  }

  bool checking_versions() const {
    return opts_.check_weight_versions && report_.weight_annotated;
  }

  // ---- stall diagnosis ------------------------------------------------------

  void diagnose_stall() {
    const int p = prog_.num_ranks();
    // Every stuck rank is blocked at a Recv whose matching send exists but
    // has not executed; its sender is itself stuck (a finished rank has
    // executed all its sends). Out-degree 1 => following the edges from any
    // blocked rank reaches a cycle.
    struct Edge {
      std::int64_t recv_op;  // where the rank is blocked
      int sender;
      std::int64_t send_op;  // the unreached matching send
    };
    std::map<int, Edge> edges;
    for (int r = 0; r < p; ++r) {
      const RankExec& re = ranks_[static_cast<std::size_t>(r)];
      const auto& ops = prog_.rank_ops[static_cast<std::size_t>(r)];
      if (re.op_index >= static_cast<std::int64_t>(ops.size())) {
        continue;
      }
      const auto* rc =
          std::get_if<sched::RecvOp>(&ops[static_cast<std::size_t>(re.op_index)]);
      if (rc == nullptr) {
        continue;  // cannot happen: only recvs block
      }
      const ChannelKey key{rc->src, r, rc->tag};
      const auto si = send_index_.find(key);
      const std::size_t k = consumed_.count(key) ? consumed_.at(key) : 0;
      if (si == send_index_.end() || k >= si->second.size()) {
        continue;  // already reported as kUnmatchedRecv
      }
      edges[r] = Edge{re.op_index, rc->src, si->second[k]};
    }
    if (edges.empty()) {
      return;
    }
    // Walk from the lowest blocked rank until a rank repeats, then trim to
    // the cycle.
    std::vector<int> path;
    std::set<int> seen;
    int cur = edges.begin()->first;
    while (seen.insert(cur).second) {
      path.push_back(cur);
      cur = edges.at(cur).sender;
    }
    const auto cycle_start = std::find(path.begin(), path.end(), cur);
    const std::vector<int> cycle(cycle_start, path.end());

    std::ostringstream oss;
    oss << "deadlock cycle across ranks";
    for (int r : cycle) {
      oss << " " << r << " ->";
    }
    oss << " " << cycle.front() << ": each rank is blocked on a Recv whose "
        << "matching Send sits after the next rank's own blocked Recv";
    std::vector<OpRef> witness;
    for (int r : cycle) {
      const Edge& e = edges.at(r);
      witness.push_back(make_ref(prog_, r, e.recv_op, "blocked at"));
      witness.push_back(make_ref(
          prog_, e.sender, e.send_op,
          "waits for rank " + std::to_string(e.sender) + "'s unreached"));
    }
    add(FindingKind::kDeadlockCycle, oss.str(), std::move(witness));
  }

  // ---- post-execution checks ------------------------------------------------

  void check_coverage() {
    for (const auto& [mc, cell] : coverage_) {
      const auto [m, c] = mc;
      std::ostringstream where;
      where << "(microbatch " << m << ", chunk " << c << ")";
      const std::size_t fused = cell.bwd.size();
      const std::size_t ba = cell.bwd_acts.size();
      const std::size_t bw = cell.bwd_weights.size();
      if (cell.fwd.size() != 1) {
        std::ostringstream oss;
        oss << where.str() << " runs " << cell.fwd.size()
            << " forward computes, expected exactly 1";
        add(FindingKind::kComputeCoverage, oss.str(), cell.fwd);
      }
      const bool fused_ok = fused == 1 && ba == 0 && bw == 0;
      const bool split_ok = fused == 0 && ba == 1 && bw == 1;
      if (!fused_ok && !split_ok) {
        std::ostringstream oss;
        oss << where.str() << " backward coverage broken: B x" << fused
            << ", Ba x" << ba << ", Bw x" << bw
            << " (expected one fused B, or one Ba + one Bw)";
        std::vector<OpRef> witness = cell.bwd;
        witness.insert(witness.end(), cell.bwd_acts.begin(),
                       cell.bwd_acts.end());
        witness.insert(witness.end(), cell.bwd_weights.begin(),
                       cell.bwd_weights.end());
        add(FindingKind::kComputeCoverage, oss.str(), std::move(witness));
      }
    }
  }

  void finish_pending_bw() {
    if (report_.deadlocked) {
      return;  // partial execution: pending entries would be noise
    }
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      for (const auto& [chunk, op] : ranks_[r].pending_bw) {
        std::ostringstream oss;
        oss << locate_op(prog_, static_cast<int>(r), op)
            << " accumulates into D-grad chunk " << chunk << " but rank " << r
            << " never receives that circulating gradient afterwards";
        add(FindingKind::kGradAccumulation, oss.str(),
            {make_ref(prog_, static_cast<int>(r), op, "the W pass")});
      }
    }
  }

  const Program& prog_;
  const AnalyzeOptions& opts_;
  AnalysisReport report_;

  std::vector<RankExec> ranks_;
  std::map<ChannelKey, std::queue<Carried>> inbox_;
  std::map<ChannelKey, std::size_t> consumed_;
  std::map<ChannelKey, std::vector<std::int64_t>> send_index_;
  std::map<std::pair<std::int64_t, std::int64_t>, CoverageCell> coverage_;
};

}  // namespace

AnalysisReport analyze(const sched::Program& program, AnalyzeOptions options) {
  return Analyzer(program, options).run();
}

}  // namespace weipipe::analysis
