#include "trace/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace weipipe::trace {

std::string render_timeline(const sim::SimResult& result,
                            TimelineOptions options) {
  WEIPIPE_CHECK_MSG(!result.records.empty(),
                    "no op records: simulate with record_ops=true");
  const int ranks = static_cast<int>(result.busy_seconds.size());
  const double span = result.makespan;
  const int width = std::max(20, options.width);
  const double cell = span / width;

  std::vector<std::string> rows(static_cast<std::size_t>(ranks),
                                std::string(static_cast<std::size_t>(width),
                                            '.'));
  for (const sim::OpRecord& rec : result.records) {
    const int c0 = std::clamp(
        static_cast<int>(std::floor(rec.start / cell)), 0, width - 1);
    const int c1 = std::clamp(static_cast<int>(std::ceil(rec.end / cell)), c0 + 1,
                              width);
    std::string label = sched::to_string(rec.kind);
    if (options.show_microbatch && rec.microbatch >= 0) {
      label += std::to_string(rec.microbatch);
    }
    std::string& row = rows[static_cast<std::size_t>(rec.rank)];
    for (int c = c0; c < c1; ++c) {
      const std::size_t li = static_cast<std::size_t>(c - c0);
      row[static_cast<std::size_t>(c)] =
          li < label.size() ? label[li]
                            : (rec.kind == sched::ComputeKind::kForward ? 'f'
                                                                        : 'b');
    }
  }

  std::ostringstream oss;
  oss << "timeline '" << result.program_name << "'  (makespan "
      << result.makespan << " s, bubble "
      << static_cast<int>(std::round(result.bubble_ratio() * 100)) << "%)\n";
  for (int r = 0; r < ranks; ++r) {
    oss << "rank " << r << (r < 10 ? " " : "") << " |"
        << rows[static_cast<std::size_t>(r)] << "|\n";
  }
  return oss.str();
}

std::string render_utilization(const sim::SimResult& result) {
  std::ostringstream oss;
  oss << "rank | busy(s) | idle% | peak act (GB)\n";
  for (std::size_t r = 0; r < result.busy_seconds.size(); ++r) {
    const double busy = result.busy_seconds[r];
    const double idle =
        result.makespan > 0 ? (1.0 - busy / result.makespan) * 100.0 : 0.0;
    oss << r << " | " << busy << " | " << static_cast<int>(idle) << " | "
        << result.peak_act_bytes[r] / 1e9 << "\n";
  }
  return oss.str();
}

}  // namespace weipipe::trace
