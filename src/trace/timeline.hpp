// ASCII timeline rendering of simulated schedules — regenerates the paper's
// schedule diagrams (Figures 1-4) from executed op records, plus per-rank
// utilization summaries.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace weipipe::trace {

struct TimelineOptions {
  int width = 100;          // characters for the time axis
  bool show_microbatch = true;
};

// One row per rank; each compute op is drawn as a run of cells labeled with
// its kind (F/B/Ba/Bw) and microbatch id; '.' marks idle time.
std::string render_timeline(const sim::SimResult& result,
                            TimelineOptions options = {});

// Compact per-rank utilization table (busy seconds, idle %, peak memory).
std::string render_utilization(const sim::SimResult& result);

}  // namespace weipipe::trace
