#include "trace/export.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/check.hpp"

namespace weipipe::trace {

std::string records_to_csv(const sim::SimResult& result) {
  std::ostringstream oss;
  oss << "rank,start,end,kind,microbatch,chunk,act_bytes_after\n";
  for (const sim::OpRecord& rec : result.records) {
    oss << rec.rank << ',' << rec.start << ',' << rec.end << ','
        << sched::to_string(rec.kind) << ',' << rec.microbatch << ','
        << rec.chunk << ',' << rec.act_bytes_after << '\n';
  }
  return oss.str();
}

std::string experiments_to_csv(const std::vector<ExperimentRow>& rows) {
  std::ostringstream oss;
  oss << "label,strategy,tokens_per_s_per_gpu,peak_mem_gb,bubble,wire_gb,"
         "oom\n";
  for (const ExperimentRow& row : rows) {
    const sim::ExperimentResult& r = row.result;
    oss << row.label << ',' << sim::to_string(r.strategy) << ','
        << r.tokens_per_second_per_gpu << ',' << r.peak_mem_bytes / 1e9 << ','
        << r.bubble_ratio << ',' << r.wire_bytes / 1e9 << ','
        << (r.oom ? 1 : 0) << '\n';
  }
  return oss.str();
}

std::string records_to_svg(const sim::SimResult& result, int width_px,
                           int lane_height_px) {
  WEIPIPE_CHECK_MSG(!result.records.empty(),
                    "no op records: simulate with record_ops=true");
  const int ranks = static_cast<int>(result.busy_seconds.size());
  const int margin_left = 56;
  const int margin_top = 28;
  const int height = margin_top + ranks * (lane_height_px + 4) + 12;
  const double x_scale =
      (width_px - margin_left - 8) / std::max(result.makespan, 1e-12);

  auto color = [](sched::ComputeKind kind) {
    switch (kind) {
      case sched::ComputeKind::kForward: return "#4f86c6";
      case sched::ComputeKind::kBackward: return "#e0863d";
      case sched::ComputeKind::kBackwardActs: return "#d4b13f";
      case sched::ComputeKind::kBackwardWeights: return "#7c5cbf";
      default: return "#999999";
    }
  };

  std::ostringstream oss;
  oss << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width_px
      << "' height='" << height << "'>\n"
      << "<style>text{font:11px monospace;fill:#333}</style>\n"
      << "<text x='4' y='16'>" << result.program_name << " — makespan "
      << result.makespan << " s, bubble "
      << static_cast<int>(result.bubble_ratio() * 100) << "%</text>\n";
  for (int r = 0; r < ranks; ++r) {
    const int y = margin_top + r * (lane_height_px + 4);
    oss << "<text x='4' y='" << y + lane_height_px - 6 << "'>rank " << r
        << "</text>\n"
        << "<rect x='" << margin_left << "' y='" << y << "' width='"
        << width_px - margin_left - 8 << "' height='" << lane_height_px
        << "' fill='#f2f2f2'/>\n";
  }
  for (const sim::OpRecord& rec : result.records) {
    const int y = margin_top + rec.rank * (lane_height_px + 4);
    const double x = margin_left + rec.start * x_scale;
    const double w = std::max(1.0, (rec.end - rec.start) * x_scale);
    oss << "<rect x='" << x << "' y='" << y + 1 << "' width='" << w
        << "' height='" << lane_height_px - 2 << "' fill='"
        << color(rec.kind) << "'><title>" << sched::to_string(rec.kind)
        << " mb" << rec.microbatch << " chunk" << rec.chunk << " ["
        << rec.start << ", " << rec.end << ")</title></rect>\n";
  }
  oss << "</svg>\n";
  return oss.str();
}

std::string experiments_to_svg(const std::vector<ExperimentRow>& rows,
                               const std::string& title, int width_px,
                               int height_px) {
  WEIPIPE_CHECK_MSG(!rows.empty(), "no experiment rows");
  // Collect group labels (in order) and strategy names (in order).
  std::vector<std::string> labels;
  std::vector<std::string> strategies;
  double max_tp = 0.0;
  for (const ExperimentRow& row : rows) {
    if (std::find(labels.begin(), labels.end(), row.label) == labels.end()) {
      labels.push_back(row.label);
    }
    const std::string strat = sim::to_string(row.result.strategy);
    if (std::find(strategies.begin(), strategies.end(), strat) ==
        strategies.end()) {
      strategies.push_back(strat);
    }
    max_tp = std::max(max_tp, row.result.tokens_per_second_per_gpu);
  }
  const char* palette[] = {"#4f86c6", "#e0863d", "#56a156",
                           "#b05bb3", "#d4b13f", "#777777"};
  const int margin_left = 48;
  const int margin_bottom = 36;
  const int margin_top = 30;
  const double plot_w = width_px - margin_left - 10;
  const double plot_h = height_px - margin_top - margin_bottom;
  const double group_w = plot_w / static_cast<double>(labels.size());
  const double bar_w =
      group_w * 0.8 / static_cast<double>(strategies.size());

  std::ostringstream oss;
  oss << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width_px
      << "' height='" << height_px << "'>\n"
      << "<style>text{font:11px monospace;fill:#333}</style>\n"
      << "<text x='4' y='16'>" << title
      << " (tokens/s/GPU; x = OOM)</text>\n";
  // Legend.
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    const double x = margin_left + static_cast<double>(s) * 120.0;
    oss << "<rect x='" << x << "' y='" << height_px - 14 << "' width='10' "
        << "height='10' fill='" << palette[s % 6] << "'/>"
        << "<text x='" << x + 14 << "' y='" << height_px - 5 << "'>"
        << strategies[s] << "</text>\n";
  }
  for (std::size_t g = 0; g < labels.size(); ++g) {
    const double gx = margin_left + static_cast<double>(g) * group_w;
    oss << "<text x='" << gx + group_w * 0.1 << "' y='"
        << margin_top + plot_h + 14 << "'>" << labels[g] << "</text>\n";
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      // Find the row for (label, strategy).
      for (const ExperimentRow& row : rows) {
        if (row.label != labels[g] ||
            sim::to_string(row.result.strategy) != strategies[s]) {
          continue;
        }
        const double x = gx + group_w * 0.1 + static_cast<double>(s) * bar_w;
        if (row.result.oom) {
          oss << "<text x='" << x << "' y='" << margin_top + plot_h - 2
              << "'>x</text>\n";
        } else {
          const double h = plot_h * row.result.tokens_per_second_per_gpu /
                           std::max(max_tp, 1e-9);
          oss << "<rect x='" << x << "' y='" << margin_top + plot_h - h
              << "' width='" << bar_w * 0.9 << "' height='" << h
              << "' fill='" << palette[s % 6] << "'><title>"
              << row.result.tokens_per_second_per_gpu
              << " tok/s/GPU</title></rect>\n";
        }
      }
    }
  }
  oss << "</svg>\n";
  return oss.str();
}

void write_file(const std::string& path, const std::string& content) {
  // Create missing parent directories: `--trace out/dir/trace.json` should
  // not fail on a fresh checkout just because out/dir does not exist yet.
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    WEIPIPE_CHECK_MSG(!ec, "cannot create directory '" << parent.string()
                                                       << "': "
                                                       << ec.message());
  }
  std::ofstream out(path, std::ios::trunc);
  WEIPIPE_CHECK_MSG(out.is_open(), "cannot open '" << path << "' for write");
  out << content;
  out.flush();
  WEIPIPE_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

}  // namespace weipipe::trace
