// Converts runtime-recorded spans (src/obs/) into the simulator's SimResult
// record shape, so every renderer built for simulated schedules — the ASCII
// timeline, the SVG Gantt chart, the CSV export — works unchanged on traces
// measured from the real execution engine.
#pragma once

#include <vector>

#include "obs/span.hpp"
#include "sim/engine.hpp"

namespace weipipe::trace {

// Builds a SimResult from runtime spans:
//  * compute spans (F/B/Ba/Bw/opt/loss) on ranked threads become OpRecords,
//    timestamps rebased so the earliest ranked span starts at t = 0;
//  * busy_seconds sums compute span durations per rank;
//  * peak_act_bytes takes the per-rank max of act_bytes_after (0 when the
//    producer did not track activation bytes);
//  * makespan runs from the earliest ranked span start to the latest ranked
//    span end (comm included, so blocked time counts — same convention as
//    the discrete-event engine);
//  * p2p_bytes and per-link usage aggregate send-transfer spans.
// Unranked spans (driver thread, pool workers) and kStep markers are
// ignored. Comm spans produce no OpRecords: as in simulator traces,
// communication shows up as idle time between compute cells.
sim::SimResult spans_to_sim_result(const std::vector<obs::Span>& spans);

}  // namespace weipipe::trace
