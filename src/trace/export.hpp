// Machine-readable exports: CSV dumps of simulated op traces and experiment
// grids, for external plotting of the reproduced figures.
#pragma once

#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace weipipe::trace {

// One row per recorded compute op:
// rank,start,end,kind,microbatch,chunk,act_bytes_after
std::string records_to_csv(const sim::SimResult& result);

// One row per experiment cell:
// label,strategy,tokens_per_s_per_gpu,peak_mem_gb,bubble,wire_gb,oom
struct ExperimentRow {
  std::string label;
  sim::ExperimentResult result;
};
std::string experiments_to_csv(const std::vector<ExperimentRow>& rows);

// Standalone SVG Gantt chart of the recorded compute ops: one lane per rank,
// forward ops in one colour, backward (and B/W split) passes in others.
// Suitable for embedding the reproduced Figures 1-4 in reports.
std::string records_to_svg(const sim::SimResult& result, int width_px = 960,
                           int lane_height_px = 22);

// Grouped bar chart of experiment throughputs (one group per label, one bar
// per strategy) — self-contained SVG renderings of the scaling figures.
std::string experiments_to_svg(const std::vector<ExperimentRow>& rows,
                               const std::string& title, int width_px = 720,
                               int height_px = 320);

// Writes content to path, throwing weipipe::Error on I/O failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace weipipe::trace
