#include "trace/runtime.hpp"

#include <algorithm>
#include <map>

#include "sched/span_map.hpp"

namespace weipipe::trace {

sim::SimResult spans_to_sim_result(const std::vector<obs::Span>& spans) {
  sim::SimResult result;
  result.program_name = "runtime";

  std::int64_t epoch_ns = 0;
  std::int64_t last_ns = 0;
  bool any_ranked = false;
  int max_rank = -1;
  for (const obs::Span& s : spans) {
    if (s.rank < 0 || s.kind == obs::SpanKind::kStep) {
      continue;
    }
    if (!any_ranked || s.start_ns < epoch_ns) {
      epoch_ns = s.start_ns;
    }
    last_ns = std::max(last_ns, s.end_ns);
    max_rank = std::max(max_rank, static_cast<int>(s.rank));
    any_ranked = true;
  }
  if (!any_ranked) {
    return result;
  }
  const auto num_ranks = static_cast<std::size_t>(max_rank + 1);
  result.busy_seconds.assign(num_ranks, 0.0);
  result.peak_act_bytes.assign(num_ranks, 0.0);
  result.makespan = static_cast<double>(last_ns - epoch_ns) * 1e-9;

  auto rebased = [&](std::int64_t ns) {
    return static_cast<double>(ns - epoch_ns) * 1e-9;
  };

  std::map<std::pair<int, int>, sim::LinkUsage> links;
  for (const obs::Span& s : spans) {
    if (s.rank < 0 || s.kind == obs::SpanKind::kStep) {
      continue;
    }
    const auto r = static_cast<std::size_t>(s.rank);
    sched::ComputeKind ck;
    if (sched::to_compute_kind(s.kind, &ck)) {
      sim::OpRecord rec;
      rec.rank = static_cast<int>(s.rank);
      rec.start = rebased(s.start_ns);
      rec.end = rebased(s.end_ns);
      rec.kind = ck;
      rec.microbatch = s.microbatch;
      rec.chunk = s.chunk;
      rec.act_bytes_after = std::max(0.0, s.act_bytes_after);
      result.records.push_back(rec);
      result.busy_seconds[r] += s.seconds();
      result.peak_act_bytes[r] =
          std::max(result.peak_act_bytes[r], rec.act_bytes_after);
    } else if (s.kind == obs::SpanKind::kSendTransfer && s.peer >= 0) {
      result.p2p_bytes += static_cast<double>(s.bytes);
      sim::LinkUsage& link =
          links[{static_cast<int>(s.rank), static_cast<int>(s.peer)}];
      link.src = static_cast<int>(s.rank);
      link.dst = static_cast<int>(s.peer);
      link.bytes += static_cast<double>(s.bytes);
      link.busy_seconds += s.seconds();
    }
  }
  std::sort(result.records.begin(), result.records.end(),
            [](const sim::OpRecord& a, const sim::OpRecord& b) {
              if (a.rank != b.rank) {
                return a.rank < b.rank;
              }
              return a.start < b.start;
            });
  for (const auto& [key, usage] : links) {
    result.links.push_back(usage);
  }
  return result;
}

}  // namespace weipipe::trace
