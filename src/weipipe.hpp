// Umbrella header: everything a downstream user of the WeiPipe library needs.
//
//   #include "weipipe.hpp"
//
// Layering (include individual headers for finer control):
//   common/  -> obs/    -> comm/, trace/, prof/
//   common/  -> tensor/ -> nn/  -> core/, baselines/
//   common/  -> comm/   -> core/, baselines/
//   common/  -> sched/  -> sim/ -> trace/ -> prof/
#pragma once

// Foundations
#include "common/check.hpp"
#include "common/fixed_types.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"

// Tensors and the transformer
#include "nn/adam.hpp"
#include "nn/block.hpp"
#include "nn/config.hpp"
#include "nn/decode.hpp"
#include "nn/generate.hpp"
#include "nn/layer_math.hpp"
#include "nn/loss.hpp"
#include "nn/microbatch.hpp"
#include "nn/model.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

// Message-passing fabric
#include "comm/collectives.hpp"
#include "comm/fabric.hpp"
#include "comm/fault.hpp"
#include "comm/transport.hpp"
#include "comm/wire.hpp"

// Trainers (the paper's contribution + every baseline)
#include "baselines/chaos.hpp"
#include "baselines/factory.hpp"
#include "baselines/fsdp_trainer.hpp"
#include "baselines/pipeline_trainer.hpp"
#include "core/accounting.hpp"
#include "core/checkpoint.hpp"
#include "core/resilience.hpp"
#include "core/sequential_trainer.hpp"
#include "core/trainer.hpp"
#include "core/weipipe_trainer.hpp"

// Scheduling, static analysis, and simulation
#include "analysis/analysis.hpp"
#include "sched/builders.hpp"
#include "sched/program.hpp"
#include "sched/validate.hpp"
#include "sched/weipipe_schedule.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/fabric_bridge.hpp"
#include "sim/topology.hpp"
#include "trace/export.hpp"
#include "trace/runtime.hpp"
#include "trace/timeline.hpp"

// Observability & profiling
#include "obs/blackbox.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/critpath.hpp"
#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "prof/bench_run.hpp"
#include "prof/profile.hpp"

namespace weipipe {

// Library version (reproduction release, not the paper's).
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace weipipe
