#include "nn/block.hpp"

#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "nn/layer_math.hpp"
#include "tensor/ops.hpp"

namespace weipipe {

Tensor Block::backward(std::span<const float> w, const Microbatch& mb,
                       const BlockCtx& ctx, const Tensor& dy,
                       std::span<float> dw) const {
  if (ctx.has_internals) {
    return backward_impl(w, mb, ctx, dy, dw);
  }
  // Recomputation: re-run forward from the saved input, then backward.
  BlockCtx full;
  (void)forward(w, mb, ctx.input, full, /*save_internals=*/true);
  return backward_impl(w, mb, full, dy, dw);
}

// ---- EmbeddingBlock ---------------------------------------------------------

std::int64_t EmbeddingBlock::param_count() const {
  return cfg_.vocab_size * cfg_.dim;
}

void EmbeddingBlock::init_params(std::span<float> w, Rng& rng) const {
  WEIPIPE_CHECK(static_cast<std::int64_t>(w.size()) == param_count());
  const float std = 0.02f;
  for (float& v : w) {
    v = rng.normal(0.0f, std);
  }
}

Tensor EmbeddingBlock::forward(std::span<const float> w, const Microbatch& mb,
                               const Tensor& x, BlockCtx& ctx,
                               bool save_internals) const {
  (void)x;  // the embedding consumes token ids, not activations
  const std::int64_t rows = mb.rows();
  const std::int64_t H = cfg_.dim;
  Tensor y({rows, H});
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t tok = mb.tokens[static_cast<std::size_t>(r)];
    WEIPIPE_CHECK_MSG(tok >= 0 && tok < cfg_.vocab_size,
                      "token id " << tok << " out of range");
    std::memcpy(y.data() + r * H, w.data() + tok * H,
                static_cast<std::size_t>(H) * sizeof(float));
  }
  ctx.input = Tensor();  // embedding has no activation input to save
  ctx.saved.clear();
  ctx.has_internals = save_internals;
  return y;
}

Tensor EmbeddingBlock::backward_impl(std::span<const float> w,
                                     const Microbatch& mb, const BlockCtx& ctx,
                                     const Tensor& dy,
                                     std::span<float> dw) const {
  (void)w;
  (void)ctx;
  const std::int64_t rows = mb.rows();
  const std::int64_t H = cfg_.dim;
  WEIPIPE_CHECK(dy.dim(0) == rows && dy.dim(1) == H);
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t tok = mb.tokens[static_cast<std::size_t>(r)];
    const float* src = dy.data() + r * H;
    float* dst = dw.data() + tok * H;
    for (std::int64_t j = 0; j < H; ++j) {
      dst[j] += src[j];
    }
  }
  return Tensor();  // no upstream activation gradient
}

// ---- TransformerLayerBlock --------------------------------------------------

TransformerLayerBlock::Offsets TransformerLayerBlock::offsets(
    const ModelConfig& cfg) {
  const std::int64_t H = cfg.dim;
  const std::int64_t Hkv = cfg.kv_dim();  // == H for MHA, smaller for GQA
  const std::int64_t F = cfg.effective_ffn_hidden();
  Offsets o{};
  std::int64_t at = 0;
  o.attn_norm = at; at += H;
  o.wq = at; at += H * H;
  o.wk = at; at += Hkv * H;
  o.wv = at; at += Hkv * H;
  o.wo = at; at += H * H;
  o.ffn_norm = at; at += H;
  o.w1 = at; at += F * H;
  o.w3 = at; at += F * H;
  o.w2 = at; at += H * F;
  o.total = at;
  return o;
}

std::int64_t TransformerLayerBlock::param_count() const {
  return offsets(cfg_).total;
}

void TransformerLayerBlock::init_params(std::span<float> w, Rng& rng) const {
  WEIPIPE_CHECK(static_cast<std::int64_t>(w.size()) == param_count());
  const Offsets o = offsets(cfg_);
  const std::int64_t H = cfg_.dim;
  const std::int64_t F = cfg_.effective_ffn_hidden();
  // Norm gains start at 1.
  for (std::int64_t i = 0; i < H; ++i) {
    w[static_cast<std::size_t>(o.attn_norm + i)] = 1.0f;
    w[static_cast<std::size_t>(o.ffn_norm + i)] = 1.0f;
  }
  auto init_mat = [&](std::int64_t off, std::int64_t rows, std::int64_t cols) {
    const float std = 0.02f / std::sqrt(2.0f * static_cast<float>(
                                                   cfg_.n_layers));
    for (std::int64_t i = 0; i < rows * cols; ++i) {
      w[static_cast<std::size_t>(off + i)] = rng.normal(0.0f, std);
    }
  };
  init_mat(o.wq, H, H);
  init_mat(o.wk, cfg_.kv_dim(), H);
  init_mat(o.wv, cfg_.kv_dim(), H);
  init_mat(o.wo, H, H);
  init_mat(o.w1, F, H);
  init_mat(o.w3, F, H);
  init_mat(o.w2, H, F);
}

namespace {
// dx_accum += d(rmsnorm)/dx; the gain gradient accumulates into dw at
// gain_off. Used for both pre-norms, whose dx joins a residual stream.
void rmsnorm_backward_accum(const Tensor& x, std::span<const float> w,
                            std::int64_t gain_off, const Tensor& inv_rms,
                            const Tensor& dy, Tensor& dx_accum,
                            std::span<float> dw, std::int64_t rows,
                            std::int64_t dim) {
  Tensor dx({rows, dim});
  rmsnorm_backward(x.data(), w.data() + gain_off, inv_rms.data(), dy.data(),
                   dx.data(), dw.data() + gain_off, rows, dim);
  dx_accum.add_(dx);
}

// Saved-tensor slots for TransformerLayerBlock.
// Naive attention:  [xn1, q, k, v, probs, attn_out, x_mid, xn2, a, b]
// Stream attention: [xn1, q, k, v, lse,   attn_out, x_mid, xn2, a, b]
// q/k saved *after* RoPE; inv_rms vectors saved alongside as slots 10, 11.
enum Slot {
  kXn1 = 0,
  kQ,
  kK,
  kV,
  kProbsOrLse,
  kAttnOut,
  kXMid,
  kXn2,
  kA,
  kB,
  kInvRms1,
  kInvRms2,
  kNumSlots
};
}  // namespace

Tensor TransformerLayerBlock::forward(std::span<const float> w,
                                      const Microbatch& mb, const Tensor& x,
                                      BlockCtx& ctx,
                                      bool save_internals) const {
  const Offsets o = offsets(cfg_);
  const std::int64_t H = cfg_.dim;
  const std::int64_t F = cfg_.effective_ffn_hidden();
  const std::int64_t G = mb.batch;
  const std::int64_t S = mb.seq;
  const std::int64_t rows = G * S;
  const std::int64_t nh = cfg_.n_heads;
  const std::int64_t nkv = cfg_.effective_kv_heads();
  const std::int64_t Hkv = cfg_.kv_dim();
  const std::int64_t dh = cfg_.head_dim();
  WEIPIPE_CHECK(x.dim(0) == rows && x.dim(1) == H);

  ctx.input = x;
  ctx.saved.assign(kNumSlots, Tensor());
  ctx.has_internals = save_internals;

  // -- attention sub-layer
  Tensor xn1({rows, H});
  Tensor inv_rms1({rows});
  rmsnorm_forward(x.data(), w.data() + o.attn_norm, xn1.data(),
                  inv_rms1.data(), rows, H, cfg_.norm_eps);

  Tensor q({rows, H});
  Tensor k({rows, Hkv});
  Tensor v({rows, Hkv});
  kernels::matmul_bt(xn1.data(), w.data() + o.wq, q.data(), rows, H, H, false);
  kernels::matmul_bt(xn1.data(), w.data() + o.wk, k.data(), rows, H, Hkv,
                     false);
  kernels::matmul_bt(xn1.data(), w.data() + o.wv, v.data(), rows, H, Hkv,
                     false);
  rope_apply(q.data(), rows, S, nh, dh, cfg_.rope_theta, /*inverse=*/false);
  rope_apply(k.data(), rows, S, nkv, dh, cfg_.rope_theta, /*inverse=*/false);

  Tensor attn({rows, H});
  Tensor stats;  // probs (naive) or lse (stream)
  if (cfg_.flash_attention) {
    stats = Tensor({G, nh, S});
    attention_forward_stream(q.data(), k.data(), v.data(), attn.data(),
                             stats.data(), G, S, nh, nkv, dh);
  } else {
    stats = Tensor({G, nh, S, S});
    attention_forward_naive(q.data(), k.data(), v.data(), attn.data(),
                            stats.data(), G, S, nh, nkv, dh);
  }
  Tensor proj({rows, H});
  kernels::matmul_bt(attn.data(), w.data() + o.wo, proj.data(), rows, H, H,
                     false);
  Tensor x_mid = x;
  x_mid.add_(proj);

  // -- FFN sub-layer
  Tensor xn2({rows, H});
  Tensor inv_rms2({rows});
  rmsnorm_forward(x_mid.data(), w.data() + o.ffn_norm, xn2.data(),
                  inv_rms2.data(), rows, H, cfg_.norm_eps);
  Tensor a({rows, F});
  Tensor b({rows, F});
  Tensor ffn({rows, H});
  swiglu_forward(xn2.data(), w.data() + o.w1, w.data() + o.w3,
                 w.data() + o.w2, a.data(), b.data(), ffn.data(), rows, H, F);
  Tensor y = x_mid;
  y.add_(ffn);

  if (save_internals) {
    ctx.saved[kXn1] = std::move(xn1);
    ctx.saved[kQ] = std::move(q);
    ctx.saved[kK] = std::move(k);
    ctx.saved[kV] = std::move(v);
    ctx.saved[kProbsOrLse] = std::move(stats);
    ctx.saved[kAttnOut] = std::move(attn);
    ctx.saved[kXMid] = std::move(x_mid);
    ctx.saved[kXn2] = std::move(xn2);
    ctx.saved[kA] = std::move(a);
    ctx.saved[kB] = std::move(b);
    ctx.saved[kInvRms1] = std::move(inv_rms1);
    ctx.saved[kInvRms2] = std::move(inv_rms2);
  } else {
    ctx.saved.clear();
  }
  return y;
}

Tensor TransformerLayerBlock::backward_impl(std::span<const float> w,
                                            const Microbatch& mb,
                                            const BlockCtx& ctx,
                                            const Tensor& dy,
                                            std::span<float> dw) const {
  const Offsets o = offsets(cfg_);
  const std::int64_t H = cfg_.dim;
  const std::int64_t F = cfg_.effective_ffn_hidden();
  const std::int64_t G = mb.batch;
  const std::int64_t S = mb.seq;
  const std::int64_t rows = G * S;
  const std::int64_t nh = cfg_.n_heads;
  const std::int64_t nkv = cfg_.effective_kv_heads();
  const std::int64_t Hkv = cfg_.kv_dim();
  const std::int64_t dh = cfg_.head_dim();
  WEIPIPE_CHECK(ctx.has_internals && ctx.saved.size() == kNumSlots);

  const Tensor& x = ctx.input;
  const Tensor& xn1 = ctx.saved[kXn1];
  const Tensor& q = ctx.saved[kQ];
  const Tensor& k = ctx.saved[kK];
  const Tensor& v = ctx.saved[kV];
  const Tensor& stats = ctx.saved[kProbsOrLse];
  const Tensor& attn = ctx.saved[kAttnOut];
  const Tensor& x_mid = ctx.saved[kXMid];
  const Tensor& xn2 = ctx.saved[kXn2];
  const Tensor& a = ctx.saved[kA];
  const Tensor& b = ctx.saved[kB];
  const Tensor& inv_rms1 = ctx.saved[kInvRms1];
  const Tensor& inv_rms2 = ctx.saved[kInvRms2];

  // -- FFN sub-layer backward: y = x_mid + ffn(rmsnorm(x_mid))
  Tensor dxn2({rows, H});
  swiglu_backward(xn2.data(), w.data() + o.w1, w.data() + o.w3,
                  w.data() + o.w2, a.data(), b.data(), dy.data(), dxn2.data(),
                  dw.data() + o.w1, dw.data() + o.w3, dw.data() + o.w2, rows,
                  H, F);
  Tensor dx_mid = dy;  // residual path
  rmsnorm_backward_accum(x_mid, w, o.ffn_norm, inv_rms2, dxn2, dx_mid, dw,
                         rows, H);

  // -- attention sub-layer backward: x_mid = x + Wo·attn(rope(q,k),v)
  Tensor dattn({rows, H});
  kernels::matmul(dx_mid.data(), w.data() + o.wo, dattn.data(), rows, H, H,
                  false);
  // dWo += dx_mid^T attn
  kernels::matmul_at(dx_mid.data(), attn.data(), dw.data() + o.wo, H, rows, H,
                     true);

  Tensor dq({rows, H});
  Tensor dk({rows, Hkv});
  Tensor dv({rows, Hkv});
  if (cfg_.flash_attention) {
    attention_backward_stream(q.data(), k.data(), v.data(), attn.data(),
                              stats.data(), dattn.data(), dq.data(), dk.data(),
                              dv.data(), G, S, nh, nkv, dh);
  } else {
    attention_backward_naive(q.data(), k.data(), v.data(), stats.data(),
                             dattn.data(), dq.data(), dk.data(), dv.data(), G,
                             S, nh, nkv, dh);
  }
  rope_apply(dq.data(), rows, S, nh, dh, cfg_.rope_theta, /*inverse=*/true);
  rope_apply(dk.data(), rows, S, nkv, dh, cfg_.rope_theta, /*inverse=*/true);

  Tensor dxn1({rows, H});
  kernels::matmul(dq.data(), w.data() + o.wq, dxn1.data(), rows, H, H, false);
  kernels::matmul(dk.data(), w.data() + o.wk, dxn1.data(), rows, Hkv, H,
                  true);
  kernels::matmul(dv.data(), w.data() + o.wv, dxn1.data(), rows, Hkv, H,
                  true);
  kernels::matmul_at(dq.data(), xn1.data(), dw.data() + o.wq, H, rows, H,
                     true);
  kernels::matmul_at(dk.data(), xn1.data(), dw.data() + o.wk, Hkv, rows, H,
                     true);
  kernels::matmul_at(dv.data(), xn1.data(), dw.data() + o.wv, Hkv, rows, H,
                     true);

  Tensor dx = dx_mid;  // residual path
  rmsnorm_backward_accum(x, w, o.attn_norm, inv_rms1, dxn1, dx, dw, rows, H);
  return dx;
}

// ---- HeadBlock --------------------------------------------------------------

std::int64_t HeadBlock::param_count() const {
  return cfg_.dim + cfg_.vocab_size * cfg_.dim;
}

void HeadBlock::init_params(std::span<float> w, Rng& rng) const {
  WEIPIPE_CHECK(static_cast<std::int64_t>(w.size()) == param_count());
  for (std::int64_t i = 0; i < cfg_.dim; ++i) {
    w[static_cast<std::size_t>(i)] = 1.0f;
  }
  const float std = 0.02f;
  for (std::int64_t i = cfg_.dim; i < param_count(); ++i) {
    w[static_cast<std::size_t>(i)] = rng.normal(0.0f, std);
  }
}

Tensor HeadBlock::forward(std::span<const float> w, const Microbatch& mb,
                          const Tensor& x, BlockCtx& ctx,
                          bool save_internals) const {
  const std::int64_t rows = mb.rows();
  const std::int64_t H = cfg_.dim;
  const std::int64_t V = cfg_.vocab_size;
  WEIPIPE_CHECK(x.dim(0) == rows && x.dim(1) == H);
  ctx.input = x;
  ctx.saved.clear();
  ctx.has_internals = save_internals;

  Tensor xn({rows, H});
  Tensor inv_rms({rows});
  rmsnorm_forward(x.data(), w.data(), xn.data(), inv_rms.data(), rows, H,
                  cfg_.norm_eps);
  Tensor logits({rows, V});
  kernels::matmul_bt(xn.data(), w.data() + H, logits.data(), rows, H, V,
                     false);
  if (save_internals) {
    ctx.saved = {std::move(xn), std::move(inv_rms)};
  }
  return logits;
}

Tensor HeadBlock::backward_impl(std::span<const float> w, const Microbatch& mb,
                                const BlockCtx& ctx, const Tensor& dy,
                                std::span<float> dw) const {
  const std::int64_t rows = mb.rows();
  const std::int64_t H = cfg_.dim;
  const std::int64_t V = cfg_.vocab_size;
  WEIPIPE_CHECK(ctx.has_internals && ctx.saved.size() == 2);
  const Tensor& xn = ctx.saved[0];
  const Tensor& inv_rms = ctx.saved[1];
  WEIPIPE_CHECK(dy.dim(0) == rows && dy.dim(1) == V);

  Tensor dxn({rows, H});
  kernels::matmul(dy.data(), w.data() + H, dxn.data(), rows, V, H, false);
  kernels::matmul_at(dy.data(), xn.data(), dw.data() + H, V, rows, H, true);

  Tensor dx({rows, H});
  dx.zero();
  rmsnorm_backward(ctx.input.data(), w.data(), inv_rms.data(), dxn.data(),
                   dx.data(), dw.data(), rows, H);
  return dx;
}

}  // namespace weipipe
