// Next-token cross-entropy loss on logits, Tensor-level wrapper.
#pragma once

#include "nn/microbatch.hpp"
#include "tensor/tensor.hpp"

namespace weipipe {

struct LossResult {
  float loss = 0.0f;  // mean NLL over this microbatch's tokens
  Tensor dlogits;     // gradient of that mean
};

// logits: [G*S, V]; targets from mb.
LossResult cross_entropy_loss(const Tensor& logits, const Microbatch& mb);

}  // namespace weipipe
