#include "nn/decode.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.hpp"
#include "nn/block.hpp"
#include "nn/layer_math.hpp"
#include "tensor/ops.hpp"

namespace weipipe {

namespace {

// y[n] (+)= W[n, m] * x[m]   (row-major W, single-vector GEMV)
void matvec(const float* w, const float* x, float* y, std::int64_t n,
            std::int64_t m, bool accumulate) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = w + i * m;
    float acc = 0.0f;
    for (std::int64_t j = 0; j < m; ++j) {
      acc += row[j] * x[j];
    }
    y[i] = accumulate ? y[i] + acc : acc;
  }
}

void rmsnorm_row(const float* x, const float* gain, float* y, std::int64_t dim,
                 float eps) {
  double ss = 0.0;
  for (std::int64_t j = 0; j < dim; ++j) {
    ss += static_cast<double>(x[j]) * x[j];
  }
  const float inv = 1.0f / std::sqrt(
                               static_cast<float>(ss / static_cast<double>(dim)) +
                               eps);
  for (std::int64_t j = 0; j < dim; ++j) {
    y[j] = x[j] * inv * gain[j];
  }
}

// RoPE for one row at absolute position `pos`.
void rope_row(float* x, std::int64_t pos, std::int64_t n_heads,
              std::int64_t head_dim, float theta) {
  const std::int64_t half = head_dim / 2;
  for (std::int64_t h = 0; h < n_heads; ++h) {
    float* base = x + h * head_dim;
    for (std::int64_t i = 0; i < half; ++i) {
      const float freq = std::pow(
          theta, -2.0f * static_cast<float>(i) / static_cast<float>(head_dim));
      const float ang = static_cast<float>(pos) * freq;
      const float c = std::cos(ang);
      const float s = std::sin(ang);
      const float x0 = base[2 * i];
      const float x1 = base[2 * i + 1];
      base[2 * i] = x0 * c - x1 * s;
      base[2 * i + 1] = x0 * s + x1 * c;
    }
  }
}

}  // namespace

Decoder::Decoder(const Model& model,
                 const std::vector<std::vector<float>>& block_params)
    : model_(model), params_(block_params) {
  WEIPIPE_CHECK_MSG(static_cast<std::int64_t>(params_.size()) ==
                        model_.num_blocks(),
                    "block_params/model mismatch");
  const ModelConfig& cfg = model_.config();
  const std::int64_t cap = cfg.seq_len;
  k_cache_.assign(static_cast<std::size_t>(cfg.n_layers),
                  std::vector<float>(static_cast<std::size_t>(cap *
                                                              cfg.kv_dim())));
  v_cache_ = k_cache_;
  logits_.assign(static_cast<std::size_t>(cfg.vocab_size), 0.0f);
}

void Decoder::prefill(std::span<const std::int32_t> tokens) {
  for (std::int32_t t : tokens) {
    step(t);
  }
}

void Decoder::step(std::int32_t token) {
  const ModelConfig& cfg = model_.config();
  WEIPIPE_CHECK_MSG(pos_ < capacity(),
                    "KV cache full (" << capacity()
                                      << " positions); use generate() for "
                                         "windowed generation");
  WEIPIPE_CHECK_MSG(token >= 0 && token < cfg.vocab_size,
                    "token " << token << " out of range");
  const std::int64_t H = cfg.dim;
  const std::int64_t F = cfg.effective_ffn_hidden();
  const std::int64_t nh = cfg.n_heads;
  const std::int64_t nkv = cfg.effective_kv_heads();
  const std::int64_t Hkv = cfg.kv_dim();
  const std::int64_t dh = cfg.head_dim();
  const std::int64_t group = nh / nkv;
  const float scl = 1.0f / std::sqrt(static_cast<float>(dh));

  // Embedding lookup.
  std::vector<float> x(static_cast<std::size_t>(H));
  std::memcpy(x.data(), params_.front().data() + token * H,
              static_cast<std::size_t>(H) * sizeof(float));

  std::vector<float> xn(static_cast<std::size_t>(H));
  std::vector<float> q(static_cast<std::size_t>(H));
  std::vector<float> attn(static_cast<std::size_t>(H));
  std::vector<float> proj(static_cast<std::size_t>(H));
  std::vector<float> a(static_cast<std::size_t>(F));
  std::vector<float> b(static_cast<std::size_t>(F));
  std::vector<float> ffn(static_cast<std::size_t>(H));

  for (std::int64_t layer = 0; layer < cfg.n_layers; ++layer) {
    const std::vector<float>& w = params_[static_cast<std::size_t>(layer + 1)];
    const auto o = TransformerLayerBlock::offsets(cfg);
    float* kc = k_cache_[static_cast<std::size_t>(layer)].data();
    float* vc = v_cache_[static_cast<std::size_t>(layer)].data();
    float* k_row = kc + pos_ * Hkv;
    float* v_row = vc + pos_ * Hkv;

    // Attention sub-layer.
    rmsnorm_row(x.data(), w.data() + o.attn_norm, xn.data(), H, cfg.norm_eps);
    matvec(w.data() + o.wq, xn.data(), q.data(), H, H, false);
    matvec(w.data() + o.wk, xn.data(), k_row, Hkv, H, false);
    matvec(w.data() + o.wv, xn.data(), v_row, Hkv, H, false);
    rope_row(q.data(), pos_, nh, dh, cfg.rope_theta);
    rope_row(k_row, pos_, nkv, dh, cfg.rope_theta);

    // Streaming attention of the single query row over the cache.
    for (std::int64_t h = 0; h < nh; ++h) {
      const std::int64_t kvh = h / group;
      const float* qh = q.data() + h * dh;
      float m = -std::numeric_limits<float>::infinity();
      float l = 0.0f;
      std::vector<float> acc(static_cast<std::size_t>(dh), 0.0f);
      for (std::int64_t j = 0; j <= pos_; ++j) {
        const float* kj = kc + j * Hkv + kvh * dh;
        float s = 0.0f;
        for (std::int64_t d = 0; d < dh; ++d) {
          s += qh[d] * kj[d];
        }
        s *= scl;
        const float m_new = std::max(m, s);
        const float corr = (l == 0.0f) ? 0.0f : std::exp(m - m_new);
        const float p = std::exp(s - m_new);
        l = l * corr + p;
        const float* vj = vc + j * Hkv + kvh * dh;
        for (std::int64_t d = 0; d < dh; ++d) {
          acc[static_cast<std::size_t>(d)] =
              acc[static_cast<std::size_t>(d)] * corr + p * vj[d];
        }
        m = m_new;
      }
      const float inv = 1.0f / l;
      for (std::int64_t d = 0; d < dh; ++d) {
        attn[static_cast<std::size_t>(h * dh + d)] =
            acc[static_cast<std::size_t>(d)] * inv;
      }
    }
    matvec(w.data() + o.wo, attn.data(), proj.data(), H, H, false);
    for (std::int64_t j = 0; j < H; ++j) {
      x[static_cast<std::size_t>(j)] += proj[static_cast<std::size_t>(j)];
    }

    // FFN sub-layer.
    rmsnorm_row(x.data(), w.data() + o.ffn_norm, xn.data(), H, cfg.norm_eps);
    matvec(w.data() + o.w1, xn.data(), a.data(), F, H, false);
    matvec(w.data() + o.w3, xn.data(), b.data(), F, H, false);
    for (std::int64_t j = 0; j < F; ++j) {
      a[static_cast<std::size_t>(j)] =
          silu(a[static_cast<std::size_t>(j)]) * b[static_cast<std::size_t>(j)];
    }
    matvec(w.data() + o.w2, a.data(), ffn.data(), H, F, false);
    for (std::int64_t j = 0; j < H; ++j) {
      x[static_cast<std::size_t>(j)] += ffn[static_cast<std::size_t>(j)];
    }
  }

  // Final norm + head.
  const std::vector<float>& head = params_.back();
  rmsnorm_row(x.data(), head.data(), xn.data(), H, cfg.norm_eps);
  matvec(head.data() + H, xn.data(), logits_.data(), cfg.vocab_size, H,
         false);
  ++pos_;
}

std::span<const float> Decoder::logits() const {
  WEIPIPE_CHECK_MSG(pos_ > 0, "feed at least one token first");
  return logits_;
}

std::int32_t Decoder::sample(float temperature, Rng& rng) const {
  const std::span<const float> lg = logits();
  if (temperature <= 0.0f) {
    return static_cast<std::int32_t>(
        std::max_element(lg.begin(), lg.end()) - lg.begin());
  }
  float mx = lg[0];
  for (float v : lg) {
    mx = std::max(mx, v);
  }
  std::vector<double> probs(lg.size());
  double denom = 0.0;
  for (std::size_t j = 0; j < lg.size(); ++j) {
    probs[j] = std::exp(static_cast<double>(lg[j] - mx) / temperature);
    denom += probs[j];
  }
  double r = rng.next_double() * denom;
  for (std::size_t j = 0; j < lg.size(); ++j) {
    r -= probs[j];
    if (r <= 0.0) {
      return static_cast<std::int32_t>(j);
    }
  }
  return static_cast<std::int32_t>(lg.size() - 1);
}

std::vector<std::int32_t> generate_cached(
    const Model& model, const std::vector<std::vector<float>>& block_params,
    std::span<const std::int32_t> prompt, std::int64_t max_new_tokens,
    float temperature, std::uint64_t seed) {
  WEIPIPE_CHECK_MSG(!prompt.empty(), "generation needs a non-empty prompt");
  WEIPIPE_CHECK_MSG(static_cast<std::int64_t>(prompt.size()) +
                            max_new_tokens <=
                        model.config().seq_len,
                    "prompt + new tokens exceed the context window");
  Decoder decoder(model, block_params);
  decoder.prefill(prompt);
  Rng rng(seed == 0 ? 0x5EED5EEDull : seed);
  std::vector<std::int32_t> out(prompt.begin(), prompt.end());
  for (std::int64_t i = 0; i < max_new_tokens; ++i) {
    const std::int32_t next = decoder.sample(temperature, rng);
    out.push_back(next);
    if (i + 1 < max_new_tokens) {
      decoder.step(next);
    }
  }
  return out;
}

}  // namespace weipipe
