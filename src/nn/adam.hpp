// AdamW with fp32 master state.
//
// In WeiPipe each rank owns the optimizer state only for the chunk(s) it is
// responsible for (paper §4.2.1: "it also stores the corresponding optimizer
// state for that layer, which doesn't need to be transmitted"); an AdamShard
// is exactly that per-chunk state.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/config.hpp"

namespace weipipe {

class AdamShard {
 public:
  AdamShard() = default;
  explicit AdamShard(std::int64_t num_params)
      : m_(static_cast<std::size_t>(num_params), 0.0f),
        v_(static_cast<std::size_t>(num_params), 0.0f) {}

  std::int64_t size() const { return static_cast<std::int64_t>(m_.size()); }
  std::int64_t step_count() const { return t_; }

  // One AdamW step: w -= lr * (m_hat / (sqrt(v_hat)+eps) + wd*w).
  // grad and weights must match this shard's size.
  void step(std::span<float> weights, std::span<const float> grad,
            const AdamConfig& cfg);

  // State access for checkpointing.
  std::span<const float> first_moment() const { return m_; }
  std::span<const float> second_moment() const { return v_; }
  void restore(std::vector<float> m, std::vector<float> v,
               std::int64_t step_count);

 private:
  std::vector<float> m_;
  std::vector<float> v_;
  std::int64_t t_ = 0;
};

}  // namespace weipipe
