#include "nn/model.hpp"

#include "common/check.hpp"

namespace weipipe {

Model::Model(const ModelConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  blocks_.push_back(std::make_unique<EmbeddingBlock>(cfg_));
  for (std::int64_t i = 0; i < cfg_.n_layers; ++i) {
    blocks_.push_back(std::make_unique<TransformerLayerBlock>(cfg_));
  }
  blocks_.push_back(std::make_unique<HeadBlock>(cfg_));
}

std::int64_t Model::total_param_count() const {
  std::int64_t n = 0;
  for (const auto& b : blocks_) {
    n += b->param_count();
  }
  return n;
}

std::vector<ChunkSpec> Model::make_chunks(std::int64_t num_chunks) const {
  WEIPIPE_CHECK_MSG(num_chunks >= 1 && num_chunks <= cfg_.n_layers,
                    "num_chunks " << num_chunks << " must be in [1, L="
                                  << cfg_.n_layers << "]");
  // Distribute the L transformer layers as evenly as possible; chunk 0 also
  // receives the embedding block and the last chunk the head block.
  std::vector<ChunkSpec> chunks(static_cast<std::size_t>(num_chunks));
  const std::int64_t base = cfg_.n_layers / num_chunks;
  const std::int64_t extra = cfg_.n_layers % num_chunks;
  std::int64_t block_cursor = 1;  // transformer layers start at block 1
  for (std::int64_t c = 0; c < num_chunks; ++c) {
    const std::int64_t layers_here = base + (c < extra ? 1 : 0);
    ChunkSpec& spec = chunks[static_cast<std::size_t>(c)];
    spec.begin = (c == 0) ? 0 : block_cursor;
    block_cursor += layers_here;
    spec.end = (c == num_chunks - 1) ? num_blocks() : block_cursor;
    spec.param_count = 0;
    for (std::int64_t b = spec.begin; b < spec.end; ++b) {
      spec.param_count += block_param_count(b);
    }
  }
  WEIPIPE_CHECK(block_cursor == num_blocks() - 1);
  return chunks;
}

std::vector<ChunkSpec> Model::make_layer_chunks(
    std::int64_t num_chunks) const {
  WEIPIPE_CHECK_MSG(num_chunks >= 1 && num_chunks <= cfg_.n_layers,
                    "num_chunks " << num_chunks << " must be in [1, L="
                                  << cfg_.n_layers << "]");
  std::vector<ChunkSpec> chunks(static_cast<std::size_t>(num_chunks));
  const std::int64_t base = cfg_.n_layers / num_chunks;
  const std::int64_t extra = cfg_.n_layers % num_chunks;
  std::int64_t block_cursor = 1;  // skip the embedding block
  for (std::int64_t c = 0; c < num_chunks; ++c) {
    const std::int64_t layers_here = base + (c < extra ? 1 : 0);
    ChunkSpec& spec = chunks[static_cast<std::size_t>(c)];
    spec.begin = block_cursor;
    block_cursor += layers_here;
    spec.end = block_cursor;
    spec.param_count = 0;
    for (std::int64_t b = spec.begin; b < spec.end; ++b) {
      spec.param_count += block_param_count(b);
    }
  }
  WEIPIPE_CHECK(block_cursor == num_blocks() - 1);  // head excluded
  return chunks;
}

std::vector<std::vector<float>> Model::init_block_params(
    std::uint64_t seed) const {
  Rng root(seed);
  std::vector<std::vector<float>> params;
  params.reserve(blocks_.size());
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    std::vector<float> w(
        static_cast<std::size_t>(blocks_[i]->param_count()));
    Rng rng = root.fork(static_cast<std::uint64_t>(i));
    blocks_[i]->init_params(w, rng);
    params.push_back(std::move(w));
  }
  return params;
}

std::vector<std::vector<float>> Model::init_chunk_params(
    const std::vector<ChunkSpec>& chunks, std::uint64_t seed) const {
  Rng root(seed);
  std::vector<std::vector<float>> out;
  out.reserve(chunks.size());
  for (const ChunkSpec& spec : chunks) {
    std::vector<float> buf(static_cast<std::size_t>(spec.param_count));
    std::int64_t off = 0;
    for (std::int64_t b = spec.begin; b < spec.end; ++b) {
      const std::int64_t n = block_param_count(b);
      Rng rng = root.fork(static_cast<std::uint64_t>(b));
      blocks_[static_cast<std::size_t>(b)]->init_params(
          std::span<float>(buf.data() + off, static_cast<std::size_t>(n)),
          rng);
      off += n;
    }
    out.push_back(std::move(buf));
  }
  return out;
}

std::int64_t Model::block_offset_in_chunk(const ChunkSpec& chunk,
                                          std::int64_t b) const {
  WEIPIPE_CHECK(b >= chunk.begin && b < chunk.end);
  std::int64_t off = 0;
  for (std::int64_t i = chunk.begin; i < b; ++i) {
    off += block_param_count(i);
  }
  return off;
}

Tensor Model::forward_all(const std::vector<std::vector<float>>& block_params,
                          const Microbatch& mb,
                          std::vector<BlockCtx>& ctxs) const {
  WEIPIPE_CHECK(block_params.size() == blocks_.size());
  ctxs.assign(blocks_.size(), BlockCtx());
  Tensor x;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    x = blocks_[i]->forward(
        std::span<const float>(block_params[i].data(),
                               block_params[i].size()),
        mb, x, ctxs[i], /*save_internals=*/!cfg_.recompute);
  }
  return x;
}

void Model::backward_all(const std::vector<std::vector<float>>& block_params,
                         const Microbatch& mb,
                         const std::vector<BlockCtx>& ctxs,
                         const Tensor& dlogits,
                         std::vector<std::vector<float>>& dgrads) const {
  WEIPIPE_CHECK(block_params.size() == blocks_.size());
  WEIPIPE_CHECK(ctxs.size() == blocks_.size());
  WEIPIPE_CHECK(dgrads.size() == blocks_.size());
  Tensor d = dlogits;
  for (std::int64_t i = num_blocks() - 1; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    WEIPIPE_CHECK(dgrads[idx].size() == block_params[idx].size());
    d = blocks_[idx]->backward(
        std::span<const float>(block_params[idx].data(),
                               block_params[idx].size()),
        mb, ctxs[idx], d,
        std::span<float>(dgrads[idx].data(), dgrads[idx].size()));
  }
}

}  // namespace weipipe
