#include "nn/generate.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace weipipe {

std::vector<std::int32_t> generate(
    const Model& model, const std::vector<std::vector<float>>& block_params,
    std::span<const std::int32_t> prompt, const GenerateOptions& options) {
  const ModelConfig& cfg = model.config();
  WEIPIPE_CHECK_MSG(!prompt.empty(), "generation needs a non-empty prompt");
  for (std::int32_t t : prompt) {
    WEIPIPE_CHECK_MSG(t >= 0 && t < cfg.vocab_size,
                      "prompt token " << t << " out of range");
  }
  Rng rng(options.seed == 0 ? 0x5EED5EEDull : options.seed);

  std::vector<std::int32_t> out(prompt.begin(), prompt.end());
  for (std::int64_t step = 0; step < options.max_new_tokens; ++step) {
    // Sliding window over the most recent <= seq_len tokens. The context
    // must be at least 2 tokens for the blocks' shape checks; pad by
    // repeating the first token if the prompt is a single token.
    const std::int64_t ctx_len = std::min<std::int64_t>(
        cfg.seq_len, static_cast<std::int64_t>(out.size()));
    Microbatch mb;
    mb.batch = 1;
    mb.seq = std::max<std::int64_t>(ctx_len, 2);
    mb.tokens.assign(static_cast<std::size_t>(mb.seq), out.front());
    const std::int64_t pad = mb.seq - ctx_len;
    for (std::int64_t i = 0; i < ctx_len; ++i) {
      mb.tokens[static_cast<std::size_t>(pad + i)] =
          out[out.size() - static_cast<std::size_t>(ctx_len - i)];
    }
    mb.targets.assign(static_cast<std::size_t>(mb.seq), 0);

    std::vector<BlockCtx> ctxs;
    const Tensor logits = model.forward_all(block_params, mb, ctxs);
    const std::int64_t V = cfg.vocab_size;
    const float* row = logits.data() + (mb.seq - 1) * V;

    std::int32_t next = 0;
    if (options.temperature <= 0.0f) {
      next = static_cast<std::int32_t>(
          std::max_element(row, row + V) - row);
    } else {
      // Temperature sampling with a numerically stable softmax.
      float mx = row[0];
      for (std::int64_t j = 1; j < V; ++j) {
        mx = std::max(mx, row[j]);
      }
      std::vector<double> probs(static_cast<std::size_t>(V));
      double denom = 0.0;
      for (std::int64_t j = 0; j < V; ++j) {
        probs[static_cast<std::size_t>(j)] =
            std::exp(static_cast<double>(row[j] - mx) / options.temperature);
        denom += probs[static_cast<std::size_t>(j)];
      }
      double r = rng.next_double() * denom;
      next = static_cast<std::int32_t>(V - 1);
      for (std::int64_t j = 0; j < V; ++j) {
        r -= probs[static_cast<std::size_t>(j)];
        if (r <= 0.0) {
          next = static_cast<std::int32_t>(j);
          break;
        }
      }
    }
    out.push_back(next);
  }
  return out;
}

}  // namespace weipipe
