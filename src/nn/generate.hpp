// Autoregressive generation from a trained model — greedy or
// temperature-sampled, with a sliding context window. Used by the examples
// to demonstrate that WeiPipe-trained weights actually learned the synthetic
// language, and by tests to close the train->use loop.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/model.hpp"

namespace weipipe {

struct GenerateOptions {
  std::int64_t max_new_tokens = 32;
  // 0 => greedy argmax; > 0 => softmax(logits / temperature) sampling.
  float temperature = 0.0f;
  std::uint64_t seed = 0;
};

// Returns prompt + generated continuation. `block_params` as produced by
// Trainer::gather_block_params(). The context is clipped to the model's
// seq_len from the left (sliding window) as generation proceeds.
std::vector<std::int32_t> generate(const Model& model,
                                   const std::vector<std::vector<float>>& block_params,
                                   std::span<const std::int32_t> prompt,
                                   const GenerateOptions& options);

}  // namespace weipipe
