#include "nn/loss.hpp"

#include "common/check.hpp"
#include "nn/layer_math.hpp"

namespace weipipe {

LossResult cross_entropy_loss(const Tensor& logits, const Microbatch& mb) {
  WEIPIPE_CHECK(logits.ndim() == 2);
  WEIPIPE_CHECK_MSG(logits.dim(0) == mb.rows(),
                    "logits rows " << logits.dim(0) << " != mb rows "
                                   << mb.rows());
  LossResult res;
  res.dlogits = Tensor({logits.dim(0), logits.dim(1)});
  res.loss = cross_entropy(logits.data(), mb.targets.data(),
                           res.dlogits.data(), logits.dim(0), logits.dim(1));
  return res;
}

}  // namespace weipipe
