// Microbatches and deterministic synthetic language-modelling data.
//
// The paper measures training throughput, not downstream quality, so the data
// only needs to (a) be deterministic across strategies and (b) carry enough
// structure that loss demonstrably decreases (examples/tests assert this).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/config.hpp"

namespace weipipe {

// One microbatch of G sequences of S tokens with next-token targets.
struct Microbatch {
  std::int64_t batch = 0;  // G
  std::int64_t seq = 0;    // S
  std::vector<std::int32_t> tokens;   // G*S input ids
  std::vector<std::int32_t> targets;  // G*S next-token ids

  std::int64_t rows() const { return batch * seq; }
};

// A microbatch source. Implementations MUST be deterministic in
// (construction args, index): in the distributed trainers every rank
// re-materializes its own microbatches locally from the index alone, so any
// nondeterminism would silently break strategy equivalence.
class Dataset {
 public:
  virtual ~Dataset() = default;
  virtual Microbatch make(std::int64_t index, std::int64_t batch,
                          std::int64_t seq) const = 0;
  virtual std::int64_t vocab_size() const = 0;
};

// Affine-recurrence "language": next = (a*cur + b) mod V. Memorizable by a
// small transformer, so loss curves separate working schedules from broken
// ones quickly.
class SyntheticDataset final : public Dataset {
 public:
  SyntheticDataset(std::int64_t vocab_size, std::uint64_t seed)
      : vocab_(vocab_size), seed_(seed) {}

  Microbatch make(std::int64_t index, std::int64_t batch,
                  std::int64_t seq) const override {
    Microbatch mb;
    mb.batch = batch;
    mb.seq = seq;
    mb.tokens.resize(static_cast<std::size_t>(batch * seq));
    mb.targets.resize(static_cast<std::size_t>(batch * seq));
    Rng rng = Rng(seed_).fork(static_cast<std::uint64_t>(index));
    for (std::int64_t g = 0; g < batch; ++g) {
      std::int64_t cur = static_cast<std::int64_t>(rng.next_below(
          static_cast<std::uint64_t>(vocab_)));
      const std::int64_t a = 1 + 2 * static_cast<std::int64_t>(
                                      rng.next_below(3));  // odd multiplier
      const std::int64_t b = static_cast<std::int64_t>(rng.next_below(7));
      for (std::int64_t s = 0; s < seq; ++s) {
        const std::int64_t next = (a * cur + b) % vocab_;
        mb.tokens[static_cast<std::size_t>(g * seq + s)] =
            static_cast<std::int32_t>(cur);
        mb.targets[static_cast<std::size_t>(g * seq + s)] =
            static_cast<std::int32_t>(next);
        cur = next;
      }
    }
    return mb;
  }

  std::int64_t vocab_size() const override { return vocab_; }

 private:
  std::int64_t vocab_;
  std::uint64_t seed_;
};

// Copy task: [random payload] DELIM [payload repeats...]. Predicting the
// repeated half requires genuine long-range attention (positions after the
// delimiter must attend back ~S/2 tokens), unlike the local affine task.
// Token 0 is reserved as the delimiter.
class CopyDataset final : public Dataset {
 public:
  CopyDataset(std::int64_t vocab_size, std::uint64_t seed)
      : vocab_(vocab_size), seed_(seed) {
    WEIPIPE_CHECK_MSG(vocab_ >= 3, "copy task needs vocab >= 3");
  }

  Microbatch make(std::int64_t index, std::int64_t batch,
                  std::int64_t seq) const override {
    WEIPIPE_CHECK_MSG(seq >= 4, "copy task needs seq >= 4");
    Microbatch mb;
    mb.batch = batch;
    mb.seq = seq;
    mb.tokens.resize(static_cast<std::size_t>(batch * seq));
    mb.targets.resize(static_cast<std::size_t>(batch * seq));
    Rng rng = Rng(seed_ ^ 0xC0FFEEull).fork(static_cast<std::uint64_t>(index));
    const std::int64_t payload = (seq - 1) / 2;
    for (std::int64_t g = 0; g < batch; ++g) {
      std::vector<std::int32_t> row(static_cast<std::size_t>(seq));
      for (std::int64_t i = 0; i < payload; ++i) {
        row[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
            1 + rng.next_below(static_cast<std::uint64_t>(vocab_ - 1)));
      }
      row[static_cast<std::size_t>(payload)] = 0;  // delimiter
      for (std::int64_t i = payload + 1; i < seq; ++i) {
        row[static_cast<std::size_t>(i)] =
            row[static_cast<std::size_t>((i - payload - 1) % payload)];
      }
      for (std::int64_t i = 0; i < seq; ++i) {
        mb.tokens[static_cast<std::size_t>(g * seq + i)] =
            row[static_cast<std::size_t>(i)];
        // Next-token target; the final position wraps to the delimiter.
        mb.targets[static_cast<std::size_t>(g * seq + i)] =
            i + 1 < seq ? row[static_cast<std::size_t>(i + 1)] : 0;
      }
    }
    return mb;
  }

  std::int64_t vocab_size() const override { return vocab_; }

 private:
  std::int64_t vocab_;
  std::uint64_t seed_;
};

// exp(mean NLL): the usual language-model quality number.
inline double perplexity(double mean_loss) { return std::exp(mean_loss); }

}  // namespace weipipe
