#include "nn/layer_math.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace weipipe {

namespace {

// Per-kernel dispatch grain: enough items per chunk that each claim carries
// ~kElemsPerChunk scalar operations (work_per_item = inner-loop length).
constexpr std::int64_t kElemsPerChunk = 1 << 15;

std::size_t grain_for(std::int64_t work_per_item) {
  return static_cast<std::size_t>(std::max<std::int64_t>(
      1, kElemsPerChunk / std::max<std::int64_t>(1, work_per_item)));
}

}  // namespace

void rmsnorm_forward(const float* x, const float* gain, float* y,
                     float* inv_rms, std::int64_t rows, std::int64_t dim,
                     float eps) {
  parallel_for_range(
      0, static_cast<std::size_t>(rows), grain_for(dim),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t rr = lo; rr < hi; ++rr) {
          const std::int64_t r = static_cast<std::int64_t>(rr);
          const float* xr = x + r * dim;
          float* yr = y + r * dim;
          double ss = 0.0;
          for (std::int64_t j = 0; j < dim; ++j) {
            ss += static_cast<double>(xr[j]) * xr[j];
          }
          const float inv = 1.0f / std::sqrt(static_cast<float>(
                                                 ss / static_cast<double>(dim)) +
                                             eps);
          inv_rms[r] = inv;
          for (std::int64_t j = 0; j < dim; ++j) {
            yr[j] = xr[j] * inv * gain[j];
          }
        }
      });
}

void rmsnorm_backward(const float* x, const float* gain, const float* inv_rms,
                      const float* dy, float* dx, float* dgain,
                      std::int64_t rows, std::int64_t dim) {
  // Two passes so both parallelize race-free: rows own disjoint dx slices,
  // column blocks own disjoint dgain slices. Each dgain column still sums
  // over rows in increasing order, so results match the serial loop exactly.
  parallel_for_range(
      0, static_cast<std::size_t>(rows), grain_for(dim),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t rr = lo; rr < hi; ++rr) {
          const std::int64_t r = static_cast<std::int64_t>(rr);
          const float* xr = x + r * dim;
          const float* dyr = dy + r * dim;
          float* dxr = dx + r * dim;
          const float inv = inv_rms[r];
          // s = sum_k dy_k * gain_k * x_k
          double s = 0.0;
          for (std::int64_t j = 0; j < dim; ++j) {
            s += static_cast<double>(dyr[j]) * gain[j] * xr[j];
          }
          const float coef =
              -static_cast<float>(s) * inv * inv * inv / static_cast<float>(dim);
          for (std::int64_t j = 0; j < dim; ++j) {
            dxr[j] = dyr[j] * gain[j] * inv + coef * xr[j];
          }
        }
      });
  parallel_for_range(
      0, static_cast<std::size_t>(dim), grain_for(rows),
      [&](std::size_t lo, std::size_t hi) {
        for (std::int64_t r = 0; r < rows; ++r) {
          const float* xr = x + r * dim;
          const float* dyr = dy + r * dim;
          const float inv = inv_rms[r];
          for (std::size_t j = lo; j < hi; ++j) {
            dgain[j] += dyr[j] * xr[j] * inv;
          }
        }
      });
}

void rope_apply(float* x, std::int64_t rows, std::int64_t seq,
                std::int64_t n_heads, std::int64_t head_dim, float theta,
                bool inverse) {
  const std::int64_t half = head_dim / 2;
  // Per-frequency base angles are position-scaled; precompute the inverse
  // frequencies once per call (head_dim is small).
  std::vector<float> inv_freq(static_cast<std::size_t>(half));
  for (std::int64_t i = 0; i < half; ++i) {
    inv_freq[static_cast<std::size_t>(i)] = std::pow(
        theta, -2.0f * static_cast<float>(i) / static_cast<float>(head_dim));
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t pos = r % seq;
    for (std::int64_t h = 0; h < n_heads; ++h) {
      float* base = x + r * n_heads * head_dim + h * head_dim;
      for (std::int64_t i = 0; i < half; ++i) {
        float ang = static_cast<float>(pos) * inv_freq[static_cast<std::size_t>(i)];
        if (inverse) {
          ang = -ang;
        }
        const float c = std::cos(ang);
        const float s = std::sin(ang);
        const float x0 = base[2 * i];
        const float x1 = base[2 * i + 1];
        base[2 * i] = x0 * c - x1 * s;
        base[2 * i + 1] = x0 * s + x1 * c;
      }
    }
  }
}

void attention_forward_naive(const float* q, const float* k, const float* v,
                             float* out, float* probs, std::int64_t G,
                             std::int64_t S, std::int64_t nh, std::int64_t nkv,
                             std::int64_t dh) {
  const float scl = 1.0f / std::sqrt(static_cast<float>(dh));
  const std::int64_t H = nh * dh;
  const std::int64_t Hkv = nkv * dh;
  const std::int64_t group = nh / nkv;
  parallel_for(0, static_cast<std::size_t>(G * nh), [&](std::size_t gh) {
    const std::int64_t g = static_cast<std::int64_t>(gh) / nh;
    const std::int64_t h = static_cast<std::int64_t>(gh) % nh;
    const std::int64_t kvh = h / group;  // shared key/value head
    float* p = probs + (g * nh + h) * S * S;
    for (std::int64_t i = 0; i < S; ++i) {
      const float* qi = q + (g * S + i) * H + h * dh;
      float* pi = p + i * S;
      for (std::int64_t j = 0; j <= i; ++j) {
        const float* kj = k + (g * S + j) * Hkv + kvh * dh;
        float acc = 0.0f;
        for (std::int64_t d = 0; d < dh; ++d) {
          acc += qi[d] * kj[d];
        }
        pi[j] = acc * scl;
      }
      const std::int64_t valid = i + 1;
      kernels::softmax_rows(pi, 1, S, &valid);
      float* oi = out + (g * S + i) * H + h * dh;
      std::memset(oi, 0, static_cast<std::size_t>(dh) * sizeof(float));
      for (std::int64_t j = 0; j <= i; ++j) {
        const float* vj = v + (g * S + j) * Hkv + kvh * dh;
        const float pij = pi[j];
        for (std::int64_t d = 0; d < dh; ++d) {
          oi[d] += pij * vj[d];
        }
      }
    }
  });
}

void attention_backward_naive(const float* q, const float* k, const float* v,
                              const float* probs, const float* dout, float* dq,
                              float* dk, float* dv, std::int64_t G,
                              std::int64_t S, std::int64_t nh,
                              std::int64_t nkv, std::int64_t dh) {
  const float scl = 1.0f / std::sqrt(static_cast<float>(dh));
  const std::int64_t H = nh * dh;
  const std::int64_t Hkv = nkv * dh;
  const std::int64_t group = nh / nkv;
  std::memset(dq, 0, static_cast<std::size_t>(G * S * H) * sizeof(float));
  std::memset(dk, 0, static_cast<std::size_t>(G * S * Hkv) * sizeof(float));
  std::memset(dv, 0, static_cast<std::size_t>(G * S * Hkv) * sizeof(float));
  // Parallelize over (g, kv-head): every query head in the group accumulates
  // into the same dk/dv slices, so the group stays on one task.
  parallel_for(0, static_cast<std::size_t>(G * nkv), [&](std::size_t gkv) {
    const std::int64_t g = static_cast<std::int64_t>(gkv) / nkv;
    const std::int64_t kvh = static_cast<std::int64_t>(gkv) % nkv;
    std::vector<float> dp(static_cast<std::size_t>(S));
    for (std::int64_t h = kvh * group; h < (kvh + 1) * group; ++h) {
      const float* p = probs + (g * nh + h) * S * S;
      for (std::int64_t i = 0; i < S; ++i) {
        const float* pi = p + i * S;
        const float* doi = dout + (g * S + i) * H + h * dh;
        // dV and dP for row i.
        double row_dot = 0.0;
        for (std::int64_t j = 0; j <= i; ++j) {
          const float* vj = v + (g * S + j) * Hkv + kvh * dh;
          float acc = 0.0f;
          for (std::int64_t d = 0; d < dh; ++d) {
            acc += doi[d] * vj[d];
          }
          dp[static_cast<std::size_t>(j)] = acc;
          row_dot += static_cast<double>(acc) * pi[j];
          float* dvj = dv + (g * S + j) * Hkv + kvh * dh;
          const float pij = pi[j];
          for (std::int64_t d = 0; d < dh; ++d) {
            dvj[d] += pij * doi[d];
          }
        }
        // dScores_ij = P_ij * (dP_ij - sum_k dP_ik P_ik); then dq, dk.
        const float* qi = q + (g * S + i) * H + h * dh;
        float* dqi = dq + (g * S + i) * H + h * dh;
        for (std::int64_t j = 0; j <= i; ++j) {
          const float ds =
              pi[j] * (dp[static_cast<std::size_t>(j)] -
                       static_cast<float>(row_dot)) * scl;
          const float* kj = k + (g * S + j) * Hkv + kvh * dh;
          float* dkj = dk + (g * S + j) * Hkv + kvh * dh;
          for (std::int64_t d = 0; d < dh; ++d) {
            dqi[d] += ds * kj[d];
            dkj[d] += ds * qi[d];
          }
        }
      }
    }
  });
}

void attention_forward_stream(const float* q, const float* k, const float* v,
                              float* out, float* lse, std::int64_t G,
                              std::int64_t S, std::int64_t nh,
                              std::int64_t nkv, std::int64_t dh) {
  const float scl = 1.0f / std::sqrt(static_cast<float>(dh));
  const std::int64_t H = nh * dh;
  const std::int64_t Hkv = nkv * dh;
  const std::int64_t group = nh / nkv;
  // FlashAttention-style blocking: Bq query rows against Bk key columns at a
  // time. The score block and the P*V update are GEMMs against the strided
  // Q/K/V layouts (a transpose is a stride swap); only the online-softmax
  // rescale between them is elementwise. O(S) working set per task instead
  // of O(S^2) scores.
  constexpr std::int64_t kBq = 64;
  constexpr std::int64_t kBk = 64;
  parallel_for(0, static_cast<std::size_t>(G * nh), [&](std::size_t gh) {
    const std::int64_t g = static_cast<std::int64_t>(gh) / nh;
    const std::int64_t h = static_cast<std::int64_t>(gh) % nh;
    const std::int64_t kvh = h / group;
    std::vector<float> sblk(static_cast<std::size_t>(kBq * kBk));
    std::vector<float> acc(static_cast<std::size_t>(kBq * dh));
    std::vector<float> m(static_cast<std::size_t>(kBq));
    std::vector<float> l(static_cast<std::size_t>(kBq));
    for (std::int64_t i0 = 0; i0 < S; i0 += kBq) {
      const std::int64_t mq = std::min(kBq, S - i0);
      std::fill(m.begin(), m.end(), -std::numeric_limits<float>::infinity());
      std::fill(l.begin(), l.end(), 0.0f);
      std::fill(acc.begin(), acc.end(), 0.0f);
      const float* qblk = q + (g * S + i0) * H + h * dh;
      // Causal: the highest query row in this block sees keys 0..i0+mq-1.
      for (std::int64_t j0 = 0; j0 < i0 + mq; j0 += kBk) {
        const std::int64_t nk = std::min(kBk, std::min(S, i0 + mq) - j0);
        // S_blk[mq, nk] = Q_blk * K_blk^T  (K^T: column j is key row j0+j).
        kernels::gemm(qblk, H, 1, k + (g * S + j0) * Hkv + kvh * dh, 1, Hkv,
                      sblk.data(), kBk, mq, dh, nk, /*accumulate=*/false);
        // Online-softmax update per row; masked entries become P = 0.
        for (std::int64_t i = 0; i < mq; ++i) {
          float* si = sblk.data() + i * kBk;
          const std::int64_t qi = i0 + i;
          const std::int64_t valid = std::min(nk, qi - j0 + 1);
          if (valid <= 0) {
            std::fill(si, si + nk, 0.0f);
            continue;
          }
          float bmax = -std::numeric_limits<float>::infinity();
          for (std::int64_t j = 0; j < valid; ++j) {
            si[j] *= scl;
            bmax = std::max(bmax, si[j]);
          }
          const float m_new = std::max(m[static_cast<std::size_t>(i)], bmax);
          const float corr =
              (l[static_cast<std::size_t>(i)] == 0.0f)
                  ? 0.0f
                  : std::exp(m[static_cast<std::size_t>(i)] - m_new);
          float psum = 0.0f;
          for (std::int64_t j = 0; j < valid; ++j) {
            si[j] = std::exp(si[j] - m_new);
            psum += si[j];
          }
          std::fill(si + valid, si + nk, 0.0f);
          l[static_cast<std::size_t>(i)] =
              l[static_cast<std::size_t>(i)] * corr + psum;
          m[static_cast<std::size_t>(i)] = m_new;
          float* ai = acc.data() + i * dh;
          for (std::int64_t d = 0; d < dh; ++d) {
            ai[d] *= corr;
          }
        }
        // acc[mq, dh] += P_blk * V_blk.
        kernels::gemm(sblk.data(), kBk, 1, v + (g * S + j0) * Hkv + kvh * dh,
                      Hkv, 1, acc.data(), dh, mq, nk, dh, /*accumulate=*/true);
      }
      for (std::int64_t i = 0; i < mq; ++i) {
        float* oi = out + (g * S + i0 + i) * H + h * dh;
        const float* ai = acc.data() + i * dh;
        const float inv = 1.0f / l[static_cast<std::size_t>(i)];
        for (std::int64_t d = 0; d < dh; ++d) {
          oi[d] = ai[d] * inv;
        }
        lse[(g * nh + h) * S + i0 + i] =
            m[static_cast<std::size_t>(i)] +
            std::log(l[static_cast<std::size_t>(i)]);
      }
    }
  });
}

void attention_backward_stream(const float* q, const float* k, const float* v,
                               const float* out, const float* lse,
                               const float* dout, float* dq, float* dk,
                               float* dv, std::int64_t G, std::int64_t S,
                               std::int64_t nh, std::int64_t nkv,
                               std::int64_t dh) {
  const float scl = 1.0f / std::sqrt(static_cast<float>(dh));
  const std::int64_t H = nh * dh;
  const std::int64_t Hkv = nkv * dh;
  const std::int64_t group = nh / nkv;
  std::memset(dq, 0, static_cast<std::size_t>(G * S * H) * sizeof(float));
  std::memset(dk, 0, static_cast<std::size_t>(G * S * Hkv) * sizeof(float));
  std::memset(dv, 0, static_cast<std::size_t>(G * S * Hkv) * sizeof(float));
  // Group query heads sharing a kv head onto one task (dk/dv accumulation).
  parallel_for(0, static_cast<std::size_t>(G * nkv), [&](std::size_t gkv) {
    const std::int64_t g = static_cast<std::int64_t>(gkv) / nkv;
    const std::int64_t kvh = static_cast<std::int64_t>(gkv) % nkv;
    for (std::int64_t h = kvh * group; h < (kvh + 1) * group; ++h) {
      for (std::int64_t i = 0; i < S; ++i) {
        const float* qi = q + (g * S + i) * H + h * dh;
        const float* oi = out + (g * S + i) * H + h * dh;
        const float* doi = dout + (g * S + i) * H + h * dh;
        float* dqi = dq + (g * S + i) * H + h * dh;
        const float lse_i = lse[(g * nh + h) * S + i];
        // D_i = <dout_i, out_i> (the "delta" trick from FlashAttention-2).
        float delta = 0.0f;
        for (std::int64_t d = 0; d < dh; ++d) {
          delta += doi[d] * oi[d];
        }
        for (std::int64_t j = 0; j <= i; ++j) {
          const float* kj = k + (g * S + j) * Hkv + kvh * dh;
          const float* vj = v + (g * S + j) * Hkv + kvh * dh;
          float s = 0.0f;
          float dpv = 0.0f;
          for (std::int64_t d = 0; d < dh; ++d) {
            s += qi[d] * kj[d];
            dpv += doi[d] * vj[d];
          }
          const float p = std::exp(s * scl - lse_i);
          const float ds = p * (dpv - delta) * scl;
          float* dkj = dk + (g * S + j) * Hkv + kvh * dh;
          float* dvj = dv + (g * S + j) * Hkv + kvh * dh;
          for (std::int64_t d = 0; d < dh; ++d) {
            dqi[d] += ds * kj[d];
            dkj[d] += ds * qi[d];
            dvj[d] += p * doi[d];
          }
        }
      }
    }
  });
}

void swiglu_forward(const float* x, const float* w1, const float* w3,
                    const float* w2, float* a, float* b, float* y,
                    std::int64_t rows, std::int64_t dim, std::int64_t ffn) {
  kernels::matmul_bt(x, w1, a, rows, dim, ffn, /*accumulate=*/false);
  kernels::matmul_bt(x, w3, b, rows, dim, ffn, /*accumulate=*/false);
  std::vector<float> hbuf(static_cast<std::size_t>(rows * ffn));
  float* hp = hbuf.data();
  parallel_for_range(0, static_cast<std::size_t>(rows * ffn),
                     static_cast<std::size_t>(kElemsPerChunk),
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) {
                         hp[i] = silu(a[i]) * b[i];
                       }
                     });
  kernels::matmul_bt(hbuf.data(), w2, y, rows, ffn, dim, /*accumulate=*/false);
}

void swiglu_backward(const float* x, const float* w1, const float* w3,
                     const float* w2, const float* a, const float* b,
                     const float* dy, float* dx, float* dw1, float* dw3,
                     float* dw2, std::int64_t rows, std::int64_t dim,
                     std::int64_t ffn) {
  // Recompute h = silu(a) * b (cheap, avoids storing a third [rows,F] buffer).
  std::vector<float> h(static_cast<std::size_t>(rows * ffn));
  float* hp = h.data();
  parallel_for_range(0, static_cast<std::size_t>(rows * ffn),
                     static_cast<std::size_t>(kElemsPerChunk),
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) {
                         hp[i] = silu(a[i]) * b[i];
                       }
                     });
  // dW2 += dy^T h
  kernels::matmul_at(dy, h.data(), dw2, dim, rows, ffn, /*accumulate=*/true);
  // dh = dy W2
  std::vector<float>& dh = h;  // reuse buffer
  kernels::matmul(dy, w2, dh.data(), rows, dim, ffn, /*accumulate=*/false);
  // da = dh * b * silu'(a); db = dh * silu(a)
  std::vector<float> da(static_cast<std::size_t>(rows * ffn));
  std::vector<float> db(static_cast<std::size_t>(rows * ffn));
  float* dhp = dh.data();
  float* dap = da.data();
  float* dbp = db.data();
  parallel_for_range(0, static_cast<std::size_t>(rows * ffn),
                     static_cast<std::size_t>(kElemsPerChunk),
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) {
                         dap[i] = dhp[i] * b[i] * silu_grad(a[i]);
                         dbp[i] = dhp[i] * silu(a[i]);
                       }
                     });
  // dx = da W1 + db W3
  kernels::matmul(da.data(), w1, dx, rows, ffn, dim, /*accumulate=*/false);
  kernels::matmul(db.data(), w3, dx, rows, ffn, dim, /*accumulate=*/true);
  // dW1 += da^T x ; dW3 += db^T x
  kernels::matmul_at(da.data(), x, dw1, ffn, rows, dim, /*accumulate=*/true);
  kernels::matmul_at(db.data(), x, dw3, ffn, rows, dim, /*accumulate=*/true);
}

float cross_entropy(const float* logits, const std::int32_t* targets,
                    float* dlogits, std::int64_t rows, std::int64_t vocab) {
  const float inv_rows = 1.0f / static_cast<float>(rows);
  // Rows are independent; per-row losses land in a scratch array and are
  // summed serially afterwards so the total is deterministic under any
  // thread count.
  std::vector<double> row_loss(static_cast<std::size_t>(rows));
  double* rl = row_loss.data();
  parallel_for_range(
      0, static_cast<std::size_t>(rows), grain_for(vocab),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t rr = lo; rr < hi; ++rr) {
          const std::int64_t r = static_cast<std::int64_t>(rr);
          const float* lr = logits + r * vocab;
          float* dr = dlogits + r * vocab;
          float mx = lr[0];
          for (std::int64_t j = 1; j < vocab; ++j) {
            mx = std::max(mx, lr[j]);
          }
          double denom = 0.0;
          for (std::int64_t j = 0; j < vocab; ++j) {
            denom += std::exp(static_cast<double>(lr[j] - mx));
          }
          const std::int64_t t = targets[r];
          rl[rr] = std::log(denom) - static_cast<double>(lr[t] - mx);
          const float inv_denom = static_cast<float>(1.0 / denom);
          for (std::int64_t j = 0; j < vocab; ++j) {
            const float p = std::exp(lr[j] - mx) * inv_denom;
            dr[j] = (p - (j == t ? 1.0f : 0.0f)) * inv_rows;
          }
        }
      });
  double total = 0.0;
  for (std::int64_t r = 0; r < rows; ++r) {
    total += rl[r];
  }
  return static_cast<float>(total / static_cast<double>(rows));
}

}  // namespace weipipe
