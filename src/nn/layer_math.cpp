#include "nn/layer_math.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace weipipe {

void rmsnorm_forward(const float* x, const float* gain, float* y,
                     float* inv_rms, std::int64_t rows, std::int64_t dim,
                     float eps) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * dim;
    float* yr = y + r * dim;
    double ss = 0.0;
    for (std::int64_t j = 0; j < dim; ++j) {
      ss += static_cast<double>(xr[j]) * xr[j];
    }
    const float inv =
        1.0f / std::sqrt(static_cast<float>(ss / static_cast<double>(dim)) +
                         eps);
    inv_rms[r] = inv;
    for (std::int64_t j = 0; j < dim; ++j) {
      yr[j] = xr[j] * inv * gain[j];
    }
  }
}

void rmsnorm_backward(const float* x, const float* gain, const float* inv_rms,
                      const float* dy, float* dx, float* dgain,
                      std::int64_t rows, std::int64_t dim) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * dim;
    const float* dyr = dy + r * dim;
    float* dxr = dx + r * dim;
    const float inv = inv_rms[r];
    // s = sum_k dy_k * gain_k * x_k
    double s = 0.0;
    for (std::int64_t j = 0; j < dim; ++j) {
      s += static_cast<double>(dyr[j]) * gain[j] * xr[j];
      dgain[j] += dyr[j] * xr[j] * inv;
    }
    const float coef =
        -static_cast<float>(s) * inv * inv * inv / static_cast<float>(dim);
    for (std::int64_t j = 0; j < dim; ++j) {
      dxr[j] = dyr[j] * gain[j] * inv + coef * xr[j];
    }
  }
}

void rope_apply(float* x, std::int64_t rows, std::int64_t seq,
                std::int64_t n_heads, std::int64_t head_dim, float theta,
                bool inverse) {
  const std::int64_t half = head_dim / 2;
  // Per-frequency base angles are position-scaled; precompute the inverse
  // frequencies once per call (head_dim is small).
  std::vector<float> inv_freq(static_cast<std::size_t>(half));
  for (std::int64_t i = 0; i < half; ++i) {
    inv_freq[static_cast<std::size_t>(i)] = std::pow(
        theta, -2.0f * static_cast<float>(i) / static_cast<float>(head_dim));
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t pos = r % seq;
    for (std::int64_t h = 0; h < n_heads; ++h) {
      float* base = x + r * n_heads * head_dim + h * head_dim;
      for (std::int64_t i = 0; i < half; ++i) {
        float ang = static_cast<float>(pos) * inv_freq[static_cast<std::size_t>(i)];
        if (inverse) {
          ang = -ang;
        }
        const float c = std::cos(ang);
        const float s = std::sin(ang);
        const float x0 = base[2 * i];
        const float x1 = base[2 * i + 1];
        base[2 * i] = x0 * c - x1 * s;
        base[2 * i + 1] = x0 * s + x1 * c;
      }
    }
  }
}

void attention_forward_naive(const float* q, const float* k, const float* v,
                             float* out, float* probs, std::int64_t G,
                             std::int64_t S, std::int64_t nh, std::int64_t nkv,
                             std::int64_t dh) {
  const float scl = 1.0f / std::sqrt(static_cast<float>(dh));
  const std::int64_t H = nh * dh;
  const std::int64_t Hkv = nkv * dh;
  const std::int64_t group = nh / nkv;
  parallel_for(0, static_cast<std::size_t>(G * nh), [&](std::size_t gh) {
    const std::int64_t g = static_cast<std::int64_t>(gh) / nh;
    const std::int64_t h = static_cast<std::int64_t>(gh) % nh;
    const std::int64_t kvh = h / group;  // shared key/value head
    float* p = probs + (g * nh + h) * S * S;
    for (std::int64_t i = 0; i < S; ++i) {
      const float* qi = q + (g * S + i) * H + h * dh;
      float* pi = p + i * S;
      for (std::int64_t j = 0; j <= i; ++j) {
        const float* kj = k + (g * S + j) * Hkv + kvh * dh;
        float acc = 0.0f;
        for (std::int64_t d = 0; d < dh; ++d) {
          acc += qi[d] * kj[d];
        }
        pi[j] = acc * scl;
      }
      const std::int64_t valid = i + 1;
      kernels::softmax_rows(pi, 1, S, &valid);
      float* oi = out + (g * S + i) * H + h * dh;
      std::memset(oi, 0, static_cast<std::size_t>(dh) * sizeof(float));
      for (std::int64_t j = 0; j <= i; ++j) {
        const float* vj = v + (g * S + j) * Hkv + kvh * dh;
        const float pij = pi[j];
        for (std::int64_t d = 0; d < dh; ++d) {
          oi[d] += pij * vj[d];
        }
      }
    }
  });
}

void attention_backward_naive(const float* q, const float* k, const float* v,
                              const float* probs, const float* dout, float* dq,
                              float* dk, float* dv, std::int64_t G,
                              std::int64_t S, std::int64_t nh,
                              std::int64_t nkv, std::int64_t dh) {
  const float scl = 1.0f / std::sqrt(static_cast<float>(dh));
  const std::int64_t H = nh * dh;
  const std::int64_t Hkv = nkv * dh;
  const std::int64_t group = nh / nkv;
  std::memset(dq, 0, static_cast<std::size_t>(G * S * H) * sizeof(float));
  std::memset(dk, 0, static_cast<std::size_t>(G * S * Hkv) * sizeof(float));
  std::memset(dv, 0, static_cast<std::size_t>(G * S * Hkv) * sizeof(float));
  // Parallelize over (g, kv-head): every query head in the group accumulates
  // into the same dk/dv slices, so the group stays on one task.
  parallel_for(0, static_cast<std::size_t>(G * nkv), [&](std::size_t gkv) {
    const std::int64_t g = static_cast<std::int64_t>(gkv) / nkv;
    const std::int64_t kvh = static_cast<std::int64_t>(gkv) % nkv;
    std::vector<float> dp(static_cast<std::size_t>(S));
    for (std::int64_t h = kvh * group; h < (kvh + 1) * group; ++h) {
      const float* p = probs + (g * nh + h) * S * S;
      for (std::int64_t i = 0; i < S; ++i) {
        const float* pi = p + i * S;
        const float* doi = dout + (g * S + i) * H + h * dh;
        // dV and dP for row i.
        double row_dot = 0.0;
        for (std::int64_t j = 0; j <= i; ++j) {
          const float* vj = v + (g * S + j) * Hkv + kvh * dh;
          float acc = 0.0f;
          for (std::int64_t d = 0; d < dh; ++d) {
            acc += doi[d] * vj[d];
          }
          dp[static_cast<std::size_t>(j)] = acc;
          row_dot += static_cast<double>(acc) * pi[j];
          float* dvj = dv + (g * S + j) * Hkv + kvh * dh;
          const float pij = pi[j];
          for (std::int64_t d = 0; d < dh; ++d) {
            dvj[d] += pij * doi[d];
          }
        }
        // dScores_ij = P_ij * (dP_ij - sum_k dP_ik P_ik); then dq, dk.
        const float* qi = q + (g * S + i) * H + h * dh;
        float* dqi = dq + (g * S + i) * H + h * dh;
        for (std::int64_t j = 0; j <= i; ++j) {
          const float ds =
              pi[j] * (dp[static_cast<std::size_t>(j)] -
                       static_cast<float>(row_dot)) * scl;
          const float* kj = k + (g * S + j) * Hkv + kvh * dh;
          float* dkj = dk + (g * S + j) * Hkv + kvh * dh;
          for (std::int64_t d = 0; d < dh; ++d) {
            dqi[d] += ds * kj[d];
            dkj[d] += ds * qi[d];
          }
        }
      }
    }
  });
}

void attention_forward_stream(const float* q, const float* k, const float* v,
                              float* out, float* lse, std::int64_t G,
                              std::int64_t S, std::int64_t nh,
                              std::int64_t nkv, std::int64_t dh) {
  const float scl = 1.0f / std::sqrt(static_cast<float>(dh));
  const std::int64_t H = nh * dh;
  const std::int64_t Hkv = nkv * dh;
  const std::int64_t group = nh / nkv;
  parallel_for(0, static_cast<std::size_t>(G * nh), [&](std::size_t gh) {
    const std::int64_t g = static_cast<std::int64_t>(gh) / nh;
    const std::int64_t h = static_cast<std::int64_t>(gh) % nh;
    const std::int64_t kvh = h / group;
    std::vector<float> acc(static_cast<std::size_t>(dh));
    for (std::int64_t i = 0; i < S; ++i) {
      const float* qi = q + (g * S + i) * H + h * dh;
      // Online softmax over keys 0..i: running max m, running sum l.
      float m = -std::numeric_limits<float>::infinity();
      float l = 0.0f;
      std::fill(acc.begin(), acc.end(), 0.0f);
      for (std::int64_t j = 0; j <= i; ++j) {
        const float* kj = k + (g * S + j) * Hkv + kvh * dh;
        float s = 0.0f;
        for (std::int64_t d = 0; d < dh; ++d) {
          s += qi[d] * kj[d];
        }
        s *= scl;
        const float m_new = std::max(m, s);
        const float corr = (l == 0.0f) ? 0.0f : std::exp(m - m_new);
        const float p = std::exp(s - m_new);
        l = l * corr + p;
        const float* vj = v + (g * S + j) * Hkv + kvh * dh;
        for (std::int64_t d = 0; d < dh; ++d) {
          acc[static_cast<std::size_t>(d)] =
              acc[static_cast<std::size_t>(d)] * corr + p * vj[d];
        }
        m = m_new;
      }
      float* oi = out + (g * S + i) * H + h * dh;
      const float inv = 1.0f / l;
      for (std::int64_t d = 0; d < dh; ++d) {
        oi[d] = acc[static_cast<std::size_t>(d)] * inv;
      }
      lse[(g * nh + h) * S + i] = m + std::log(l);
    }
  });
}

void attention_backward_stream(const float* q, const float* k, const float* v,
                               const float* out, const float* lse,
                               const float* dout, float* dq, float* dk,
                               float* dv, std::int64_t G, std::int64_t S,
                               std::int64_t nh, std::int64_t nkv,
                               std::int64_t dh) {
  const float scl = 1.0f / std::sqrt(static_cast<float>(dh));
  const std::int64_t H = nh * dh;
  const std::int64_t Hkv = nkv * dh;
  const std::int64_t group = nh / nkv;
  std::memset(dq, 0, static_cast<std::size_t>(G * S * H) * sizeof(float));
  std::memset(dk, 0, static_cast<std::size_t>(G * S * Hkv) * sizeof(float));
  std::memset(dv, 0, static_cast<std::size_t>(G * S * Hkv) * sizeof(float));
  // Group query heads sharing a kv head onto one task (dk/dv accumulation).
  parallel_for(0, static_cast<std::size_t>(G * nkv), [&](std::size_t gkv) {
    const std::int64_t g = static_cast<std::int64_t>(gkv) / nkv;
    const std::int64_t kvh = static_cast<std::int64_t>(gkv) % nkv;
    for (std::int64_t h = kvh * group; h < (kvh + 1) * group; ++h) {
      for (std::int64_t i = 0; i < S; ++i) {
        const float* qi = q + (g * S + i) * H + h * dh;
        const float* oi = out + (g * S + i) * H + h * dh;
        const float* doi = dout + (g * S + i) * H + h * dh;
        float* dqi = dq + (g * S + i) * H + h * dh;
        const float lse_i = lse[(g * nh + h) * S + i];
        // D_i = <dout_i, out_i> (the "delta" trick from FlashAttention-2).
        float delta = 0.0f;
        for (std::int64_t d = 0; d < dh; ++d) {
          delta += doi[d] * oi[d];
        }
        for (std::int64_t j = 0; j <= i; ++j) {
          const float* kj = k + (g * S + j) * Hkv + kvh * dh;
          const float* vj = v + (g * S + j) * Hkv + kvh * dh;
          float s = 0.0f;
          float dpv = 0.0f;
          for (std::int64_t d = 0; d < dh; ++d) {
            s += qi[d] * kj[d];
            dpv += doi[d] * vj[d];
          }
          const float p = std::exp(s * scl - lse_i);
          const float ds = p * (dpv - delta) * scl;
          float* dkj = dk + (g * S + j) * Hkv + kvh * dh;
          float* dvj = dv + (g * S + j) * Hkv + kvh * dh;
          for (std::int64_t d = 0; d < dh; ++d) {
            dqi[d] += ds * kj[d];
            dkj[d] += ds * qi[d];
            dvj[d] += p * doi[d];
          }
        }
      }
    }
  });
}

void swiglu_forward(const float* x, const float* w1, const float* w3,
                    const float* w2, float* a, float* b, float* y,
                    std::int64_t rows, std::int64_t dim, std::int64_t ffn) {
  kernels::matmul_bt(x, w1, a, rows, dim, ffn, /*accumulate=*/false);
  kernels::matmul_bt(x, w3, b, rows, dim, ffn, /*accumulate=*/false);
  std::vector<float> hbuf(static_cast<std::size_t>(rows * ffn));
  for (std::int64_t i = 0; i < rows * ffn; ++i) {
    hbuf[static_cast<std::size_t>(i)] = silu(a[i]) * b[i];
  }
  kernels::matmul_bt(hbuf.data(), w2, y, rows, ffn, dim, /*accumulate=*/false);
}

void swiglu_backward(const float* x, const float* w1, const float* w3,
                     const float* w2, const float* a, const float* b,
                     const float* dy, float* dx, float* dw1, float* dw3,
                     float* dw2, std::int64_t rows, std::int64_t dim,
                     std::int64_t ffn) {
  // Recompute h = silu(a) * b (cheap, avoids storing a third [rows,F] buffer).
  std::vector<float> h(static_cast<std::size_t>(rows * ffn));
  for (std::int64_t i = 0; i < rows * ffn; ++i) {
    h[static_cast<std::size_t>(i)] = silu(a[i]) * b[i];
  }
  // dW2 += dy^T h
  kernels::matmul_at(dy, h.data(), dw2, dim, rows, ffn, /*accumulate=*/true);
  // dh = dy W2
  std::vector<float>& dh = h;  // reuse buffer
  kernels::matmul(dy, w2, dh.data(), rows, dim, ffn, /*accumulate=*/false);
  // da = dh * b * silu'(a); db = dh * silu(a)
  std::vector<float> da(static_cast<std::size_t>(rows * ffn));
  std::vector<float> db(static_cast<std::size_t>(rows * ffn));
  for (std::int64_t i = 0; i < rows * ffn; ++i) {
    da[static_cast<std::size_t>(i)] =
        dh[static_cast<std::size_t>(i)] * b[i] * silu_grad(a[i]);
    db[static_cast<std::size_t>(i)] =
        dh[static_cast<std::size_t>(i)] * silu(a[i]);
  }
  // dx = da W1 + db W3
  kernels::matmul(da.data(), w1, dx, rows, ffn, dim, /*accumulate=*/false);
  kernels::matmul(db.data(), w3, dx, rows, ffn, dim, /*accumulate=*/true);
  // dW1 += da^T x ; dW3 += db^T x
  kernels::matmul_at(da.data(), x, dw1, ffn, rows, dim, /*accumulate=*/true);
  kernels::matmul_at(db.data(), x, dw3, ffn, rows, dim, /*accumulate=*/true);
}

float cross_entropy(const float* logits, const std::int32_t* targets,
                    float* dlogits, std::int64_t rows, std::int64_t vocab) {
  double total = 0.0;
  const float inv_rows = 1.0f / static_cast<float>(rows);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* lr = logits + r * vocab;
    float* dr = dlogits + r * vocab;
    float mx = lr[0];
    for (std::int64_t j = 1; j < vocab; ++j) {
      mx = std::max(mx, lr[j]);
    }
    double denom = 0.0;
    for (std::int64_t j = 0; j < vocab; ++j) {
      denom += std::exp(static_cast<double>(lr[j] - mx));
    }
    const std::int64_t t = targets[r];
    const double logp =
        static_cast<double>(lr[t] - mx) - std::log(denom);
    total -= logp;
    const float inv_denom = static_cast<float>(1.0 / denom);
    for (std::int64_t j = 0; j < vocab; ++j) {
      const float p = std::exp(lr[j] - mx) * inv_denom;
      dr[j] = (p - (j == t ? 1.0f : 0.0f)) * inv_rows;
    }
  }
  return static_cast<float>(total / static_cast<double>(rows));
}

}  // namespace weipipe
