// Model / precision / optimizer configuration shared by every training
// strategy. Keeping all knobs here guarantees that strategy-equivalence tests
// compare apples to apples: a single config fans out to sequential, WeiPipe,
// 1F1B, GPipe and FSDP trainers.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/fixed_types.hpp"

namespace weipipe {

// Llama-2-style decoder-only transformer (RMSNorm, RoPE attention, SwiGLU).
struct ModelConfig {
  std::int64_t vocab_size = 256;
  std::int64_t dim = 64;         // hidden size H
  std::int64_t n_layers = 4;     // transformer layers L (excl. embedding/head)
  std::int64_t n_heads = 4;
  // Grouped-query attention (Llama-2-70B style): number of key/value heads;
  // 0 means n_heads (classic multi-head attention). Query heads share KV
  // heads in groups of n_heads / n_kv_heads.
  std::int64_t n_kv_heads = 0;
  std::int64_t seq_len = 32;     // context length S
  std::int64_t ffn_hidden = 0;   // F; 0 -> default round_up(8H/3, 8)
  float rope_theta = 10000.0f;
  float norm_eps = 1e-5f;

  // Streaming (Flash-style) attention: O(S) extra memory instead of the
  // O(S^2) score matrix. Same math as the naive path to fp32 rounding.
  bool flash_attention = true;
  // Gradient checkpointing: layer contexts keep only the block input and the
  // backward pass re-runs forward. The paper enables this for all non-ZB
  // strategies to unlock large microbatches.
  bool recompute = false;

  std::int64_t head_dim() const { return dim / n_heads; }
  std::int64_t effective_kv_heads() const {
    return n_kv_heads > 0 ? n_kv_heads : n_heads;
  }
  std::int64_t kv_dim() const { return effective_kv_heads() * head_dim(); }

  std::int64_t effective_ffn_hidden() const {
    if (ffn_hidden > 0) {
      return ffn_hidden;
    }
    // Llama convention: 2/3 * 4H rounded up; yields ~8H^2 FFN params as in
    // the paper's "12H^2 per layer" accounting.
    const std::int64_t raw = (8 * dim + 2) / 3;
    return (raw + 7) / 8 * 8;
  }

  void validate() const {
    WEIPIPE_CHECK_MSG(dim % n_heads == 0, "dim must divide by n_heads");
    WEIPIPE_CHECK(head_dim() % 2 == 0);  // RoPE rotates pairs
    WEIPIPE_CHECK_MSG(n_heads % effective_kv_heads() == 0,
                      "n_heads must divide by n_kv_heads");
    WEIPIPE_CHECK(vocab_size >= 2);
    WEIPIPE_CHECK(n_layers >= 1);
    WEIPIPE_CHECK(seq_len >= 2);
  }
};

// Wire precisions for circulated tensors, mirroring the paper's §5 choices:
// W and D in fp16, gradients of activations (B) in bf16, activations fp16.
// Fp32 everywhere gives the exact-equivalence test mode.
struct PrecisionConfig {
  WirePrecision weights = WirePrecision::Fp32;
  WirePrecision weight_grads = WirePrecision::Fp32;
  WirePrecision activations = WirePrecision::Fp32;
  WirePrecision activation_grads = WirePrecision::Fp32;

  static PrecisionConfig paper() {
    return {WirePrecision::Fp16, WirePrecision::Fp16, WirePrecision::Fp16,
            WirePrecision::Bf16};
  }
  static PrecisionConfig fp32() { return {}; }
};

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.95f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

// Learning-rate schedule, evaluated identically (and locally) on every rank:
// linear warmup to adam.lr over `warmup_iters`, then cosine decay to
// `min_lr_fraction * adam.lr` at `total_iters` (constant afterwards).
// Disabled (= constant adam.lr) when total_iters == 0.
struct LrSchedule {
  std::int64_t warmup_iters = 0;
  std::int64_t total_iters = 0;
  float min_lr_fraction = 0.1f;

  float scale(std::int64_t iter) const;
};

// Global-norm gradient clipping: grads are scaled by
// min(1, max_norm / ||g||_2) where the norm spans *all* parameters — in the
// distributed trainers this requires a scalar reduction across ranks.
// Disabled when max_norm <= 0.
struct ClipConfig {
  float max_norm = 0.0f;
  bool enabled() const { return max_norm > 0.0f; }
};

}  // namespace weipipe
