// Model: the ordered block list (embedding, L transformer layers, head) plus
// the chunking scheme that every distributed strategy shares.
//
// A *chunk* is the unit that pipelines schedule: a contiguous run of blocks
// whose weights live in one flat buffer. For P pipeline stages the L+2 blocks
// are split into P chunks with the embedding glued to the first and the head
// glued to the last — the same stage partitioning Megatron-style pipelines
// use, and the circulation unit of WeiPipe.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/block.hpp"
#include "nn/config.hpp"
#include "nn/loss.hpp"

namespace weipipe {

// Block indices [begin, end) composing one chunk.
struct ChunkSpec {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t param_count = 0;
};

class Model {
 public:
  explicit Model(const ModelConfig& cfg);

  const ModelConfig& config() const { return cfg_; }
  std::int64_t num_blocks() const {
    return static_cast<std::int64_t>(blocks_.size());
  }
  const Block& block(std::int64_t i) const { return *blocks_[static_cast<std::size_t>(i)]; }
  std::int64_t block_param_count(std::int64_t i) const {
    return blocks_[static_cast<std::size_t>(i)]->param_count();
  }
  std::int64_t total_param_count() const;

  // Contiguous partition of blocks into `num_chunks` chunks, balanced by
  // transformer-layer count (embedding/head ride along with the edges).
  std::vector<ChunkSpec> make_chunks(std::int64_t num_chunks) const;

  // Partition of the transformer layers only (blocks [1, L+1)): the chunking
  // used when the vocabulary matrices are replicated per worker instead of
  // circulated (production WeiPipe; see WeiPipeOptions::replicate_vocab).
  std::vector<ChunkSpec> make_layer_chunks(std::int64_t num_chunks) const;

  // Deterministic initialization: block i draws from rng.fork(i), so chunk
  // buffers can be initialized independently (and identically) on any rank.
  std::vector<std::vector<float>> init_block_params(std::uint64_t seed) const;

  // Flat per-chunk weight buffers for a given chunking.
  std::vector<std::vector<float>> init_chunk_params(
      const std::vector<ChunkSpec>& chunks, std::uint64_t seed) const;

  // Offset of block `b` inside its chunk's flat buffer.
  std::int64_t block_offset_in_chunk(const ChunkSpec& chunk,
                                     std::int64_t b) const;

  // -- Single-process reference path -----------------------------------------
  // Forward through all blocks; per-block contexts appended to `ctxs`.
  // Returns logits.
  Tensor forward_all(const std::vector<std::vector<float>>& block_params,
                     const Microbatch& mb, std::vector<BlockCtx>& ctxs) const;
  // Backward through all blocks; dgrads[i] accumulates block i's gradient.
  void backward_all(const std::vector<std::vector<float>>& block_params,
                    const Microbatch& mb, const std::vector<BlockCtx>& ctxs,
                    const Tensor& dlogits,
                    std::vector<std::vector<float>>& dgrads) const;

 private:
  ModelConfig cfg_;
  std::vector<std::unique_ptr<Block>> blocks_;
};

}  // namespace weipipe
