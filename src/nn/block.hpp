// Block: a pipeline-schedulable model fragment with *externalized* weights.
//
// This is the key structural choice enabling WeiPipe: blocks are stateless
// descriptors; weights live in flat float buffers owned by whichever rank the
// schedule says. Forward/backward take the weights as spans, so circulating a
// chunk is just moving (and possibly re-quantizing) one contiguous buffer.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/config.hpp"
#include "nn/microbatch.hpp"
#include "tensor/tensor.hpp"

namespace weipipe {

// Per-(block, microbatch) forward state needed by backward.
struct BlockCtx {
  // Block input activations; always kept (it is the recompute seed).
  Tensor input;
  // Internal saved tensors (attention stats, FFN pre-activations, ...).
  // Empty when the block ran in recompute mode.
  std::vector<Tensor> saved;
  bool has_internals = false;

  std::int64_t bytes() const {
    std::int64_t n = input.numel();
    for (const Tensor& t : saved) {
      n += t.numel();
    }
    return n * static_cast<std::int64_t>(sizeof(float));
  }
};

class Block {
 public:
  explicit Block(const ModelConfig& cfg) : cfg_(cfg) {}
  virtual ~Block() = default;

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  virtual std::string name() const = 0;
  virtual std::int64_t param_count() const = 0;
  virtual void init_params(std::span<float> w, Rng& rng) const = 0;

  // x: [G*S, H] activations from the previous block (ignored by the embedding
  // block, which reads mb.tokens). `save_internals=false` implements
  // recomputation: ctx retains only the input.
  virtual Tensor forward(std::span<const float> w, const Microbatch& mb,
                         const Tensor& x, BlockCtx& ctx,
                         bool save_internals) const = 0;

  // Returns dx; accumulates (+=) the weight gradient into dw.
  // If ctx lacks internals, re-runs forward on ctx.input first.
  Tensor backward(std::span<const float> w, const Microbatch& mb,
                  const BlockCtx& ctx, const Tensor& dy,
                  std::span<float> dw) const;

  const ModelConfig& config() const { return cfg_; }

 protected:
  // Backward assuming ctx has internals.
  virtual Tensor backward_impl(std::span<const float> w, const Microbatch& mb,
                               const BlockCtx& ctx, const Tensor& dy,
                               std::span<float> dw) const = 0;

  const ModelConfig& cfg_;
};

// ---- Concrete blocks --------------------------------------------------------

// Token embedding lookup: params [V, H].
class EmbeddingBlock final : public Block {
 public:
  using Block::Block;
  std::string name() const override { return "embedding"; }
  std::int64_t param_count() const override;
  void init_params(std::span<float> w, Rng& rng) const override;
  Tensor forward(std::span<const float> w, const Microbatch& mb,
                 const Tensor& x, BlockCtx& ctx,
                 bool save_internals) const override;

 protected:
  Tensor backward_impl(std::span<const float> w, const Microbatch& mb,
                       const BlockCtx& ctx, const Tensor& dy,
                       std::span<float> dw) const override;
};

// Pre-norm transformer layer: RMSNorm -> causal RoPE MHA -> residual ->
// RMSNorm -> SwiGLU -> residual. Param layout (flat, in order):
// attn_norm[H] wq[H,H] wk[H,H] wv[H,H] wo[H,H] ffn_norm[H] w1[F,H] w3[F,H] w2[H,F]
class TransformerLayerBlock final : public Block {
 public:
  using Block::Block;
  std::string name() const override { return "layer"; }
  std::int64_t param_count() const override;
  void init_params(std::span<float> w, Rng& rng) const override;
  Tensor forward(std::span<const float> w, const Microbatch& mb,
                 const Tensor& x, BlockCtx& ctx,
                 bool save_internals) const override;

  struct Offsets {
    std::int64_t attn_norm, wq, wk, wv, wo, ffn_norm, w1, w3, w2, total;
  };
  static Offsets offsets(const ModelConfig& cfg);

 protected:
  Tensor backward_impl(std::span<const float> w, const Microbatch& mb,
                       const BlockCtx& ctx, const Tensor& dy,
                       std::span<float> dw) const override;
};

// Final RMSNorm + LM head: params norm[H] head[V, H]. Produces logits.
class HeadBlock final : public Block {
 public:
  using Block::Block;
  std::string name() const override { return "head"; }
  std::int64_t param_count() const override;
  void init_params(std::span<float> w, Rng& rng) const override;
  Tensor forward(std::span<const float> w, const Microbatch& mb,
                 const Tensor& x, BlockCtx& ctx,
                 bool save_internals) const override;

 protected:
  Tensor backward_impl(std::span<const float> w, const Microbatch& mb,
                       const BlockCtx& ctx, const Tensor& dy,
                       std::span<float> dw) const override;
};

}  // namespace weipipe
