// Incremental decoding with per-layer KV caches: O(T) per generated token
// instead of re-running the full forward (what nn/generate.hpp does). Caches
// hold up to ModelConfig::seq_len positions — the context window the model
// was trained with.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/model.hpp"

namespace weipipe {

class Decoder {
 public:
  // block_params as produced by Trainer::gather_block_params(); both must
  // outlive the decoder.
  Decoder(const Model& model,
          const std::vector<std::vector<float>>& block_params);

  // Feeds tokens one position at a time, filling the caches. Returns after
  // the last token's logits are available via logits().
  void prefill(std::span<const std::int32_t> tokens);

  // Appends one token and computes the next-position logits.
  void step(std::int32_t token);

  // Logits for the position after everything fed so far ([vocab] floats).
  std::span<const float> logits() const;

  // Convenience sampling from logits(); temperature 0 = greedy.
  std::int32_t sample(float temperature, Rng& rng) const;

  std::int64_t position() const { return pos_; }
  std::int64_t capacity() const { return model_.config().seq_len; }

 private:
  const Model& model_;
  const std::vector<std::vector<float>>& params_;
  std::int64_t pos_ = 0;
  // Per transformer layer: cached keys/values [capacity, kv_dim], row-major.
  std::vector<std::vector<float>> k_cache_;
  std::vector<std::vector<float>> v_cache_;
  std::vector<float> logits_;
};

// Cached counterpart of generate(): identical outputs (to fp32 rounding) at
// O(prompt + new_tokens) layer passes. Total length must fit the context
// window (no sliding; use generate() for windowed generation).
std::vector<std::int32_t> generate_cached(
    const Model& model, const std::vector<std::vector<float>>& block_params,
    std::span<const std::int32_t> prompt, std::int64_t max_new_tokens,
    float temperature = 0.0f, std::uint64_t seed = 1);

}  // namespace weipipe
