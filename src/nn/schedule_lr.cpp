#include <cmath>
#include <numbers>

#include "nn/config.hpp"

namespace weipipe {

float LrSchedule::scale(std::int64_t iter) const {
  if (total_iters <= 0) {
    return 1.0f;
  }
  if (warmup_iters > 0 && iter < warmup_iters) {
    return static_cast<float>(iter + 1) / static_cast<float>(warmup_iters);
  }
  const std::int64_t decay_span = total_iters - warmup_iters;
  if (decay_span <= 0 || iter >= total_iters) {
    return min_lr_fraction;
  }
  const double progress = static_cast<double>(iter - warmup_iters) /
                          static_cast<double>(decay_span);
  const double cosine = 0.5 * (1.0 + std::cos(std::numbers::pi * progress));
  return min_lr_fraction +
         (1.0f - min_lr_fraction) * static_cast<float>(cosine);
}

}  // namespace weipipe
