// Forward/backward math for every transformer sub-layer, as free functions on
// raw spans. Blocks (nn/blocks.*) compose these; unit tests gradient-check
// each one in isolation.
//
// Activation layout convention: [rows, dim] row-major with rows = G*S and the
// position of row r within its sequence = r % S. Heads occupy contiguous
// column slices [h*head_dim, (h+1)*head_dim).
#pragma once

#include <cstdint>

namespace weipipe {

// ---- RMSNorm ----------------------------------------------------------------
// y = x * inv_rms(x) * gain;  inv_rms = 1/sqrt(mean(x^2) + eps), saved per row.
void rmsnorm_forward(const float* x, const float* gain, float* y,
                     float* inv_rms, std::int64_t rows, std::int64_t dim,
                     float eps);
// dx written; dgain accumulated (+=).
void rmsnorm_backward(const float* x, const float* gain, const float* inv_rms,
                      const float* dy, float* dx, float* dgain,
                      std::int64_t rows, std::int64_t dim);

// ---- Rotary position embedding ----------------------------------------------
// In-place rotation of q/k pairs; `inverse` rotates by the negative angle,
// which is exactly the backward operation (rotation is orthonormal).
void rope_apply(float* x, std::int64_t rows, std::int64_t seq,
                std::int64_t n_heads, std::int64_t head_dim, float theta,
                bool inverse);

// ---- Causal multi/grouped-query attention -------------------------------------
// q: [G*S, nh*dh]; k, v: [G*S, nkv*dh] with nkv | nh (GQA; nkv == nh is
// classic MHA). Query head h attends through kv head h / (nh/nkv).
//
// Naive path: materializes probs [G, nh, S, S] (the memory hog the paper's
// Flash-Attention discussion is about). out: [G*S, nh*dh].
void attention_forward_naive(const float* q, const float* k, const float* v,
                             float* out, float* probs, std::int64_t G,
                             std::int64_t S, std::int64_t nh, std::int64_t nkv,
                             std::int64_t dh);
// dq/dk/dv written (not accumulated); dk/dv sized [G*S, nkv*dh].
void attention_backward_naive(const float* q, const float* k, const float* v,
                              const float* probs, const float* dout, float* dq,
                              float* dk, float* dv, std::int64_t G,
                              std::int64_t S, std::int64_t nh, std::int64_t nkv,
                              std::int64_t dh);

// Streaming (Flash-style) path: online softmax, saves only the per-row
// log-sum-exp `lse` [G, nh, S]; backward recomputes probabilities rowwise.
void attention_forward_stream(const float* q, const float* k, const float* v,
                              float* out, float* lse, std::int64_t G,
                              std::int64_t S, std::int64_t nh,
                              std::int64_t nkv, std::int64_t dh);
void attention_backward_stream(const float* q, const float* k, const float* v,
                               const float* out, const float* lse,
                               const float* dout, float* dq, float* dk,
                               float* dv, std::int64_t G, std::int64_t S,
                               std::int64_t nh, std::int64_t nkv,
                               std::int64_t dh);

// MHA conveniences (nkv == nh), used by existing tests and benches.
inline void attention_forward_naive(const float* q, const float* k,
                                    const float* v, float* out, float* probs,
                                    std::int64_t G, std::int64_t S,
                                    std::int64_t nh, std::int64_t dh) {
  attention_forward_naive(q, k, v, out, probs, G, S, nh, nh, dh);
}
inline void attention_backward_naive(const float* q, const float* k,
                                     const float* v, const float* probs,
                                     const float* dout, float* dq, float* dk,
                                     float* dv, std::int64_t G, std::int64_t S,
                                     std::int64_t nh, std::int64_t dh) {
  attention_backward_naive(q, k, v, probs, dout, dq, dk, dv, G, S, nh, nh,
                           dh);
}
inline void attention_forward_stream(const float* q, const float* k,
                                     const float* v, float* out, float* lse,
                                     std::int64_t G, std::int64_t S,
                                     std::int64_t nh, std::int64_t dh) {
  attention_forward_stream(q, k, v, out, lse, G, S, nh, nh, dh);
}
inline void attention_backward_stream(const float* q, const float* k,
                                      const float* v, const float* out,
                                      const float* lse, const float* dout,
                                      float* dq, float* dk, float* dv,
                                      std::int64_t G, std::int64_t S,
                                      std::int64_t nh, std::int64_t dh) {
  attention_backward_stream(q, k, v, out, lse, dout, dq, dk, dv, G, S, nh, nh,
                            dh);
}

// ---- SwiGLU feed-forward -----------------------------------------------------
// a = x W1^T, b = x W3^T, y = (silu(a) * b) W2^T.
// Saves a and b for backward (caller allocates [rows, F] each).
void swiglu_forward(const float* x, const float* w1, const float* w3,
                    const float* w2, float* a, float* b, float* y,
                    std::int64_t rows, std::int64_t dim, std::int64_t ffn);
// dx written; dw1/dw3/dw2 accumulated (+=).
void swiglu_backward(const float* x, const float* w1, const float* w3,
                     const float* w2, const float* a, const float* b,
                     const float* dy, float* dx, float* dw1, float* dw3,
                     float* dw2, std::int64_t rows, std::int64_t dim,
                     std::int64_t ffn);

// ---- Cross-entropy -----------------------------------------------------------
// Returns mean negative log-likelihood over rows; writes dlogits (gradient of
// that mean). logits: [rows, vocab]; targets: [rows].
float cross_entropy(const float* logits, const std::int32_t* targets,
                    float* dlogits, std::int64_t rows, std::int64_t vocab);

}  // namespace weipipe
