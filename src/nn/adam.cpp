#include "nn/adam.hpp"

#include <cmath>

#include "common/check.hpp"

namespace weipipe {

void AdamShard::step(std::span<float> weights, std::span<const float> grad,
                     const AdamConfig& cfg) {
  WEIPIPE_CHECK(static_cast<std::int64_t>(weights.size()) == size());
  WEIPIPE_CHECK(static_cast<std::int64_t>(grad.size()) == size());
  ++t_;
  const float b1 = cfg.beta1;
  const float b2 = cfg.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const float g = grad[i];
    m_[i] = b1 * m_[i] + (1.0f - b1) * g;
    v_[i] = b2 * v_[i] + (1.0f - b2) * g * g;
    const float m_hat = m_[i] / bias1;
    const float v_hat = v_[i] / bias2;
    weights[i] -= cfg.lr * (m_hat / (std::sqrt(v_hat) + cfg.eps) +
                            cfg.weight_decay * weights[i]);
  }
}

void AdamShard::restore(std::vector<float> m, std::vector<float> v,
                        std::int64_t step_count) {
  WEIPIPE_CHECK(static_cast<std::int64_t>(m.size()) == size());
  WEIPIPE_CHECK(static_cast<std::int64_t>(v.size()) == size());
  WEIPIPE_CHECK(step_count >= 0);
  m_ = std::move(m);
  v_ = std::move(v);
  t_ = step_count;
}

}  // namespace weipipe
