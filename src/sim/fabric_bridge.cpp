#include "sim/fabric_bridge.hpp"

#include "common/check.hpp"

namespace weipipe::sim {

comm::LinkModel link_model_from_topology(const Topology& topo,
                                         double time_scale) {
  WEIPIPE_CHECK(time_scale > 0.0);
  // Copy the topology into the closure; the model outlives the caller frame.
  const Topology captured = topo;
  return [captured, time_scale](int src, int dst, std::size_t bytes) {
    const Link link = captured.link(src, dst);
    const double sec =
        link.latency +
        static_cast<double>(bytes) / (link.bandwidth / time_scale);
    return std::chrono::nanoseconds(static_cast<std::int64_t>(sec * 1e9));
  };
}

}  // namespace weipipe::sim
