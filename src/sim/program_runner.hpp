// Executes a sched::Program on the *real* execution substrate: one
// std::thread per rank on the in-process fabric, real byte payloads on the
// wire, and busy-wait compute kernels whose durations follow the program's
// modeled op costs (scaled by `time_scale`).
//
// This is the runtime counterpart of sim/engine.hpp's discrete-event model:
// the engine predicts how a schedule behaves; the runner makes the schedule
// actually happen on threads so the observability layer (src/obs/) can
// measure it — `weipipe_cli profile` uses it to run schedule-only strategies
// (WZB1/WZB2, ZB1/ZB2, ...) that have no hand-written trainer, and the
// measured-vs-predicted comparison closes the loop between the two.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/fabric.hpp"
#include "sched/program.hpp"

namespace weipipe::sim {

struct ProgramRunOptions {
  // Wall-clock seconds per modeled second for compute ops and collective
  // durations. Profiles usually compress (e.g. 0.05) so a multi-second
  // modeled iteration runs in tens of milliseconds.
  double time_scale = 1.0;
  // Optional delivery-delay model for the fabric (see
  // sim/fabric_bridge.hpp); nullptr = infinitely fast links.
  comm::LinkModel link_model = nullptr;
  // Payloads are allocated at SendOp::bytes * payload_scale. Scaling the
  // payload down keeps memcpy traffic cheap while tags/matching/ordering
  // stay faithful; wire-byte metrics are then scaled back up by the caller
  // if needed. 1.0 = ship every modeled byte for real.
  double payload_scale = 1.0;
};

struct ProgramRunResult {
  double wall_seconds = 0.0;
  // Per-rank peak of the running sum of ComputeOp::mem_delta, in modeled
  // bytes — the runtime-measured counterpart of the engine's peak_act_bytes
  // and the analyzer's static bound (exact match expected: the runner
  // follows the program's memory algebra by construction).
  std::vector<double> peak_act_bytes;
  // Fabric totals for the run (scaled payload bytes).
  std::uint64_t wire_bytes = 0;
  std::uint64_t wire_messages = 0;
  // Per-(src, dst) fabric stats, indexed [src * num_ranks + dst] — the same
  // layout as comm::Fabric::stats_matrix(). Includes max_in_flight per pair.
  std::vector<comm::FabricStats> pair_stats;
  // Max simultaneously-undelivered messages across all pairs.
  std::uint64_t max_in_flight = 0;
  // Sum over ranks of compute busy time, wall seconds.
  double busy_seconds = 0.0;
};

// Runs the program to completion and returns measured totals. Throws
// weipipe::Error on timeout (deadlocked schedule) or malformed programs
// (e.g. CollectiveWait without a matching start). Spans are recorded via the
// active obs::Recorder, if any.
ProgramRunResult run_program(const sched::Program& program,
                             const ProgramRunOptions& options = {});

}  // namespace weipipe::sim
