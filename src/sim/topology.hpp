// Cluster topologies matching the paper's three hardware environments
// (§5.4): NVLink inside nodes, PCIe inside nodes, 10 Gb Ethernet between
// nodes. Bandwidths are *effective* point-to-point figures (peak x a
// practical efficiency), latencies include software stack overhead.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace weipipe::sim {

struct Link {
  double bandwidth = 0.0;  // bytes/second
  double latency = 0.0;    // seconds
  double transfer_seconds(double bytes) const {
    return latency + bytes / bandwidth;
  }
};

// Effective per-direction P2P figures.
inline constexpr double kNvlinkA800Bw = 170e9;  // 400 GB/s aggregate NVLink
inline constexpr double kNvlinkA800Lat = 5e-6;
inline constexpr double kPcie4Bw = 22e9;  // PCIe 4.0 x16 ~ 32 GB/s peak
inline constexpr double kPcie4Lat = 10e-6;
inline constexpr double kEth10GBw = 1.05e9;  // 10 Gb Ethernet ~ 1.25 GB/s peak
inline constexpr double kEth10GLat = 5e-5;
inline constexpr double kEthCrossClusterBw = 1.6e9;  // bonded-10GbE-class uplink

class Topology {
 public:
  // Uniform fabric (every pair identical).
  static Topology uniform(int ranks, Link link, std::string name);

  // Nodes of `gpus_per_node` ranks; intra-node pairs use `intra`, pairs in
  // different nodes use `inter`. Ranks are laid out node-contiguously, so a
  // ring has exactly one inter-node hop per node boundary.
  static Topology hierarchical(int ranks, int gpus_per_node, Link intra,
                               Link inter, std::string name);

  // Paper presets.
  // Table 2 environment: 16 GPUs, NVLink-connected.
  static Topology nvlink(int ranks, int gpus_per_node = 8);
  // Table 3 environment: PCIe within 4-GPU nodes, 10 Gb Ethernet between.
  static Topology pcie_ethernet(int ranks, int gpus_per_node = 4);
  // Figures 6/8 environment: NVLink in 4-GPU servers, Ethernet between.
  static Topology nvlink_ethernet(int ranks, int gpus_per_node);

  int ranks() const { return ranks_; }
  const std::string& name() const { return name_; }

  Link link(int src, int dst) const {
    WEIPIPE_CHECK(src >= 0 && src < ranks_ && dst >= 0 && dst < ranks_);
    if (gpus_per_node_ <= 0 || src / gpus_per_node_ == dst / gpus_per_node_) {
      return intra_;
    }
    return inter_;
  }

  // Slowest link on the ring 0->1->...->P-1->0 (collective bottleneck).
  Link bottleneck_ring_link() const;

  // True if some ring hop crosses nodes.
  bool has_internode_hops() const {
    return gpus_per_node_ > 0 && ranks_ > gpus_per_node_;
  }

  // Number of nodes spanned (1 for uniform/single-node fabrics).
  int nodes() const {
    if (gpus_per_node_ <= 0) {
      return 1;
    }
    return (ranks_ + gpus_per_node_ - 1) / gpus_per_node_;
  }

 private:
  int ranks_ = 0;
  int gpus_per_node_ = 0;  // 0 => uniform
  Link intra_;
  Link inter_;
  std::string name_;
};

}  // namespace weipipe::sim
