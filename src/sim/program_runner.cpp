#include "sim/program_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <thread>
#include <variant>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "obs/recorder.hpp"
#include "sched/span_map.hpp"

namespace weipipe::sim {

namespace {

// Occupies the calling thread for `seconds` wall time: sleeps the bulk,
// spins the tail so short modeled ops (tens of microseconds) keep realistic
// durations instead of collapsing into scheduler quanta.
void busy_wait(double seconds) {
  if (seconds <= 0.0) {
    return;
  }
  const auto until =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds(static_cast<std::int64_t>(seconds * 1e9));
  const auto sleep_until = until - std::chrono::milliseconds(1);
  if (std::chrono::steady_clock::now() < sleep_until) {
    std::this_thread::sleep_until(sleep_until);
  }
  while (std::chrono::steady_clock::now() < until) {
    // spin
  }
}

std::size_t payload_size(double modeled_bytes, double payload_scale) {
  const double scaled = std::max(0.0, modeled_bytes * payload_scale);
  // At least one byte so every message physically exists on the wire.
  return static_cast<std::size_t>(std::max<long long>(1, std::llround(scaled)));
}

}  // namespace

ProgramRunResult run_program(const sched::Program& program,
                             const ProgramRunOptions& options) {
  WEIPIPE_CHECK_MSG(program.num_ranks() >= 1, "empty program");
  WEIPIPE_CHECK_MSG(options.time_scale > 0.0, "time_scale must be > 0");

  comm::Fabric fabric(program.num_ranks(), options.link_model);
  ProgramRunResult result;
  result.peak_act_bytes.assign(
      static_cast<std::size_t>(program.num_ranks()), 0.0);
  std::vector<double> busy(static_cast<std::size_t>(program.num_ranks()), 0.0);

  Stopwatch sw;
  comm::run_workers(fabric, [&](int rank, comm::Endpoint& ep) {
    double act_bytes = 0.0;
    double peak = 0.0;
    double rank_busy = 0.0;
    // Collective id -> wall deadline of its modeled transfer.
    std::map<std::int64_t, std::chrono::steady_clock::time_point> pending;

    for (const sched::Op& op : program.rank_ops[static_cast<std::size_t>(rank)]) {
      if (const auto* c = std::get_if<sched::ComputeOp>(&op)) {
        obs::SpanScope span(sched::to_span_kind(c->kind), c->microbatch,
                            c->chunk);
        const double wall = c->seconds * options.time_scale;
        busy_wait(wall);
        rank_busy += wall;
        act_bytes += c->mem_delta;
        peak = std::max(peak, act_bytes);
        if (span.armed()) {
          span.set_bytes(static_cast<std::int64_t>(c->mem_delta));
          span.set_act_bytes_after(act_bytes);
        }
      } else if (const auto* s = std::get_if<sched::SendOp>(&op)) {
        std::vector<std::uint8_t> payload(
            payload_size(s->bytes, options.payload_scale), 0xCD);
        ep.send(s->dst, s->tag, std::move(payload));
      } else if (const auto* r = std::get_if<sched::RecvOp>(&op)) {
        (void)ep.recv(r->src, r->tag);
      } else if (const auto* cs = std::get_if<sched::CollectiveStartOp>(&op)) {
        WEIPIPE_CHECK_MSG(pending.find(cs->id) == pending.end(),
                          "collective id " << cs->id << " already in flight");
        pending[cs->id] =
            std::chrono::steady_clock::now() +
            std::chrono::nanoseconds(static_cast<std::int64_t>(
                cs->seconds * options.time_scale * 1e9));
      } else if (const auto* cw = std::get_if<sched::CollectiveWaitOp>(&op)) {
        auto it = pending.find(cw->id);
        WEIPIPE_CHECK_MSG(it != pending.end(),
                          "CollectiveWait " << cw->id << " without start");
        obs::SpanScope span(obs::SpanKind::kCollective);
        if (span.armed()) {
          span.set_tag(cw->id);
        }
        const auto deadline = it->second;
        pending.erase(it);
        if (std::chrono::steady_clock::now() < deadline) {
          std::this_thread::sleep_until(deadline);
        }
      }
    }
    WEIPIPE_CHECK_MSG(pending.empty(),
                      "rank " << rank << " ended with un-waited collectives");
    result.peak_act_bytes[static_cast<std::size_t>(rank)] = peak;
    busy[static_cast<std::size_t>(rank)] = rank_busy;
  });
  result.wall_seconds = sw.seconds();
  result.wire_bytes = fabric.total_bytes();
  result.wire_messages = fabric.total_messages();
  result.pair_stats = fabric.stats_matrix();
  result.max_in_flight = fabric.max_in_flight();
  for (double b : busy) {
    result.busy_seconds += b;
  }
  return result;
}

}  // namespace weipipe::sim
