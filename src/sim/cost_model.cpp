#include <algorithm>
#include <cmath>
#include "sim/cost_model.hpp"

namespace weipipe::sim {

std::vector<std::int64_t> CostModel::balanced_layers(std::int64_t p) const {
  std::vector<std::int64_t> layers(static_cast<std::size_t>(p), 0);
  // The head costs the equivalent of this many transformer layers.
  const double head_equiv =
      head_flops() / (fwd_flops_layer() > 0 ? fwd_flops_layer() : 1.0);
  std::int64_t last = static_cast<std::int64_t>(
      std::max(0.0, std::round((static_cast<double>(dims_.layers) + head_equiv) /
                                   static_cast<double>(p) -
                               head_equiv)));
  last = std::min(last, dims_.layers);
  if (p == 1) {
    layers[0] = dims_.layers;
    return layers;
  }
  const std::int64_t rest = dims_.layers - last;
  const std::int64_t base = rest / (p - 1);
  const std::int64_t extra = rest % (p - 1);
  for (std::int64_t c = 0; c < p - 1; ++c) {
    layers[static_cast<std::size_t>(c)] = base + (c < extra ? 1 : 0);
  }
  layers[static_cast<std::size_t>(p - 1)] = last;
  return layers;
}

std::int64_t CostModel::layers_in_chunk(std::int64_t c, std::int64_t p) const {
  return balanced_layers(p)[static_cast<std::size_t>(c)];
}

double CostModel::chunk_weight_bytes(std::int64_t c, std::int64_t p,
                                     bool include_vocab) const {
  double params = static_cast<double>(layers_in_chunk(c, p)) *
                  static_cast<double>(dims_.params_per_layer());
  if (include_vocab) {
    if (c == 0) {
      params += static_cast<double>(dims_.vocab * dims_.hidden);  // embedding
    }
    if (c == p - 1) {
      params += static_cast<double>(dims_.vocab * dims_.hidden + dims_.hidden);
    }
  }
  return params * 2.0;  // fp16 on the wire and in compute buffers
}

double CostModel::fwd_flops_layer() const {
  const double H = static_cast<double>(dims_.hidden);
  const double S = static_cast<double>(dims_.seq);
  const double F = static_cast<double>(dims_.ffn_hidden());
  const double G = static_cast<double>(dims_.microbatch);
  const double qkvo = 2.0 * S * 4.0 * H * H;
  const double attn = 2.0 * S * S * H;  // causal: half of the full 4 S^2 H
  const double ffn = 2.0 * S * 3.0 * H * F;
  return G * (qkvo + attn + ffn);
}

double CostModel::head_flops() const {
  return static_cast<double>(dims_.microbatch) * 2.0 *
         static_cast<double>(dims_.seq) * static_cast<double>(dims_.hidden) *
         static_cast<double>(dims_.vocab);
}

double CostModel::act_mem_layer_bytes(bool recompute_override_off) const {
  const double H = static_cast<double>(dims_.hidden);
  const double S = static_cast<double>(dims_.seq);
  const double F = static_cast<double>(dims_.ffn_hidden());
  const double G = static_cast<double>(dims_.microbatch);
  const bool recompute = policy_.recompute && !recompute_override_off;
  if (recompute) {
    return 2.0 * G * S * H;  // fp16 layer input only
  }
  // Full internals: x, xn1, q, k, v, attn_out, x_mid, xn2 (~8 GSH) plus FFN
  // pre-activations a, b (~2 GSF), all fp16.
  double bytes = (8.0 * H + 2.0 * F) * G * S * 2.0;
  if (!policy_.flash_attention) {
    // Materialized attention probabilities, fp16 per head.
    bytes += G * static_cast<double>(dims_.heads) * S * S * 2.0;
  }
  return bytes;
}

sched::StrategyCosts CostModel::strategy_costs(std::int64_t p) const {
  sched::StrategyCosts c;
  const double fwd_layer = seconds(fwd_flops_layer());
  const double recompute_extra = policy_.recompute ? 1.0 : 0.0;
  for (std::int64_t i = 0; i < p; ++i) {
    const double layers = static_cast<double>(layers_in_chunk(i, p));
    double fwd = layers * fwd_layer;
    if (i == p - 1) {
      fwd += seconds(head_flops());
    }
    c.fwd_seconds.push_back(fwd);
    c.bwd_seconds.push_back(fwd * (2.0 + recompute_extra));
    c.bwd_acts_seconds.push_back(fwd);     // B pass ~ one forward
    c.bwd_weights_seconds.push_back(fwd);  // W pass ~ one forward
    c.chunk_weight_bytes.push_back(
        chunk_weight_bytes(i, p, /*include_vocab=*/false));
    c.act_mem_bytes.push_back(layers * act_mem_layer_bytes());
  }
  const double G = static_cast<double>(dims_.microbatch);
  const double S = static_cast<double>(dims_.seq);
  const double H = static_cast<double>(dims_.hidden);
  c.act_bytes = G * S * H * 2.0;       // fp16 activations
  c.act_grad_bytes = G * S * H * 2.0;  // bf16 activation gradients
  // Optimizer: memory-bound pass over the owned shard (read m,v,w,g; write
  // m,v,w => ~28 bytes/param fp32-ish).
  const double owned_params =
      static_cast<double>(dims_.total_params()) / static_cast<double>(p);
  c.optimizer_seconds = owned_params * 28.0 / gpu_.hbm_bandwidth;
  return c;
}

sched::StrategyCosts CostModel::strategy_costs_zero_bubble(
    std::int64_t p) const {
  // ZB cannot profit from recomputation (paper §5): it must keep full
  // internals so the W pass can run long after B. Rebuild with recompute off
  // regardless of the ambient policy, then apply the ZB calibration factors
  // (HBM-bound split passes; gradient buffers resident between B and W).
  CostModel zb(dims_, gpu_, ExecPolicy{false, policy_.flash_attention});
  sched::StrategyCosts c = zb.strategy_costs(p);
  for (std::size_t i = 0; i < c.bwd_acts_seconds.size(); ++i) {
    c.bwd_acts_seconds[i] *= kZbPassOverhead;
    c.bwd_weights_seconds[i] *= kZbPassOverhead;
    c.bwd_seconds[i] *= kZbPassOverhead;
    c.act_mem_bytes[i] *= kZbActInflation;
  }
  return c;
}

sched::FsdpCollectiveCosts CostModel::fsdp_collective_costs(
    std::int64_t p, const Topology& topo) const {
  sched::FsdpCollectiveCosts out;
  const Link bottleneck = topo.bottleneck_ring_link();
  for (std::int64_t c = 0; c < p; ++c) {
    const double bytes = chunk_weight_bytes(c, p);
    const double shard = bytes / static_cast<double>(p);
    // Ring all-gather: P-1 pipelined steps of one shard each; every step is
    // paced by the slowest link in the ring.
    const double steps = static_cast<double>(p - 1);
    const double eff_bw =
        bottleneck.bandwidth * collective_efficiency(topo.nodes());
    const double t = steps * (bottleneck.latency + shard / eff_bw);
    out.all_gather_seconds.push_back(t);
    out.reduce_scatter_seconds.push_back(t);
    out.all_gather_bytes.push_back(steps * shard);
    out.reduce_scatter_bytes.push_back(steps * shard);
  }
  return out;
}

double CostModel::static_mem_weipipe(std::int64_t p) const {
  // Two weight flows + one gradient flow, double-buffered for prefetch
  // (~6 chunk-sized fp16 buffers), plus the owned fp32 master and Adam pair.
  double max_chunk = 0.0;
  for (std::int64_t c = 0; c < p; ++c) {
    max_chunk = std::max(max_chunk, chunk_weight_bytes(c, p));
  }
  const double owned_params =
      static_cast<double>(dims_.total_params()) / static_cast<double>(p);
  // Replicated (not circulated) embedding + head, fp16.
  return 6.0 * max_chunk + vocab_sync_bytes() + owned_params * (4.0 + 8.0);
}

double CostModel::static_mem_pipeline(std::int64_t p) const {
  // Stage weights fp16 + fp32 gradient accumulator + fp32 master + Adam.
  double max_chunk = 0.0;
  for (std::int64_t c = 0; c < p; ++c) {
    max_chunk = std::max(max_chunk, chunk_weight_bytes(c, p));
  }
  const double params = max_chunk / 2.0;  // elements in the largest stage
  return max_chunk + params * (4.0 + 4.0 + 8.0);
}

double CostModel::static_mem_fsdp(std::int64_t p) const {
  // Two gathered chunks in flight (current + prefetch) + owned shard states
  // + fp32 gradient shard.
  double max_chunk = 0.0;
  for (std::int64_t c = 0; c < p; ++c) {
    max_chunk = std::max(max_chunk, chunk_weight_bytes(c, p));
  }
  const double owned_params =
      static_cast<double>(dims_.total_params()) / static_cast<double>(p);
  return 2.0 * max_chunk + owned_params * (4.0 + 8.0 + 4.0);
}

}  // namespace weipipe::sim
