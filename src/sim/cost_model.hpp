// Cost model: turns (model dims, GPU spec, policy, topology) into the
// per-op seconds/bytes the schedule builders consume, plus static memory
// terms and the resulting OOM verdicts.
//
// FLOP accounting (per transformer layer, per microbatch, causal attention):
//   QKVO projections: 2 * S * 4H^2
//   attention matmuls: 2 * 2 * (S^2/2) * H = 2 S^2 H
//   SwiGLU FFN:        2 * S * 3 H F       (F = 8H/3 -> 16 S H^2)
// backward = 2x forward; recomputation adds one forward to the backward.
// Time = FLOPs / (peak_flops * mfu).
//
// Parameter accounting matches the paper's 12 H^2 per layer; chunk 0 adds the
// V*H embedding and the last chunk the V*H head (+norm).
#pragma once

#include <cstdint>
#include <vector>

#include "sched/builders.hpp"
#include "sim/topology.hpp"

namespace weipipe::sim {

struct ModelDims {
  std::int64_t hidden = 1024;  // H
  std::int64_t seq = 4096;     // S
  std::int64_t microbatch = 16;  // G
  std::int64_t layers = 32;    // L
  std::int64_t heads = 32;
  std::int64_t vocab = 32000;

  std::int64_t ffn_hidden() const { return (8 * hidden + 2) / 3; }
  std::int64_t params_per_layer() const {
    return 4 * hidden * hidden + 3 * hidden * ffn_hidden() + 2 * hidden;
  }
  std::int64_t total_params() const {
    return layers * params_per_layer() + 2 * vocab * hidden + hidden;
  }
  double tokens_per_microbatch() const {
    return static_cast<double>(microbatch) * static_cast<double>(seq);
  }
};

struct GpuSpec {
  double peak_flops = 312e12;  // A800 fp16/bf16 tensor cores
  double mfu = 0.28;           // calibrated to the paper's measured tokens/s (A800)
  double mem_bytes = 80e9;     // HBM
  double hbm_bandwidth = 1.9e12;
  // Arithmetic-intensity rolloff: effective MFU = mfu * G / (G + half_g).
  // Models the kernel-efficiency loss at the small microbatch sizes the ZB
  // strategies are forced into (paper §6.1.1: "smaller microbatch sizes ...
  // compromise computational efficiency").
  double intensity_half_g = 1.0;

  double effective_flops(std::int64_t microbatch) const {
    const double g = static_cast<double>(microbatch);
    return peak_flops * mfu * g / (g + intensity_half_g);
  }
};

struct ExecPolicy {
  bool recompute = true;        // gradient checkpointing (off for ZB)
  bool flash_attention = true;  // streaming attention (no S^2 score matrix)
};

class CostModel {
 public:
  CostModel(ModelDims dims, GpuSpec gpu, ExecPolicy policy)
      : dims_(dims), gpu_(gpu), policy_(policy) {}

  const ModelDims& dims() const { return dims_; }
  const GpuSpec& gpu() const { return gpu_; }
  const ExecPolicy& policy() const { return policy_; }

  // Layers assigned to chunk c of P. The assignment is load-balanced in
  // *compute*: the LM head on the last chunk is worth head_flops/layer_flops
  // transformer layers, so the last chunk receives correspondingly fewer
  // layers (as Megatron-style deployments do). In a ring schedule an
  // unbalanced chunk would otherwise pace every turn of every worker.
  std::vector<std::int64_t> balanced_layers(std::int64_t p) const;
  std::int64_t layers_in_chunk(std::int64_t c, std::int64_t p) const;
  // fp16 bytes of chunk c's parameters. `include_vocab` adds the embedding
  // (chunk 0) / LM head (last chunk) matrices: FSDP shards and gathers them
  // like everything else, but WeiPipe replicates them (every worker needs
  // them every round and they only change at the iteration boundary), paying
  // one vocab_sync per iteration instead of V*H bytes on every turn.
  double chunk_weight_bytes(std::int64_t c, std::int64_t p,
                            bool include_vocab = true) const;
  // Per-iteration bytes to refresh the replicated embedding/head (WeiPipe).
  double vocab_sync_bytes() const {
    return (2.0 * static_cast<double>(dims_.vocab) * dims_.hidden +
            dims_.hidden) * 2.0;
  }

  double fwd_flops_layer() const;
  double head_flops() const;

  // Per-microbatch activation bytes stored between F and B for one layer,
  // under `policy_`: recompute keeps only the layer input (2 G S H bytes);
  // otherwise all internals (~(8H + 2F) G S * 2 bytes + attention stats,
  // which explode to G*heads*S^2*4 without flash attention).
  double act_mem_layer_bytes(bool recompute_override_off = false) const;

  // ---- assembled cost tables ------------------------------------------------
  sched::StrategyCosts strategy_costs(std::int64_t p) const;
  // Zero-bubble variants must not recompute (paper §5): full internals.
  sched::StrategyCosts strategy_costs_zero_bubble(std::int64_t p) const;
  sched::FsdpCollectiveCosts fsdp_collective_costs(
      std::int64_t p, const Topology& topo) const;

  // ---- static (non-activation) memory per rank -------------------------------
  // Circulating buffers / stage weights + fp32 master + Adam for the owned
  // shard + gradient buffers, per strategy family.
  double static_mem_weipipe(std::int64_t p) const;
  double static_mem_pipeline(std::int64_t p) const;  // 1F1B/GPipe/ZB
  double static_mem_fsdp(std::int64_t p) const;

  // Zero-bubble calibration constants (see DESIGN.md §5 and EXPERIMENTS.md):
  // without recomputation the B/W passes stream far more saved-activation
  // HBM traffic, and the split passes re-read inputs — a per-pass slowdown —
  // while gradient buffers held between B and W inflate the resident
  // activation footprint.
  static constexpr double kZbPassOverhead = 1.35;
  static constexpr double kZbActInflation = 1.45;
  // NCCL ring collectives over TCP-class links achieve a fraction of line
  // rate (per-step synchronization, protocol overhead, stragglers), and the
  // loss compounds with the number of nodes in the ring (incast, straggler
  // probability). Calibrated against the paper's FSDP columns.
  static double collective_efficiency(int nodes) {
    if (nodes <= 1) {
      return 0.9;  // single-node NVLink collectives are near line rate
    }
    return 0.5 / (1.0 + 0.25 * (nodes - 2));
  }

 private:
  double seconds(double flops) const {
    return flops / gpu_.effective_flops(dims_.microbatch);
  }

  ModelDims dims_;
  GpuSpec gpu_;
  ExecPolicy policy_;
};

}  // namespace weipipe::sim
