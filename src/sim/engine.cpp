#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <sstream>
#include <unordered_map>

#include "analysis/analysis.hpp"
#include "common/check.hpp"

namespace weipipe::sim {

namespace {

struct MsgKey {
  int src;
  int dst;
  std::int64_t tag;
  bool operator<(const MsgKey& o) const {
    if (src != o.src) return src < o.src;
    if (dst != o.dst) return dst < o.dst;
    return tag < o.tag;
  }
};

struct RankState {
  std::size_t op_index = 0;
  double clock = 0.0;
  double busy = 0.0;
  double act_bytes = 0.0;
  double peak_act_bytes = 0.0;
  double comm_channel_free = 0.0;
  std::unordered_map<std::int64_t, double> collective_end;
};

}  // namespace

SimResult simulate(const sched::Program& program, const Topology& topo,
                   EngineOptions options) {
  const int p = program.num_ranks();
  WEIPIPE_CHECK_MSG(p == topo.ranks(),
                    "program has " << p << " ranks, topology " << topo.ranks());

  std::vector<RankState> ranks(static_cast<std::size_t>(p));
  std::map<MsgKey, std::queue<double>> inbox;  // arrival times, FIFO per key
  std::map<std::pair<int, int>, double> link_free;  // directed wire busy-until
  std::map<std::pair<int, int>, LinkUsage> link_usage;

  SimResult res;
  res.program_name = program.name;
  res.busy_seconds.assign(static_cast<std::size_t>(p), 0.0);
  res.peak_act_bytes.assign(static_cast<std::size_t>(p), 0.0);

  // Round-robin execution: each rank advances until it blocks on a Recv whose
  // message has not been *sent* yet. (Blocking on a sent-but-in-flight
  // message just advances the clock.)
  bool progress = true;
  std::size_t remaining = program.total_ops();
  while (remaining > 0) {
    WEIPIPE_CHECK_MSG(progress,
                      "schedule deadlock: no rank can make progress with "
                          << remaining << " ops remaining in '"
                          << program.name << "'");
    progress = false;
    for (int r = 0; r < p; ++r) {
      RankState& rs = ranks[static_cast<std::size_t>(r)];
      const auto& ops = program.rank_ops[static_cast<std::size_t>(r)];
      while (rs.op_index < ops.size()) {
        const sched::Op& op = ops[rs.op_index];
        if (const auto* c = std::get_if<sched::ComputeOp>(&op)) {
          const double start = rs.clock;
          rs.clock += c->seconds;
          rs.busy += c->seconds;
          rs.act_bytes += c->mem_delta;
          rs.peak_act_bytes = std::max(rs.peak_act_bytes, rs.act_bytes);
          if (options.record_ops && c->kind != sched::ComputeKind::kOptimizer) {
            res.records.push_back({r, start, rs.clock, c->kind, c->microbatch,
                                   c->chunk, rs.act_bytes});
          }
        } else if (const auto* s = std::get_if<sched::SendOp>(&op)) {
          const Link link = topo.link(r, s->dst);
          double& wire = link_free[{r, s->dst}];
          const double depart = std::max(rs.clock, wire);
          const double occupy = s->bytes / link.bandwidth;
          wire = depart + occupy;
          const double arrival = depart + occupy + link.latency;
          inbox[MsgKey{r, s->dst, s->tag}].push(arrival);
          res.p2p_bytes += s->bytes;
          LinkUsage& usage = link_usage[{r, s->dst}];
          usage.src = r;
          usage.dst = s->dst;
          usage.busy_seconds += occupy;
          usage.bytes += s->bytes;
          if (s->blocking) {
            rs.clock = std::max(rs.clock, arrival);
          }
        } else if (const auto* rcv = std::get_if<sched::RecvOp>(&op)) {
          auto it = inbox.find(MsgKey{rcv->src, r, rcv->tag});
          if (it == inbox.end() || it->second.empty()) {
            break;  // blocked: producer has not executed its Send yet
          }
          rs.clock = std::max(rs.clock, it->second.front());
          it->second.pop();
        } else if (const auto* cs =
                       std::get_if<sched::CollectiveStartOp>(&op)) {
          const double start = std::max(rs.clock, rs.comm_channel_free);
          const double end = start + cs->seconds;
          rs.comm_channel_free = end;
          rs.collective_end[cs->id] = end;
          res.collective_bytes += cs->bytes;
        } else if (const auto* cw =
                       std::get_if<sched::CollectiveWaitOp>(&op)) {
          auto it = rs.collective_end.find(cw->id);
          WEIPIPE_CHECK_MSG(it != rs.collective_end.end(),
                            "CollectiveWait for unknown id " << cw->id);
          rs.clock = std::max(rs.clock, it->second);
        }
        ++rs.op_index;
        --remaining;
        progress = true;
      }
    }
  }

  for (int r = 0; r < p; ++r) {
    const RankState& rs = ranks[static_cast<std::size_t>(r)];
    res.makespan = std::max(res.makespan, rs.clock);
    res.busy_seconds[static_cast<std::size_t>(r)] = rs.busy;
    res.peak_act_bytes[static_cast<std::size_t>(r)] = rs.peak_act_bytes;
  }
  res.links.reserve(link_usage.size());
  for (const auto& [key, usage] : link_usage) {
    res.links.push_back(usage);
  }
  if (options.cross_check_analysis) {
    const std::vector<std::string> issues = analysis_cross_check(program, res);
    WEIPIPE_CHECK_MSG(issues.empty(),
                      "static analysis cross-check failed for '"
                          << program.name << "': " << issues.front() << " ("
                          << issues.size() << " issue(s) total)");
  }
  return res;
}

std::vector<std::string> analysis_cross_check(const sched::Program& program,
                                              const SimResult& result) {
  std::vector<std::string> issues;
  const analysis::AnalysisReport report = analysis::analyze(program);
  for (const analysis::Finding& f : report.findings) {
    issues.push_back(std::string("[") + analysis::to_string(f.kind) + "] " +
                     f.message);
  }
  if (report.static_peak_bytes.size() != result.peak_act_bytes.size()) {
    std::ostringstream oss;
    oss << "rank count mismatch: analyzer saw "
        << report.static_peak_bytes.size() << ", engine "
        << result.peak_act_bytes.size();
    issues.push_back(oss.str());
    return issues;
  }
  for (std::size_t r = 0; r < report.static_peak_bytes.size(); ++r) {
    const double want = report.static_peak_bytes[r];
    const double got = result.peak_act_bytes[r];
    const double tol = 1e-6 + 1e-9 * std::fabs(want);
    if (std::fabs(want - got) > tol) {
      std::ostringstream oss;
      oss << "rank " << r << ": static peak-memory bound " << want
          << " B != engine-measured peak " << got << " B";
      issues.push_back(oss.str());
    }
  }
  return issues;
}

}  // namespace weipipe::sim
