#include "sim/topology.hpp"

namespace weipipe::sim {

Topology Topology::uniform(int ranks, Link link, std::string name) {
  Topology t;
  t.ranks_ = ranks;
  t.gpus_per_node_ = 0;
  t.intra_ = link;
  t.inter_ = link;
  t.name_ = std::move(name);
  return t;
}

Topology Topology::hierarchical(int ranks, int gpus_per_node, Link intra,
                                Link inter, std::string name) {
  WEIPIPE_CHECK(gpus_per_node >= 1);
  Topology t;
  t.ranks_ = ranks;
  t.gpus_per_node_ = gpus_per_node;
  t.intra_ = intra;
  t.inter_ = inter;
  t.name_ = std::move(name);
  return t;
}

Topology Topology::nvlink(int ranks, int gpus_per_node) {
  // The paper's "NVLink environment" (Tables 2, 4): NVLink *within* each
  // cluster; the two clusters are joined by a commodity cross-cluster
  // interconnect (25 GbE class). With ranks <= gpus_per_node this
  // degenerates to a pure-NVLink node (Table 4).
  return hierarchical(ranks, gpus_per_node,
                      Link{kNvlinkA800Bw, kNvlinkA800Lat},
                      Link{kEthCrossClusterBw, 3e-5}, "nvlink");
}

Topology Topology::pcie_ethernet(int ranks, int gpus_per_node) {
  return hierarchical(ranks, gpus_per_node, Link{kPcie4Bw, kPcie4Lat},
                      Link{kEth10GBw, kEth10GLat}, "pcie+10GbE");
}

Topology Topology::nvlink_ethernet(int ranks, int gpus_per_node) {
  return hierarchical(ranks, gpus_per_node,
                      Link{kNvlinkA800Bw, kNvlinkA800Lat},
                      Link{kEth10GBw, kEth10GLat}, "nvlink+10GbE");
}

Link Topology::bottleneck_ring_link() const {
  Link worst = intra_;
  for (int r = 0; r < ranks_; ++r) {
    const Link l = link(r, (r + 1) % ranks_);
    if (l.bandwidth < worst.bandwidth) {
      worst = l;
    }
  }
  return worst;
}

}  // namespace weipipe::sim
