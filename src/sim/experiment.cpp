#include "sim/experiment.hpp"

#include "common/check.hpp"

namespace weipipe::sim {

const char* to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::k1F1B: return "1F1B";
    case Strategy::kGPipe: return "GPipe";
    case Strategy::kZB1: return "ZB1";
    case Strategy::kZB2: return "ZB2";
    case Strategy::kFSDP: return "FSDP";
    case Strategy::kWeiPipeNaive: return "WeiPipe-Naive";
    case Strategy::kWeiPipeInterleave: return "WeiPipe";
    case Strategy::kWZB1: return "WZB1";
    case Strategy::kWZB2: return "WZB2";
  }
  return "?";
}

namespace {

bool is_zero_bubble(Strategy s) {
  return s == Strategy::kZB1 || s == Strategy::kZB2 || s == Strategy::kWZB1 ||
         s == Strategy::kWZB2;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                const Topology& topo) {
  const std::int64_t p = topo.ranks();
  std::int64_t n = cfg.num_microbatches > 0 ? cfg.num_microbatches : 2 * p;
  // Ring strategies consume whole rounds.
  const std::int64_t rounds = std::max<std::int64_t>(1, n / p);
  if (cfg.strategy == Strategy::kWeiPipeNaive ||
      cfg.strategy == Strategy::kWeiPipeInterleave ||
      cfg.strategy == Strategy::kWZB1 || cfg.strategy == Strategy::kWZB2 ||
      cfg.strategy == Strategy::kFSDP) {
    n = rounds * p;
  }

  // Paper §5: recomputation for every strategy except the zero-bubble family
  // (where it saves nothing and only adds compute).
  ExecPolicy policy;
  policy.flash_attention = true;
  policy.recompute = !is_zero_bubble(cfg.strategy);
  CostModel cm(cfg.dims, cfg.gpu, policy);

  const sched::StrategyCosts costs = is_zero_bubble(cfg.strategy)
                                         ? cm.strategy_costs_zero_bubble(p)
                                         : cm.strategy_costs(p);

  sched::Program prog;
  double static_mem = 0.0;
  switch (cfg.strategy) {
    case Strategy::k1F1B:
      prog = sched::build_1f1b(p, n, costs);
      static_mem = cm.static_mem_pipeline(p);
      break;
    case Strategy::kGPipe:
      prog = sched::build_gpipe(p, n, costs);
      static_mem = cm.static_mem_pipeline(p);
      break;
    case Strategy::kZB1:
      prog = sched::build_zero_bubble(p, n, sched::ZbVariant::kZb1, costs);
      static_mem = cm.static_mem_pipeline(p);
      break;
    case Strategy::kZB2:
      prog = sched::build_zero_bubble(p, n, sched::ZbVariant::kZb2, costs);
      static_mem = cm.static_mem_pipeline(p);
      break;
    case Strategy::kFSDP:
      prog = sched::build_fsdp(p, rounds, costs,
                               cm.fsdp_collective_costs(p, topo));
      static_mem = cm.static_mem_fsdp(p);
      break;
    case Strategy::kWeiPipeNaive:
      prog = sched::build_weipipe(
          WeiPipeSchedule(p, rounds, WeiPipeMode::kNaive), costs);
      static_mem = cm.static_mem_weipipe(p);
      break;
    case Strategy::kWeiPipeInterleave:
      prog = sched::build_weipipe(
          WeiPipeSchedule(p, rounds, WeiPipeMode::kInterleave), costs);
      static_mem = cm.static_mem_weipipe(p);
      break;
    case Strategy::kWZB1:
      prog = sched::build_weipipe_zero_bubble(p, rounds,
                                              sched::WzbVariant::kWzb1, costs);
      static_mem = cm.static_mem_weipipe(p);
      break;
    case Strategy::kWZB2:
      prog = sched::build_weipipe_zero_bubble(p, rounds,
                                              sched::WzbVariant::kWzb2, costs);
      static_mem = cm.static_mem_weipipe(p);
      break;
  }

  ExperimentResult res;
  res.strategy = cfg.strategy;
  res.sim = simulate(prog, topo, {.record_ops = cfg.record_ops});
  const double tokens = static_cast<double>(n) *
                        static_cast<double>(cfg.dims.microbatch) *
                        static_cast<double>(cfg.dims.seq);
  res.tokens_per_second_per_gpu =
      tokens / res.sim.makespan / static_cast<double>(p);
  res.peak_mem_bytes = static_mem + res.sim.max_peak_act_bytes();
  res.oom = res.peak_mem_bytes > cfg.gpu.mem_bytes;
  res.bubble_ratio = res.sim.bubble_ratio();
  res.wire_bytes = res.sim.p2p_bytes + res.sim.collective_bytes;
  return res;
}

}  // namespace weipipe::sim
