// Experiment runner: one call = one cell of a paper table (strategy x model
// config x cluster), returning throughput, memory, bubble ratio, traffic and
// the OOM verdict.
#pragma once

#include <string>

#include "sim/cost_model.hpp"
#include "sim/engine.hpp"

namespace weipipe::sim {

enum class Strategy {
  k1F1B,
  kGPipe,
  kZB1,
  kZB2,
  kFSDP,
  kWeiPipeNaive,
  kWeiPipeInterleave,
  kWZB1,
  kWZB2,
};

const char* to_string(Strategy strategy);

struct ExperimentConfig {
  ModelDims dims;
  GpuSpec gpu;
  std::int64_t num_microbatches = 0;  // N per iteration; 0 -> 2 * ranks
  Strategy strategy = Strategy::kWeiPipeInterleave;
  bool record_ops = false;  // keep the op trace (timeline rendering)
};

struct ExperimentResult {
  Strategy strategy;
  SimResult sim;
  double tokens_per_second_per_gpu = 0.0;
  double peak_mem_bytes = 0.0;  // static + activation peak
  bool oom = false;
  double bubble_ratio = 0.0;
  double wire_bytes = 0.0;  // p2p + collective
};

// Runs one iteration of `strategy` on `topo` and derives the paper's metrics.
// Recomputation is forced off for the zero-bubble family (paper §5) and
// follows cfg.gpu/policy defaults otherwise.
ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                const Topology& topo);

}  // namespace weipipe::sim
