// Discrete-event engine: executes a sched::Program against a Topology.
//
// Model (matches the real fabric's semantics):
//  * each rank executes its op list in order on one compute resource;
//  * Send hands the message to the directed (src->dst) link as soon as the
//    op is reached (async DMA); the link is a serial FIFO pipe — a message
//    departs when the wire frees up, occupies it for bytes/bandwidth, and
//    lands `latency` later;
//  * Recv blocks the rank until the matching (src, tag) message lands;
//  * CollectiveStart/Wait model NCCL collectives overlapping compute on a
//    per-rank communication channel.
//
// Outputs makespan, per-rank busy/idle (=> bubble ratio), per-rank peak
// activation memory (from compute mem_deltas), wire byte totals, and — when
// `record_ops` — a full op trace for the timeline renderer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/program.hpp"
#include "sim/topology.hpp"

namespace weipipe::sim {

struct OpRecord {
  int rank = 0;
  double start = 0.0;
  double end = 0.0;
  sched::ComputeKind kind = sched::ComputeKind::kForward;
  std::int64_t microbatch = -1;
  std::int64_t chunk = -1;
  double act_bytes_after = 0.0;  // resident activation bytes after this op
};

struct LinkUsage {
  int src = 0;
  int dst = 0;
  double busy_seconds = 0.0;  // wire occupancy
  double bytes = 0.0;
};

struct SimResult {
  std::string program_name;
  double makespan = 0.0;                  // seconds, max over ranks
  std::vector<double> busy_seconds;       // per rank, compute time
  std::vector<double> peak_act_bytes;     // per rank
  double p2p_bytes = 0.0;                 // total point-to-point traffic
  double collective_bytes = 0.0;          // total collective traffic
  std::vector<LinkUsage> links;           // per directed link, p2p only
  std::vector<OpRecord> records;          // only if record_ops

  // Fraction of compute capacity idle over the iteration.
  double bubble_ratio() const {
    if (makespan <= 0.0 || busy_seconds.empty()) {
      return 0.0;
    }
    double busy = 0.0;
    for (double b : busy_seconds) {
      busy += b;
    }
    return 1.0 - busy / (makespan * static_cast<double>(busy_seconds.size()));
  }

  double max_peak_act_bytes() const {
    double m = 0.0;
    for (double b : peak_act_bytes) {
      m = std::max(m, b);
    }
    return m;
  }

  // The busiest directed link (the hotspot pacing the schedule), or a
  // default LinkUsage when nothing was sent.
  LinkUsage hottest_link() const {
    LinkUsage hot;
    for (const LinkUsage& l : links) {
      if (l.busy_seconds > hot.busy_seconds) {
        hot = l;
      }
    }
    return hot;
  }
};

struct EngineOptions {
  bool record_ops = false;
  // Runs the static analyzer (analysis/analysis.hpp) after the simulation
  // and throws if it reports findings or if its static per-rank peak-memory
  // bound disagrees with what the engine measured. The static bound is
  // exact (per-rank prefix sums are linearization-independent), so any
  // mismatch means engine and analyzer disagree about the IR's semantics.
  bool cross_check_analysis = false;
};

// Executes the program; throws weipipe::Error on schedule deadlock
// (a Recv whose message is never sent).
SimResult simulate(const sched::Program& program, const Topology& topo,
                   EngineOptions options = {});

// The cross-check behind EngineOptions::cross_check_analysis, callable on an
// existing result: returns one human-readable line per discrepancy between
// the static analysis of `program` and the engine's `result` (empty =
// consistent and finding-free).
std::vector<std::string> analysis_cross_check(const sched::Program& program,
                                              const SimResult& result);

}  // namespace weipipe::sim
