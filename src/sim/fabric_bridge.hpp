// Bridge from simulator topologies to the real fabric: build a
// comm::LinkModel that delays message delivery according to a Topology's
// per-pair bandwidth/latency. This lets the *real* trainers (actual
// transformer math on threads) experience an emulated cluster — e.g. 1F1B
// vs WeiPipe on a PCIe+Ethernet layout, in miniature.
//
// `time_scale` stretches/compresses emulated time: tiny in-situ models move
// ~MB where real clusters move ~GB, so bandwidths are usually scaled down by
// ~1e3 to keep transfer times comparable to the (CPU) compute times.
#pragma once

#include "comm/fabric.hpp"
#include "sim/topology.hpp"

namespace weipipe::sim {

// Delivery delay of a message: latency + bytes / (bandwidth / time_scale).
comm::LinkModel link_model_from_topology(const Topology& topo,
                                         double time_scale = 1.0);

}  // namespace weipipe::sim
