#include "core/resilience.hpp"

#include <string>
#include <utility>

#include "comm/fabric.hpp"
#include "common/check.hpp"
#include "core/checkpoint.hpp"
#include "obs/blackbox.hpp"

namespace weipipe {

RecoveryResult train_iteration_with_recovery(Trainer& trainer,
                                             const Dataset& data,
                                             std::int64_t iter_index,
                                             const RecoveryOptions& options) {
  comm::Fabric* fabric = trainer.fabric();
  if (fabric == nullptr || !fabric->has_fault_plan()) {
    return RecoveryResult{trainer.train_iteration(data, iter_index), 0};
  }
  WEIPIPE_CHECK_MSG(options.max_attempts >= 1, "max_attempts must be >= 1");
  RecoveryResult out;
  const TrainerState snapshot = trainer.export_state();
  for (int attempt = 1;; ++attempt) {
    try {
      out.result = trainer.train_iteration(data, iter_index);
      return out;
    } catch (const comm::CommError& e) {
      if (attempt >= options.max_attempts) {
        // Recovery exhausted: this CommError is fatal to the run. Leave the
        // black box (when one is armed) before the unwind tears the state
        // down. Recovered faults deliberately do not dump.
        obs::blackbox_dump_once(
            std::string("unrecovered comm error: ") + e.what());
        throw;
      }
      fabric->recover();
      trainer.import_state(snapshot);
      ++out.recoveries;
    }
  }
}

}  // namespace weipipe
