// Trainer: the strategy-agnostic training-run interface.
//
// Every strategy (sequential ground truth, WeiPipe variants, 1F1B, GPipe,
// FSDP) implements this; the equivalence tests and the in-situ benchmark
// drive them identically.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/config.hpp"
#include "nn/microbatch.hpp"

namespace weipipe {

namespace comm {
class Fabric;
}  // namespace comm

struct TrainConfig {
  ModelConfig model;
  PrecisionConfig precision;  // wire/compute emulation precisions
  AdamConfig adam;
  LrSchedule lr_schedule;  // warmup + cosine decay (off by default)
  ClipConfig clip;         // global-norm gradient clipping (off by default)
  std::int64_t num_microbatches = 4;  // N per iteration (global)
  std::int64_t microbatch_size = 2;   // G
  std::int64_t seq_len = 16;          // S actually used (<= model.seq_len)
  std::uint64_t seed = 1234;          // weights + data

  // Optimizer config with the schedule applied for this iteration.
  AdamConfig adam_for_iteration(std::int64_t iter) const {
    AdamConfig a = adam;
    a.lr *= lr_schedule.scale(iter);
    return a;
  }

  void validate() const {
    model.validate();
    WEIPIPE_CHECK(num_microbatches >= 1);
    WEIPIPE_CHECK(microbatch_size >= 1);
    WEIPIPE_CHECK(seq_len >= 2 && seq_len <= model.seq_len);
  }
};

struct IterationResult {
  float mean_loss = 0.0f;           // mean over the N microbatches
  double wall_seconds = 0.0;        // wall time of the iteration
  std::uint64_t wire_bytes = 0;     // fabric bytes moved this iteration
  std::uint64_t wire_messages = 0;  // fabric messages this iteration
};

// Squared L2 norm accumulated in double (shared by the clipping paths; the
// double accumulation keeps distributed and sequential results aligned).
inline double grad_sq_norm(std::span<const float> g) {
  double s = 0.0;
  for (float v : g) {
    s += static_cast<double>(v) * static_cast<double>(v);
  }
  return s;
}

// Scale factor min(1, max_norm/||g||); 1 when clipping is disabled.
inline float clip_scale(const ClipConfig& clip, double total_sq_norm) {
  if (!clip.enabled()) {
    return 1.0f;
  }
  const double norm = std::sqrt(total_sq_norm);
  if (norm <= clip.max_norm || norm == 0.0) {
    return 1.0f;
  }
  return static_cast<float>(static_cast<double>(clip.max_norm) / norm);
}

class Trainer {
 public:
  virtual ~Trainer() = default;

  virtual std::string name() const = 0;

  // Runs one full iteration (N microbatches + optimizer step). The
  // microbatch stream is data.make(iter_index * N + j).
  virtual IterationResult train_iteration(const Dataset& data,
                                          std::int64_t iter_index) = 0;

  // Full fp32 master weights, one flat vector per model block (embedding,
  // layers..., head) — the common currency of the equivalence tests.
  virtual std::vector<std::vector<float>> gather_block_params() const = 0;

  // Checkpointing: full state (weights + Adam moments + step counter) in the
  // block-major TrainerState representation; see core/checkpoint.hpp.
  // import_state throws weipipe::Error if the state does not fit the model.
  virtual struct TrainerState export_state() const = 0;
  virtual void import_state(const struct TrainerState& state) = 0;

  // The communication fabric this trainer runs on; nullptr for strategies
  // with no wire (sequential). Lets harnesses install fault plans and read
  // stats without knowing the concrete trainer type.
  virtual comm::Fabric* fabric() { return nullptr; }
};

}  // namespace weipipe
