// Trainer: the strategy-agnostic training-run interface.
//
// Every strategy (sequential ground truth, WeiPipe variants, 1F1B, GPipe,
// FSDP) implements this; the equivalence tests and the in-situ benchmark
// drive them identically.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "nn/config.hpp"
#include "nn/microbatch.hpp"

namespace weipipe {

namespace comm {
class Fabric;
}  // namespace comm

struct TrainConfig {
  ModelConfig model;
  PrecisionConfig precision;  // wire/compute emulation precisions
  AdamConfig adam;
  LrSchedule lr_schedule;  // warmup + cosine decay (off by default)
  ClipConfig clip;         // global-norm gradient clipping (off by default)
  std::int64_t num_microbatches = 4;  // N per iteration (global)
  std::int64_t microbatch_size = 2;   // G
  std::int64_t seq_len = 16;          // S actually used (<= model.seq_len)
  std::uint64_t seed = 1234;          // weights + data

  // Optimizer config with the schedule applied for this iteration.
  AdamConfig adam_for_iteration(std::int64_t iter) const {
    AdamConfig a = adam;
    a.lr *= lr_schedule.scale(iter);
    return a;
  }

  void validate() const {
    model.validate();
    WEIPIPE_CHECK(num_microbatches >= 1);
    WEIPIPE_CHECK(microbatch_size >= 1);
    WEIPIPE_CHECK(seq_len >= 2 && seq_len <= model.seq_len);
  }
};

struct IterationResult {
  float mean_loss = 0.0f;           // mean over the N microbatches
  double wall_seconds = 0.0;        // wall time of the iteration
  std::uint64_t wire_bytes = 0;     // fabric bytes moved this iteration
  std::uint64_t wire_messages = 0;  // fabric messages this iteration
};

// Squared L2 norm accumulated in double (shared by the clipping paths; the
// double accumulation keeps distributed and sequential results aligned).
inline double grad_sq_norm(std::span<const float> g) {
  double s = 0.0;
  for (float v : g) {
    s += static_cast<double>(v) * static_cast<double>(v);
  }
  return s;
}

// Scale factor min(1, max_norm/||g||); 1 when clipping is disabled.
inline float clip_scale(const ClipConfig& clip, double total_sq_norm) {
  if (!clip.enabled()) {
    return 1.0f;
  }
  const double norm = std::sqrt(total_sq_norm);
  if (norm <= clip.max_norm || norm == 0.0) {
    return 1.0f;
  }
  return static_cast<float>(static_cast<double>(clip.max_norm) / norm);
}

class Trainer {
 public:
  virtual ~Trainer() = default;

  virtual std::string name() const = 0;

  // Runs one full iteration (N microbatches + optimizer step). The
  // microbatch stream is data.make(iter_index * N + j).
  virtual IterationResult train_iteration(const Dataset& data,
                                          std::int64_t iter_index) = 0;

  // Full fp32 master weights, one flat vector per model block (embedding,
  // layers..., head) — the common currency of the equivalence tests.
  virtual std::vector<std::vector<float>> gather_block_params() const = 0;

  // Checkpointing: full state (weights + Adam moments + step counter) in the
  // block-major TrainerState representation; see core/checkpoint.hpp.
  // import_state throws weipipe::Error if the state does not fit the model.
  virtual struct TrainerState export_state() const = 0;
  virtual void import_state(const struct TrainerState& state) = 0;

  // The communication fabric this trainer runs on; nullptr for strategies
  // with no wire (sequential). Lets harnesses install fault plans and read
  // stats without knowing the concrete trainer type.
  virtual comm::Fabric* fabric() { return nullptr; }

  // Forked-rank differ support: the state `rank` owns and updates — its
  // fp32 master shard(s), Adam moments, and step counter — as one stable
  // little-endian byte blob (RankStateBlob framing below). The contract the
  // multi-process chaos differ relies on: the blob for rank r is
  // byte-identical whether the trainer hosted the full world in one process
  // or just rank r in a forked child, so blobs memcmp across processes.
  virtual std::vector<std::uint8_t> export_rank_state(int rank) const = 0;
};

// ---- export_rank_state serialization ----------------------------------------

// Blob layout: [magic u64][record count u64] then per record
// [shard index u64][element count u64][step count u64]
// [params f32*n][adam_m f32*n][adam_v f32*n]. u64s little-endian, floats
// raw host bytes (the differ never crosses machines, only processes).
inline constexpr std::uint64_t kRankStateMagic = 0x3153525057ull;  // "WPRS1"

class RankStateBlob {
 public:
  RankStateBlob() { u64(kRankStateMagic); }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void floats(std::span<const float> v) {
    const std::size_t off = bytes_.size();
    bytes_.resize(off + v.size() * sizeof(float));
    if (!v.empty()) {
      std::memcpy(bytes_.data() + off, v.data(), v.size() * sizeof(float));
    }
  }

  void record(std::uint64_t index, std::int64_t step_count,
              std::span<const float> params, std::span<const float> adam_m,
              std::span<const float> adam_v) {
    u64(index);
    u64(static_cast<std::uint64_t>(params.size()));
    u64(static_cast<std::uint64_t>(step_count));
    floats(params);
    floats(adam_m);
    floats(adam_v);
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace weipipe
