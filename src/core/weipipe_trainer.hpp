// WeiPipe executor: weight-passing pipeline training over the fabric
// (paper §4.2.1 Naive, §4.2.2 Interleave, §5 implementation details).
//
// Each of the P worker threads processes its own microbatches end to end;
// weight chunks (and gradient-of-weight chunks) circulate the ring according
// to WeiPipeSchedule. Activations and their gradients never cross the wire —
// the defining property this reproduces.
//
// Mixed precision follows the paper: circulated W and D in
// cfg.precision.weights / .weight_grads (fp16 in paper mode), fp32 Adam
// masters sharded across owners. Communication/computation overlap uses
// isend/irecv prefetch (the paper's batch_isend_irecv), toggleable for the
// overlap ablation.
#pragma once

#include <memory>
#include <mutex>

#include "comm/fabric.hpp"
#include "core/checkpoint.hpp"
#include "core/trainer.hpp"
#include "sched/weipipe_schedule.hpp"
#include "nn/adam.hpp"
#include "nn/model.hpp"
#include "obs/ledger.hpp"

namespace weipipe {

struct WeiPipeOptions {
  WeiPipeMode mode = WeiPipeMode::kInterleave;
  // Post weight sends before compute / receive asynchronously (paper §5
  // "Communication Overlap"); false = strictly blocking phases (ablation).
  bool async_prefetch = true;
  // Hybrid WeiPipe x data parallelism: dp_degree independent rings, each
  // training N/dp_degree microbatches; chunk gradients are chain-reduced
  // across replicas before the (replicated) owners step Adam. World size
  // becomes num_workers * dp_degree.
  std::int64_t dp_degree = 1;
  // Production vocabulary handling: replicate the embedding and LM-head
  // matrices on every worker instead of circulating their V*H bytes each
  // turn; their gradients are all-reduced once per iteration. This is the
  // behaviour the cost model assumes (see DESIGN.md §7.2). Off by default to
  // keep the bitwise-equivalence mode byte-exact.
  bool replicate_vocab = false;
  // Optional link emulation (bandwidth/latency) for in-situ experiments.
  comm::LinkModel link_model = nullptr;
};

class WeiPipeTrainer final : public Trainer {
 public:
  WeiPipeTrainer(const TrainConfig& cfg, std::int64_t num_workers,
                 WeiPipeOptions options = {});

  std::string name() const override;
  IterationResult train_iteration(const Dataset& data,
                                  std::int64_t iter_index) override;
  std::vector<std::vector<float>> gather_block_params() const override;
  TrainerState export_state() const override;
  void import_state(const TrainerState& state) override;
  std::vector<std::uint8_t> export_rank_state(int rank) const override;

  const WeiPipeSchedule& schedule() const { return sched_; }
  comm::Fabric* fabric() override { return fabric_.get(); }

 private:
  void worker_body(int rank, comm::Endpoint& ep, const Dataset& data,
                   std::int64_t iter_index, std::vector<double>& losses);

  TrainConfig cfg_;
  std::int64_t p_;   // ring size (pipeline chunks)
  std::int64_t dp_;  // data-parallel replicas
  WeiPipeOptions opts_;
  Model model_;
  WeiPipeSchedule sched_;
  std::vector<ChunkSpec> chunks_;
  std::unique_ptr<comm::Fabric> fabric_;

  // Owner-side state, indexed by replica * ring_size + chunk; only the
  // owning worker thread touches its entry during an iteration (asserted by
  // the schedule algebra). Replicas hold identical copies by construction.
  std::vector<std::vector<float>> master_;
  std::vector<AdamShard> adam_;
  // replicate_vocab mode: embedding||head parameters and their optimizer
  // state, one copy per replica (updated by the replica's first worker).
  std::vector<std::vector<float>> vocab_master_;
  std::vector<AdamShard> vocab_adam_;
  // Ledger charges for the plain-vector owner state above.
  obs::MemCharge master_charge_;
  obs::MemCharge adam_charge_;
  obs::MemCharge vocab_master_charge_;
  obs::MemCharge vocab_adam_charge_;

  void recharge_ledger();
};

}  // namespace weipipe
