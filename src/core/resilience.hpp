// Step-boundary fault recovery.
//
// Message-level faults (delay/drop/dup/reorder) are absorbed inside the
// fabric's reliability layer and never reach the trainer. Transient rank
// stalls do: the stalled rank aborts the fabric and every rank's thread
// unwinds with a comm::CommError. This runner turns that into a rollback:
// snapshot the trainer's full state (core/checkpoint.hpp) before the
// iteration, and on a communication fault repair the fabric
// (Fabric::recover()), restore the snapshot, and re-run the iteration. The
// re-run is bitwise-identical to an undisturbed run because the microbatch
// stream is a pure function of the iteration index and the snapshot restores
// every float the optimizer step reads.
#pragma once

#include <cstdint>

#include "core/trainer.hpp"

namespace weipipe {

struct RecoveryOptions {
  // Total tries per iteration (first run + re-runs). A plan's stall rules
  // fire once each, so the default survives any single-stall plan; raise it
  // for plans stalling several ranks.
  int max_attempts = 3;
};

struct RecoveryResult {
  IterationResult result;
  int recoveries = 0;  // rollback + re-run cycles this iteration needed
};

// Runs trainer.train_iteration(data, iter_index), recovering from
// comm::CommError up to options.max_attempts total tries. Rethrows the last
// CommError when attempts are exhausted; non-communication errors propagate
// immediately. When the trainer has no fabric or no fault plan installed
// this is a plain train_iteration call (no snapshot cost).
RecoveryResult train_iteration_with_recovery(Trainer& trainer,
                                             const Dataset& data,
                                             std::int64_t iter_index,
                                             const RecoveryOptions& options = {});

}  // namespace weipipe
