// Checkpointing: full trainer state (fp32 master weights + Adam moments +
// step counter) in a self-describing binary format.
//
// State is expressed block-major (one entry per model block), the common
// currency of every trainer; the sharded trainers map it to/from their
// per-chunk shards, so a checkpoint written by WeiPipe on 4 workers restores
// into a sequential trainer — or an 8-worker ring — exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/adam.hpp"
#include "nn/model.hpp"

namespace weipipe {

struct TrainerState {
  std::int64_t step_count = 0;                   // optimizer steps taken
  std::vector<std::vector<float>> block_params;  // fp32 masters per block
  std::vector<std::vector<float>> adam_m;        // first moments per block
  std::vector<std::vector<float>> adam_v;        // second moments per block
};

// Binary serialization ("WPCKPT01" magic, little-endian int64 sizes).
// Throws weipipe::Error on I/O failure, bad magic, or truncation.
void save_checkpoint(const std::string& path, const TrainerState& state);
TrainerState load_checkpoint(const std::string& path);

// -- chunk-sharded <-> block-major conversion helpers ------------------------
// (used by WeiPipe/pipeline/FSDP trainers, whose masters and Adam shards are
// flat per-chunk buffers).
TrainerState export_sharded_state(const Model& model,
                                  const std::vector<ChunkSpec>& chunks,
                                  const std::vector<std::vector<float>>& master,
                                  const std::vector<AdamShard>& adam);

void import_sharded_state(const Model& model,
                          const std::vector<ChunkSpec>& chunks,
                          const TrainerState& state,
                          std::vector<std::vector<float>>& master,
                          std::vector<AdamShard>& adam);

}  // namespace weipipe
