#include "core/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "common/check.hpp"

namespace weipipe {

namespace {

constexpr char kMagic[8] = {'W', 'P', 'C', 'K', 'P', 'T', '0', '1'};

void write_i64(std::ofstream& out, std::int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_floats(std::ofstream& out, const std::vector<float>& v) {
  write_i64(out, static_cast<std::int64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::int64_t read_i64(std::ifstream& in) {
  std::int64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  WEIPIPE_CHECK_MSG(in.good(), "checkpoint truncated");
  return v;
}

std::vector<float> read_floats(std::ifstream& in) {
  const std::int64_t n = read_i64(in);
  WEIPIPE_CHECK_MSG(n >= 0 && n < (1ll << 40), "corrupt checkpoint length");
  std::vector<float> v(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(float)));
  WEIPIPE_CHECK_MSG(in.good(), "checkpoint truncated");
  return v;
}

}  // namespace

void save_checkpoint(const std::string& path, const TrainerState& state) {
  WEIPIPE_CHECK(state.block_params.size() == state.adam_m.size());
  WEIPIPE_CHECK(state.block_params.size() == state.adam_v.size());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  WEIPIPE_CHECK_MSG(out.is_open(), "cannot open '" << path << "' for write");
  out.write(kMagic, sizeof(kMagic));
  write_i64(out, state.step_count);
  write_i64(out, static_cast<std::int64_t>(state.block_params.size()));
  for (std::size_t b = 0; b < state.block_params.size(); ++b) {
    write_floats(out, state.block_params[b]);
    write_floats(out, state.adam_m[b]);
    write_floats(out, state.adam_v[b]);
  }
  out.flush();
  WEIPIPE_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

TrainerState load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  WEIPIPE_CHECK_MSG(in.is_open(), "cannot open '" << path << "'");
  char magic[8];
  in.read(magic, sizeof(magic));
  WEIPIPE_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 8) == 0,
                    "'" << path << "' is not a weipipe checkpoint");
  TrainerState state;
  state.step_count = read_i64(in);
  const std::int64_t blocks = read_i64(in);
  WEIPIPE_CHECK_MSG(blocks >= 0 && blocks < (1 << 20),
                    "corrupt checkpoint block count");
  for (std::int64_t b = 0; b < blocks; ++b) {
    state.block_params.push_back(read_floats(in));
    state.adam_m.push_back(read_floats(in));
    state.adam_v.push_back(read_floats(in));
    WEIPIPE_CHECK_MSG(
        state.adam_m.back().size() == state.block_params.back().size() &&
            state.adam_v.back().size() == state.block_params.back().size(),
        "checkpoint block " << b << " has inconsistent sizes");
  }
  return state;
}

TrainerState export_sharded_state(
    const Model& model, const std::vector<ChunkSpec>& chunks,
    const std::vector<std::vector<float>>& master,
    const std::vector<AdamShard>& adam) {
  WEIPIPE_CHECK(master.size() == chunks.size());
  WEIPIPE_CHECK(adam.size() == chunks.size());
  TrainerState state;
  state.block_params.resize(static_cast<std::size_t>(model.num_blocks()));
  state.adam_m.resize(state.block_params.size());
  state.adam_v.resize(state.block_params.size());
  state.step_count = adam.empty() ? 0 : adam.front().step_count();
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const ChunkSpec& spec = chunks[c];
    const auto m = adam[c].first_moment();
    const auto v = adam[c].second_moment();
    for (std::int64_t b = spec.begin; b < spec.end; ++b) {
      const std::int64_t off = model.block_offset_in_chunk(spec, b);
      const std::int64_t n = model.block_param_count(b);
      const auto bi = static_cast<std::size_t>(b);
      state.block_params[bi].assign(master[c].begin() + off,
                                    master[c].begin() + off + n);
      state.adam_m[bi].assign(m.begin() + off, m.begin() + off + n);
      state.adam_v[bi].assign(v.begin() + off, v.begin() + off + n);
    }
  }
  return state;
}

void import_sharded_state(const Model& model,
                          const std::vector<ChunkSpec>& chunks,
                          const TrainerState& state,
                          std::vector<std::vector<float>>& master,
                          std::vector<AdamShard>& adam) {
  WEIPIPE_CHECK_MSG(
      static_cast<std::int64_t>(state.block_params.size()) ==
          model.num_blocks(),
      "checkpoint has " << state.block_params.size() << " blocks, model has "
                        << model.num_blocks());
  for (std::int64_t b = 0; b < model.num_blocks(); ++b) {
    WEIPIPE_CHECK_MSG(
        static_cast<std::int64_t>(
            state.block_params[static_cast<std::size_t>(b)].size()) ==
            model.block_param_count(b),
        "checkpoint block " << b << " size mismatch (different ModelConfig?)");
  }
  master.assign(chunks.size(), {});
  adam.assign(chunks.size(), AdamShard());
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const ChunkSpec& spec = chunks[c];
    std::vector<float> w(static_cast<std::size_t>(spec.param_count));
    std::vector<float> m(w.size());
    std::vector<float> v(w.size());
    for (std::int64_t b = spec.begin; b < spec.end; ++b) {
      const std::int64_t off = model.block_offset_in_chunk(spec, b);
      const auto bi = static_cast<std::size_t>(b);
      std::copy(state.block_params[bi].begin(), state.block_params[bi].end(),
                w.begin() + off);
      std::copy(state.adam_m[bi].begin(), state.adam_m[bi].end(),
                m.begin() + off);
      std::copy(state.adam_v[bi].begin(), state.adam_v[bi].end(),
                v.begin() + off);
    }
    master[c] = std::move(w);
    adam[c] = AdamShard(spec.param_count);
    adam[c].restore(std::move(m), std::move(v), state.step_count);
  }
}

}  // namespace weipipe
