#include "core/accounting.hpp"

#include <algorithm>

#include "comm/collectives.hpp"
#include "comm/wire.hpp"
#include "common/check.hpp"
#include "core/wire_tags.hpp"
#include "nn/model.hpp"
#include "sched/weipipe_schedule.hpp"

namespace weipipe::acct {

namespace {

// Strategies whose closed forms we can state (must match prof's trainer set).
bool known_strategy(const std::string& s) {
  return s == "sequential" || s == "weipipe" || s == "weipipe-naive" ||
         s == "1f1b" || s == "gpipe" || s == "fsdp";
}

void add(KindVolumes& v, sched::MsgKind kind, std::uint64_t bytes,
         std::uint64_t messages) {
  if (bytes == 0 && messages == 0) return;
  KindVolume& kv = v[kind];
  kv.bytes += bytes;
  kv.messages += messages;
}

std::uint64_t packed_w(const ChunkSpec& spec, const PrecisionConfig& prec) {
  return comm::packed_size(static_cast<std::size_t>(spec.param_count),
                           prec.weights);
}

std::uint64_t packed_g(const ChunkSpec& spec, const PrecisionConfig& prec) {
  return comm::packed_size(static_cast<std::size_t>(spec.param_count),
                           prec.weight_grads);
}

}  // namespace

sched::MsgKind classify_tag(std::int64_t tag) {
  if (tag >= comm::kCollectiveTagBase) {
    const std::int64_t offset = tag - comm::kCollectiveTagBase;
    // ring_broadcast (FSDP weight gather) and ring_reduce_to_root (FSDP
    // gradient reduce) default bases; see comm/collectives.hpp.
    if (offset >= 4'000 && offset < 5'000) return sched::MsgKind::kWeightF;
    if (offset >= 5'000 && offset < 6'000) return sched::MsgKind::kGradD;
    return sched::MsgKind::kOpaque;
  }
  return wire_tags::msg_kind(tag);
}

KindVolumes measured_kind_volumes(const comm::Fabric& fabric) {
  KindVolumes out;
  for (const auto& [tag, stats] : fabric.tag_stats()) {
    add(out, classify_tag(tag), stats.bytes, stats.messages);
  }
  return out;
}

bool has_predicted_kind_volumes(const std::string& strategy,
                                const TrainConfig& cfg) {
  return known_strategy(strategy) && !cfg.clip.enabled();
}

KindVolumes predicted_kind_volumes(const std::string& strategy,
                                   const TrainConfig& cfg,
                                   std::int64_t workers) {
  WEIPIPE_CHECK_MSG(known_strategy(strategy),
                    "no closed-form volumes for strategy " << strategy);
  KindVolumes out;
  if (strategy == "sequential") {
    return out;  // no fabric
  }

  const std::int64_t p = workers;
  const std::int64_t n = cfg.num_microbatches;
  const Model model(cfg.model);
  const std::vector<ChunkSpec> chunks = model.make_chunks(p);

  std::uint64_t sum_w = 0;  // sum over chunks of packed weight bytes
  std::uint64_t sum_g = 0;  // ... packed weight-grad bytes
  for (const ChunkSpec& spec : chunks) {
    sum_w += packed_w(spec, cfg.precision);
    sum_g += packed_g(spec, cfg.precision);
  }

  if (strategy == "weipipe" || strategy == "weipipe-naive") {
    // Two weight flows + one gradient flow advance one hop per turn; at any
    // turn each chunk sits on exactly one worker, so each turn moves every
    // chunk once per flow. Redistribution re-seeds the flows from the
    // owners' masters when the start holder differs.
    const WeiPipeMode mode = strategy == "weipipe" ? WeiPipeMode::kInterleave
                                                   : WeiPipeMode::kNaive;
    const WeiPipeSchedule sched(p, n / p, mode);
    const auto turns = static_cast<std::uint64_t>(sched.total_turns());
    std::uint64_t redist_f_bytes = 0;
    std::uint64_t redist_f_msgs = 0;
    std::uint64_t redist_b_bytes = 0;
    std::uint64_t redist_b_msgs = 0;
    for (std::int64_t c = 0; c < p; ++c) {
      const ChunkSpec& spec = chunks[static_cast<std::size_t>(c)];
      if (sched.f_start_holder(c) != sched.owner(c)) {
        redist_f_bytes += packed_w(spec, cfg.precision);
        ++redist_f_msgs;
      }
      if (sched.b_start_holder(c) != sched.owner(c)) {
        redist_b_bytes += packed_w(spec, cfg.precision);
        ++redist_b_msgs;
      }
    }
    add(out, sched::MsgKind::kWeightF, turns * sum_w + redist_f_bytes,
        turns * static_cast<std::uint64_t>(p) + redist_f_msgs);
    add(out, sched::MsgKind::kWeightB, turns * sum_w + redist_b_bytes,
        turns * static_cast<std::uint64_t>(p) + redist_b_msgs);
    add(out, sched::MsgKind::kGradD, turns * sum_g,
        turns * static_cast<std::uint64_t>(p));
    return out;
  }

  if (strategy == "1f1b" || strategy == "gpipe") {
    // Each microbatch crosses every stage boundary once per direction; the
    // boundary tensor is [G*S, H] regardless of schedule, so GPipe and 1F1B
    // ship identical volume (they differ only in when).
    const auto boundary = static_cast<std::size_t>(
        cfg.microbatch_size * cfg.seq_len * cfg.model.dim);
    const auto crossings = static_cast<std::uint64_t>(n * (p - 1));
    add(out, sched::MsgKind::kActivation,
        crossings * comm::packed_size(boundary, cfg.precision.activations),
        crossings);
    add(out, sched::MsgKind::kActGrad,
        crossings *
            comm::packed_size(boundary, cfg.precision.activation_grads),
        crossings);
    return out;
  }

  // fsdp: ZeRO-3 gathers every chunk twice per local round (forward and
  // backward sweep), each gather a (P-1)-message ring broadcast; gradients
  // reduce to their owner once per chunk via a (P-1)-message chain.
  const auto local_rounds = static_cast<std::uint64_t>(n / p);
  const auto hops = static_cast<std::uint64_t>(p - 1);
  add(out, sched::MsgKind::kWeightF, 2 * local_rounds * hops * sum_w,
      2 * local_rounds * hops * static_cast<std::uint64_t>(p));
  add(out, sched::MsgKind::kGradD, hops * sum_g,
      hops * static_cast<std::uint64_t>(p));
  return out;
}

FootprintBounds static_footprint_bounds(const std::string& strategy,
                                        const TrainConfig& cfg,
                                        std::int64_t workers) {
  WEIPIPE_CHECK_MSG(known_strategy(strategy),
                    "no static footprint bounds for strategy " << strategy);
  const Model model(cfg.model);
  const std::int64_t total = model.total_param_count();
  constexpr std::int64_t kF32 = 4;
  FootprintBounds b;
  // Adam: first + second moment, fp32, over every parameter (all strategies
  // shard the optimizer, but the global sum is the full state either way).
  b.optimizer_bytes = 2 * kF32 * total;

  if (strategy == "sequential") {
    // fp32 master + one working compute copy, full-model gradient buffer.
    b.weights_bytes = 2 * kF32 * total;
    b.weight_grads_bytes = kF32 * total;
    return b;
  }

  const std::int64_t p = workers;
  std::int64_t max_chunk = 0;
  for (const ChunkSpec& spec : model.make_chunks(p)) {
    max_chunk = std::max(max_chunk, spec.param_count);
  }

  if (strategy == "weipipe" || strategy == "weipipe-naive") {
    // Owners keep fp32 masters (sums to the full model); each worker holds
    // at most two circulating weight chunks (F and B cursors) and one
    // circulating gradient chunk.
    b.weights_bytes = kF32 * total + 2 * kF32 * p * max_chunk;
    b.weight_grads_bytes = kF32 * p * max_chunk;
    return b;
  }
  if (strategy == "1f1b" || strategy == "gpipe") {
    // Stage masters (full model) + per-stage quantized compute copies and
    // per-stage gradient accumulators (each the stage's own shard).
    b.weights_bytes = 2 * kF32 * total;
    b.weight_grads_bytes = kF32 * total;
    return b;
  }
  // fsdp: sharded masters + one gathered chunk buffer per rank; every rank
  // accumulates gradients for the whole model (ZeRO-3 without gradient
  // sharding) plus its reduce scratch and owned shard.
  b.weights_bytes = kF32 * total + kF32 * p * max_chunk;
  b.weight_grads_bytes = kF32 * p * total + 2 * kF32 * p * max_chunk;
  return b;
}

}  // namespace weipipe::acct
