// Central registry of the fabric wire tags used by the real trainers.
//
// Every point-to-point message class gets one constant here so (a) trainers
// cannot collide tags by accident and (b) observability code can map a raw
// tag back to a human-readable label and to the schedule IR's MsgKind — the
// metrics registry aggregates measured wire bytes per MsgKind exactly like
// the simulator does for predicted bytes.
//
// Collectives (comm/collectives.hpp) use caller-chosen tag_base ranges and
// are deliberately not registered here; their spans carry their own labels.
#pragma once

#include <cstdint>

#include "sched/program.hpp"

namespace weipipe::wire_tags {

// -- WeiPipe ring flows (core/weipipe_trainer.cpp) ----------------------------
constexpr std::int64_t kTagF = 1;    // forward-flow weight chunk
constexpr std::int64_t kTagBW = 2;   // backward-flow weight chunk
constexpr std::int64_t kTagBD = 3;   // backward-flow gradient chunk

// -- weight redistribution + update-phase chains ------------------------------
constexpr std::int64_t kTagRedistF = 10;   // owner -> F start holder
constexpr std::int64_t kTagRedistB = 11;   // owner -> B start holder
constexpr std::int64_t kTagDpReduce = 12;  // cross-replica gradient chain
constexpr std::int64_t kTagDpBcast = 13;   // reduced gradient broadcast
constexpr std::int64_t kTagVocabUp = 14;   // vocab-grad chain reduce
constexpr std::int64_t kTagVocabDown = 15; // vocab-grad broadcast

// -- activation pipelines (baselines/pipeline_trainer.cpp) --------------------
constexpr std::int64_t kTagAct = 20;   // stage-boundary activations
constexpr std::int64_t kTagGrad = 21;  // stage-boundary activation gradients

inline const char* label(std::int64_t tag) {
  switch (tag) {
    case kTagF: return "weight-F";
    case kTagBW: return "weight-B";
    case kTagBD: return "grad-D";
    case kTagRedistF: return "redist-F";
    case kTagRedistB: return "redist-B";
    case kTagDpReduce: return "dp-reduce";
    case kTagDpBcast: return "dp-bcast";
    case kTagVocabUp: return "vocab-reduce";
    case kTagVocabDown: return "vocab-bcast";
    case kTagAct: return "act";
    case kTagGrad: return "act-grad";
    default: return "other";
  }
}

inline sched::MsgKind msg_kind(std::int64_t tag) {
  switch (tag) {
    case kTagF:
    case kTagRedistF:
      return sched::MsgKind::kWeightF;
    case kTagBW:
    case kTagRedistB:
      return sched::MsgKind::kWeightB;
    case kTagBD:
    case kTagDpReduce:
    case kTagDpBcast:
    case kTagVocabUp:
    case kTagVocabDown:
      return sched::MsgKind::kGradD;
    case kTagAct:
      return sched::MsgKind::kActivation;
    case kTagGrad:
      return sched::MsgKind::kActGrad;
    default:
      return sched::MsgKind::kOpaque;
  }
}

}  // namespace weipipe::wire_tags
