// Closed-form communication and memory accounting for the real trainers.
//
// The paper's comparison tables are analytical: per-iteration wire volume by
// message class (Table 2) and per-worker memory by category (Tables 3-4).
// This module derives the same closed forms from a TrainConfig so runtime
// measurements — the fabric's per-tag byte counters and the memory ledger's
// category peaks — can be checked against them exactly (wire) or as upper
// bounds (memory). tests/test_comm_volume.cpp asserts the wire forms equal
// measured traffic byte-for-byte; weipipe_cli profile/bench print both sides.
//
// Validity envelope: the closed forms assume a single data-parallel replica
// (dp = 1), replicate_vocab off, and gradient clipping disabled — the
// configurations the paper's tables describe. Callers outside that envelope
// still get measured numbers; predictions are simply not emitted.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "comm/fabric.hpp"
#include "core/trainer.hpp"
#include "sched/program.hpp"

namespace weipipe::acct {

struct KindVolume {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

// Per-MsgKind traffic; kinds with zero traffic are absent.
using KindVolumes = std::map<sched::MsgKind, KindVolume>;

// Maps a fabric tag to the message class it carries. Extends
// wire_tags::msg_kind with the collective tag ranges the FSDP baseline uses
// (ring_broadcast ships weights, ring_reduce_to_root ships gradients);
// unknown tags are kOpaque.
sched::MsgKind classify_tag(std::int64_t tag);

// Aggregates the fabric's per-tag counters (since its last reset_stats())
// into per-kind volumes via classify_tag.
KindVolumes measured_kind_volumes(const comm::Fabric& fabric);

// True if predicted_kind_volumes covers (strategy, cfg): a known trainer
// strategy inside the validity envelope above.
bool has_predicted_kind_volumes(const std::string& strategy,
                                const TrainConfig& cfg);

// The paper-style closed-form per-iteration volumes for one trainer
// iteration of `strategy` ("weipipe", "weipipe-naive", "1f1b", "gpipe",
// "fsdp", "sequential") on `workers` ranks. Throws weipipe::Error for
// unknown strategies; returns empty volumes for sequential (no fabric).
KindVolumes predicted_kind_volumes(const std::string& strategy,
                                   const TrainConfig& cfg,
                                   std::int64_t workers);

// Parameter-derived static bounds on the ledger's weight / weight-grad /
// optimizer categories, summed over all ranks (fp32 resident bytes; wire
// precision affects messages, not resident copies). Upper bounds: transient
// double-buffering during resize/unpack may briefly exceed live, never peak.
struct FootprintBounds {
  std::int64_t weights_bytes = 0;
  std::int64_t weight_grads_bytes = 0;
  std::int64_t optimizer_bytes = 0;
  std::int64_t total() const {
    return weights_bytes + weight_grads_bytes + optimizer_bytes;
  }
};

FootprintBounds static_footprint_bounds(const std::string& strategy,
                                        const TrainConfig& cfg,
                                        std::int64_t workers);

}  // namespace weipipe::acct
