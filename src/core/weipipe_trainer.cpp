#include "core/weipipe_trainer.hpp"

#include <map>

#include "comm/collectives.hpp"
#include "common/stopwatch.hpp"
#include "core/wire_tags.hpp"
#include "nn/loss.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace weipipe {

// Flow message tags live in core/wire_tags.hpp (FIFO per (src,tag) gives
// turn ordering for free).
using namespace wire_tags;

namespace {
// Per-in-flight-microbatch state local to one worker.
struct InFlight {
  Microbatch mb;
  // ctxs[chunk] holds one BlockCtx per block of that chunk.
  std::vector<std::vector<BlockCtx>> ctxs;
  Tensor act;   // forward cursor (output of the last computed chunk)
  Tensor grad;  // backward cursor (gradient w.r.t. next chunk's output)
  BlockCtx emb_ctx;   // replicate_vocab: local embedding forward state
  BlockCtx head_ctx;  // replicate_vocab: local head forward state
  float loss = 0.0f;
};
}  // namespace

WeiPipeTrainer::WeiPipeTrainer(const TrainConfig& cfg, std::int64_t num_workers,
                               WeiPipeOptions options)
    : cfg_(cfg),
      p_(num_workers),
      dp_(std::max<std::int64_t>(1, options.dp_degree)),
      opts_(options),
      model_(cfg.model),
      sched_(num_workers,
             cfg.num_microbatches / (num_workers *
                                     std::max<std::int64_t>(
                                         1, options.dp_degree)),
             options.mode) {
  cfg_.validate();
  WEIPIPE_CHECK_MSG(p_ >= 2, "WeiPipe needs >= 2 workers (use sequential)");
  WEIPIPE_CHECK_MSG(cfg_.num_microbatches % (p_ * dp_) == 0,
                    "N=" << cfg_.num_microbatches
                         << " must divide by ring*dp=" << p_ * dp_);
  chunks_ = opts_.replicate_vocab ? model_.make_layer_chunks(p_)
                                  : model_.make_chunks(p_);
  fabric_ = std::make_unique<comm::Fabric>(static_cast<int>(p_ * dp_),
                                           opts_.link_model);
  // Every replica starts from (and maintains) an identical shard set.
  const auto init = model_.init_chunk_params(chunks_, cfg_.seed);
  std::vector<float> vocab_init;
  if (opts_.replicate_vocab) {
    const auto blocks = model_.init_block_params(cfg_.seed);
    vocab_init = blocks.front();
    vocab_init.insert(vocab_init.end(), blocks.back().begin(),
                      blocks.back().end());
  }
  for (std::int64_t d = 0; d < dp_; ++d) {
    for (const auto& chunk : init) {
      master_.push_back(chunk);
    }
    for (const ChunkSpec& spec : chunks_) {
      adam_.emplace_back(spec.param_count);
    }
    if (opts_.replicate_vocab) {
      vocab_master_.push_back(vocab_init);
      vocab_adam_.emplace_back(static_cast<std::int64_t>(vocab_init.size()));
    }
  }
  recharge_ledger();
}

void WeiPipeTrainer::recharge_ledger() {
  std::int64_t weight_floats = 0;
  for (const auto& m : master_) {
    weight_floats += static_cast<std::int64_t>(m.size());
  }
  std::int64_t adam_floats = 0;
  for (const AdamShard& shard : adam_) {
    adam_floats += 2 * shard.size();
  }
  master_charge_.set(obs::MemKind::kWeights, 4 * weight_floats);
  adam_charge_.set(obs::MemKind::kOptimizer, 4 * adam_floats);
  std::int64_t vocab_floats = 0;
  for (const auto& vm : vocab_master_) {
    vocab_floats += static_cast<std::int64_t>(vm.size());
  }
  std::int64_t vocab_adam_floats = 0;
  for (const AdamShard& shard : vocab_adam_) {
    vocab_adam_floats += 2 * shard.size();
  }
  vocab_master_charge_.set(obs::MemKind::kWeights, 4 * vocab_floats);
  vocab_adam_charge_.set(obs::MemKind::kOptimizer, 4 * vocab_adam_floats);
}

std::string WeiPipeTrainer::name() const {
  std::string n = to_string(opts_.mode);
  if (dp_ > 1) {
    n += "-dp" + std::to_string(dp_);
  }
  return n;
}

IterationResult WeiPipeTrainer::train_iteration(const Dataset& data,
                                                std::int64_t iter_index) {
  Stopwatch sw;
  // Whole-iteration span; recorded on the driving thread's track.
  obs::SpanScope step_span(obs::SpanKind::kStep, iter_index);
  // Uniform step cadence signal: every strategy bumps the same counter at
  // the same point, so telemetry windows align across strategies.
  obs::runtime_metrics().counter("step.index").increment();
  // Step-cadence heartbeat for the live health plane (obs/health.hpp).
  obs::HealthStepScope health_step(iter_index);
  fabric_->reset_stats();
  std::vector<double> losses(
      static_cast<std::size_t>(cfg_.num_microbatches), 0.0);
  comm::run_workers(*fabric_, [&](int rank, comm::Endpoint& ep) {
    worker_body(rank, ep, data, iter_index, losses);
  });
  IterationResult res;
  double sum = 0.0;
  for (double l : losses) {
    sum += l;
  }
  res.mean_loss =
      static_cast<float>(sum / static_cast<double>(cfg_.num_microbatches));
  res.wall_seconds = sw.seconds();
  res.wire_bytes = fabric_->total_bytes();
  res.wire_messages = fabric_->total_messages();
  return res;
}

void WeiPipeTrainer::worker_body(int rank, comm::Endpoint& ep,
                                 const Dataset& data,
                                 std::int64_t iter_index,
                                 std::vector<double>& losses) {
  const std::int64_t d = rank / p_;  // data-parallel replica index
  const std::int64_t p = rank % p_;  // position within this replica's ring
  const std::int64_t base = d * p_;  // first rank of this replica
  const int next = static_cast<int>(base + (p + 1) % p_);
  const int prev = static_cast<int>(base + (p + p_ - 1) % p_);
  const WirePrecision wp = cfg_.precision.weights;
  const WirePrecision dp = cfg_.precision.weight_grads;
  const std::int64_t n_total = cfg_.num_microbatches;
  const std::int64_t n_local = n_total / dp_;  // microbatches per replica
  const std::int64_t turns = sched_.total_turns();

  auto chunk_size = [&](std::int64_t c) {
    return static_cast<std::size_t>(
        chunks_[static_cast<std::size_t>(c)].param_count);
  };

  // Resident bytes of saved circulated-chunk activations (BlockCtx state) on
  // this worker; maintained only while tracing, feeds act_bytes_after on
  // compute spans so measured peaks can be checked against the static
  // analyzer's bound. Vocab-replica ctxs and flow cursors are excluded: they
  // are O(1) per worker and not part of the schedule's memory algebra.
  std::int64_t act_resident_bytes = 0;

  // replicate_vocab: per-worker compute copies of the embedding/head weights
  // and a local gradient accumulator (all-reduced once at iteration end).
  const std::int64_t emb_n = model_.block_param_count(0);
  const std::int64_t head_n = model_.block_param_count(model_.num_blocks() - 1);
  std::vector<float> vocab_w;
  std::vector<float> vocab_g;
  obs::MemCharge vocab_w_charge;
  obs::MemCharge vocab_g_charge;
  if (opts_.replicate_vocab) {
    const std::vector<float>& vm = vocab_master_[static_cast<std::size_t>(d)];
    vocab_w.resize(vm.size());
    for (std::size_t i = 0; i < vm.size(); ++i) {
      vocab_w[i] = quantize(vm[i], wp);
    }
    vocab_g.assign(vm.size(), 0.0f);
    vocab_w_charge.set(obs::MemKind::kWeights,
                       4 * static_cast<std::int64_t>(vocab_w.size()));
    vocab_g_charge.set(obs::MemKind::kWeightGrads,
                       4 * static_cast<std::int64_t>(vocab_g.size()));
  }

  // ---- Redistribution: owners inject current weights into both flows. -----
  // (Owner-held masters are authoritative; everyone else's copy is stale.)
  for (std::int64_t c = 0; c < p_; ++c) {
    if (sched_.owner(c) != p) {
      continue;
    }
    const std::vector<float>& m =
        master_[static_cast<std::size_t>(base + c)];
    const auto targets_and_tags = {
        std::pair<std::int64_t, std::int64_t>{sched_.f_start_holder(c),
                                              kTagRedistF},
        std::pair<std::int64_t, std::int64_t>{sched_.b_start_holder(c),
                                              kTagRedistB}};
    comm::Buffer wire;  // packed lazily, once; both flow injections share it
    for (const auto& [holder, tag] : targets_and_tags) {
      if (holder == p) {
        continue;  // handled locally below
      }
      if (!wire) {
        wire = comm::pack_floats_to_buffer(
            std::span<const float>(m.data(), m.size()), wp);
      }
      ep.send(static_cast<int>(base + holder), tag, wire);
    }
  }

  // Current flow buffers (fp32 working copies of wire values).
  const std::int64_t cf0 = sched_.f_chunk_at(p, 0);
  const std::int64_t cb0 = sched_.b_chunk_at(p, 0);
  std::vector<float> fw(chunk_size(cf0));
  std::vector<float> bw(chunk_size(cb0));
  std::vector<float> bd(chunk_size(cb0), 0.0f);  // D starts at zero
  obs::MemCharge fw_charge(obs::MemKind::kWeights,
                           4 * static_cast<std::int64_t>(fw.size()));
  obs::MemCharge bw_charge(obs::MemKind::kWeights,
                           4 * static_cast<std::int64_t>(bw.size()));
  obs::MemCharge bd_charge(obs::MemKind::kWeightGrads,
                           4 * static_cast<std::int64_t>(bd.size()));

  auto fill_from_master_quantized = [&](std::vector<float>& dst,
                                        std::int64_t c) {
    const std::vector<float>& m =
        master_[static_cast<std::size_t>(base + c)];
    dst.resize(m.size());
    for (std::size_t i = 0; i < m.size(); ++i) {
      dst[i] = quantize(m[i], wp);
    }
  };

  // Wire-format handles for the W and BW flows. Because unpack-then-repack
  // is bit-identical for the flow precisions (fp32/fp16/bf16 idempotence,
  // see test_wire), a rank relays the *received* buffer to its neighbor
  // unchanged: the owner's single pack serves the whole ring pass, and each
  // hop moves a refcounted handle instead of re-encoding the chunk.
  comm::Buffer fw_wire;
  comm::Buffer bw_wire;
  if (sched_.owner(cf0) == p) {
    fill_from_master_quantized(fw, cf0);
    fw_wire = comm::pack_floats_to_buffer(
        std::span<const float>(fw.data(), fw.size()), wp);
  } else {
    fw_wire = ep.recv_buffer(static_cast<int>(base + sched_.owner(cf0)),
                             kTagRedistF);
    comm::unpack_floats(fw_wire.span(), wp,
                        std::span<float>(fw.data(), fw.size()));
  }
  if (sched_.owner(cb0) == p) {
    fill_from_master_quantized(bw, cb0);
    bw_wire = comm::pack_floats_to_buffer(
        std::span<const float>(bw.data(), bw.size()), wp);
  } else {
    bw_wire = ep.recv_buffer(static_cast<int>(base + sched_.owner(cb0)),
                             kTagRedistB);
    comm::unpack_floats(bw_wire.span(), wp,
                        std::span<float>(bw.data(), bw.size()));
  }

  // ---- Turn loop -----------------------------------------------------------
  std::map<std::int64_t, InFlight> inflight;  // keyed by round

  for (std::int64_t t = 0; t < turns; ++t) {
    const TurnActions acts = sched_.actions(p, t);
    const std::int64_t cf = sched_.f_chunk_at(p, t);
    const std::int64_t cb = sched_.b_chunk_at(p, t);

    // Weight chunks are read-only for this turn's compute: with prefetch on,
    // ship them to the neighbor before computing so the transfer overlaps.
    if (opts_.async_prefetch) {
      // Relay the wire buffers: zero-copy handle moves, no re-pack.
      ep.send(next, kTagF, std::move(fw_wire));
      ep.send(next, kTagBW, std::move(bw_wire));
    }

    // Post receives for the next turn's chunks up front.
    comm::Buffer in_f;
    comm::Buffer in_bw;
    comm::Buffer in_bd;
    comm::Request rq_f;
    comm::Request rq_bw;
    comm::Request rq_bd;
    const bool receiving = t + 1 <= turns;  // final state counts as turn T
    if (receiving && opts_.async_prefetch) {
      rq_f = ep.irecv_buffer(prev, kTagF, &in_f);
      rq_bw = ep.irecv_buffer(prev, kTagBW, &in_bw);
      rq_bd = ep.irecv_buffer(prev, kTagBD, &in_bd);
    }

    // -- forward compute (new microbatch, chunk cf) --
    if (acts.fwd) {
      obs::MemScope act_scope(obs::MemKind::kActivations);
      WEIPIPE_CHECK(acts.fwd->chunk == cf);
      const std::int64_t round = acts.fwd->round;
      const std::int64_t mb_id = d * n_local + round * p_ + p;
      obs::SpanScope fwd_span(obs::SpanKind::kForward, mb_id, cf);
      InFlight* st = nullptr;
      if (cf == 0) {
        InFlight fresh;
        fresh.mb = data.make(
            iter_index * n_total + d * n_local + round * p_ + p,
            cfg_.microbatch_size, cfg_.seq_len);
        fresh.ctxs.resize(static_cast<std::size_t>(p_));
        st = &inflight.emplace(round, std::move(fresh)).first->second;
        if (opts_.replicate_vocab) {
          // Local embedding lookup feeds the first circulated chunk.
          st->act = model_.block(0).forward(
              std::span<const float>(vocab_w.data(),
                                     static_cast<std::size_t>(emb_n)),
              st->mb, Tensor(), st->emb_ctx, !cfg_.model.recompute);
        }
      } else {
        auto it = inflight.find(round);
        WEIPIPE_CHECK_MSG(it != inflight.end(),
                          "missing in-flight state for round " << round);
        st = &it->second;
      }
      const ChunkSpec& spec = chunks_[static_cast<std::size_t>(cf)];
      auto& ctxs = st->ctxs[static_cast<std::size_t>(cf)];
      ctxs.clear();
      std::int64_t off = 0;
      for (std::int64_t b = spec.begin; b < spec.end; ++b) {
        const std::int64_t nparams = model_.block_param_count(b);
        ctxs.emplace_back();
        st->act = model_.block(b).forward(
            std::span<const float>(fw.data() + off,
                                   static_cast<std::size_t>(nparams)),
            st->mb, st->act, ctxs.back(), !cfg_.model.recompute);
        off += nparams;
      }
      if (cf == p_ - 1) {
        if (opts_.replicate_vocab) {
          // Local head projection completes the model.
          st->act = model_.block(model_.num_blocks() - 1)
                        .forward(std::span<const float>(
                                     vocab_w.data() + emb_n,
                                     static_cast<std::size_t>(head_n)),
                                 st->mb, st->act, st->head_ctx,
                                 !cfg_.model.recompute);
        }
        // End of the model: loss -> backward seed (scaled for the N-mean).
        obs::SpanScope loss_span(obs::SpanKind::kLoss, mb_id, cf);
        LossResult lr = cross_entropy_loss(st->act, st->mb);
        st->loss = lr.loss;
        losses[static_cast<std::size_t>(d * n_local + round * p_ + p)] =
            lr.loss;
        lr.dlogits.scale_(1.0f / static_cast<float>(n_total));
        st->grad = std::move(lr.dlogits);
        st->act = Tensor();
      }
      if (fwd_span.armed()) {
        std::int64_t delta = 0;
        for (const BlockCtx& ctx : st->ctxs[static_cast<std::size_t>(cf)]) {
          delta += ctx.bytes();
        }
        act_resident_bytes += delta;
        fwd_span.set_bytes(delta);
        fwd_span.set_act_bytes_after(
            static_cast<double>(act_resident_bytes));
      }
    }

    // -- backward compute (old microbatch, chunk cb); accumulates into bd --
    if (acts.bwd) {
      obs::MemScope act_scope(obs::MemKind::kActivations);
      WEIPIPE_CHECK(acts.bwd->chunk == cb);
      auto it = inflight.find(acts.bwd->round);
      WEIPIPE_CHECK_MSG(it != inflight.end(),
                        "missing in-flight state for backward round "
                            << acts.bwd->round);
      obs::SpanScope bwd_span(obs::SpanKind::kBackward,
                              d * n_local + acts.bwd->round * p_ + p, cb);
      InFlight& st = it->second;
      if (opts_.replicate_vocab && cb == p_ - 1) {
        st.grad = model_.block(model_.num_blocks() - 1)
                      .backward(std::span<const float>(
                                    vocab_w.data() + emb_n,
                                    static_cast<std::size_t>(head_n)),
                                st.mb, st.head_ctx, st.grad,
                                std::span<float>(
                                    vocab_g.data() + emb_n,
                                    static_cast<std::size_t>(head_n)));
        st.head_ctx = BlockCtx();
      }
      const ChunkSpec& spec = chunks_[static_cast<std::size_t>(cb)];
      auto& ctxs = st.ctxs[static_cast<std::size_t>(cb)];
      WEIPIPE_CHECK(static_cast<std::int64_t>(ctxs.size()) ==
                    spec.end - spec.begin);
      for (std::int64_t b = spec.end - 1; b >= spec.begin; --b) {
        const std::int64_t off = model_.block_offset_in_chunk(spec, b);
        const std::int64_t nparams = model_.block_param_count(b);
        st.grad = model_.block(b).backward(
            std::span<const float>(bw.data() + off,
                                   static_cast<std::size_t>(nparams)),
            st.mb, ctxs[static_cast<std::size_t>(b - spec.begin)], st.grad,
            std::span<float>(bd.data() + off,
                             static_cast<std::size_t>(nparams)));
      }
      if (bwd_span.armed()) {
        std::int64_t freed = 0;
        for (const BlockCtx& ctx : ctxs) {
          freed += ctx.bytes();
        }
        act_resident_bytes -= freed;
        bwd_span.set_bytes(-freed);
        bwd_span.set_act_bytes_after(
            static_cast<double>(act_resident_bytes));
      }
      ctxs.clear();  // activations for this chunk are spent
      if (cb == 0) {
        if (opts_.replicate_vocab) {
          (void)model_.block(0).backward(
              std::span<const float>(vocab_w.data(),
                                     static_cast<std::size_t>(emb_n)),
              st.mb, st.emb_ctx, st.grad,
              std::span<float>(vocab_g.data(),
                               static_cast<std::size_t>(emb_n)));
        }
        inflight.erase(it);  // microbatch fully processed
      }
    }

    // Without prefetch the weight sends happen only now (blocking ablation).
    if (!opts_.async_prefetch) {
      ep.send(next, kTagF, std::move(fw_wire));
      ep.send(next, kTagBW, std::move(bw_wire));
    }
    // D leaves after backward added this worker's contribution.
    ep.send_floats(next, kTagBD, std::span<const float>(bd.data(), bd.size()),
                   dp);

    // Advance flows to turn t+1 state.
    const std::int64_t cf_next = sched_.f_chunk_at(p, t + 1);
    const std::int64_t cb_next = sched_.b_chunk_at(p, t + 1);
    fw.resize(chunk_size(cf_next));
    bw.resize(chunk_size(cb_next));
    bd.resize(chunk_size(cb_next));
    fw_charge.resize(4 * static_cast<std::int64_t>(fw.size()));
    bw_charge.resize(4 * static_cast<std::int64_t>(bw.size()));
    bd_charge.resize(4 * static_cast<std::int64_t>(bd.size()));
    if (opts_.async_prefetch) {
      rq_f.wait();
      rq_bw.wait();
      rq_bd.wait();
      fw_wire = std::move(in_f);
      bw_wire = std::move(in_bw);
    } else {
      fw_wire = ep.recv_buffer(prev, kTagF);
      bw_wire = ep.recv_buffer(prev, kTagBW);
      in_bd = ep.recv_buffer(prev, kTagBD);
    }
    // Unpack into the fp32 working copies; the wire handles are kept so the
    // next turn's send relays the same bytes. D is consumed (accumulated
    // into fresh fp32 sums), so its wire buffer is dropped here.
    comm::unpack_floats(fw_wire.span(), wp,
                        std::span<float>(fw.data(), fw.size()));
    comm::unpack_floats(bw_wire.span(), wp,
                        std::span<float>(bw.data(), bw.size()));
    comm::unpack_floats(in_bd.span(), dp,
                        std::span<float>(bd.data(), bd.size()));
  }

  WEIPIPE_CHECK_MSG(inflight.empty(),
                    "worker " << p << " finished with unfinished microbatches");

  // ---- Update: this worker now holds its replica's completed (W, D) pair
  // for the chunk it owns.
  const std::int64_t c_own = sched_.b_chunk_at(p, turns);
  WEIPIPE_CHECK(sched_.owner(c_own) == p);

  // Hybrid data parallelism: chain-reduce this chunk's gradient across the
  // DP group (ranks {e*P + p}), in replica order, then broadcast back so
  // every replica's owner applies the identical update.
  if (dp_ > 1) {
    std::vector<float> incoming(bd.size());
    if (d > 0) {
      ep.recv_floats(static_cast<int>((d - 1) * p_ + p), kTagDpReduce,
                     std::span<float>(incoming.data(), incoming.size()), dp);
      for (std::size_t i = 0; i < bd.size(); ++i) {
        bd[i] += incoming[i];
      }
    }
    if (d < dp_ - 1) {
      ep.send_floats(static_cast<int>((d + 1) * p_ + p), kTagDpReduce,
                     std::span<const float>(bd.data(), bd.size()), dp);
      ep.recv_floats(static_cast<int>((d + 1) * p_ + p), kTagDpBcast,
                     std::span<float>(bd.data(), bd.size()), dp);
    }
    if (d > 0) {
      ep.send_floats(static_cast<int>((d - 1) * p_ + p), kTagDpBcast,
                     std::span<const float>(bd.data(), bd.size()), dp);
    }
  }

  // replicate_vocab: chain all-reduce the local vocab gradients across the
  // whole world (their contributions span every microbatch), rank order for
  // determinism, then broadcast back.
  if (opts_.replicate_vocab) {
    const int world = static_cast<int>(p_ * dp_);
    std::vector<float> incoming(vocab_g.size());
    if (rank > 0) {
      ep.recv_floats(rank - 1, kTagVocabUp,
                     std::span<float>(incoming.data(), incoming.size()), dp);
      for (std::size_t i = 0; i < vocab_g.size(); ++i) {
        vocab_g[i] += incoming[i];
      }
    }
    if (rank < world - 1) {
      ep.send_floats(rank + 1, kTagVocabUp,
                     std::span<const float>(vocab_g.data(), vocab_g.size()),
                     dp);
      ep.recv_floats(rank + 1, kTagVocabDown,
                     std::span<float>(vocab_g.data(), vocab_g.size()), dp);
    }
    if (rank > 0) {
      ep.send_floats(rank - 1, kTagVocabDown,
                     std::span<const float>(vocab_g.data(), vocab_g.size()),
                     dp);
    }
  }

  if (cfg_.clip.enabled()) {
    double local_sq =
        grad_sq_norm(std::span<const float>(bd.data(), bd.size()));
    if (opts_.replicate_vocab && rank == 0) {
      // Count the (world-replicated) vocab gradient exactly once: the world
      // sum below is divided by dp, so pre-multiply by dp here.
      local_sq += static_cast<double>(dp_) *
                  grad_sq_norm(std::span<const float>(vocab_g.data(),
                                                      vocab_g.size()));
    }
    // The scalar all-reduce spans the whole world; after the DP reduction
    // every replica holds identical chunk gradients, so divide the counted
    // total by dp to get the true global norm.
    const double total_sq =
        comm::ring_all_reduce_scalar(ep, local_sq) / static_cast<double>(dp_);
    const float scale = clip_scale(cfg_.clip, total_sq);
    if (scale != 1.0f) {
      for (float& v : bd) {
        v *= scale;
      }
      if (opts_.replicate_vocab) {
        for (float& v : vocab_g) {
          v *= scale;
        }
      }
    }
  }
  obs::SpanScope opt_span(obs::SpanKind::kOptimizer, -1, c_own);
  std::vector<float>& m = master_[static_cast<std::size_t>(base + c_own)];
  WEIPIPE_CHECK(m.size() == bd.size());
  adam_[static_cast<std::size_t>(base + c_own)].step(
      std::span<float>(m.data(), m.size()),
      std::span<const float>(bd.data(), bd.size()),
      cfg_.adam_for_iteration(iter_index));
  if (opts_.replicate_vocab && p == 0) {
    // The replica's first worker applies the (identical) vocab update.
    std::vector<float>& vm = vocab_master_[static_cast<std::size_t>(d)];
    vocab_adam_[static_cast<std::size_t>(d)].step(
        std::span<float>(vm.data(), vm.size()),
        std::span<const float>(vocab_g.data(), vocab_g.size()),
        cfg_.adam_for_iteration(iter_index));
  }
}

std::vector<std::vector<float>> WeiPipeTrainer::gather_block_params() const {
  std::vector<std::vector<float>> out(
      static_cast<std::size_t>(model_.num_blocks()));
  if (opts_.replicate_vocab) {
    const std::vector<float>& vm = vocab_master_.front();
    const std::int64_t emb_n = model_.block_param_count(0);
    out.front().assign(vm.begin(), vm.begin() + emb_n);
    out.back().assign(vm.begin() + emb_n, vm.end());
  }
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    const ChunkSpec& spec = chunks_[c];
    for (std::int64_t b = spec.begin; b < spec.end; ++b) {
      const std::int64_t off = model_.block_offset_in_chunk(spec, b);
      const std::int64_t n = model_.block_param_count(b);
      const std::vector<float>& m = master_[c];
      out[static_cast<std::size_t>(b)] = std::vector<float>(
          m.begin() + off, m.begin() + off + n);
    }
  }
  return out;
}

TrainerState WeiPipeTrainer::export_state() const {
  // Replicas are identical by construction; export replica 0's shards.
  const std::vector<std::vector<float>> replica0_master(
      master_.begin(), master_.begin() + static_cast<std::ptrdiff_t>(p_));
  const std::vector<AdamShard> replica0_adam(
      adam_.begin(), adam_.begin() + static_cast<std::ptrdiff_t>(p_));
  TrainerState state =
      export_sharded_state(model_, chunks_, replica0_master, replica0_adam);
  if (opts_.replicate_vocab) {
    // The sharded export skipped blocks 0 and L+1; fill them from the
    // replicated vocab state.
    const std::vector<float>& vm = vocab_master_.front();
    const AdamShard& va = vocab_adam_.front();
    const std::int64_t emb_n = model_.block_param_count(0);
    state.step_count = va.step_count();
    state.block_params.front().assign(vm.begin(), vm.begin() + emb_n);
    state.block_params.back().assign(vm.begin() + emb_n, vm.end());
    state.adam_m.front().assign(va.first_moment().begin(),
                                va.first_moment().begin() + emb_n);
    state.adam_m.back().assign(va.first_moment().begin() + emb_n,
                               va.first_moment().end());
    state.adam_v.front().assign(va.second_moment().begin(),
                                va.second_moment().begin() + emb_n);
    state.adam_v.back().assign(va.second_moment().begin() + emb_n,
                               va.second_moment().end());
  }
  return state;
}

void WeiPipeTrainer::import_state(const TrainerState& state) {
  std::vector<std::vector<float>> replica_master;
  std::vector<AdamShard> replica_adam;
  import_sharded_state(model_, chunks_, state, replica_master, replica_adam);
  master_.clear();
  adam_.clear();
  vocab_master_.clear();
  vocab_adam_.clear();
  for (std::int64_t e = 0; e < dp_; ++e) {
    for (const auto& mch : replica_master) {
      master_.push_back(mch);
    }
    for (const AdamShard& shard : replica_adam) {
      adam_.push_back(shard);
    }
    if (opts_.replicate_vocab) {
      std::vector<float> vm = state.block_params.front();
      vm.insert(vm.end(), state.block_params.back().begin(),
                state.block_params.back().end());
      std::vector<float> m = state.adam_m.front();
      m.insert(m.end(), state.adam_m.back().begin(),
               state.adam_m.back().end());
      std::vector<float> v = state.adam_v.front();
      v.insert(v.end(), state.adam_v.back().begin(),
               state.adam_v.back().end());
      vocab_master_.push_back(std::move(vm));
      vocab_adam_.emplace_back(
          static_cast<std::int64_t>(vocab_master_.back().size()));
      vocab_adam_.back().restore(std::move(m), std::move(v),
                                 state.step_count);
    }
  }
  recharge_ledger();
}


std::vector<std::uint8_t> WeiPipeTrainer::export_rank_state(int rank) const {
  WEIPIPE_CHECK_MSG(rank >= 0 && rank < p_ * dp_,
                    "export_rank_state: rank " << rank << " of " << p_ * dp_);
  const std::int64_t d = rank / p_;  // replica
  const std::int64_t p = rank % p_;  // worker within the ring
  // Worker p owns the chunk(s) the schedule assigns it; its shard lives at
  // replica-major index d * p_ + c.
  std::vector<std::int64_t> owned;
  for (std::int64_t c = 0; c < p_; ++c) {
    if (sched_.owner(c) == p) {
      owned.push_back(c);
    }
  }
  const bool vocab = opts_.replicate_vocab && p == 0;
  RankStateBlob blob;
  blob.u64(owned.size() + (vocab ? 1 : 0));
  for (const std::int64_t c : owned) {
    const std::size_t idx = static_cast<std::size_t>(d * p_ + c);
    blob.record(static_cast<std::uint64_t>(c), adam_[idx].step_count(),
                master_[idx], adam_[idx].first_moment(),
                adam_[idx].second_moment());
  }
  if (vocab) {
    // Replica d's first worker applies the replicated vocab update; record
    // it under the one-past-the-chunks sentinel index.
    const std::size_t vd = static_cast<std::size_t>(d);
    blob.record(static_cast<std::uint64_t>(p_), vocab_adam_[vd].step_count(),
                vocab_master_[vd], vocab_adam_[vd].first_moment(),
                vocab_adam_[vd].second_moment());
  }
  return blob.take();
}
}  // namespace weipipe
