#include "core/sequential_trainer.hpp"

#include "common/check.hpp"

#include "common/stopwatch.hpp"
#include "nn/loss.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace weipipe {

SequentialTrainer::SequentialTrainer(const TrainConfig& cfg)
    : cfg_(cfg), model_(cfg.model) {
  cfg_.validate();
  master_ = model_.init_block_params(cfg_.seed);
  adam_.reserve(master_.size());
  for (const auto& w : master_) {
    adam_.emplace_back(static_cast<std::int64_t>(w.size()));
  }
  recharge_ledger();
}

void SequentialTrainer::recharge_ledger() {
  std::int64_t weight_floats = 0;
  for (const auto& w : master_) {
    weight_floats += static_cast<std::int64_t>(w.size());
  }
  std::int64_t adam_floats = 0;
  for (const AdamShard& shard : adam_) {
    adam_floats += 2 * shard.size();  // first + second moment
  }
  master_charge_.set(obs::MemKind::kWeights, 4 * weight_floats);
  adam_charge_.set(obs::MemKind::kOptimizer, 4 * adam_floats);
}

IterationResult SequentialTrainer::train_iteration(
    const Dataset& data, std::int64_t iter_index) {
  Stopwatch sw;
  obs::SpanScope step_span(obs::SpanKind::kStep, iter_index);
  // Uniform step cadence signal: every strategy bumps the same counter at
  // the same point, so telemetry windows align across strategies.
  obs::runtime_metrics().counter("step.index").increment();
  // Single-process reference: every span lands on a "rank 0" track.
  obs::RankScope rank_scope(0);
  // Step-cadence heartbeat plus the rank-0 worker heartbeat run_workers
  // would provide in the distributed trainers (obs/health.hpp).
  obs::HealthStepScope health_step(iter_index);
  obs::HealthWorkerScope health_worker(0);
  const std::int64_t n = cfg_.num_microbatches;

  // Compute copies: emulate the wire precision the distributed runs compute
  // with (weights quantized once before use; identity for fp32).
  std::vector<std::vector<float>> compute = master_;
  if (cfg_.precision.weights != WirePrecision::Fp32) {
    for (auto& w : compute) {
      for (float& v : w) {
        v = quantize(v, cfg_.precision.weights);
      }
    }
  }

  std::vector<std::vector<float>> grads;
  grads.reserve(master_.size());
  std::int64_t grad_floats = 0;
  for (const auto& w : master_) {
    grads.emplace_back(w.size(), 0.0f);
    grad_floats += static_cast<std::int64_t>(w.size());
  }
  obs::MemCharge compute_charge(obs::MemKind::kWeights, 4 * grad_floats);
  obs::MemCharge grads_charge(obs::MemKind::kWeightGrads, 4 * grad_floats);

  double loss_sum = 0.0;
  for (std::int64_t j = 0; j < n; ++j) {
    // Saved forward state + logits allocated below are activation memory.
    obs::MemScope act_scope(obs::MemKind::kActivations);
    const Microbatch mb =
        data.make(iter_index * n + j, cfg_.microbatch_size, cfg_.seq_len);
    std::vector<BlockCtx> ctxs;
    Tensor logits;
    {
      obs::SpanScope fwd_span(obs::SpanKind::kForward, j);
      logits = model_.forward_all(compute, mb, ctxs);
      if (fwd_span.armed()) {
        std::int64_t act = 0;
        for (const BlockCtx& ctx : ctxs) {
          act += ctx.bytes();
        }
        fwd_span.set_bytes(act);
        fwd_span.set_act_bytes_after(static_cast<double>(act));
      }
    }
    obs::SpanScope bwd_span(obs::SpanKind::kBackward, j);
    LossResult lr;
    {
      obs::SpanScope loss_span(obs::SpanKind::kLoss, j);
      lr = cross_entropy_loss(logits, mb);
    }
    loss_sum += lr.loss;
    // Mean over the N microbatches.
    lr.dlogits.scale_(1.0f / static_cast<float>(n));
    model_.backward_all(compute, mb, ctxs, lr.dlogits, grads);
    if (bwd_span.armed()) {
      std::int64_t act = 0;
      for (const BlockCtx& ctx : ctxs) {
        act += ctx.bytes();
      }
      bwd_span.set_bytes(-act);
      bwd_span.set_act_bytes_after(0.0);
    }
  }

  if (cfg_.clip.enabled()) {
    double total_sq = 0.0;
    for (const auto& g : grads) {
      total_sq += grad_sq_norm(std::span<const float>(g.data(), g.size()));
    }
    const float scale = clip_scale(cfg_.clip, total_sq);
    if (scale != 1.0f) {
      for (auto& g : grads) {
        for (float& v : g) {
          v *= scale;
        }
      }
    }
  }
  const AdamConfig adam_cfg = cfg_.adam_for_iteration(iter_index);
  obs::SpanScope opt_span(obs::SpanKind::kOptimizer);
  for (std::size_t b = 0; b < master_.size(); ++b) {
    adam_[b].step(std::span<float>(master_[b].data(), master_[b].size()),
                  std::span<const float>(grads[b].data(), grads[b].size()),
                  adam_cfg);
  }

  IterationResult res;
  res.mean_loss = static_cast<float>(loss_sum / static_cast<double>(n));
  res.wall_seconds = sw.seconds();
  health_worker.complete();
  return res;
}

std::vector<std::vector<float>> SequentialTrainer::gather_block_params()
    const {
  return master_;
}

TrainerState SequentialTrainer::export_state() const {
  TrainerState state;
  state.block_params = master_;
  state.step_count = adam_.empty() ? 0 : adam_.front().step_count();
  for (const AdamShard& shard : adam_) {
    state.adam_m.emplace_back(shard.first_moment().begin(),
                              shard.first_moment().end());
    state.adam_v.emplace_back(shard.second_moment().begin(),
                              shard.second_moment().end());
  }
  return state;
}

void SequentialTrainer::import_state(const TrainerState& state) {
  WEIPIPE_CHECK_MSG(static_cast<std::int64_t>(state.block_params.size()) ==
                        model_.num_blocks(),
                    "state/model block count mismatch");
  for (std::int64_t b = 0; b < model_.num_blocks(); ++b) {
    WEIPIPE_CHECK_MSG(
        static_cast<std::int64_t>(
            state.block_params[static_cast<std::size_t>(b)].size()) ==
            model_.block_param_count(b),
        "state block " << b << " size mismatch");
  }
  master_ = state.block_params;
  adam_.clear();
  for (std::size_t b = 0; b < master_.size(); ++b) {
    adam_.emplace_back(static_cast<std::int64_t>(master_[b].size()));
    adam_.back().restore(state.adam_m[b], state.adam_v[b], state.step_count);
  }
  recharge_ledger();
}


std::vector<std::uint8_t> SequentialTrainer::export_rank_state(
    int rank) const {
  // No sharding: every "rank" (each forked process runs the full model
  // independently) owns every block, so blobs are identical by construction.
  (void)rank;
  RankStateBlob blob;
  blob.u64(static_cast<std::uint64_t>(master_.size()));
  for (std::size_t b = 0; b < master_.size(); ++b) {
    const AdamShard& a = adam_[b];
    blob.record(b, a.step_count(), master_[b], a.first_moment(),
                a.second_moment());
  }
  return blob.take();
}
}  // namespace weipipe
