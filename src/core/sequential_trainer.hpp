// Ground-truth trainer: one process, no parallelism, microbatches processed
// in index order with gradient accumulation — the semantics every distributed
// strategy must reproduce.
#pragma once

#include <memory>

#include "core/checkpoint.hpp"
#include "core/trainer.hpp"
#include "nn/adam.hpp"
#include "nn/model.hpp"
#include "obs/ledger.hpp"

namespace weipipe {

class SequentialTrainer final : public Trainer {
 public:
  explicit SequentialTrainer(const TrainConfig& cfg);

  std::string name() const override { return "sequential"; }
  IterationResult train_iteration(const Dataset& data,
                                  std::int64_t iter_index) override;
  std::vector<std::vector<float>> gather_block_params() const override;
  TrainerState export_state() const override;
  void import_state(const TrainerState& state) override;
  std::vector<std::uint8_t> export_rank_state(int rank) const override;

 private:
  TrainConfig cfg_;
  Model model_;
  std::vector<std::vector<float>> master_;  // fp32 masters per block
  std::vector<AdamShard> adam_;             // one shard per block
  // Ledger charges for the plain-vector state above (weights / optimizer).
  obs::MemCharge master_charge_;
  obs::MemCharge adam_charge_;

  void recharge_ledger();
};

}  // namespace weipipe
