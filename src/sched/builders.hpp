// Program builders: emit the schedule IR for every strategy in the paper.
//
// Builders are pure schedule logic — all physics (durations, byte counts)
// arrives pre-computed in StrategyCosts, produced by sim::CostModel. This
// keeps sched/ dependency-free and lets tests drive builders with synthetic
// costs (e.g. T_B = 2 T_F) to check the paper's analytic bubble ratios.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/program.hpp"
#include "sched/weipipe_schedule.hpp"

namespace weipipe::sched {

// Per-chunk / per-message costs for one (model, P, G, S) workload.
struct StrategyCosts {
  // Compute seconds for one microbatch through one chunk (pipeline stage).
  std::vector<double> fwd_seconds;  // [chunk]
  std::vector<double> bwd_seconds;  // [chunk] full backward (incl. recompute)
  // Zero-bubble split: bwd == bwd_acts + bwd_weights (no recompute for ZB).
  std::vector<double> bwd_acts_seconds;     // [chunk] B pass
  std::vector<double> bwd_weights_seconds;  // [chunk] W pass
  double optimizer_seconds = 0.0;           // per-rank update at iteration end

  // Wire bytes.
  std::vector<double> chunk_weight_bytes;  // [chunk] W (also D) message size
  double act_bytes = 0.0;       // one activation boundary message (G*S*H)
  double act_grad_bytes = 0.0;  // one activation-gradient message

  // Activation memory per microbatch per chunk (bytes), as stored between
  // forward and backward under the strategy's checkpointing policy.
  std::vector<double> act_mem_bytes;  // [chunk]

  std::int64_t num_chunks() const {
    return static_cast<std::int64_t>(fwd_seconds.size());
  }
};

// ---- WeiPipe family ----------------------------------------------------------

// WeiPipe-Naive / WeiPipe-Interleave from the turn algebra in
// weipipe_schedule.hpp. Emits, per worker per turn: weight-chunk sends (F and
// B flows), forward/backward computes, the D send, and the three receives.
// `prefetch=false` ablates the paper's communication overlap: weight sends
// move after the computes and block the sender (no batch_isend_irecv).
Program build_weipipe(const WeiPipeSchedule& schedule,
                      const StrategyCosts& costs, bool prefetch = true);

// WeiPipe-zero-bubble variants (paper §4.2.3; analyzed, not deployed — same
// status as in the paper). Turn-level models:
//  * WZB1: steady turns run one forward plus one B or W pass while moving
//    three chunks (two W + one D) per turn.
//  * WZB2: forward, B, and W passes fully sequential per worker; two chunks
//    on the wire per one-chunk compute; the last worker updates and re-injects
//    weights immediately, erasing the inter-iteration bubble.
enum class WzbVariant { kWzb1, kWzb2 };
Program build_weipipe_zero_bubble(std::int64_t num_workers,
                                  std::int64_t rounds, WzbVariant variant,
                                  const StrategyCosts& costs);

// ---- Activation-passing pipelines ----------------------------------------------

Program build_gpipe(std::int64_t num_stages, std::int64_t num_microbatches,
                    const StrategyCosts& costs);
Program build_1f1b(std::int64_t num_stages, std::int64_t num_microbatches,
                   const StrategyCosts& costs);

// Zero-bubble pipelines (Qi et al.): backward split into B and W passes.
//  * ZB1: W passes fill bubbles; in-flight microbatches capped like 1F1B
//    (activation memory ~= 1F1B).
//  * ZB2: deeper warmup (cap ~= 2P) and maximally deferred W passes;
//    near-zero bubble, ~2x activation memory.
enum class ZbVariant { kZb1, kZb2 };
Program build_zero_bubble(std::int64_t num_stages,
                          std::int64_t num_microbatches, ZbVariant variant,
                          const StrategyCosts& costs);

// ---- FSDP (ZeRO-3) -------------------------------------------------------------

// Every rank runs `rounds` local microbatches; per chunk, weights arrive via
// an asynchronous collective (all-gather) that overlaps compute, posted one
// chunk ahead (prefetch). Gradients reduce-scatter at iteration end.
// `collective_seconds(bytes)` is supplied by the caller because its duration
// depends on topology, not just size.
struct FsdpCollectiveCosts {
  std::vector<double> all_gather_seconds;      // [chunk]
  std::vector<double> reduce_scatter_seconds;  // [chunk]
  std::vector<double> all_gather_bytes;        // [chunk] per-rank wire share
  std::vector<double> reduce_scatter_bytes;    // [chunk]
};
// `overlap_prefetch` posts the next chunk's gather during the current
// chunk's compute (tuned DeepSpeed); false reproduces the blocking per-layer
// gathers the paper's FSDP baseline exhibits.
Program build_fsdp(std::int64_t num_ranks, std::int64_t local_rounds,
                   const StrategyCosts& costs,
                   const FsdpCollectiveCosts& coll,
                   bool overlap_prefetch = false);

}  // namespace weipipe::sched
