#include "sched/validate.hpp"

#include <cmath>
#include <map>
#include <set>
#include <sstream>

namespace weipipe::sched {

ValidationReport validate(const Program& program) {
  ValidationReport report;
  const int p = program.num_ranks();
  if (p == 0) {
    report.fail("program has no ranks");
    return report;
  }

  // (src, dst, tag) -> sends minus recvs.
  std::map<std::tuple<int, int, std::int64_t>, std::int64_t> balance;

  for (int r = 0; r < p; ++r) {
    double mem = 0.0;
    std::set<std::int64_t> posted_collectives;
    const auto& ops = program.rank_ops[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < ops.size(); ++i) {
      std::ostringstream where;
      where << "rank " << r << " op " << i;
      if (const auto* c = std::get_if<ComputeOp>(&ops[i])) {
        if (!(c->seconds >= 0.0) || !std::isfinite(c->seconds)) {
          report.fail(where.str() + ": negative/NaN compute duration");
        }
        if (!std::isfinite(c->mem_delta)) {
          report.fail(where.str() + ": non-finite mem_delta");
        }
        mem += c->mem_delta;
      } else if (const auto* s = std::get_if<SendOp>(&ops[i])) {
        if (s->dst < 0 || s->dst >= p) {
          report.fail(where.str() + ": send to invalid rank " +
                      std::to_string(s->dst));
        } else if (s->dst == r) {
          report.fail(where.str() + ": self-send");
        } else {
          ++balance[{r, s->dst, s->tag}];
        }
        if (!(s->bytes >= 0.0) || !std::isfinite(s->bytes)) {
          report.fail(where.str() + ": negative/NaN send bytes");
        }
      } else if (const auto* rc = std::get_if<RecvOp>(&ops[i])) {
        if (rc->src < 0 || rc->src >= p) {
          report.fail(where.str() + ": recv from invalid rank " +
                      std::to_string(rc->src));
        } else if (rc->src == r) {
          report.fail(where.str() + ": self-recv");
        } else {
          --balance[{rc->src, r, rc->tag}];
        }
      } else if (const auto* cs = std::get_if<CollectiveStartOp>(&ops[i])) {
        posted_collectives.insert(cs->id);
        if (!(cs->seconds >= 0.0) || !std::isfinite(cs->seconds)) {
          report.fail(where.str() + ": negative/NaN collective duration");
        }
      } else if (const auto* cw = std::get_if<CollectiveWaitOp>(&ops[i])) {
        if (posted_collectives.find(cw->id) == posted_collectives.end()) {
          report.fail(where.str() + ": wait for unposted collective " +
                      std::to_string(cw->id));
        }
      }
    }
    if (std::fabs(mem) > 1e-6) {
      std::ostringstream oss;
      oss << "rank " << r << ": activation deltas leak " << mem << " bytes";
      report.fail(oss.str());
    }
  }

  for (const auto& [key, count] : balance) {
    if (count != 0) {
      const auto& [src, dst, tag] = key;
      std::ostringstream oss;
      oss << "channel (" << src << " -> " << dst << ", tag " << tag << "): "
          << (count > 0 ? "unreceived sends: " : "unmatched recvs: ")
          << std::llabs(count);
      report.fail(oss.str());
    }
  }
  return report;
}

}  // namespace weipipe::sched
