#include "sched/validate.hpp"

#include <cmath>
#include <map>
#include <set>
#include <sstream>

namespace weipipe::sched {

namespace {

// Channel bookkeeping: send/recv balance plus a representative op on each
// side so diagnostics can name a concrete rank + op index.
struct ChannelState {
  std::int64_t balance = 0;  // sends minus recvs
  int send_rank = -1;
  std::int64_t send_op = -1;  // first send on the channel
  int recv_rank = -1;
  std::int64_t recv_op = -1;  // first recv on the channel
};

}  // namespace

ValidationReport validate(const Program& program) {
  ValidationReport report;
  const int p = program.num_ranks();
  if (p == 0) {
    report.fail("program has no ranks");
    return report;
  }

  std::map<std::tuple<int, int, std::int64_t>, ChannelState> channels;
  bool any_rank_starts_unblocked = false;

  for (int r = 0; r < p; ++r) {
    double mem = 0.0;
    std::set<std::int64_t> posted_collectives;
    const auto& ops = program.rank_ops[static_cast<std::size_t>(r)];
    if (ops.empty() || !std::holds_alternative<RecvOp>(ops.front())) {
      any_rank_starts_unblocked = true;
    }
    for (std::size_t i = 0; i < ops.size(); ++i) {
      std::ostringstream where;
      where << "rank " << r << " op " << i;
      if (const auto* c = std::get_if<ComputeOp>(&ops[i])) {
        if (!(c->seconds >= 0.0) || !std::isfinite(c->seconds)) {
          report.fail(where.str() + ": negative/NaN compute duration");
        }
        if (!std::isfinite(c->mem_delta)) {
          report.fail(where.str() + ": non-finite mem_delta");
        }
        mem += c->mem_delta;
      } else if (const auto* s = std::get_if<SendOp>(&ops[i])) {
        if (s->dst < 0 || s->dst >= p) {
          report.fail(where.str() + ": send to invalid rank " +
                      std::to_string(s->dst));
        } else if (s->dst == r) {
          report.fail(where.str() + ": self-send");
        } else {
          ChannelState& ch = channels[{r, s->dst, s->tag}];
          ++ch.balance;
          if (ch.send_op < 0) {
            ch.send_rank = r;
            ch.send_op = static_cast<std::int64_t>(i);
          }
        }
        if (!(s->bytes >= 0.0) || !std::isfinite(s->bytes)) {
          report.fail(where.str() + ": negative/NaN send bytes");
        }
      } else if (const auto* rc = std::get_if<RecvOp>(&ops[i])) {
        if (rc->src < 0 || rc->src >= p) {
          report.fail(where.str() + ": recv from invalid rank " +
                      std::to_string(rc->src));
        } else if (rc->src == r) {
          report.fail(where.str() + ": self-recv");
        } else {
          ChannelState& ch = channels[{rc->src, r, rc->tag}];
          --ch.balance;
          if (ch.recv_op < 0) {
            ch.recv_rank = r;
            ch.recv_op = static_cast<std::int64_t>(i);
          }
        }
      } else if (const auto* cs = std::get_if<CollectiveStartOp>(&ops[i])) {
        if (cs->id < 0) {
          report.fail(where.str() + ": negative collective id " +
                      std::to_string(cs->id));
        }
        if (!posted_collectives.insert(cs->id).second) {
          report.fail(where.str() + ": duplicate collective id " +
                      std::to_string(cs->id));
        }
        if (!(cs->seconds >= 0.0) || !std::isfinite(cs->seconds)) {
          report.fail(where.str() + ": negative/NaN collective duration");
        }
        if (!(cs->bytes >= 0.0) || !std::isfinite(cs->bytes)) {
          report.fail(where.str() + ": negative/NaN collective bytes");
        }
      } else if (const auto* cw = std::get_if<CollectiveWaitOp>(&ops[i])) {
        if (posted_collectives.find(cw->id) == posted_collectives.end()) {
          report.fail(where.str() + ": wait for unposted collective " +
                      std::to_string(cw->id));
        }
      }
    }
    if (std::fabs(mem) > 1e-6) {
      std::ostringstream oss;
      oss << "rank " << r << ": activation deltas leak " << mem << " bytes";
      report.fail(oss.str());
    }
  }

  // A program where every rank opens on a Recv can never produce a message:
  // guaranteed deadlock before the first op completes anywhere.
  if (!any_rank_starts_unblocked) {
    report.fail(
        "rank 0 op 0: Recv before any possible Send — every rank's first op "
        "is a Recv, so no rank can ever produce a message");
  }

  for (const auto& [key, ch] : channels) {
    if (ch.balance != 0) {
      const auto& [src, dst, tag] = key;
      std::ostringstream oss;
      oss << "channel (" << src << " -> " << dst << ", tag " << tag << "): ";
      if (ch.balance > 0) {
        oss << "unreceived sends: " << ch.balance << " (first send at rank "
            << ch.send_rank << " op " << ch.send_op << ")";
      } else {
        oss << "unmatched recvs: " << -ch.balance << " (first recv at rank "
            << ch.recv_rank << " op " << ch.recv_op << ")";
      }
      report.fail(oss.str());
    }
  }
  return report;
}

}  // namespace weipipe::sched
