// Mapping between the schedule IR's ComputeKind and the runtime tracer's
// SpanKind. Header-only so it adds no link edge: sched/ stays independent of
// obs/ at the library level, but any layer that already sees both headers
// (core, sim, trace, prof) can convert without re-inventing the table.
#pragma once

#include "obs/span.hpp"
#include "sched/program.hpp"

namespace weipipe::sched {

inline obs::SpanKind to_span_kind(ComputeKind kind) {
  switch (kind) {
    case ComputeKind::kForward: return obs::SpanKind::kForward;
    case ComputeKind::kBackward: return obs::SpanKind::kBackward;
    case ComputeKind::kBackwardActs: return obs::SpanKind::kBackwardActs;
    case ComputeKind::kBackwardWeights:
      return obs::SpanKind::kBackwardWeights;
    case ComputeKind::kOptimizer: return obs::SpanKind::kOptimizer;
    case ComputeKind::kLoss: return obs::SpanKind::kLoss;
  }
  return obs::SpanKind::kForward;
}

// Inverse map; returns false for span kinds with no ComputeKind counterpart
// (communication, kernel, and step spans).
inline bool to_compute_kind(obs::SpanKind kind, ComputeKind* out) {
  switch (kind) {
    case obs::SpanKind::kForward: *out = ComputeKind::kForward; return true;
    case obs::SpanKind::kBackward: *out = ComputeKind::kBackward; return true;
    case obs::SpanKind::kBackwardActs:
      *out = ComputeKind::kBackwardActs;
      return true;
    case obs::SpanKind::kBackwardWeights:
      *out = ComputeKind::kBackwardWeights;
      return true;
    case obs::SpanKind::kOptimizer:
      *out = ComputeKind::kOptimizer;
      return true;
    case obs::SpanKind::kLoss: *out = ComputeKind::kLoss; return true;
    default: return false;
  }
}

}  // namespace weipipe::sched
