#include "sched/builders.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/check.hpp"

namespace weipipe::sched {

namespace {

constexpr std::int64_t kTagActBase = 1'000'000;   // + microbatch
constexpr std::int64_t kTagGradBase = 2'000'000;  // + microbatch

void check_costs(const StrategyCosts& c, std::int64_t chunks) {
  WEIPIPE_CHECK_MSG(c.num_chunks() == chunks, "costs sized for "
                                                  << c.num_chunks()
                                                  << " chunks, need "
                                                  << chunks);
  WEIPIPE_CHECK(static_cast<std::int64_t>(c.bwd_seconds.size()) == chunks);
  WEIPIPE_CHECK(static_cast<std::int64_t>(c.chunk_weight_bytes.size()) ==
                chunks);
  WEIPIPE_CHECK(static_cast<std::int64_t>(c.act_mem_bytes.size()) == chunks);
}

}  // namespace

const char* to_string(ComputeKind kind) {
  switch (kind) {
    case ComputeKind::kForward: return "F";
    case ComputeKind::kBackward: return "B";
    case ComputeKind::kBackwardActs: return "Ba";
    case ComputeKind::kBackwardWeights: return "Bw";
    case ComputeKind::kOptimizer: return "U";
    case ComputeKind::kLoss: return "L";
  }
  return "?";
}

const char* to_string(MsgKind kind) {
  switch (kind) {
    case MsgKind::kOpaque: return "opaque";
    case MsgKind::kWeightF: return "F-weight";
    case MsgKind::kWeightB: return "B-weight";
    case MsgKind::kGradD: return "D-grad";
    case MsgKind::kActivation: return "activation";
    case MsgKind::kActGrad: return "act-grad";
  }
  return "?";
}

// ---- WeiPipe -------------------------------------------------------------------

Program build_weipipe(const WeiPipeSchedule& schedule,
                      const StrategyCosts& costs, bool prefetch) {
  const std::int64_t p = schedule.num_workers();
  check_costs(costs, p);
  Program prog;
  prog.name = to_string(schedule.mode());
  prog.rank_ops.resize(static_cast<std::size_t>(p));

  const std::int64_t turns = schedule.total_turns();
  for (std::int64_t w = 0; w < p; ++w) {
    auto& ops = prog.rank_ops[static_cast<std::size_t>(w)];
    const int next = static_cast<int>((w + 1) % p);
    const int prev = static_cast<int>((w + p - 1) % p);
    for (std::int64_t t = 0; t < turns; ++t) {
      const std::int64_t cf = schedule.f_chunk_at(w, t);
      const std::int64_t cb = schedule.b_chunk_at(w, t);
      const TurnActions acts = schedule.actions(w, t);
      // Weight chunks ship before compute (prefetch overlap: the paper's
      // batch_isend_irecv posts transfers, then computes). The ablated
      // variant ships after compute, blocking.
      if (prefetch) {
        ops.push_back(SendOp{next, costs.chunk_weight_bytes[
                                 static_cast<std::size_t>(cf)],
                             t * 4 + 0, /*blocking=*/false, MsgKind::kWeightF,
                             cf});
        ops.push_back(SendOp{next, costs.chunk_weight_bytes[
                                 static_cast<std::size_t>(cb)],
                             t * 4 + 1, /*blocking=*/false, MsgKind::kWeightB,
                             cb});
      }
      if (acts.fwd) {
        ops.push_back(ComputeOp{
            ComputeKind::kForward, acts.fwd->round * p + w, acts.fwd->chunk,
            costs.fwd_seconds[static_cast<std::size_t>(acts.fwd->chunk)],
            costs.act_mem_bytes[static_cast<std::size_t>(acts.fwd->chunk)]});
      }
      if (acts.bwd) {
        ops.push_back(ComputeOp{
            ComputeKind::kBackward, acts.bwd->round * p + w, acts.bwd->chunk,
            costs.bwd_seconds[static_cast<std::size_t>(acts.bwd->chunk)],
            -costs.act_mem_bytes[static_cast<std::size_t>(acts.bwd->chunk)]});
      }
      if (!prefetch) {
        ops.push_back(SendOp{next, costs.chunk_weight_bytes[
                                 static_cast<std::size_t>(cf)],
                             t * 4 + 0, /*blocking=*/true, MsgKind::kWeightF,
                             cf});
        ops.push_back(SendOp{next, costs.chunk_weight_bytes[
                                 static_cast<std::size_t>(cb)],
                             t * 4 + 1, /*blocking=*/true, MsgKind::kWeightB,
                             cb});
      }
      // D leaves only after this worker's contribution is in.
      ops.push_back(SendOp{next, costs.chunk_weight_bytes[
                               static_cast<std::size_t>(cb)],
                           t * 4 + 2, /*blocking=*/false, MsgKind::kGradD,
                           cb});
      ops.push_back(RecvOp{prev, t * 4 + 0, MsgKind::kWeightF});
      ops.push_back(RecvOp{prev, t * 4 + 1, MsgKind::kWeightB});
      ops.push_back(RecvOp{prev, t * 4 + 2, MsgKind::kGradD});
    }
    ops.push_back(ComputeOp{ComputeKind::kOptimizer, -1, -1,
                            costs.optimizer_seconds, 0.0});
  }
  return prog;
}

Program build_weipipe_zero_bubble(std::int64_t num_workers,
                                  std::int64_t rounds, WzbVariant variant,
                                  const StrategyCosts& costs) {
  const std::int64_t p = num_workers;
  check_costs(costs, p);
  Program prog;
  prog.name = variant == WzbVariant::kWzb1 ? "wzb1" : "wzb2";
  prog.rank_ops.resize(static_cast<std::size_t>(p));

  // Turn-level models (paper §4.2.3; conceptual there, conceptual here).
  if (variant == WzbVariant::kWzb1) {
    // Like Interleave, but the backward is split: B of chunk c in the slot
    // Interleave used, W of chunk c one turn later; three chunks on the wire
    // per turn (two W + one D).
    const std::int64_t local_turns = (rounds + 3) * p + 1;  // +fill, +W tail
    const auto md = [p](std::int64_t x) { return ((x % p) + p) % p; };
    for (std::int64_t w = 0; w < p; ++w) {
      auto& ops = prog.rank_ops[static_cast<std::size_t>(w)];
      const int next = static_cast<int>((w + 1) % p);
      const int prev = static_cast<int>((w + p - 1) % p);
      for (std::int64_t t = 0; t < local_turns; ++t) {
        const std::int64_t j = t - w;  // worker-local turn (rank stagger)
        // The two weight chunks prefetch ahead. Flow positions follow the
        // Interleave algebra (weipipe_schedule.hpp): at turn t worker w
        // holds F-chunk (t-w) mod P and B-chunk (w-t-1) mod P.
        const std::int64_t cf = md(t - w);
        const std::int64_t cb = md(w - t - 1);
        ops.push_back(SendOp{next,
                             costs.chunk_weight_bytes[static_cast<std::size_t>(
                                 cf)],
                             t * 4 + 0, /*blocking=*/false, MsgKind::kWeightF,
                             cf});
        ops.push_back(SendOp{next,
                             costs.chunk_weight_bytes[static_cast<std::size_t>(
                                 cb)],
                             t * 4 + 1, /*blocking=*/false, MsgKind::kWeightB,
                             cb});
        if (j >= 0 && j < rounds * p) {
          const std::int64_t c = j % p;
          ops.push_back(ComputeOp{
              ComputeKind::kForward, (j / p) * p + w, c,
              costs.fwd_seconds[static_cast<std::size_t>(c)],
              costs.act_mem_bytes[static_cast<std::size_t>(c)]});
        }
        const std::int64_t jb = j - p;
        if (jb >= 0 && jb < rounds * p) {
          const std::int64_t c = p - 1 - (jb % p);
          ops.push_back(ComputeOp{
              ComputeKind::kBackwardActs, (jb / p) * p + w, c,
              costs.bwd_acts_seconds[static_cast<std::size_t>(c)],
              -0.5 * costs.act_mem_bytes[static_cast<std::size_t>(c)]});
        }
        // The circulating D pair was completed by the previous turn's W
        // pass (paper Fig. 3 pairing); it leaves after the B pass and
        // overlaps this turn's W pass. The W pass of turn t-1 finished
        // chunk (w-t+1) mod P, so that is the D on the wire this turn.
        const std::int64_t cd = md(w - t + 1);
        ops.push_back(SendOp{next,
                             costs.chunk_weight_bytes[static_cast<std::size_t>(
                                 cd)],
                             t * 4 + 2, /*blocking=*/false, MsgKind::kGradD,
                             cd});
        const std::int64_t jw = j - p - 1;
        if (jw >= 0 && jw < rounds * p) {
          const std::int64_t c = p - 1 - (jw % p);
          ops.push_back(ComputeOp{
              ComputeKind::kBackwardWeights, (jw / p) * p + w, c,
              costs.bwd_weights_seconds[static_cast<std::size_t>(c)],
              -0.5 * costs.act_mem_bytes[static_cast<std::size_t>(c)]});
        }
        ops.push_back(RecvOp{prev, t * 4 + 0, MsgKind::kWeightF});
        ops.push_back(RecvOp{prev, t * 4 + 1, MsgKind::kWeightB});
        ops.push_back(RecvOp{prev, t * 4 + 2, MsgKind::kGradD});
      }
      ops.push_back(ComputeOp{ComputeKind::kOptimizer, -1, -1,
                              costs.optimizer_seconds, 0.0});
    }
    return prog;
  }

  // WZB2: per cycle, forward chunks 0..P-1, then B chunks P-1..0, then W
  // chunks 0..P-1 (forward order, paper Fig. 4); cycles chain with no drain
  // because the last worker updates and re-injects immediately. Two chunks on
  // the wire per one-chunk compute. Sends stay kOpaque: the paper analyzes
  // WZB2 only as a turn-level model (a single circulating flow serves F, B
  // and W passes), so there is no per-kind shard identity for the static
  // weight-version checker to track — the wire indices below pick message
  // sizes, not shard contents.
  const std::int64_t local_turns = 3 * p * rounds + p;  // + rank-stagger fill
  for (std::int64_t w = 0; w < p; ++w) {
    auto& ops = prog.rank_ops[static_cast<std::size_t>(w)];
    const int next = static_cast<int>((w + 1) % p);
    const int prev = static_cast<int>((w + p - 1) % p);
    for (std::int64_t t = 0; t < local_turns; ++t) {
      const std::int64_t j = t - w;  // worker-local turn (rank stagger)
      const std::int64_t k = j >= 0 ? j / (3 * p) : rounds;  // cycle (round)
      const std::int64_t m = j >= 0 ? j % (3 * p) : -1;
      ops.push_back(SendOp{next,
                           costs.chunk_weight_bytes[static_cast<std::size_t>(
                               t % p)],
                           t * 4 + 0});
      if (m >= 0 && m < p && k < rounds) {
        ops.push_back(ComputeOp{ComputeKind::kForward, k * p + w, m,
                                costs.fwd_seconds[static_cast<std::size_t>(m)],
                                costs.act_mem_bytes[static_cast<std::size_t>(m)]});
      } else if (m >= p && m < 2 * p && k < rounds) {
        const std::int64_t c = 2 * p - 1 - m;
        ops.push_back(ComputeOp{
            ComputeKind::kBackwardActs, k * p + w, c,
            costs.bwd_acts_seconds[static_cast<std::size_t>(c)],
            -0.5 * costs.act_mem_bytes[static_cast<std::size_t>(c)]});
      } else if (m >= 2 * p && k < rounds) {
        const std::int64_t c = m - 2 * p;
        ops.push_back(ComputeOp{
            ComputeKind::kBackwardWeights, k * p + w, c,
            costs.bwd_weights_seconds[static_cast<std::size_t>(c)],
            -0.5 * costs.act_mem_bytes[static_cast<std::size_t>(c)]});
      }
      ops.push_back(SendOp{next,
                           costs.chunk_weight_bytes[static_cast<std::size_t>(
                               (t + 1) % p)],
                           t * 4 + 1});
      for (int f = 0; f < 2; ++f) {
        ops.push_back(RecvOp{prev, t * 4 + f});
      }
    }
    ops.push_back(ComputeOp{ComputeKind::kOptimizer, -1, -1,
                            costs.optimizer_seconds, 0.0});
  }
  return prog;
}

// ---- Activation-passing pipelines ------------------------------------------------

namespace {

void emit_pipeline_forward(Program& prog, const StrategyCosts& costs,
                           std::int64_t p, std::int64_t s, std::int64_t j) {
  auto& ops = prog.rank_ops[static_cast<std::size_t>(s)];
  if (s > 0) {
    ops.push_back(RecvOp{static_cast<int>(s - 1), kTagActBase + j,
                         MsgKind::kActivation});
  }
  ops.push_back(ComputeOp{ComputeKind::kForward, j, s,
                          costs.fwd_seconds[static_cast<std::size_t>(s)],
                          costs.act_mem_bytes[static_cast<std::size_t>(s)]});
  if (s < p - 1) {
    ops.push_back(SendOp{static_cast<int>(s + 1), costs.act_bytes,
                         kTagActBase + j, /*blocking=*/true,
                         MsgKind::kActivation, s});
  }
}

void emit_pipeline_backward(Program& prog, const StrategyCosts& costs,
                            std::int64_t p, std::int64_t s, std::int64_t j) {
  auto& ops = prog.rank_ops[static_cast<std::size_t>(s)];
  if (s < p - 1) {
    ops.push_back(RecvOp{static_cast<int>(s + 1), kTagGradBase + j,
                         MsgKind::kActGrad});
  }
  ops.push_back(ComputeOp{ComputeKind::kBackward, j, s,
                          costs.bwd_seconds[static_cast<std::size_t>(s)],
                          -costs.act_mem_bytes[static_cast<std::size_t>(s)]});
  if (s > 0) {
    ops.push_back(SendOp{static_cast<int>(s - 1), costs.act_grad_bytes,
                         kTagGradBase + j, /*blocking=*/true,
                         MsgKind::kActGrad, s});
  }
}

void append_optimizer(Program& prog, const StrategyCosts& costs) {
  for (auto& ops : prog.rank_ops) {
    ops.push_back(ComputeOp{ComputeKind::kOptimizer, -1, -1,
                            costs.optimizer_seconds, 0.0});
  }
}

}  // namespace

Program build_gpipe(std::int64_t num_stages, std::int64_t num_microbatches,
                    const StrategyCosts& costs) {
  check_costs(costs, num_stages);
  Program prog;
  prog.name = "gpipe";
  prog.rank_ops.resize(static_cast<std::size_t>(num_stages));
  for (std::int64_t s = 0; s < num_stages; ++s) {
    for (std::int64_t j = 0; j < num_microbatches; ++j) {
      emit_pipeline_forward(prog, costs, num_stages, s, j);
    }
    for (std::int64_t j = 0; j < num_microbatches; ++j) {
      emit_pipeline_backward(prog, costs, num_stages, s, j);
    }
  }
  append_optimizer(prog, costs);
  return prog;
}

Program build_1f1b(std::int64_t num_stages, std::int64_t num_microbatches,
                   const StrategyCosts& costs) {
  check_costs(costs, num_stages);
  Program prog;
  prog.name = "1f1b";
  prog.rank_ops.resize(static_cast<std::size_t>(num_stages));
  for (std::int64_t s = 0; s < num_stages; ++s) {
    const std::int64_t warmup =
        std::min(num_stages - 1 - s, num_microbatches);
    std::int64_t f = 0;
    std::int64_t b = 0;
    for (std::int64_t i = 0; i < warmup; ++i) {
      emit_pipeline_forward(prog, costs, num_stages, s, f++);
    }
    while (f < num_microbatches) {
      emit_pipeline_forward(prog, costs, num_stages, s, f++);
      emit_pipeline_backward(prog, costs, num_stages, s, b++);
    }
    while (b < num_microbatches) {
      emit_pipeline_backward(prog, costs, num_stages, s, b++);
    }
  }
  append_optimizer(prog, costs);
  return prog;
}

// ---- Zero-bubble pipelines ---------------------------------------------------------

namespace {

// Greedy list scheduler: decides each stage's task order using the cost
// model, then the emitted static program is re-timed by the engine. W passes
// have no successors, so they are used purely as bubble filler (ZB1) or
// deferred mass (ZB2).
struct ZbPlan {
  // Per-stage ordered task list: (kind, microbatch).
  std::vector<std::vector<std::pair<ComputeKind, std::int64_t>>> order;
};

ZbPlan plan_zero_bubble(std::int64_t p, std::int64_t n, ZbVariant variant,
                        const StrategyCosts& costs) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // f_done[s][j], b_done[s][j] completion times; W tracked per stage.
  std::vector<std::vector<double>> f_done(
      static_cast<std::size_t>(p),
      std::vector<double>(static_cast<std::size_t>(n), kInf));
  std::vector<std::vector<double>> b_done = f_done;
  struct StageState {
    double clock = 0.0;
    std::int64_t next_f = 0;
    std::int64_t next_b = 0;
    std::int64_t done_w = 0;  // W passes completed (releases activation hold)
    std::deque<std::int64_t> pending_w;
  };
  std::vector<StageState> st(static_cast<std::size_t>(p));
  ZbPlan plan;
  plan.order.resize(static_cast<std::size_t>(p));

  const std::int64_t tasks_total = 3 * p * n;
  std::int64_t scheduled = 0;
  while (scheduled < tasks_total) {
    // Pick the (stage, task) whose start time is earliest; ties prefer
    // B > F > W (B releases upstream stages, W is pure filler).
    int best_s = -1;
    ComputeKind best_kind = ComputeKind::kForward;
    double best_start = kInf;
    auto priority = [](ComputeKind k) {
      return k == ComputeKind::kBackwardActs ? 0
             : k == ComputeKind::kForward    ? 1
                                             : 2;
    };
    auto better = [&](double start, ComputeKind kind) {
      if (start != best_start) {
        return start < best_start;
      }
      return priority(kind) < priority(best_kind);
    };
    for (std::int64_t s = 0; s < p; ++s) {
      StageState& ss = st[static_cast<std::size_t>(s)];
      // Candidate F.
      if (ss.next_f < n) {
        // Memory cap: microbatches whose activations are still (partially)
        // held — forward started, W pass not yet done. ZB1 keeps this at the
        // 1F1B level; ZB2 doubles it (paper: ~2x activation memory).
        const std::int64_t cap =
            variant == ZbVariant::kZb1 ? p - s : 2 * (p - s);
        if (ss.next_f - ss.done_w < std::max<std::int64_t>(cap, 1)) {
          const double dep =
              s == 0 ? 0.0
                     : f_done[static_cast<std::size_t>(s - 1)]
                             [static_cast<std::size_t>(ss.next_f)];
          const double start = std::max(ss.clock, dep);
          if (better(start, ComputeKind::kForward)) {
            best_start = start;
            best_s = static_cast<int>(s);
            best_kind = ComputeKind::kForward;
          }
        }
      }
      // Candidate B.
      if (ss.next_b < ss.next_f) {
        const double own =
            f_done[static_cast<std::size_t>(s)]
                  [static_cast<std::size_t>(ss.next_b)];
        const double dep =
            s == p - 1 ? own
                       : std::max(own, b_done[static_cast<std::size_t>(s + 1)]
                                             [static_cast<std::size_t>(
                                                 ss.next_b)]);
        const double start = std::max(ss.clock, dep);
        if (better(start, ComputeKind::kBackwardActs)) {
          best_start = start;
          best_s = static_cast<int>(s);
          best_kind = ComputeKind::kBackwardActs;
        }
      }
      // Candidate W: fills any gap — it can start at the stage clock.
      if (!ss.pending_w.empty() &&
          better(ss.clock, ComputeKind::kBackwardWeights)) {
        best_start = ss.clock;
        best_s = static_cast<int>(s);
        best_kind = ComputeKind::kBackwardWeights;
      }
    }
    WEIPIPE_CHECK_MSG(best_s >= 0, "zero-bubble planner stalled");
    StageState& ss = st[static_cast<std::size_t>(best_s)];
    const auto su = static_cast<std::size_t>(best_s);
    if (best_kind == ComputeKind::kForward) {
      const std::int64_t j = ss.next_f++;
      const double t0 = best_start;
      ss.clock = t0 + costs.fwd_seconds[su];
      f_done[su][static_cast<std::size_t>(j)] = ss.clock;
      plan.order[su].push_back({ComputeKind::kForward, j});
    } else if (best_kind == ComputeKind::kBackwardActs) {
      const std::int64_t j = ss.next_b++;
      ss.clock = best_start + costs.bwd_acts_seconds[su];
      b_done[su][static_cast<std::size_t>(j)] = ss.clock;
      ss.pending_w.push_back(j);
      plan.order[su].push_back({ComputeKind::kBackwardActs, j});
    } else {
      const std::int64_t j = ss.pending_w.front();
      ss.pending_w.pop_front();
      ss.clock = best_start + costs.bwd_weights_seconds[su];
      ++ss.done_w;
      plan.order[su].push_back({ComputeKind::kBackwardWeights, j});
    }
    ++scheduled;
  }
  return plan;
}

}  // namespace

Program build_zero_bubble(std::int64_t num_stages,
                          std::int64_t num_microbatches, ZbVariant variant,
                          const StrategyCosts& costs) {
  check_costs(costs, num_stages);
  const std::int64_t p = num_stages;
  const ZbPlan plan =
      plan_zero_bubble(p, num_microbatches, variant, costs);
  Program prog;
  prog.name = variant == ZbVariant::kZb1 ? "zb1" : "zb2";
  prog.rank_ops.resize(static_cast<std::size_t>(p));
  for (std::int64_t s = 0; s < p; ++s) {
    auto& ops = prog.rank_ops[static_cast<std::size_t>(s)];
    for (const auto& [kind, j] : plan.order[static_cast<std::size_t>(s)]) {
      switch (kind) {
        case ComputeKind::kForward:
          if (s > 0) {
            ops.push_back(RecvOp{static_cast<int>(s - 1), kTagActBase + j,
                                 MsgKind::kActivation});
          }
          ops.push_back(
              ComputeOp{ComputeKind::kForward, j, s,
                        costs.fwd_seconds[static_cast<std::size_t>(s)],
                        costs.act_mem_bytes[static_cast<std::size_t>(s)]});
          if (s < p - 1) {
            ops.push_back(SendOp{static_cast<int>(s + 1), costs.act_bytes,
                                 kTagActBase + j, /*blocking=*/true,
                                 MsgKind::kActivation, s});
          }
          break;
        case ComputeKind::kBackwardActs:
          if (s < p - 1) {
            ops.push_back(RecvOp{static_cast<int>(s + 1), kTagGradBase + j,
                                 MsgKind::kActGrad});
          }
          ops.push_back(ComputeOp{
              ComputeKind::kBackwardActs, j, s,
              costs.bwd_acts_seconds[static_cast<std::size_t>(s)],
              -0.5 * costs.act_mem_bytes[static_cast<std::size_t>(s)]});
          if (s > 0) {
            ops.push_back(SendOp{static_cast<int>(s - 1),
                                 costs.act_grad_bytes, kTagGradBase + j,
                                 /*blocking=*/true, MsgKind::kActGrad, s});
          }
          break;
        case ComputeKind::kBackwardWeights:
          ops.push_back(ComputeOp{
              ComputeKind::kBackwardWeights, j, s,
              costs.bwd_weights_seconds[static_cast<std::size_t>(s)],
              -0.5 * costs.act_mem_bytes[static_cast<std::size_t>(s)]});
          break;
        default:
          WEIPIPE_CHECK(false);
      }
    }
  }
  append_optimizer(prog, costs);
  return prog;
}

// ---- FSDP ---------------------------------------------------------------------------

Program build_fsdp(std::int64_t num_ranks, std::int64_t local_rounds,
                   const StrategyCosts& costs,
                   const FsdpCollectiveCosts& coll, bool overlap_prefetch) {
  const std::int64_t p = num_ranks;
  check_costs(costs, p);
  WEIPIPE_CHECK(static_cast<std::int64_t>(coll.all_gather_seconds.size()) ==
                p);
  Program prog;
  prog.name = "fsdp";
  prog.rank_ops.resize(static_cast<std::size_t>(p));
  for (std::int64_t r = 0; r < p; ++r) {
    auto& ops = prog.rank_ops[static_cast<std::size_t>(r)];
    std::int64_t coll_id = 0;
    auto gather = [&](std::int64_t c) {
      ops.push_back(CollectiveStartOp{
          coll_id, coll.all_gather_seconds[static_cast<std::size_t>(c)],
          coll.all_gather_bytes[static_cast<std::size_t>(c)]});
      return coll_id++;
    };
    for (std::int64_t k = 0; k < local_rounds; ++k) {
      // Forward: with prefetch, chunk c+1's gather is posted while chunk c
      // computes; otherwise each gather blocks (per-layer ZeRO-3 gathers).
      std::vector<std::int64_t> ids(static_cast<std::size_t>(p));
      if (overlap_prefetch) {
        ids[0] = gather(0);
      }
      for (std::int64_t c = 0; c < p; ++c) {
        if (overlap_prefetch) {
          if (c + 1 < p) {
            ids[static_cast<std::size_t>(c + 1)] = gather(c + 1);
          }
        } else {
          ids[static_cast<std::size_t>(c)] = gather(c);
        }
        ops.push_back(CollectiveWaitOp{ids[static_cast<std::size_t>(c)]});
        ops.push_back(
            ComputeOp{ComputeKind::kForward, k * p + r, c,
                      costs.fwd_seconds[static_cast<std::size_t>(c)],
                      costs.act_mem_bytes[static_cast<std::size_t>(c)]});
      }
      // Backward: ZeRO-3 gathers every chunk a second time, reverse order.
      if (overlap_prefetch) {
        ids[static_cast<std::size_t>(p - 1)] = gather(p - 1);
      }
      for (std::int64_t c = p - 1; c >= 0; --c) {
        if (overlap_prefetch) {
          if (c - 1 >= 0) {
            ids[static_cast<std::size_t>(c - 1)] = gather(c - 1);
          }
        } else {
          ids[static_cast<std::size_t>(c)] = gather(c);
        }
        ops.push_back(CollectiveWaitOp{ids[static_cast<std::size_t>(c)]});
        ops.push_back(
            ComputeOp{ComputeKind::kBackward, k * p + r, c,
                      costs.bwd_seconds[static_cast<std::size_t>(c)],
                      -costs.act_mem_bytes[static_cast<std::size_t>(c)]});
      }
    }
    // Gradient reduce-scatter per chunk, then the owner's update.
    for (std::int64_t c = 0; c < p; ++c) {
      ops.push_back(CollectiveStartOp{
          coll_id, coll.reduce_scatter_seconds[static_cast<std::size_t>(c)],
          coll.reduce_scatter_bytes[static_cast<std::size_t>(c)]});
      ops.push_back(CollectiveWaitOp{coll_id});
      ++coll_id;
    }
    ops.push_back(ComputeOp{ComputeKind::kOptimizer, -1, -1,
                            costs.optimizer_seconds, 0.0});
  }
  return prog;
}

}  // namespace weipipe::sched
