// Strategy-neutral schedule IR.
//
// A Program is one ordered op list per rank. The discrete-event engine
// (sim/engine.hpp) executes it against a cost model + topology; the trace
// module renders it as a timeline. Builders in sched/builders.hpp emit
// programs for every strategy in the paper (WeiPipe-Naive/-Interleave,
// WZB1/WZB2, GPipe, 1F1B, ZB1, ZB2, FSDP).
//
// Semantics:
//  * ops on a rank execute in list order;
//  * Compute occupies the rank's compute resource for its duration;
//  * Send is asynchronous (DMA): the message is handed to the (src->dst) link
//    the moment the op executes; the op itself costs no compute time;
//  * Recv blocks until the matching message (FIFO per (src,dst,tag)) has
//    fully arrived through the link;
//  * CollectiveStart posts an asynchronous bulk transfer of a given duration
//    on the rank's communication channel; CollectiveWait joins it. This
//    models NCCL collectives that overlap compute (FSDP prefetch).
//  * mem_delta tracks activation bytes acquired/released by compute ops; the
//    engine reports the running peak per rank.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace weipipe::sched {

enum class ComputeKind {
  kForward,
  kBackward,      // full backward (B+W fused), as in 1F1B/GPipe/WeiPipe
  kBackwardActs,  // B pass: gradients w.r.t. activations (zero-bubble split)
  kBackwardWeights,  // W pass: gradients w.r.t. weights
  kOptimizer,
  kLoss,
};

const char* to_string(ComputeKind kind);

// What a point-to-point message carries. Builders annotate their sends (and
// the expectation on their recvs) so static analysis (analysis/analysis.hpp)
// can track weight-shard circulation without executing the program. kOpaque
// marks payloads the analyzer should not interpret; the engine ignores the
// field entirely — it only affects static checking and trace rendering.
enum class MsgKind {
  kOpaque,      // unannotated: matching/deadlock analysis only
  kWeightF,     // F-flow weight chunk (consumed by forward computes)
  kWeightB,     // B-flow weight chunk (consumed by backward computes)
  kGradD,       // circulating weight-gradient chunk D
  kActivation,  // stage-boundary activations
  kActGrad,     // stage-boundary activation gradients
};

const char* to_string(MsgKind kind);

struct ComputeOp {
  ComputeKind kind = ComputeKind::kForward;
  std::int64_t microbatch = -1;
  std::int64_t chunk = -1;
  double seconds = 0.0;
  // Bytes of activation/gradient state acquired (+) or released (-).
  double mem_delta = 0.0;
};

struct SendOp {
  int dst = 0;
  double bytes = 0.0;
  std::int64_t tag = 0;
  // Blocking sends hold the sender until the transfer drains. Activation-
  // passing pipelines behave this way in practice (Megatron's stage-boundary
  // exchanges sit on the same-microbatch critical path); WeiPipe's weight
  // sends are prefetchable a full turn ahead and stay asynchronous.
  bool blocking = false;
  // Payload annotation for static analysis: what rides the wire, and which
  // chunk it is (for weight/gradient kinds; -1 = not chunk-identified).
  MsgKind kind = MsgKind::kOpaque;
  std::int64_t chunk = -1;
};

struct RecvOp {
  int src = 0;
  std::int64_t tag = 0;
  // What the receiver will interpret the payload as. A tag bug that makes a
  // B-flow weight land in the F buffer is invisible at runtime (the bytes
  // fit) but is exactly what the static weight-version check catches by
  // comparing this against the matched send's annotation.
  MsgKind kind = MsgKind::kOpaque;
};

// Asynchronous bulk transfer on the rank's comm channel (collective share).
struct CollectiveStartOp {
  std::int64_t id = 0;  // joined by CollectiveWaitOp with the same id
  double seconds = 0.0;
  double bytes = 0.0;  // accounted to the rank's collective traffic
};

struct CollectiveWaitOp {
  std::int64_t id = 0;
};

using Op = std::variant<ComputeOp, SendOp, RecvOp, CollectiveStartOp,
                        CollectiveWaitOp>;

struct Program {
  std::string name;
  std::vector<std::vector<Op>> rank_ops;  // [rank] -> ordered ops

  int num_ranks() const { return static_cast<int>(rank_ops.size()); }
  std::size_t total_ops() const {
    std::size_t n = 0;
    for (const auto& v : rank_ops) {
      n += v.size();
    }
    return n;
  }
};

}  // namespace weipipe::sched
