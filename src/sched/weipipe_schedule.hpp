// The WeiPipe turn/flow algebra (paper §4.2.1–4.2.2).
//
// Workers sit on a ring; two weight flows circulate one hop (p -> p+1) per
// *turn*:
//   F flow : weight chunks consumed by forward computes,
//   B flow : (weight chunk, gradient chunk D) pairs consumed by backward
//            computes; each backward adds its partial dW into the D it holds.
//
// Invariants (derived in DESIGN.md §5.1 and verified by tests):
//   * at the start of turn t, worker p holds F-chunk (t - p) mod P and
//     B-pair  (p - t - 1) mod P;
//   * worker p's forward of round k covers turns [kP + p, kP + p + P - 1],
//     consuming chunks 0..P-1 in order — exactly the chunks the F flow
//     delivers;
//   * Interleave: worker p's backward of round k covers turns
//     [(k+1)P + p, (k+2)P + p - 1], consuming chunks P-1..0 — exactly what
//     the B flow delivers. Forward of round k+1 shares these turns: the
//     one-forward-plus-one-backward steady state of Figure 2.
//   * Naive: rounds do not overlap; each round takes 2P turns (P forward-only
//     turns then P backward-only turns), reproducing Figure 1's idle flows.
//   * D_c accumulates its N = R*P contributions in global microbatch order
//     (worker 0's mb first each revolution), which is why fp32 runs match the
//     sequential trainer bit-for-bit.
//
// Worker p processes microbatches {k*P + p : k in [0, R)} — activations never
// leave a worker; only weights and weight-gradients ride the ring.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace weipipe {

enum class WeiPipeMode {
  kNaive,       // Figure 1: no fwd/bwd overlap, ~2x turns
  kInterleave,  // Figure 2: one-forward-one-backward steady state
};

const char* to_string(WeiPipeMode mode);

// One compute op inside a turn.
struct ChunkOp {
  std::int64_t round = 0;  // microbatch = round * P + worker
  std::int64_t chunk = 0;  // chunk index in [0, P)
};

// What a worker does during one turn (flow movement is implicit: every
// worker forwards both flows every turn it participates in).
struct TurnActions {
  std::optional<ChunkOp> fwd;
  std::optional<ChunkOp> bwd;
};

class WeiPipeSchedule {
 public:
  // P workers == P chunks; R rounds (N = R*P microbatches per iteration).
  WeiPipeSchedule(std::int64_t num_workers, std::int64_t rounds,
                  WeiPipeMode mode);

  std::int64_t num_workers() const { return p_; }
  std::int64_t rounds() const { return r_; }
  std::int64_t num_microbatches() const { return p_ * r_; }
  WeiPipeMode mode() const { return mode_; }

  // Total turns in one iteration (max over workers of last active turn + 1).
  std::int64_t total_turns() const;

  // Flow positions at the start of turn t.
  std::int64_t f_chunk_at(std::int64_t worker, std::int64_t turn) const;
  std::int64_t b_chunk_at(std::int64_t worker, std::int64_t turn) const;

  // Compute ops for worker at turn (either/both may be absent).
  TurnActions actions(std::int64_t worker, std::int64_t turn) const;

  // Where chunks sit at the boundaries of an iteration:
  // F-flow holder of chunk c at turn 0.
  std::int64_t f_start_holder(std::int64_t chunk) const;
  // B-flow holder of chunk c at turn 0.
  std::int64_t b_start_holder(std::int64_t chunk) const;
  // Owner of chunk c: the worker holding its B-pair after the final turn.
  // The owner keeps the fp32 master weights + Adam state for c, applies the
  // update, and re-injects the fresh chunk for the next iteration.
  std::int64_t owner(std::int64_t chunk) const;

  // Last turn in which `worker` needs to receive flows (it stops forwarding
  // afterwards). Workers participate in turns [0, last_active_turn].
  std::int64_t last_active_turn(std::int64_t worker) const;

  // Paper §4.2.2 bookkeeping: per-turn wire chunks in the steady state
  // (2 weight chunks + 1 gradient chunk for Interleave; Naive moves the same
  // 3 but computes with at most 1).
  static constexpr int kChunksOnWirePerTurn = 3;

 private:
  std::int64_t p_;
  std::int64_t r_;
  WeiPipeMode mode_;
};

}  // namespace weipipe
