// Static validation of schedule programs: catches malformed strategies
// before the engine runs them (and gives better diagnostics than a deadlock).
#pragma once

#include <string>
#include <vector>

#include "sched/program.hpp"

namespace weipipe::sched {

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> problems;

  void fail(std::string problem) {
    ok = false;
    problems.push_back(std::move(problem));
  }
};

// Checks, per program:
//  * every Recv has a matching Send on the same (src, dst, tag) — counts
//    must balance exactly (unreceived messages usually mean a tag bug);
//  * Send destinations / Recv sources are valid ranks, never self;
//  * compute durations and byte counts are non-negative and finite;
//  * every CollectiveWait refers to a previously posted CollectiveStart on
//    the same rank;
//  * per-rank activation deltas sum to ~zero (leaked contexts otherwise).
ValidationReport validate(const Program& program);

}  // namespace weipipe::sched
