// Static validation of schedule programs: catches malformed strategies
// before the engine runs them (and gives better diagnostics than a deadlock).
#pragma once

#include <string>
#include <vector>

#include "sched/program.hpp"

namespace weipipe::sched {

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> problems;

  void fail(std::string problem) {
    ok = false;
    problems.push_back(std::move(problem));
  }
};

// Checks, per program:
//  * every Recv has a matching Send on the same (src, dst, tag) — counts
//    must balance exactly (unreceived messages usually mean a tag bug);
//  * Send destinations / Recv sources are valid ranks, never self;
//  * compute durations and byte counts are non-negative and finite (sends
//    and collectives both);
//  * every CollectiveWait refers to a previously posted CollectiveStart on
//    the same rank; collective ids are non-negative and unique per rank;
//  * not every rank's first op is a Recv (nobody could ever send);
//  * per-rank activation deltas sum to ~zero (leaked contexts otherwise).
// Diagnostics name the offending rank + op index.
//
// This is the cheap per-op layer. analysis::analyze() (analysis/analysis.hpp)
// delegates to it and adds the deep whole-program checks: deadlock cycles
// with witness traces, weight-version consistency, compute coverage, and
// static memory bounds.
ValidationReport validate(const Program& program);

}  // namespace weipipe::sched
