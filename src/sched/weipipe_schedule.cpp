#include "sched/weipipe_schedule.hpp"

#include "common/check.hpp"

namespace weipipe {

namespace {
std::int64_t pmod(std::int64_t a, std::int64_t m) {
  const std::int64_t r = a % m;
  return r < 0 ? r + m : r;
}
}  // namespace

const char* to_string(WeiPipeMode mode) {
  switch (mode) {
    case WeiPipeMode::kNaive: return "weipipe-naive";
    case WeiPipeMode::kInterleave: return "weipipe-interleave";
  }
  return "?";
}

WeiPipeSchedule::WeiPipeSchedule(std::int64_t num_workers, std::int64_t rounds,
                                 WeiPipeMode mode)
    : p_(num_workers), r_(rounds), mode_(mode) {
  WEIPIPE_CHECK_MSG(p_ >= 1, "need at least one worker");
  WEIPIPE_CHECK_MSG(r_ >= 1, "need at least one round");
}

std::int64_t WeiPipeSchedule::total_turns() const {
  // Interleave: worker p's last backward turn is (R+1)P + p - 1; max p=P-1.
  // Naive: worker p's last backward turn is 2RP + p - 1; max p=P-1.
  return mode_ == WeiPipeMode::kInterleave ? (r_ + 2) * p_ - 1
                                           : 2 * r_ * p_ + p_ - 1;
}

std::int64_t WeiPipeSchedule::f_chunk_at(std::int64_t worker,
                                         std::int64_t turn) const {
  return pmod(turn - worker, p_);
}

std::int64_t WeiPipeSchedule::b_chunk_at(std::int64_t worker,
                                         std::int64_t turn) const {
  return pmod(worker - turn - 1, p_);
}

TurnActions WeiPipeSchedule::actions(std::int64_t worker,
                                     std::int64_t turn) const {
  TurnActions out;
  const std::int64_t j = turn - worker;  // worker-local turn index
  if (j < 0) {
    return out;
  }
  if (mode_ == WeiPipeMode::kInterleave) {
    // Forward of round k occupies local turns [kP, kP + P - 1].
    if (j < r_ * p_) {
      out.fwd = ChunkOp{j / p_, j % p_};
    }
    // Backward of round k occupies local turns [(k+1)P, (k+2)P - 1],
    // consuming chunks P-1..0 — interleaved with forward of round k+1.
    const std::int64_t jb = j - p_;
    if (jb >= 0 && jb < r_ * p_) {
      out.bwd = ChunkOp{jb / p_, p_ - 1 - (jb % p_)};
    }
  } else {
    // Naive: round k = local turns [2kP, 2kP + 2P - 1]; first P turns forward
    // chunks 0..P-1, next P turns backward chunks P-1..0. No overlap.
    const std::int64_t k = j / (2 * p_);
    const std::int64_t m = j % (2 * p_);
    if (k < r_) {
      if (m < p_) {
        out.fwd = ChunkOp{k, m};
      } else {
        out.bwd = ChunkOp{k, 2 * p_ - 1 - m};
      }
    }
  }
  return out;
}

std::int64_t WeiPipeSchedule::f_start_holder(std::int64_t chunk) const {
  return pmod(-chunk, p_);
}

std::int64_t WeiPipeSchedule::b_start_holder(std::int64_t chunk) const {
  return pmod(chunk + 1, p_);
}

std::int64_t WeiPipeSchedule::owner(std::int64_t chunk) const {
  // Holder of the B pair at the start of "turn T": flows advance once per
  // turn for all T turns, so solve (h - T - 1) mod P == chunk.
  return pmod(chunk + total_turns() + 1, p_);
}

std::int64_t WeiPipeSchedule::last_active_turn(std::int64_t worker) const {
  (void)worker;
  // With the uniform convention (every worker forwards flows every turn),
  // all workers are active for the full iteration.
  return total_turns() - 1;
}

}  // namespace weipipe
