// Byte-stream framing shared by the shm and tcp transports
// (docs/TRANSPORT.md "wire format").
//
// A WireFrame serializes as a fixed 48-byte little-endian header followed by
// the raw payload bytes. The header carries exactly the fields the fabric's
// reliability layer needs on the far side — tag, seq, flow id, delivery
// deadline, the nodedup reorder marker — and the payload length.
// `ledger_bytes` never crosses: remote payloads rematerialize as tracked
// buffers, which charge the receiving rank's ledger bucket on allocation.
//
// FrameReader is a pull-style incremental decoder for a nonblocking byte
// source: the owner repeatedly asks where to put the next bytes (dest()),
// reads into it, and commits the count; whenever a frame completes, commit()
// hands it back. Payload bytes land directly in their final Buffer — one
// copy off the wire, no staging.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "comm/transport.hpp"
#include "common/check.hpp"

namespace weipipe::comm {

inline constexpr std::uint32_t kFrameMagic = 0x57504631;  // "WPF1"
inline constexpr std::uint32_t kFrameFlagReordered = 1u << 0;
inline constexpr std::size_t kFrameHeaderBytes = 48;

inline void encode_frame_header(const WireFrame& frame,
                                std::uint8_t out[kFrameHeaderBytes]) {
  const std::uint32_t magic = kFrameMagic;
  const std::uint32_t flags = frame.reordered ? kFrameFlagReordered : 0;
  const std::uint64_t payload_bytes = frame.payload.size();
  std::memcpy(out + 0, &magic, 4);
  std::memcpy(out + 4, &flags, 4);
  std::memcpy(out + 8, &frame.tag, 8);
  std::memcpy(out + 16, &frame.seq, 8);
  std::memcpy(out + 24, &frame.flow_id, 8);
  std::memcpy(out + 32, &frame.deliver_at_ns, 8);
  std::memcpy(out + 40, &payload_bytes, 8);
}

// Decodes a header into `frame` (payload untouched); returns the payload
// length. Throws weipipe::Error on a bad magic — a desynced stream is a
// protocol bug, not a recoverable condition.
inline std::uint64_t decode_frame_header(
    const std::uint8_t in[kFrameHeaderBytes], WireFrame& frame) {
  std::uint32_t magic = 0;
  std::uint32_t flags = 0;
  std::uint64_t payload_bytes = 0;
  std::memcpy(&magic, in + 0, 4);
  std::memcpy(&flags, in + 4, 4);
  std::memcpy(&frame.tag, in + 8, 8);
  std::memcpy(&frame.seq, in + 16, 8);
  std::memcpy(&frame.flow_id, in + 24, 8);
  std::memcpy(&frame.deliver_at_ns, in + 32, 8);
  std::memcpy(&payload_bytes, in + 40, 8);
  WEIPIPE_CHECK_MSG(magic == kFrameMagic,
                    "wire desync: bad frame magic 0x" << std::hex << magic);
  frame.reordered = (flags & kFrameFlagReordered) != 0;
  frame.ledger_bytes = 0;  // never crosses a process boundary
  return payload_bytes;
}

class FrameReader {
 public:
  // Where the next incoming bytes belong and how many fit there.
  std::span<std::uint8_t> dest() {
    if (in_header_) {
      return {header_ + filled_, kFrameHeaderBytes - filled_};
    }
    return {frame_.payload.mutable_data() + filled_, payload_bytes_ - filled_};
  }

  // Accounts `n` bytes just read into dest(). Returns true and moves the
  // completed frame into `out` when one finishes; false = need more bytes.
  bool commit(std::size_t n, WireFrame& out) {
    filled_ += n;
    if (in_header_) {
      if (filled_ < kFrameHeaderBytes) {
        return false;
      }
      payload_bytes_ = decode_frame_header(header_, frame_);
      filled_ = 0;
      in_header_ = false;
      if (payload_bytes_ > 0) {
        // Tracked storage: the receiving rank's thread is the allocator, so
        // the ledger charge lands in the receiver's bucket — the remote
        // analogue of inproc mailbox residency.
        frame_.payload = Buffer::allocate(payload_bytes_);
        return false;
      }
      frame_.payload = Buffer();
    }
    if (filled_ < payload_bytes_) {
      return false;
    }
    out = std::move(frame_);
    frame_ = WireFrame{};
    filled_ = 0;
    payload_bytes_ = 0;
    in_header_ = true;
    return true;
  }

  bool mid_frame() const { return !in_header_ || filled_ > 0; }

 private:
  bool in_header_ = true;
  std::size_t filled_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint8_t header_[kFrameHeaderBytes] = {};
  WireFrame frame_;
};

}  // namespace weipipe::comm
