// TCP socket transport: nonblocking sockets, a per-peer pending queue, and
// sendmsg scatter-gather so a refcounted comm::Buffer ships header+payload
// in one syscall without copying (docs/TRANSPORT.md).
//
// Topology: rank r listens on base_port + r (or an ephemeral port in
// all-local mode, where the port table never leaves the process) and every
// ordered pair (src,dst) gets its own connection, established src -> dst at
// construction by a single-threaded rendezvous event loop:
//
//   connect --> hello {magic, generation, src, dst} -->
//           <-- ack {magic, generation, epoch_ns} <--
//
// The generation echo is what makes sequential fabric constructions safe
// across rank processes: a connection landing on a peer still tearing down
// (or already past) this fabric is detected by the mismatched generation or
// the reset, closed, and retried until the matching-generation listener is
// up. Rank 0's ack carries its steady_now_ns() epoch — the rendezvous-time
// clock exchange that keeps merged traces aligned across hosts.
//
// Data plane: frames use the shared 48-byte framing
// (comm/transport_stream.hpp). send() attempts an immediate
// MSG_NOSIGNAL sendmsg over [header, payload]; whatever the socket does not
// take queues in a producer-thread-owned pending deque that later
// send/park/flush calls keep pushing. The receive side pulls bytes straight
// into their final tracked Buffer via FrameReader — one copy off the wire.
#include "comm/transport_backends.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include "comm/transport_stream.hpp"
#include "common/check.hpp"
#include "common/stopwatch.hpp"

namespace weipipe::comm::detail {

namespace {

constexpr std::uint32_t kHelloMagic = 0x57504831;  // "WPH1"
constexpr std::uint32_t kAckMagic = 0x57504841;    // "WPHA"
constexpr std::int64_t kSharedClockSkewNs = 100'000'000;  // see shm backend

struct Hello {
  std::uint32_t magic;
  std::uint32_t src;
  std::uint32_t dst;
  std::uint32_t pad;
  std::uint64_t generation;
};
static_assert(sizeof(Hello) == 24);

struct Ack {
  std::uint32_t magic;
  std::uint32_t pad;
  std::uint64_t generation;
  std::int64_t epoch_ns;
};
static_assert(sizeof(Ack) == 24);

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  WEIPIPE_CHECK_MSG(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                    "fcntl(O_NONBLOCK): " << std::strerror(errno));
}

void set_nodelay(int fd) {
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Blocking-with-deadline exact read/write on a nonblocking fd; only used by
// the single-threaded rendezvous (tiny hello/ack messages).
bool rendezvous_io(int fd, void* buf, std::size_t n, bool write_side,
                   std::chrono::steady_clock::time_point deadline) {
  std::size_t done = 0;
  auto* p = static_cast<std::uint8_t*>(buf);
  while (done < n) {
    const ssize_t r = write_side
                          ? send(fd, p + done, n - done, MSG_NOSIGNAL)
                          : recv(fd, p + done, n - done, 0);
    if (r > 0) {
      done += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      return false;  // peer closed
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return false;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    pollfd pfd{fd, static_cast<short>(write_side ? POLLOUT : POLLIN), 0};
    poll(&pfd, 1, 20);
  }
  return true;
}

class TcpTransport final : public Transport {
 public:
  TcpTransport(const TransportSpec& spec, int world_size,
               const std::atomic<bool>* abort_flag, std::uint64_t generation)
      : world_(world_size),
        local_rank_(spec.local_rank),
        abort_flag_(abort_flag),
        generation_(generation) {
    WEIPIPE_CHECK_MSG(spec.base_port > 0 || spec.all_local(),
                      "tcp transport: forked rank mode needs an explicit "
                      "base port (ephemeral ports are only discoverable "
                      "inside one process)");
    const std::size_t n = static_cast<std::size_t>(world_) *
                          static_cast<std::size_t>(world_);
    in_fd_.assign(n, -1);
    out_fd_.assign(n, -1);
    out_.resize(n);
    readers_.resize(n);
    listen_fd_.assign(static_cast<std::size_t>(world_), -1);
    event_fd_.assign(static_cast<std::size_t>(world_), -1);
    ports_.assign(static_cast<std::size_t>(world_), 0);
    try {
      rendezvous(spec);
    } catch (...) {
      close_all();
      throw;
    }
  }

  ~TcpTransport() override {
    for (int r = 0; r < world_; ++r) {
      if (is_local(r)) {
        flush_bounded(r, std::chrono::milliseconds(2000));
      }
    }
    close_all();
  }

  const char* name() const override { return "tcp"; }
  bool is_local(int rank) const override {
    return local_rank_ < 0 || rank == local_rank_;
  }
  bool zero_copy() const override { return false; }
  // A drain probe is a syscall: spin only a few times before parking in
  // poll().
  int spin_hint() const override { return 8; }

  void send(int src, int dst, WireFrame frame) override {
    Out& out = out_edge(src, dst);
    out.q.push_back(std::move(frame));
    pump(src, dst);
    if (!out.q.empty()) {
      overflow_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::size_t drain(int src, int dst, std::vector<WireFrame>& out) override {
    const int fd = in_fd_[edge_index(src, dst)];
    if (fd < 0) {
      return 0;
    }
    FrameReader& reader = readers_[edge_index(src, dst)];
    std::size_t drained = 0;
    for (;;) {
      const std::span<std::uint8_t> dest = reader.dest();
      const ssize_t n = recv(fd, dest.data(), dest.size(), MSG_DONTWAIT);
      if (n > 0) {
        WireFrame frame;
        if (reader.commit(static_cast<std::size_t>(n), frame)) {
          out.push_back(std::move(frame));
          ++drained;
        }
        continue;
      }
      if (n == 0) {
        // Peer closed: either its fabric finished (teardown overlap) or it
        // died. Anything still expected from it surfaces as a recv timeout.
        close(fd);
        in_fd_[edge_index(src, dst)] = -1;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        break;
      }
      close(fd);
      in_fd_[edge_index(src, dst)] = -1;
      break;
    }
    return drained;
  }

  void park(int dst, int src,
            std::chrono::steady_clock::time_point deadline) override {
    const bool have_pending = pump_all(dst);
    std::vector<pollfd> fds;
    fds.reserve(2 + static_cast<std::size_t>(world_));
    const int in_fd = in_fd_[edge_index(src, dst)];
    if (in_fd >= 0) {
      fds.push_back({in_fd, POLLIN, 0});
    }
    const int efd = event_fd_[static_cast<std::size_t>(dst)];
    fds.push_back({efd, POLLIN, 0});
    for (int peer = 0; peer < world_; ++peer) {
      if (peer == dst || out_edge(dst, peer).q.empty()) {
        continue;
      }
      const int ofd = out_fd_[edge_index(dst, peer)];
      if (ofd >= 0) {
        fds.push_back({ofd, POLLOUT, 0});
      }
    }
    auto slice = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    const auto cap = have_pending ? std::chrono::milliseconds(1)
                                  : std::chrono::milliseconds(100);
    if (slice > cap) {
      slice = cap;
    }
    if (slice.count() <= 0) {
      return;
    }
    if (abort_flag_ != nullptr &&
        abort_flag_->load(std::memory_order_seq_cst)) {
      return;
    }
    parks_.fetch_add(1, std::memory_order_relaxed);
    poll(fds.data(), fds.size(), static_cast<int>(slice.count()));
    // Clear a wake_all tick so the eventfd does not stay readable forever.
    std::uint64_t tick;
    while (read(efd, &tick, sizeof(tick)) > 0) {
    }
    pump_all(dst);
  }

  void wake_all() override {
    const std::uint64_t one = 1;
    for (int r = 0; r < world_; ++r) {
      if (is_local(r)) {
        [[maybe_unused]] ssize_t n =
            write(event_fd_[static_cast<std::size_t>(r)], &one, sizeof(one));
        notifies_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  void flush(int src) override {
    flush_bounded(src, std::chrono::milliseconds(10000));
  }

  RingStats wire_stats() const override {
    RingStats s;
    s.parks = parks_.load(std::memory_order_relaxed);
    s.notifies = notifies_.load(std::memory_order_relaxed);
    s.overflow = overflow_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Out {
    std::deque<WireFrame> q;
    std::size_t off = 0;  // bytes of front frame (header||payload) sent
    std::uint8_t hdr[kFrameHeaderBytes];
    bool hdr_valid = false;
  };

  std::size_t edge_index(int src, int dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(world_) +
           static_cast<std::size_t>(dst);
  }
  Out& out_edge(int src, int dst) { return out_[edge_index(src, dst)]; }

  // Pushes buffered output for (src,dst); returns true while frames remain.
  bool pump(int src, int dst) {
    Out& out = out_edge(src, dst);
    if (out.q.empty()) {
      return false;
    }
    const int fd = out_fd_[edge_index(src, dst)];
    if (fd < 0) {
      out.q.clear();  // edge died (peer teardown); drop, receivers time out
      out.off = 0;
      out.hdr_valid = false;
      return false;
    }
    while (!out.q.empty()) {
      WireFrame& frame = out.q.front();
      if (!out.hdr_valid) {
        encode_frame_header(frame, out.hdr);
        out.hdr_valid = true;
      }
      const std::size_t payload_bytes = frame.payload.size();
      const std::size_t total = kFrameHeaderBytes + payload_bytes;
      iovec iov[2];
      int iovcnt = 0;
      if (out.off < kFrameHeaderBytes) {
        iov[iovcnt++] = {out.hdr + out.off, kFrameHeaderBytes - out.off};
        if (payload_bytes > 0) {
          iov[iovcnt++] = {
              const_cast<std::uint8_t*>(frame.payload.data()), payload_bytes};
        }
      } else {
        iov[iovcnt++] = {
            const_cast<std::uint8_t*>(frame.payload.data()) +
                (out.off - kFrameHeaderBytes),
            total - out.off};
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
      const ssize_t n = sendmsg(fd, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        out.off += static_cast<std::size_t>(n);
        if (out.off == total) {
          out.q.pop_front();
          out.off = 0;
          out.hdr_valid = false;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR)) {
        break;
      }
      // EPIPE/ECONNRESET: the peer's fabric is gone. Mid-run that is fatal
      // for the schedule anyway and surfaces as recv timeouts; at teardown
      // overlap the remaining frames are dup copies the peer would discard.
      close(fd);
      out_fd_[edge_index(src, dst)] = -1;
      out.q.clear();
      out.off = 0;
      out.hdr_valid = false;
      break;
    }
    return !out.q.empty();
  }

  bool pump_all(int src) {
    bool pending = false;
    for (int dst = 0; dst < world_; ++dst) {
      if (dst != src) {
        pending |= pump(src, dst);
      }
    }
    return pending;
  }

  void flush_bounded(int src, std::chrono::milliseconds budget) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (pump_all(src)) {
      if (std::chrono::steady_clock::now() >= deadline) {
        break;
      }
      pollfd pfd{-1, POLLOUT, 0};
      for (int dst = 0; dst < world_; ++dst) {
        if (dst != src && !out_edge(src, dst).q.empty()) {
          pfd.fd = out_fd_[edge_index(src, dst)];
          break;
        }
      }
      if (pfd.fd >= 0) {
        poll(&pfd, 1, 10);
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  }

  void rendezvous(const TransportSpec& spec) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    sockaddr_in any{};
    any.sin_family = AF_INET;
    any.sin_addr.s_addr = htonl(INADDR_ANY);
    // Listeners first: every rank's peers may connect the moment theirs is
    // up, and the kernel backlog holds them until we accept.
    for (int r = 0; r < world_; ++r) {
      if (!is_local(r)) {
        ports_[static_cast<std::size_t>(r)] = spec.base_port + r;
        continue;
      }
      const int fd = socket(AF_INET, SOCK_STREAM, 0);
      WEIPIPE_CHECK_MSG(fd >= 0, "socket: " << std::strerror(errno));
      const int one = 1;
      setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      any.sin_port =
          htons(static_cast<std::uint16_t>(
              spec.base_port > 0 ? spec.base_port + r : 0));
      WEIPIPE_CHECK_MSG(bind(fd, reinterpret_cast<sockaddr*>(&any),
                             sizeof(any)) == 0,
                        "bind(port " << (spec.base_port > 0
                                             ? spec.base_port + r
                                             : 0)
                                     << "): " << std::strerror(errno));
      WEIPIPE_CHECK_MSG(listen(fd, 128) == 0,
                        "listen: " << std::strerror(errno));
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
      ports_[static_cast<std::size_t>(r)] = ntohs(bound.sin_port);
      set_nonblocking(fd);
      listen_fd_[static_cast<std::size_t>(r)] = fd;
      const int efd = eventfd(0, EFD_NONBLOCK);
      WEIPIPE_CHECK_MSG(efd >= 0, "eventfd: " << std::strerror(errno));
      event_fd_[static_cast<std::size_t>(r)] = efd;
    }

    sockaddr_in peer{};
    peer.sin_family = AF_INET;
    WEIPIPE_CHECK_MSG(
        inet_pton(AF_INET, spec.host.c_str(), &peer.sin_addr) == 1,
        "bad tcp host '" << spec.host << "'");

    // Out edges src -> dst for every local src; in edges for every local
    // dst, matched by the hello. Retries absorb peers that are still on the
    // previous fabric generation (stale listener: generation mismatch or
    // reset) until their construction sequence catches up.
    std::size_t out_needed = 0;
    std::size_t in_needed = 0;
    for (int src = 0; src < world_; ++src) {
      for (int dst = 0; dst < world_; ++dst) {
        if (src == dst) {
          continue;
        }
        out_needed += is_local(src) ? 1 : 0;
        in_needed += is_local(dst) ? 1 : 0;
      }
    }
    // Connections that sent their hello and are waiting (nonblocking) for
    // the peer's ack — indexed like out_fd_.
    struct PendingAck {
      int fd = -1;
      std::size_t got = 0;
      std::uint8_t buf[sizeof(Ack)];
    };
    std::vector<PendingAck> pending(out_fd_.size());
    std::size_t out_done = 0;
    std::size_t in_done = 0;
    while (out_done < out_needed || in_done < in_needed) {
      if (std::chrono::steady_clock::now() >= deadline) {
        for (PendingAck& p : pending) {
          if (p.fd >= 0) {
            close(p.fd);
            p.fd = -1;
          }
        }
        WEIPIPE_CHECK_MSG(false,
                          "tcp rendezvous timed out (generation "
                              << generation_ << ", " << out_done << "/"
                              << out_needed << " out, " << in_done << "/"
                              << in_needed << " in)");
      }
      // Accept pass (all local listeners).
      for (int r = 0; r < world_; ++r) {
        if (!is_local(r)) {
          continue;
        }
        for (;;) {
          const int fd =
              accept(listen_fd_[static_cast<std::size_t>(r)], nullptr,
                     nullptr);
          if (fd < 0) {
            break;
          }
          Hello hello{};
          const auto io_deadline = std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(2000);
          if (!rendezvous_io(fd, &hello, sizeof(hello), false, io_deadline) ||
              hello.magic != kHelloMagic || hello.generation != generation_ ||
              hello.dst != static_cast<std::uint32_t>(r) ||
              hello.src >= static_cast<std::uint32_t>(world_)) {
            close(fd);  // stale generation or junk; the peer retries
            continue;
          }
          Ack ack{};
          ack.magic = kAckMagic;
          ack.generation = generation_;
          ack.epoch_ns = steady_now_ns();
          if (!rendezvous_io(fd, &ack, sizeof(ack), true, io_deadline)) {
            close(fd);
            continue;
          }
          const std::size_t idx = edge_index(static_cast<int>(hello.src), r);
          if (in_fd_[idx] >= 0) {
            close(in_fd_[idx]);  // peer reconnected; newest wins
          }
          set_nodelay(fd);
          if (in_fd_[idx] < 0) {
            ++in_done;
          }
          in_fd_[idx] = fd;
        }
      }
      // Connect pass (one outstanding attempt per missing out edge). The
      // hello (24 bytes, always fits the socket buffer) goes out here, but
      // the ack read is DEFERRED to the nonblocking pass below: in all-local
      // mode the acceptor producing that ack is this very thread's accept
      // pass, so blocking on it here would deadlock the rendezvous.
      for (int src = 0; src < world_; ++src) {
        if (!is_local(src)) {
          continue;
        }
        for (int dst = 0; dst < world_; ++dst) {
          const std::size_t idx = edge_index(src, dst);
          if (dst == src || out_fd_[idx] >= 0 || pending[idx].fd >= 0) {
            continue;
          }
          const int fd = socket(AF_INET, SOCK_STREAM, 0);
          WEIPIPE_CHECK_MSG(fd >= 0, "socket: " << std::strerror(errno));
          peer.sin_port = htons(
              static_cast<std::uint16_t>(ports_[static_cast<std::size_t>(dst)]));
          if (connect(fd, reinterpret_cast<sockaddr*>(&peer),
                      sizeof(peer)) != 0) {
            close(fd);  // listener not up yet (or stale); retry next round
            continue;
          }
          set_nonblocking(fd);
          Hello hello{};
          hello.magic = kHelloMagic;
          hello.src = static_cast<std::uint32_t>(src);
          hello.dst = static_cast<std::uint32_t>(dst);
          hello.generation = generation_;
          const auto io_deadline = std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(2000);
          if (!rendezvous_io(fd, &hello, sizeof(hello), true, io_deadline)) {
            close(fd);
            continue;
          }
          pending[idx].fd = fd;
          pending[idx].got = 0;
        }
      }
      // Ack pass: nonblocking reads on every connection awaiting its ack.
      for (int src = 0; src < world_; ++src) {
        if (!is_local(src)) {
          continue;
        }
        for (int dst = 0; dst < world_; ++dst) {
          const std::size_t idx = edge_index(src, dst);
          PendingAck& p = pending[idx];
          if (dst == src || p.fd < 0) {
            continue;
          }
          const ssize_t r = recv(p.fd, p.buf + p.got, sizeof(Ack) - p.got, 0);
          if (r > 0) {
            p.got += static_cast<std::size_t>(r);
          } else if (r == 0 || (errno != EAGAIN && errno != EWOULDBLOCK &&
                                errno != EINTR)) {
            close(p.fd);  // stale peer generation closed on us; retry
            p.fd = -1;
            continue;
          }
          if (p.got < sizeof(Ack)) {
            continue;
          }
          Ack ack;
          std::memcpy(&ack, p.buf, sizeof(ack));
          if (ack.magic != kAckMagic || ack.generation != generation_) {
            close(p.fd);  // wrong-generation peer; reconnect next round
            p.fd = -1;
            continue;
          }
          set_nodelay(p.fd);
          out_fd_[idx] = p.fd;
          p.fd = -1;
          ++out_done;
          // Clock exchange: rank 0 is the reference; every other forked
          // rank measures its skew from rank 0's ack. Same-host ranks share
          // CLOCK_MONOTONIC, so only a real clock-domain difference (a
          // remote host) installs an offset — see docs/TRANSPORT.md.
          if (local_rank_ > 0 && dst == 0) {
            const std::int64_t skew = ack.epoch_ns - steady_now_ns();
            if (skew > kSharedClockSkewNs || skew < -kSharedClockSkewNs) {
              set_steady_epoch_offset(skew);
            }
          }
        }
      }
      if (out_done < out_needed || in_done < in_needed) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  }

  void close_all() {
    for (int& fd : in_fd_) {
      if (fd >= 0) {
        close(fd);
        fd = -1;
      }
    }
    for (int& fd : out_fd_) {
      if (fd >= 0) {
        close(fd);
        fd = -1;
      }
    }
    for (int& fd : listen_fd_) {
      if (fd >= 0) {
        close(fd);
        fd = -1;
      }
    }
    for (int& fd : event_fd_) {
      if (fd >= 0) {
        close(fd);
        fd = -1;
      }
    }
  }

  const int world_;
  const int local_rank_;
  const std::atomic<bool>* abort_flag_;
  const std::uint64_t generation_;
  std::vector<int> listen_fd_;  // [rank], local only
  std::vector<int> event_fd_;   // [rank], local only (wake_all)
  std::vector<int> ports_;      // [rank]
  std::vector<int> in_fd_;      // [src * P + dst], dst local
  std::vector<int> out_fd_;     // [src * P + dst], src local
  std::vector<Out> out_;        // producer-thread owned
  std::vector<FrameReader> readers_;  // consumer-thread owned
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> notifies_{0};
  std::atomic<std::uint64_t> overflow_{0};
};

}  // namespace

std::unique_ptr<Transport> make_tcp_transport(
    const TransportSpec& spec, int world_size,
    const std::atomic<bool>* abort_flag, std::uint64_t generation) {
  return std::make_unique<TcpTransport>(spec, world_size, abort_flag,
                                        generation);
}

}  // namespace weipipe::comm::detail
