#include "comm/collectives.hpp"

#include <cstring>
#include <vector>

#include "common/check.hpp"
#include "obs/recorder.hpp"

namespace weipipe::comm {

namespace {
int ring_next(int rank, int world) { return (rank + 1) % world; }
int ring_prev(int rank, int world) { return (rank + world - 1) % world; }
int mod(int a, int m) { return ((a % m) + m) % m; }
}  // namespace

// One end-to-end span per collective call; the nested per-hop send/recv
// spans record independently and nest underneath it in the trace. A macro
// because SpanScope is a non-movable RAII type that must live in the
// caller's frame; expects `ep` and `tag_base` in scope.
#define WEIPIPE_COLLECTIVE_SPAN(kind, label_literal)  \
  obs::SpanScope collective_span_(kind);              \
  if (collective_span_.armed()) {                     \
    collective_span_.set_rank(ep.rank());             \
    collective_span_.set_tag(tag_base);               \
    collective_span_.set_label(label_literal);        \
  }

void ring_all_gather(Endpoint& ep, std::span<const float> shard,
                     std::span<float> full, WirePrecision precision,
                     std::int64_t tag_base) {
  WEIPIPE_COLLECTIVE_SPAN(obs::SpanKind::kCollective, "all_gather");
  const int p = ep.world_size();
  const int r = ep.rank();
  const std::size_t n = shard.size();
  WEIPIPE_CHECK_MSG(full.size() == n * static_cast<std::size_t>(p),
                    "all_gather size mismatch");
  // Place own shard (unless aliased in place already).
  if (full.data() + static_cast<std::size_t>(r) * n != shard.data()) {
    std::memcpy(full.data() + static_cast<std::size_t>(r) * n, shard.data(),
                n * sizeof(float));
  }
  if (p == 1) {
    return;
  }
  // Step s: send the shard originally owned by rank (r - s) mod p; receive
  // the shard owned by (r - s - 1) mod p. After p-1 steps all shards present.
  for (int s = 0; s < p - 1; ++s) {
    const int send_owner = mod(r - s, p);
    const int recv_owner = mod(r - s - 1, p);
    std::span<const float> send_chunk(
        full.data() + static_cast<std::size_t>(send_owner) * n, n);
    ep.send_floats(ring_next(r, p), tag_base + s, send_chunk, precision);
    std::span<float> recv_chunk(
        full.data() + static_cast<std::size_t>(recv_owner) * n, n);
    ep.recv_floats(ring_prev(r, p), tag_base + s, recv_chunk, precision);
  }
}

void ring_reduce_scatter(Endpoint& ep, std::span<const float> full,
                         std::span<float> shard_out, WirePrecision precision,
                         std::int64_t tag_base) {
  WEIPIPE_COLLECTIVE_SPAN(obs::SpanKind::kCollective, "reduce_scatter");
  const int p = ep.world_size();
  const int r = ep.rank();
  const std::size_t n = shard_out.size();
  WEIPIPE_CHECK_MSG(full.size() == n * static_cast<std::size_t>(p),
                    "reduce_scatter size mismatch");
  if (p == 1) {
    std::memcpy(shard_out.data(), full.data(), n * sizeof(float));
    return;
  }
  // acc holds the in-flight partial sum this rank forwards.
  std::vector<float> acc(n);
  std::vector<float> incoming(n);
  for (int s = 0; s < p - 1; ++s) {
    const int send_chunk = mod(r - s - 1, p);
    if (s == 0) {
      std::memcpy(acc.data(),
                  full.data() + static_cast<std::size_t>(send_chunk) * n,
                  n * sizeof(float));
    }
    ep.send_floats(ring_next(r, p), tag_base + s,
                   std::span<const float>(acc.data(), n), precision);
    const int recv_chunk = mod(r - s - 2, p);
    ep.recv_floats(ring_prev(r, p), tag_base + s,
                   std::span<float>(incoming.data(), n), precision);
    const float* local = full.data() + static_cast<std::size_t>(recv_chunk) * n;
    for (std::size_t i = 0; i < n; ++i) {
      acc[i] = incoming[i] + local[i];
    }
  }
  std::memcpy(shard_out.data(), acc.data(), n * sizeof(float));
}

void ring_all_reduce(Endpoint& ep, std::span<float> buffer,
                     WirePrecision precision, std::int64_t tag_base) {
  WEIPIPE_COLLECTIVE_SPAN(obs::SpanKind::kCollective, "all_reduce");
  const int p = ep.world_size();
  if (p == 1) {
    return;
  }
  WEIPIPE_CHECK_MSG(buffer.size() % static_cast<std::size_t>(p) == 0,
                    "all_reduce buffer not divisible by world size");
  const std::size_t n = buffer.size() / static_cast<std::size_t>(p);
  const int r = ep.rank();
  std::vector<float> shard(n);
  ring_reduce_scatter(ep, buffer, shard, precision, tag_base);
  std::memcpy(buffer.data() + static_cast<std::size_t>(r) * n, shard.data(),
              n * sizeof(float));
  ring_all_gather(ep,
                  std::span<const float>(
                      buffer.data() + static_cast<std::size_t>(r) * n, n),
                  buffer, precision, tag_base + p);
}

void barrier(Endpoint& ep, std::int64_t tag_base) {
  WEIPIPE_COLLECTIVE_SPAN(obs::SpanKind::kBarrier, "barrier");
  const int p = ep.world_size();
  if (p == 1) {
    return;
  }
  const int r = ep.rank();
  std::vector<std::uint8_t> token(1, 0xAB);
  // Two ring passes: after the second, every rank knows every rank entered.
  for (int pass = 0; pass < 2; ++pass) {
    const std::int64_t tag = tag_base + pass;
    if (r == 0) {
      ep.send(ring_next(r, p), tag, token);
      (void)ep.recv(ring_prev(r, p), tag);
    } else {
      (void)ep.recv(ring_prev(r, p), tag);
      ep.send(ring_next(r, p), tag, token);
    }
  }
}

void ring_broadcast(Endpoint& ep, int root, std::span<float> buffer,
                    WirePrecision precision, std::int64_t tag_base) {
  WEIPIPE_COLLECTIVE_SPAN(obs::SpanKind::kCollective, "broadcast");
  const int p = ep.world_size();
  if (p == 1) {
    return;
  }
  const int r = ep.rank();
  // Chain: root -> root+1 -> ... -> root-1. The payload is identical at
  // every hop, so non-root ranks relay the *received* wire buffer instead
  // of re-packing: the root's single pack serves the whole chain and every
  // forward is a zero-copy handle move.
  const int pos = mod(r - root, p);  // distance from root along the chain
  Buffer wire;
  if (pos > 0) {
    wire = ep.recv_buffer(ring_prev(r, p), tag_base);
    unpack_floats(wire.span(), precision, buffer);
  } else {
    wire = pack_floats_to_buffer(
        std::span<const float>(buffer.data(), buffer.size()), precision);
  }
  if (pos < p - 1) {
    ep.send(ring_next(r, p), tag_base, std::move(wire));
  }
}

double ring_all_reduce_scalar(Endpoint& ep, double value,
                              std::int64_t tag_base) {
  WEIPIPE_COLLECTIVE_SPAN(obs::SpanKind::kCollective, "all_reduce_scalar");
  const int p = ep.world_size();
  if (p == 1) {
    return value;
  }
  const int r = ep.rank();
  auto pack = [](double v) {
    std::vector<std::uint8_t> bytes(sizeof(double));
    std::memcpy(bytes.data(), &v, sizeof(double));
    return bytes;
  };
  auto unpack = [](const std::vector<std::uint8_t>& bytes) {
    double v;
    WEIPIPE_CHECK(bytes.size() == sizeof(double));
    std::memcpy(&v, bytes.data(), sizeof(double));
    return v;
  };
  // Phase 1: chain-accumulate toward the highest rank, in rank order
  // (0 + 1 + ... + P-1): deterministic association on every run.
  double acc = value;
  if (r > 0) {
    acc = unpack(ep.recv(r - 1, tag_base)) + value;
  }
  if (r < p - 1) {
    ep.send(r + 1, tag_base, pack(acc));
  }
  // Phase 2: chain-broadcast the total back down.
  double total = acc;
  if (r < p - 1) {
    total = unpack(ep.recv(r + 1, tag_base + 1));
  }
  if (r > 0) {
    ep.send(r - 1, tag_base + 1, pack(total));
  }
  return total;
}

void ring_reduce_to_root(Endpoint& ep, int root,
                         std::span<const float> contribution,
                         std::span<float> out, WirePrecision precision,
                         std::int64_t tag_base) {
  WEIPIPE_COLLECTIVE_SPAN(obs::SpanKind::kCollective, "reduce_to_root");
  const int p = ep.world_size();
  const int r = ep.rank();
  if (p == 1) {
    if (out.data() != contribution.data()) {
      std::memcpy(out.data(), contribution.data(),
                  contribution.size() * sizeof(float));
    }
    return;
  }
  const int pos = mod(r - root, p);  // chain position; root is pos 0
  if (pos == 1) {
    // Chain head: just ship the local contribution.
    ep.send_floats(ring_next(r, p), tag_base, contribution, precision);
    return;
  }
  // Everyone else receives the running sum, adds, and forwards (or keeps).
  std::vector<float> acc(contribution.size());
  ep.recv_floats(ring_prev(r, p), tag_base,
                 std::span<float>(acc.data(), acc.size()), precision);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    acc[i] += contribution[i];
  }
  if (pos == 0) {
    std::memcpy(out.data(), acc.data(), acc.size() * sizeof(float));
  } else {
    ep.send_floats(ring_next(r, p), tag_base,
                   std::span<const float>(acc.data(), acc.size()), precision);
  }
}

#undef WEIPIPE_COLLECTIVE_SPAN

}  // namespace weipipe::comm
