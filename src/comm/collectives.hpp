// Ring collectives built on the P2P fabric — the substrate for the FSDP
// (ZeRO-3-style) baseline. NCCL's default ring algorithms are what the paper's
// experiments exercise ("tree algorithms were not adopted"), so byte counts
// here match the paper's analysis: all-gather and reduce-scatter each move
// (P-1)/P of the full buffer per rank.
//
// SPMD usage: every rank calls the same collective with the same sizes; calls
// must not interleave different collectives on the same tag_base.
#pragma once

#include <cstdint>
#include <span>

#include "comm/fabric.hpp"

namespace weipipe::comm {

// Reserved tag blocks: point-to-point user tags must stay below this.
inline constexpr std::int64_t kCollectiveTagBase = 1'000'000'000;

// Gathers each rank's shard into `full` (size = world * shard.size()).
// Rank r's shard lands at offset r * shard.size(). `shard` may alias the
// corresponding region of `full`.
void ring_all_gather(Endpoint& ep, std::span<const float> shard,
                     std::span<float> full, WirePrecision precision,
                     std::int64_t tag_base = kCollectiveTagBase);

// Reduce-scatter with summation: `full` (size = world * shard_out.size())
// contributes from every rank; rank r receives the reduced r-th shard.
void ring_reduce_scatter(Endpoint& ep, std::span<const float> full,
                         std::span<float> shard_out, WirePrecision precision,
                         std::int64_t tag_base = kCollectiveTagBase + 1'000);

// All-reduce (sum) = reduce-scatter + all-gather, the classic ring algorithm.
// Buffer size must be divisible by world size.
void ring_all_reduce(Endpoint& ep, std::span<float> buffer,
                     WirePrecision precision,
                     std::int64_t tag_base = kCollectiveTagBase + 2'000);

// Rendezvous of all ranks.
void barrier(Endpoint& ep, std::int64_t tag_base = kCollectiveTagBase + 3'000);

// Sum of one double across all ranks, returned on every rank. Accumulates in
// rank order on rank 0, then chain-broadcasts — deterministic association,
// used by global-norm gradient clipping.
double ring_all_reduce_scalar(Endpoint& ep, double value,
                              std::int64_t tag_base = kCollectiveTagBase +
                                                      6'000);

// One-to-all broadcast along the ring (pipeline-friendly chain broadcast).
void ring_broadcast(Endpoint& ep, int root, std::span<float> buffer,
                    WirePrecision precision,
                    std::int64_t tag_base = kCollectiveTagBase + 4'000);

// All-to-one sum along the ring: the chain root+1 -> root+2 -> ... -> root
// accumulates every rank's `contribution`; only `root`'s `out` is written
// (out/contribution may alias on the root). Moves (P-1) buffer-sized
// messages — the same volume as NCCL's ring reduce.
void ring_reduce_to_root(Endpoint& ep, int root,
                         std::span<const float> contribution,
                         std::span<float> out, WirePrecision precision,
                         std::int64_t tag_base = kCollectiveTagBase + 5'000);

}  // namespace weipipe::comm
