#include "comm/buffer.hpp"

#include <cstring>
#include <utility>

#include "obs/ledger.hpp"

namespace weipipe::comm {

Buffer::Storage::Storage(std::size_t n) : size(n), tracked(true) {
  // Attribution happens inside tracked_alloc: the 16-byte header records
  // {kCommBuffers, calling thread's rank bucket, n} so the eventual free
  // credits exactly what was charged, on whichever thread drops the last
  // reference.
  obs::MemScope scope(obs::MemKind::kCommBuffers);
  tracked_data =
      n > 0 ? static_cast<std::uint8_t*>(obs::detail::tracked_alloc(n))
            : nullptr;
}

Buffer::Storage::Storage(std::vector<std::uint8_t> v)
    : size(v.size()), adopted(std::move(v)) {}

Buffer::Storage::~Storage() {
  if (tracked && tracked_data != nullptr) {
    obs::detail::tracked_free(tracked_data, size);
  }
}

Buffer Buffer::allocate(std::size_t size) {
  Buffer b;
  b.storage_ = std::make_shared<Storage>(size);
  return b;
}

Buffer Buffer::adopt(std::vector<std::uint8_t> bytes) {
  Buffer b;
  b.storage_ = std::make_shared<Storage>(std::move(bytes));
  return b;
}

std::vector<std::uint8_t> Buffer::release_vector() {
  if (!storage_) {
    return {};
  }
  if (!storage_->tracked && storage_.use_count() == 1) {
    std::vector<std::uint8_t> out = std::move(storage_->adopted);
    storage_.reset();
    return out;
  }
  std::vector<std::uint8_t> out(size());
  if (!out.empty()) {
    std::memcpy(out.data(), data(), out.size());
  }
  storage_.reset();
  return out;
}

}  // namespace weipipe::comm
