// Deterministic fault injection for the in-process fabric.
//
// A FaultPlan is a seeded list of rules (per-edge / per-tag delay, drop,
// duplicate, reorder, transient rank stall) installed into a Fabric. Every
// decision is a pure hash of (plan seed, rule, src, dst, tag, sequence
// number, attempt): two runs with the same plan inject byte-identical fault
// schedules regardless of thread interleaving, which is what lets the chaos
// harness (baselines/chaos.hpp) assert bitwise equivalence against a clean
// run. The fabric's reliability layer (per-stream sequence numbers, in-order
// reassembly, duplicate discard, bounded retransmit backoff for drops)
// guarantees each logical message is delivered exactly once and in order, so
// message-level faults cost latency, never correctness.
//
// Rank stalls are the exception: they abort the in-flight step (every rank
// observes a CommError) and are repaired at the step boundary by
// core/resilience.hpp, which rolls the trainer back from checkpoint state
// and re-runs the iteration.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace weipipe::comm {

enum class FaultKind : std::uint8_t {
  kDelay,      // extra delivery latency on a message
  kDrop,       // message lost on the wire; retransmitted with backoff
  kDuplicate,  // message delivered twice (same sequence number)
  kReorder,    // message arrives behind its successor in the stream
  kStall,      // a rank freezes mid-step (transient; fires once)
};

const char* to_string(FaultKind kind);

// One injection rule. Message-kind rules fire per message (per retransmit
// attempt for drops) with `probability`, optionally restricted to an edge
// and/or tag. Stall rules are not probabilistic: they fire exactly once,
// when `stall_rank`'s fabric-operation counter reaches `stall_op`.
struct FaultRule {
  FaultKind kind = FaultKind::kDelay;
  double probability = 0.05;
  int src = -1;           // -1 = any sending rank
  int dst = -1;           // -1 = any receiving rank
  std::int64_t tag = -1;  // -1 = any tag
  // kDelay: injected latency. kDrop: retransmit backoff base (doubles per
  // attempt). kDuplicate: extra latency on the duplicate copy.
  std::chrono::nanoseconds delay{2'000'000};
  // kStall only.
  int stall_rank = 0;
  std::int64_t stall_op = 0;
  // kStall only: how long the rank stays frozen (heartbeat-silent) before
  // it aborts the fabric. 0 = abort immediately (the pre-hold behavior).
  // A nonzero hold gives the live health watchdog (obs/health.hpp) a real
  // window to observe the wedge and attribute blocked peers before the
  // CommError cascade; determinism is unaffected (the hold is pure latency,
  // recovered exactly like an immediate abort).
  std::chrono::nanoseconds stall_hold{0};
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;
  // A dropped message is retransmitted at most this many times before the
  // reliability layer force-delivers it (keeps drop storms loss-free).
  int max_retries = 8;
  // Mutation knob for the chaos harness's self-test: false disables the
  // receiver's duplicate discard AND the sequence-number reassembly, so a
  // duplicated gradient message is consumed twice — the chaos differ must
  // catch the resulting divergence (tests/test_chaos.cpp).
  bool dedup = true;

  bool empty() const { return rules.empty(); }
  bool has_stalls() const;

  // Deterministic per-message decision for rule `rule_index` (pure hash; no
  // state). `attempt` distinguishes retransmissions of the same message.
  bool hit(std::size_t rule_index, int src, int dst, std::int64_t tag,
           std::uint64_t seq, int attempt) const;
};

// Parses a fault-plan spec (grammar in docs/FAULTS.md):
//   SPEC   := clause (',' clause)*
//   clause := kind (':' key '=' value)*
//   kind   := delay | drop | dup | reorder | stall | nodedup | retries
// e.g. "delay:p=0.1:ms=2,drop:p=0.02,dup:p=0.02:tag=3,stall:rank=1:op=40".
// Throws weipipe::Error on malformed specs.
FaultPlan parse_fault_plan(const std::string& spec, std::uint64_t seed);

// Canonical spec string (parse(to_spec(p)) reproduces the plan).
std::string to_spec(const FaultPlan& plan);

// One injected fault, as recorded by the fabric. For message-level faults
// the tuple (kind, src, dst, tag, seq, attempt) is a pure function of the
// plan seed, so sorted event logs from two runs of the same plan are
// identical. Stall-triggered events carry the stalled rank in `src`.
struct FaultEvent {
  FaultKind kind = FaultKind::kDelay;
  int src = -1;
  int dst = -1;
  std::int64_t tag = -1;
  std::uint64_t seq = 0;
  std::int32_t attempt = 0;
  std::int64_t delay_ns = 0;
  // Recovery epoch the event fired in (0 = first attempt of the run; bumped
  // by Fabric::recover()). Events from aborted epochs depend on where the
  // abort landed, so log-determinism guarantees are scoped to stall-free
  // plans — see docs/FAULTS.md.
  std::uint32_t epoch = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

// Deterministic total order for event-log comparison.
bool fault_event_less(const FaultEvent& a, const FaultEvent& b);

// JSON-lines export ([{kind,src,dst,tag,seq,attempt,delay_ns,epoch},...]).
std::string fault_events_to_json(const std::vector<FaultEvent>& events);

// Aggregate injection / tolerance counters (mirrored into the metrics
// registry as fault.* by the chaos and profile harnesses).
struct FaultStats {
  std::uint64_t delays = 0;
  std::uint64_t drops = 0;       // drop hits (one per lost transmission)
  std::uint64_t retries = 0;     // retransmissions performed
  std::uint64_t duplicates = 0;  // duplicate copies injected
  std::uint64_t duplicates_discarded = 0;  // copies the receiver deduped
  std::uint64_t reorders = 0;
  std::uint64_t stalls = 0;
  std::uint64_t recoveries = 0;  // Fabric::recover() calls
};

// ---- structured communication failures --------------------------------------

enum class CommErrorKind : std::uint8_t {
  kRecvTimeout,  // no matching message within the recv timeout
  kStall,        // this rank hit an injected transient stall
  kAborted,      // another rank failed; the fabric was aborted
};

const char* to_string(CommErrorKind kind);

struct CommErrorInfo {
  CommErrorKind kind = CommErrorKind::kRecvTimeout;
  int rank = -1;                 // rank that observed the failure
  int peer = -1;                 // peer it was waiting on (-1 = n/a)
  std::int64_t tag = -1;         // tag it was waiting on (-1 = n/a)
  std::uint64_t expected_seq = 0;       // next sequence number needed
  std::uint64_t pending_messages = 0;   // undelivered messages queued for rank

  friend bool operator==(const CommErrorInfo&, const CommErrorInfo&) = default;
};

// JSON round trip for the structured context (black-box dumps, tests):
// {"kind":"recv-timeout","rank":0,"peer":1,"tag":3,"expected_seq":7,
//  "pending_messages":2}. from_json throws weipipe::Error on malformed input.
std::string comm_error_info_to_json(const CommErrorInfo& info);
CommErrorInfo comm_error_info_from_json(const std::string& json);

// Thrown by the fabric instead of a bare check failure so tests and the
// step-boundary recovery path (core/resilience.hpp) can catch and classify
// communication faults. Derives weipipe::Error: existing catch sites and
// EXPECT_THROW(..., Error) assertions keep working.
class CommError : public Error {
 public:
  explicit CommError(const CommErrorInfo& info);
  const CommErrorInfo& info() const { return info_; }
  // Stalls and aborts are repairable by rolling back to the last step
  // boundary; timeouts are too when fault injection is active (a genuine
  // deadlock without injection will simply time out again and surface).
  bool recoverable() const { return true; }

 private:
  CommErrorInfo info_;
};

}  // namespace weipipe::comm
