#include "comm/transport.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <utility>

#include "comm/spsc_ring.hpp"
#include "comm/transport_backends.hpp"
#include "common/check.hpp"
#include "common/thread_annotations.hpp"

namespace weipipe::comm {

namespace {

// Messages per edge ring; bursts beyond this spill into the mutex-guarded
// overflow deque (counted in RingStats::overflow).
constexpr std::size_t kInprocRingCapacity = 256;

TransportSpec g_default_spec;

// Construction counter consumed by the multi-process backends: every process
// runs the same deterministic sequence of fabric constructions, so equal
// generation numbers identify the same logical fabric across processes.
std::atomic<std::uint64_t> g_generation{0};

// The original fabric mailbox, verbatim: one bounded lock-free SPSC ring per
// directed rank pair, a FIFO-preserving overflow deque, and a per-edge
// eventcount for parking (see comm/spsc_ring.hpp for the memory-ordering
// story — the seq_cst tail publication pairs with the consumer's seq_cst
// `parked` store, Dekker-style, so wakeups cannot be lost).
class InprocTransport final : public Transport {
 public:
  InprocTransport(int world_size, const std::atomic<bool>* abort_flag)
      : world_(world_size), abort_flag_(abort_flag) {
    edges_.reserve(static_cast<std::size_t>(world_) *
                   static_cast<std::size_t>(world_));
    for (int i = 0; i < world_ * world_; ++i) {
      edges_.push_back(std::make_unique<Edge>());
    }
  }

  const char* name() const override { return "inproc"; }
  bool is_local(int rank) const override {
    (void)rank;
    return true;
  }
  bool zero_copy() const override { return true; }
  int spin_hint() const override { return 1024; }

  void send(int src, int dst, WireFrame frame) override {
    Edge& e = edge(src, dst);
    bool queued = false;
    // Once a message has spilled to the overflow deque, later messages must
    // follow it there until the consumer has drained the deque — otherwise a
    // newer ring message could overtake an older spilled one.
    if (e.ovf_mode) {
      std::lock_guard<std::mutex> lk(e.ovf_mu);
      if (e.ovf.empty()) {
        e.ovf_mode = false;  // consumer caught up; back to the ring
      } else {
        e.ovf.push_back(std::move(frame));
        e.ovf_count.fetch_add(1, std::memory_order_seq_cst);
        e.overflow.fetch_add(1, std::memory_order_relaxed);
        queued = true;
      }
    }
    if (!queued && !e.ring.try_push(std::move(frame))) {
      std::lock_guard<std::mutex> lk(e.ovf_mu);
      e.ovf.push_back(std::move(frame));
      e.ovf_count.fetch_add(1, std::memory_order_seq_cst);
      e.overflow.fetch_add(1, std::memory_order_relaxed);
      e.ovf_mode = true;
    }
    // Dekker wake: the publication above (seq_cst ring-tail store or seq_cst
    // overflow-count RMW) is ordered before this load; the consumer stores
    // `parked` seq_cst before re-checking both channels.
    if (e.parked.load(std::memory_order_seq_cst) != 0) {
      { std::lock_guard<std::mutex> lk(e.park_mu); }
      e.park_cv.notify_all();
      e.notifies.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::size_t drain(int src, int dst, std::vector<WireFrame>& out) override {
    Edge& e = edge(src, dst);
    std::size_t drained = 0;
    while (WireFrame* f = e.ring.front()) {
      out.push_back(std::move(*f));
      e.ring.pop_front();
      ++drained;
    }
    if (e.ovf_count.load(std::memory_order_seq_cst) > 0) {
      std::deque<WireFrame> batch;
      {
        std::lock_guard<std::mutex> lk(e.ovf_mu);
        batch.swap(e.ovf);
        e.ovf_count.store(0, std::memory_order_seq_cst);
      }
      // Overflow messages are strictly newer than anything that was in the
      // ring above (the producer stays in overflow mode until the deque is
      // observed empty), so ring-then-overflow preserves per-edge FIFO.
      for (WireFrame& f : batch) {
        out.push_back(std::move(f));
        ++drained;
      }
    }
    return drained;
  }

  void park(int dst, int src,
            std::chrono::steady_clock::time_point deadline) override {
    Edge& e = edge(src, dst);
    std::unique_lock<std::mutex> lk(e.park_mu);
    e.parked.store(1, std::memory_order_seq_cst);
    if (e.ring.front() != nullptr ||
        e.ovf_count.load(std::memory_order_seq_cst) != 0 ||
        (abort_flag_ != nullptr &&
         abort_flag_->load(std::memory_order_seq_cst))) {
      e.parked.store(0, std::memory_order_relaxed);
      return;  // something arrived between the last check and parking
    }
    e.parks.fetch_add(1, std::memory_order_relaxed);
    e.park_cv.wait_until(lk, deadline);
    e.parked.store(0, std::memory_order_relaxed);
  }

  void wake_all() override {
    for (auto& e : edges_) {
      // Acquire the park mutex so a receiver between its recheck and its cv
      // wait cannot miss the notification.
      { std::lock_guard<std::mutex> lk(e->park_mu); }
      e->park_cv.notify_all();
    }
  }

  RingStats wire_stats() const override {
    RingStats total;
    for (const auto& e : edges_) {
      total.parks += e->parks.load(std::memory_order_relaxed);
      total.notifies += e->notifies.load(std::memory_order_relaxed);
      total.overflow += e->overflow.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct Edge {
    SpscRing<WireFrame> ring{kInprocRingCapacity};

    std::mutex ovf_mu;
    std::deque<WireFrame> ovf WEIPIPE_GUARDED_BY(ovf_mu);
    std::atomic<std::uint32_t> ovf_count{0};
    bool ovf_mode = false;  // producer thread only

    std::mutex park_mu;
    std::condition_variable park_cv;
    std::atomic<std::uint32_t> parked{0};

    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> notifies{0};
    std::atomic<std::uint64_t> overflow{0};
  };

  Edge& edge(int src, int dst) {
    return *edges_[static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(world_) +
                   static_cast<std::size_t>(dst)];
  }

  const int world_;
  const std::atomic<bool>* abort_flag_;
  std::vector<std::unique_ptr<Edge>> edges_;  // [src * P + dst]
};

}  // namespace

const char* transport_kind_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInproc: return "inproc";
    case TransportKind::kShm: return "shm";
    case TransportKind::kTcp: return "tcp";
  }
  return "?";
}

namespace {

// stoi throws std::invalid_argument / out_of_range on garbage; surface spec
// typos as weipipe::Error like every other parse failure instead.
int parse_spec_int(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  int parsed = 0;
  try {
    parsed = std::stoi(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  WEIPIPE_CHECK_MSG(!value.empty() && used == value.size(),
                    "bad transport option " << key << "='" << value
                                            << "' (want integer)");
  return parsed;
}

}  // namespace

TransportSpec parse_transport_spec(const std::string& text) {
  TransportSpec spec;
  std::istringstream in(text);
  std::string token;
  bool first = true;
  while (std::getline(in, token, ':')) {
    if (first) {
      first = false;
      if (token == "inproc") {
        spec.kind = TransportKind::kInproc;
      } else if (token == "shm") {
        spec.kind = TransportKind::kShm;
      } else if (token == "tcp") {
        spec.kind = TransportKind::kTcp;
      } else {
        WEIPIPE_CHECK_MSG(false, "unknown transport '" << token
                                                       << "' (inproc|shm|tcp)");
      }
      continue;
    }
    const std::size_t eq = token.find('=');
    WEIPIPE_CHECK_MSG(eq != std::string::npos,
                      "bad transport option '" << token << "' (want key=value)");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "rank") {
      spec.local_rank = parse_spec_int(key, value);
    } else if (key == "name") {
      spec.shm_name = value;
    } else if (key == "host") {
      spec.host = value;
    } else if (key == "port") {
      spec.base_port = parse_spec_int(key, value);
    } else {
      WEIPIPE_CHECK_MSG(false, "unknown transport option '" << key << "'");
    }
  }
  WEIPIPE_CHECK_MSG(!first, "empty transport spec");
  return spec;
}

std::string to_string(const TransportSpec& spec) {
  std::ostringstream out;
  out << transport_kind_name(spec.kind);
  if (spec.kind == TransportKind::kShm && !spec.shm_name.empty()) {
    out << ":name=" << spec.shm_name;
  }
  if (spec.kind == TransportKind::kTcp) {
    if (spec.host != "127.0.0.1") {
      out << ":host=" << spec.host;
    }
    if (spec.base_port != 0) {
      out << ":port=" << spec.base_port;
    }
  }
  if (spec.local_rank >= 0) {
    out << ":rank=" << spec.local_rank;
  }
  return out.str();
}

TransportSpec default_transport_spec() { return g_default_spec; }

void set_default_transport_spec(const TransportSpec& spec) {
  g_default_spec = spec;
}

std::unique_ptr<Transport> make_transport(const TransportSpec& spec,
                                          int world_size,
                                          const std::atomic<bool>* abort_flag) {
  WEIPIPE_CHECK_MSG(world_size >= 1, "world_size must be >= 1");
  WEIPIPE_CHECK_MSG(spec.local_rank < world_size,
                    "transport local_rank " << spec.local_rank
                                            << " outside world " << world_size);
  switch (spec.kind) {
    case TransportKind::kInproc:
      WEIPIPE_CHECK_MSG(spec.all_local(),
                        "inproc transport cannot host a single rank");
      return std::make_unique<InprocTransport>(world_size, abort_flag);
    case TransportKind::kShm:
      return detail::make_shm_transport(
          spec, world_size, abort_flag,
          g_generation.fetch_add(1, std::memory_order_relaxed));
    case TransportKind::kTcp:
      return detail::make_tcp_transport(
          spec, world_size, abort_flag,
          g_generation.fetch_add(1, std::memory_order_relaxed));
  }
  WEIPIPE_CHECK_MSG(false, "unreachable transport kind");
  return nullptr;
}

}  // namespace weipipe::comm
