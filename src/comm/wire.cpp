#include "comm/wire.hpp"

#include <cstring>

#include "common/check.hpp"

namespace weipipe::comm {

std::vector<std::uint8_t> pack_floats(std::span<const float> values,
                                      WirePrecision precision) {
  std::vector<std::uint8_t> out(packed_size(values.size(), precision));
  switch (precision) {
    case WirePrecision::Fp32:
      std::memcpy(out.data(), values.data(), out.size());
      break;
    case WirePrecision::Fp16: {
      auto* dst = reinterpret_cast<std::uint16_t*>(out.data());
      for (std::size_t i = 0; i < values.size(); ++i) {
        dst[i] = Float16(values[i]).bits();
      }
      break;
    }
    case WirePrecision::Bf16: {
      auto* dst = reinterpret_cast<std::uint16_t*>(out.data());
      for (std::size_t i = 0; i < values.size(); ++i) {
        dst[i] = BFloat16(values[i]).bits();
      }
      break;
    }
  }
  return out;
}

void unpack_floats(std::span<const std::uint8_t> bytes,
                   WirePrecision precision, std::span<float> out) {
  WEIPIPE_CHECK_MSG(bytes.size() == packed_size(out.size(), precision),
                    "packed size mismatch: " << bytes.size() << " bytes for "
                                             << out.size() << " elements");
  switch (precision) {
    case WirePrecision::Fp32:
      std::memcpy(out.data(), bytes.data(), bytes.size());
      break;
    case WirePrecision::Fp16: {
      const auto* src = reinterpret_cast<const std::uint16_t*>(bytes.data());
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = Float16::from_bits(src[i]).to_float();
      }
      break;
    }
    case WirePrecision::Bf16: {
      const auto* src = reinterpret_cast<const std::uint16_t*>(bytes.data());
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = BFloat16::from_bits(src[i]).to_float();
      }
      break;
    }
  }
}

std::size_t packed_size(std::size_t num_elements, WirePrecision precision) {
  return num_elements * wire_bytes_per_element(precision);
}

}  // namespace weipipe::comm
