#include "comm/wire.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define WEIPIPE_WIRE_X86 1
#include <immintrin.h>
#endif

namespace weipipe::comm {

namespace wire_detail {

// ---- scalar reference kernels ----------------------------------------------
//
// These call the same bit-exact converters in common/fixed_types.hpp that
// the rest of the codebase (quantize(), the trainers' master-weight rounding)
// uses; the SIMD paths below are required to match them bit for bit.

void pack_f16_scalar(const float* src, std::size_t n, std::uint16_t* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = detail::f32_to_f16_bits(src[i]);
  }
}

void unpack_f16_scalar(const std::uint16_t* src, std::size_t n, float* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = detail::f16_bits_to_f32(src[i]);
  }
}

void pack_bf16_scalar(const float* src, std::size_t n, std::uint16_t* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = detail::f32_to_bf16_bits(src[i]);
  }
}

void unpack_bf16_scalar(const std::uint16_t* src, std::size_t n, float* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = detail::bf16_bits_to_f32(src[i]);
  }
}

// ---- SIMD kernels (F16C/AVX2, runtime-dispatched) --------------------------
//
// 8 floats per iteration, unaligned loads/stores, scalar tail. Dispatch is
// per-call via a cached __builtin_cpu_supports probe (same spirit as the
// gemm micro-kernels, but runtime rather than compile-time so the generic
// build still uses F16C wherever it runs).

#if WEIPIPE_WIRE_X86

bool simd_available() {
  static const bool ok =
      __builtin_cpu_supports("f16c") && __builtin_cpu_supports("avx2");
  return ok;
}

__attribute__((target("f16c,avx2")))
void pack_f16_simd(const float* src, std::size_t n, std::uint16_t* dst) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(src + i);
    __m128i h =
        _mm256_cvtps_ph(x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    // vcvtps2ph preserves NaN payload bits; the scalar reference collapses
    // every NaN to the canonical sign|0x7E00. Blend NaN lanes (rare: the
    // movemask branch keeps the clean-data fast path blend-free).
    const __m256 unord = _mm256_cmp_ps(x, x, _CMP_UNORD_Q);
    if (_mm256_movemask_ps(unord) != 0) {
      const __m256i bits = _mm256_castps_si256(x);
      const __m256i canon32 = _mm256_or_si256(
          _mm256_and_si256(_mm256_srli_epi32(bits, 16),
                           _mm256_set1_epi32(0x8000)),
          _mm256_set1_epi32(0x7E00));
      // Lane values fit in 16 bits, so unsigned 32->16 packing is exact;
      // packs/packus interleave 128-bit halves, hence the lo/hi split.
      const __m128i canon16 =
          _mm_packus_epi32(_mm256_castsi256_si128(canon32),
                           _mm256_extracti128_si256(canon32, 1));
      const __m256i m32 = _mm256_castps_si256(unord);
      const __m128i m16 = _mm_packs_epi32(_mm256_castsi256_si128(m32),
                                          _mm256_extracti128_si256(m32, 1));
      h = _mm_blendv_epi8(h, canon16, m16);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  pack_f16_scalar(src + i, n - i, dst + i);
}

__attribute__((target("f16c,avx2")))
void unpack_f16_simd(const std::uint16_t* src, std::size_t n, float* dst) {
  std::size_t i = 0;
  const __m128i exp_mask = _mm_set1_epi16(0x7C00);
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m256 f = _mm256_cvtph_ps(h);
    // vcvtph2ps quiets signaling NaNs; the scalar reference widens inf/NaN
    // as sign|0x7F800000|(mant<<13), payload preserved. Rebuild those lanes
    // (the reconstruction is also exact for infinities, so exponent==0x1F
    // is a sufficient lane predicate).
    const __m128i special16 =
        _mm_cmpeq_epi16(_mm_and_si128(h, exp_mask), exp_mask);
    if (_mm_movemask_epi8(special16) != 0) {
      const __m256i h32 = _mm256_cvtepu16_epi32(h);
      const __m256i manual = _mm256_or_si256(
          _mm256_slli_epi32(
              _mm256_and_si256(h32, _mm256_set1_epi32(0x8000)), 16),
          _mm256_or_si256(
              _mm256_set1_epi32(0x7F800000),
              _mm256_slli_epi32(_mm256_and_si256(h32,
                                                 _mm256_set1_epi32(0x3FF)),
                                13)));
      const __m256i spec32 = _mm256_cmpeq_epi32(
          _mm256_and_si256(h32, _mm256_set1_epi32(0x7C00)),
          _mm256_set1_epi32(0x7C00));
      f = _mm256_blendv_ps(f, _mm256_castsi256_ps(manual),
                           _mm256_castsi256_ps(spec32));
    }
    _mm256_storeu_ps(dst + i, f);
  }
  unpack_f16_scalar(src + i, n - i, dst + i);
}

__attribute__((target("avx2")))
void pack_bf16_simd(const float* src, std::size_t n, std::uint16_t* dst) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(src + i);
    const __m256i bits = _mm256_castps_si256(x);
    // RNE in integer space, identical to the scalar reference:
    // (bits + 0x7FFF + ((bits >> 16) & 1)) >> 16. Two's-complement adds wrap
    // exactly like the reference's uint32 arithmetic.
    const __m256i lsb = _mm256_and_si256(_mm256_srli_epi32(bits, 16),
                                         _mm256_set1_epi32(1));
    __m256i b16 = _mm256_srli_epi32(
        _mm256_add_epi32(bits,
                         _mm256_add_epi32(_mm256_set1_epi32(0x7FFF), lsb)),
        16);
    const __m256 unord = _mm256_cmp_ps(x, x, _CMP_UNORD_Q);
    if (_mm256_movemask_ps(unord) != 0) {
      // NaN: (bits >> 16) | 0x40 — quiet while keeping the payload's top
      // bits, exactly as the scalar reference does.
      const __m256i nan16 = _mm256_or_si256(_mm256_srli_epi32(bits, 16),
                                            _mm256_set1_epi32(0x40));
      b16 = _mm256_blendv_epi8(b16, nan16, _mm256_castps_si256(unord));
    }
    const __m128i packed = _mm_packus_epi32(
        _mm256_castsi256_si128(b16), _mm256_extracti128_si256(b16, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), packed);
  }
  pack_bf16_scalar(src + i, n - i, dst + i);
}

__attribute__((target("avx2")))
void unpack_bf16_simd(const std::uint16_t* src, std::size_t n, float* dst) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m256i w = _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16);
    _mm256_storeu_ps(dst + i, _mm256_castsi256_ps(w));
  }
  unpack_bf16_scalar(src + i, n - i, dst + i);
}

#else  // !WEIPIPE_WIRE_X86

bool simd_available() { return false; }

// Non-x86 fallbacks so the symbols exist; never selected by dispatch.
void pack_f16_simd(const float* src, std::size_t n, std::uint16_t* dst) {
  pack_f16_scalar(src, n, dst);
}
void unpack_f16_simd(const std::uint16_t* src, std::size_t n, float* dst) {
  unpack_f16_scalar(src, n, dst);
}
void pack_bf16_simd(const float* src, std::size_t n, std::uint16_t* dst) {
  pack_bf16_scalar(src, n, dst);
}
void unpack_bf16_simd(const std::uint16_t* src, std::size_t n, float* dst) {
  unpack_bf16_scalar(src, n, dst);
}

#endif  // WEIPIPE_WIRE_X86

// ---- int8 block quantization -----------------------------------------------
//
// Layout: ceil(n/64) fp32 scales, then n int8 codes. scale = max finite
// |v| / 127 over the chunk; code = round(v / scale) clamped to [-127, 127].
// Widening is code * scale. Saturating semantics for non-finite inputs keep
// the wire well-defined under fault injection: NaN -> 0, +/-inf -> +/-127.

void pack_int8(const float* src, std::size_t n, std::uint8_t* dst) {
  const std::size_t chunks = (n + kInt8ChunkElems - 1) / kInt8ChunkElems;
  float* scales = reinterpret_cast<float*>(dst);
  std::int8_t* codes = reinterpret_cast<std::int8_t*>(dst + chunks * 4);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * kInt8ChunkElems;
    const std::size_t end = begin + std::min(kInt8ChunkElems, n - begin);
    float max_abs = 0.0f;
    for (std::size_t i = begin; i < end; ++i) {
      const float a = std::fabs(src[i]);
      if (std::isfinite(a) && a > max_abs) {
        max_abs = a;
      }
    }
    const float scale = max_abs / 127.0f;
    std::memcpy(&scales[c], &scale, sizeof(scale));
    for (std::size_t i = begin; i < end; ++i) {
      int q = 0;
      if (scale > 0.0f) {
        // Division (not reciprocal) so denormal scales stay finite.
        const float r = src[i] / scale;
        if (std::isnan(r)) {
          q = 0;
        } else if (r >= 127.0f) {
          q = 127;
        } else if (r <= -127.0f) {
          q = -127;
        } else {
          q = static_cast<int>(std::lrintf(r));
        }
      } else if (src[i] > 0.0f) {  // all-zero/non-finite chunk: sign only
        q = std::isinf(src[i]) ? 127 : 0;
      } else if (src[i] < 0.0f) {
        q = std::isinf(src[i]) ? -127 : 0;
      }
      codes[i] = static_cast<std::int8_t>(q);
    }
  }
}

void unpack_int8(const std::uint8_t* src, std::size_t n, float* dst) {
  const std::size_t chunks = (n + kInt8ChunkElems - 1) / kInt8ChunkElems;
  const float* scales = reinterpret_cast<const float*>(src);
  const std::int8_t* codes =
      reinterpret_cast<const std::int8_t*>(src + chunks * 4);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * kInt8ChunkElems;
    const std::size_t end = begin + std::min(kInt8ChunkElems, n - begin);
    float scale;
    std::memcpy(&scale, &scales[c], sizeof(scale));
    for (std::size_t i = begin; i < end; ++i) {
      dst[i] = static_cast<float>(codes[i]) * scale;
    }
  }
}

}  // namespace wire_detail

// ---- public entry points ---------------------------------------------------

std::size_t packed_size(std::size_t num_elements, WirePrecision precision) {
  if (precision == WirePrecision::Int8) {
    const std::size_t chunks =
        (num_elements + kInt8ChunkElems - 1) / kInt8ChunkElems;
    return chunks * 4 + num_elements;
  }
  return num_elements * wire_bytes_per_element(precision);
}

void pack_floats_into(std::span<const float> values, WirePrecision precision,
                      std::uint8_t* dst) {
  const std::size_t n = values.size();
  if (n == 0) {
    return;
  }
  switch (precision) {
    case WirePrecision::Fp32:
      std::memcpy(dst, values.data(), n * 4);
      break;
    case WirePrecision::Fp16: {
      auto* out = reinterpret_cast<std::uint16_t*>(dst);
      if (wire_detail::simd_available()) {
        wire_detail::pack_f16_simd(values.data(), n, out);
      } else {
        wire_detail::pack_f16_scalar(values.data(), n, out);
      }
      break;
    }
    case WirePrecision::Bf16: {
      auto* out = reinterpret_cast<std::uint16_t*>(dst);
      if (wire_detail::simd_available()) {
        wire_detail::pack_bf16_simd(values.data(), n, out);
      } else {
        wire_detail::pack_bf16_scalar(values.data(), n, out);
      }
      break;
    }
    case WirePrecision::Int8:
      wire_detail::pack_int8(values.data(), n, dst);
      break;
  }
}

std::vector<std::uint8_t> pack_floats(std::span<const float> values,
                                      WirePrecision precision) {
  std::vector<std::uint8_t> out(packed_size(values.size(), precision));
  pack_floats_into(values, precision, out.data());
  return out;
}

Buffer pack_floats_to_buffer(std::span<const float> values,
                             WirePrecision precision) {
  Buffer buffer = Buffer::allocate(packed_size(values.size(), precision));
  pack_floats_into(values, precision, buffer.mutable_data());
  return buffer;
}

void unpack_floats(std::span<const std::uint8_t> bytes,
                   WirePrecision precision, std::span<float> out) {
  WEIPIPE_CHECK_MSG(bytes.size() == packed_size(out.size(), precision),
                    "packed size mismatch: " << bytes.size() << " bytes for "
                                             << out.size() << " elements");
  const std::size_t n = out.size();
  if (n == 0) {
    return;
  }
  switch (precision) {
    case WirePrecision::Fp32:
      std::memcpy(out.data(), bytes.data(), bytes.size());
      break;
    case WirePrecision::Fp16: {
      const auto* src = reinterpret_cast<const std::uint16_t*>(bytes.data());
      if (wire_detail::simd_available()) {
        wire_detail::unpack_f16_simd(src, n, out.data());
      } else {
        wire_detail::unpack_f16_scalar(src, n, out.data());
      }
      break;
    }
    case WirePrecision::Bf16: {
      const auto* src = reinterpret_cast<const std::uint16_t*>(bytes.data());
      if (wire_detail::simd_available()) {
        wire_detail::unpack_bf16_simd(src, n, out.data());
      } else {
        wire_detail::unpack_bf16_scalar(src, n, out.data());
      }
      break;
    }
    case WirePrecision::Int8:
      wire_detail::unpack_int8(bytes.data(), n, out.data());
      break;
  }
}

}  // namespace weipipe::comm
