// The in-process message-passing fabric: our stand-in for NCCL P2P.
//
// One Endpoint per simulated rank; ranks run on their own std::thread (see
// run_workers). Semantics mirror what the paper's implementation relies on:
//  * eager, buffered sends — isend never blocks (NCCL P2P with send buffers);
//  * tagged matching by (source, tag) with FIFO order per pair;
//  * irecv/wait for the prefetch overlap the paper gets from
//    torch.distributed.batch_isend_irecv;
//  * an optional LinkModel that delays *delivery* (not the sender), so
//    emulated bandwidth overlaps with compute exactly like an async DMA.
//
// Transport (see docs/FABRIC.md for the full design):
//  * every directed rank pair (src,dst) owns a bounded lock-free SPSC ring
//    (comm/spsc_ring.hpp); the hot send/recv path takes no mutex;
//  * payloads are refcounted zero-copy Buffers (comm/buffer.hpp): sending a
//    weight shard moves a handle, never the bytes;
//  * a blocked receiver spins briefly, then parks on a per-edge eventcount
//    (mutex+condvar used only for parking) — it keeps feeding the PR 6
//    health board while blocked, and abort_all() still wakes it;
//  * the PR 5 reliability layer (per-(src,dst,tag) stream seq numbers,
//    receiver-side reassembly + dedup, drop-as-retransmission) sits on top
//    of the rings unchanged: seqs are assigned producer-side, reassembly
//    happens consumer-side in a thread-owned inbox.
//
// Thread contract: at any moment at most ONE thread acts as a given rank
// (calls its Endpoint methods). The acting thread may change only across a
// happens-before edge; run_workers provides one via thread join at every
// call boundary. Driver-side maintenance (recover, reset_stats, fault plan
// install, destruction) requires the fabric quiescent — no rank threads
// running — which the same join edges guarantee.
//
// Every byte crossing the fabric is counted per (src,dst) pair: tests assert
// the paper's central claim — WeiPipe's communication volume is independent
// of microbatch size G and sequence length S — directly on these counters.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "comm/buffer.hpp"
#include "comm/fault.hpp"
#include "comm/spsc_ring.hpp"
#include "comm/wire.hpp"
#include "common/thread_annotations.hpp"

namespace weipipe::comm {

// Returns the transfer delay for a message of `bytes` from src to dst.
// Used only when attached to a Fabric; nullptr = infinitely fast links.
using LinkModel =
    std::function<std::chrono::nanoseconds(int src, int dst, std::size_t bytes)>;

// Simple uniform link: latency + bytes/bandwidth.
LinkModel uniform_link(double bandwidth_bytes_per_sec, double latency_sec);

struct FabricStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  // Messages delivered but not yet received (mailbox depth), and its
  // high-water mark since the last reset_stats(). A growing max_in_flight on
  // one pair is the signature of a receiver pacing the ring.
  std::uint64_t in_flight = 0;
  std::uint64_t max_in_flight = 0;
};

// Lock-free transport counters, aggregated over all edges. spins/parks
// split a blocked receiver's time into the cheap path (spin iterations
// before data arrived) and the expensive one (condvar parks); notifies are
// producer-side wakeups of a parked consumer; overflow counts messages that
// did not fit the bounded ring and took the mutex-guarded spillover path.
struct RingStats {
  std::uint64_t spins = 0;
  std::uint64_t parks = 0;
  std::uint64_t notifies = 0;
  std::uint64_t overflow = 0;
};

class Fabric;

// A completion handle, as returned by isend/irecv.
class Request {
 public:
  Request() = default;
  // Blocks until the operation completes (no-op for eager sends).
  void wait();
  bool valid() const { return static_cast<bool>(waiter_); }

 private:
  friend class Endpoint;
  explicit Request(std::function<void()> waiter) : waiter_(std::move(waiter)) {}
  std::function<void()> waiter_;
};

class Endpoint {
 public:
  int rank() const { return rank_; }
  int world_size() const;

  // Eager buffered send: enqueues and returns immediately.
  void send(int dst, std::int64_t tag, std::vector<std::uint8_t> payload);
  // Zero-copy send: the fabric takes a reference, the bytes never move.
  // Treat the buffer contents as frozen once sent (other ranks — and
  // dup-fault copies — read the same storage).
  void send(int dst, std::int64_t tag, Buffer payload);

  // Blocks until a matching message arrives (and its modeled delivery time
  // passes). Throws weipipe::CommError after `recv_timeout`.
  std::vector<std::uint8_t> recv(int src, std::int64_t tag);
  // Zero-copy receive: returns the sender's buffer (same bytes, no copy).
  Buffer recv_buffer(int src, std::int64_t tag);

  Request isend(int dst, std::int64_t tag, std::vector<std::uint8_t> payload);
  // out must stay alive until wait() returns.
  Request irecv(int src, std::int64_t tag, std::vector<std::uint8_t>* out);
  // Zero-copy async receive; out must stay alive until wait() returns.
  Request irecv_buffer(int src, std::int64_t tag, Buffer* out);
  // Float-typed async receive: wait() unpacks (and widens) into `out`.
  Request irecv_floats(int src, std::int64_t tag, std::span<float> out,
                       WirePrecision precision);

  // -- float-span conveniences (quantize on send, widen on receive) ----------
  void send_floats(int dst, std::int64_t tag, std::span<const float> values,
                   WirePrecision precision);
  void recv_floats(int src, std::int64_t tag, std::span<float> out,
                   WirePrecision precision);

  FabricStats sent_stats() const;
  FabricStats received_stats() const;

 private:
  friend class Fabric;
  Endpoint(Fabric* fabric, int rank) : fabric_(fabric), rank_(rank) {}

  Fabric* fabric_;
  int rank_;
};

class Fabric {
 public:
  explicit Fabric(int world_size, LinkModel link_model = nullptr);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int world_size() const { return static_cast<int>(endpoints_.size()); }
  Endpoint& endpoint(int rank);

  // Aggregate traffic matrix entry: bytes sent src -> dst.
  std::uint64_t bytes_sent(int src, int dst) const;
  // Full per-pair stats entry (messages, bytes, in-flight high-water mark).
  FabricStats pair_stats(int src, int dst) const;
  // Copy of the whole [src * P + dst] stats matrix, for metrics snapshots.
  std::vector<FabricStats> stats_matrix() const;
  // Per-tag traffic since the last reset. Tags carry the message semantics
  // (wire_tags / collective bases), so this is the wire ledger's raw feed:
  // classify tags into MsgKinds and compare against the paper's closed-form
  // per-iteration volumes (core/accounting.hpp).
  std::map<std::int64_t, FabricStats> tag_stats() const;
  std::uint64_t total_bytes() const;
  std::uint64_t total_messages() const;
  // Maximum over pairs of max_in_flight since the last reset.
  std::uint64_t max_in_flight() const;
  void reset_stats();

  // Aggregate lock-free transport counters (spin/park/notify/overflow).
  RingStats ring_stats() const;

  // Maximum time recv() blocks before declaring the schedule deadlocked.
  // Atomic because rank threads read it inside recv() while the driving
  // thread may still be adjusting it.
  void set_recv_timeout(std::chrono::milliseconds timeout) {
    recv_timeout_.store(timeout, std::memory_order_relaxed);
  }

  // ---- fault injection (comm/fault.hpp) ------------------------------------
  //
  // Install/clear only while the fabric is quiescent (no rank threads
  // running): worker threads read the plan without locks, relying on the
  // happens-before edges of thread creation/join.
  void install_fault_plan(const FaultPlan& plan);
  void clear_fault_plan();
  bool has_fault_plan() const { return faults_ != nullptr; }
  const FaultPlan& fault_plan() const;
  FaultStats fault_stats() const;
  // All injected faults so far, in the deterministic fault_event_less order.
  std::vector<FaultEvent> fault_events() const;

  // Marks the fabric failed and wakes every blocked receiver; they throw
  // CommError(kAborted). Used by injected stalls and available to tests.
  void abort_all();
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  // Step-boundary repair after an abort: clears the failed flag, drains all
  // undelivered messages (crediting the memory ledger), resets per-stream
  // sequence numbers and re-arms one-shot stall rules' epoch. The trainer
  // restores its own state (core/resilience.hpp) and re-runs the iteration.
  void recover();

 private:
  friend class Endpoint;

  // Messages per edge ring; bursts beyond this spill into the mutex-guarded
  // overflow deque (counted in RingStats::overflow).
  static constexpr std::size_t kRingCapacity = 256;
  // Spin iterations before a blocked receiver parks on the edge eventcount.
  static constexpr int kSpinLimit = 1024;

  struct Message {
    Buffer payload;
    std::int64_t tag = 0;
    std::chrono::steady_clock::time_point deliver_at;
    // Position in the (src,tag) stream, assigned at send time by the
    // producer. The receiver reassembles in seq order and discards
    // duplicates, which is what makes injected drops/dups/reorders
    // invisible to the layers above.
    std::uint64_t seq = 0;
    // Unique per message; pairs the sender's and receiver's trace spans so
    // exporters can draw flow arrows (obs/chrome_trace.hpp).
    std::int64_t flow_id = -1;
    // Mailbox-residency bytes charged to the memory ledger (comm_buffers,
    // receiver's bucket) for adopted (non-tracked) payloads; 0 = not charged
    // (tracked buffers carry their own allocation-time charge, or the
    // ledger was disabled at send time). Credited on take()/teardown.
    std::int64_t ledger_bytes = 0;
    // nodedup mutation mode: this message fell behind its successor.
    bool reordered = false;
  };

  struct PairCounters {
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> in_flight{0};
    std::atomic<std::uint64_t> max_in_flight{0};
  };

  // One directed (src,dst) edge: the SPSC ring, its overflow spillover, the
  // consumer's park state, producer-owned per-tag send seqs, and the edge's
  // share of the stats.
  struct Edge {
    SpscRing<Message> ring{kRingCapacity};

    // Overflow path for ring-full bursts. `ovf_mode` is producer-local:
    // once a message spills, every later message spills too until the
    // producer observes (under ovf_mu) that the consumer drained the deque —
    // this keeps per-edge FIFO order across the two channels.
    std::mutex ovf_mu;
    std::deque<Message> ovf WEIPIPE_GUARDED_BY(ovf_mu);
    std::atomic<std::uint32_t> ovf_count{0};
    bool ovf_mode = false;  // producer thread only

    // Eventcount: the consumer publishes `parked` (seq_cst) before
    // re-checking the ring and waiting; the producer checks it (seq_cst)
    // after publishing the ring tail. The seq_cst total order makes one
    // side always see the other — no lost wakeups, no standalone fences
    // (which TSan does not model).
    std::mutex park_mu;
    std::condition_variable park_cv;
    std::atomic<std::uint32_t> parked{0};

    // Producer-owned per-tag next sequence number (single producer per
    // edge, so no lock).
    std::map<std::int64_t, std::uint64_t> send_seq;

    PairCounters pair;
    mutable std::mutex tag_mu;
    std::map<std::int64_t, FabricStats> tags WEIPIPE_GUARDED_BY(tag_mu);

    std::atomic<std::uint64_t> spins{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> notifies{0};
    std::atomic<std::uint64_t> overflow{0};
  };

  struct MailKey {
    int src;
    std::int64_t tag;
    bool operator<(const MailKey& o) const {
      return src != o.src ? src < o.src : tag < o.tag;
    }
  };
  // One (src,tag) reassembly stream, owned by the receiving rank's thread.
  // With dedup on (the default), q is kept sorted by seq and next_take_seq
  // is the reassembly cursor; with dedup off (FaultPlan mutation knob) q is
  // raw arrival order.
  struct Stream {
    std::deque<Message> q;
    std::uint64_t next_take_seq = 0;
  };
  // Per-rank inbox: drained-but-unconsumed messages. Touched only by the
  // rank's acting thread (or the driver while quiescent) — no lock.
  struct Inbox {
    std::map<MailKey, Stream> streams;
  };

  struct Taken {
    Buffer payload;
    std::int64_t flow_id = -1;
  };

  // Mutable fault-injection state; allocated only while a plan is installed.
  struct FaultRuntime {
    explicit FaultRuntime(const FaultPlan& p, int world)
        : plan(p),
          any_stalls(p.has_stalls()),
          op_counts(static_cast<std::size_t>(world)) {}
    FaultPlan plan;
    bool any_stalls = false;
    // Per-rank count of fabric operations (deliver by src, take by dst);
    // advances in program order of that rank's thread, so stall:op=N is
    // deterministic. Atomics: a rank's sends touch its own counter from its
    // own thread, but recover() resets them from the driver thread.
    std::vector<std::atomic<std::int64_t>> op_counts;
    // One-shot latches, one per rule (only stall rules use theirs).
    std::vector<std::unique_ptr<std::atomic<bool>>> fired;
    std::atomic<std::uint32_t> epoch{0};
    mutable std::mutex mu;
    FaultStats stats WEIPIPE_GUARDED_BY(mu);
    std::vector<FaultEvent> events WEIPIPE_GUARDED_BY(mu);
  };

  Edge& edge(int src, int dst) {
    return *edges_[static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(world_size()) +
                   static_cast<std::size_t>(dst)];
  }
  const Edge& edge(int src, int dst) const {
    return *edges_[static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(world_size()) +
                   static_cast<std::size_t>(dst)];
  }

  // Returns the delivered message's flow id.
  std::int64_t deliver(int src, int dst, std::int64_t tag, Buffer payload);
  Taken take(int dst, int src, std::int64_t tag);

  // Producer side: enqueue on the ring or the ordered overflow path, then
  // wake the consumer if it is parked.
  void enqueue(Edge& e, Message msg);
  // Consumer side: move everything available on the edge into dst's inbox.
  // Returns the number of messages drained.
  std::size_t drain_edge(int src, int dst, Edge& e, Inbox& inbox,
                         bool reliable);
  void inbox_insert(Inbox& inbox, int src, Message msg, bool reliable);
  // Credits the ledger for an undelivered/duplicate message being destroyed.
  static void credit_message(const Message& msg, int dst);

  // Fires any matching stall rule for `rank` (throws CommError(kStall) after
  // aborting the fabric); otherwise just advances the rank's op counter.
  void maybe_stall(int rank);
  void record_fault(const FaultEvent& event);

  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<std::unique_ptr<Edge>> edges_;      // [src * P + dst]
  std::vector<std::unique_ptr<Inbox>> inboxes_;   // [dst]
  LinkModel link_model_;
  std::unique_ptr<FaultRuntime> faults_;
  std::atomic<bool> aborted_{false};
  std::atomic<std::int64_t> next_flow_id_{0};
  std::atomic<std::chrono::milliseconds> recv_timeout_{
      std::chrono::milliseconds(60000)};
};

// Runs fn(rank, endpoint) on world_size threads and joins them all; the first
// exception (if any) is rethrown on the caller after every thread has exited,
// so a failing rank cannot leave the fabric with dangling threads.
void run_workers(Fabric& fabric,
                 const std::function<void(int rank, Endpoint& ep)>& fn);

// ---- batched posting (the paper's torch.distributed.batch_isend_irecv) ------

struct SendSpec {
  int dst = 0;
  std::int64_t tag = 0;
  std::span<const float> values;
  WirePrecision precision = WirePrecision::Fp32;
};

struct RecvSpec {
  int src = 0;
  std::int64_t tag = 0;
  // Destination buffer; must stay alive until the returned request completes.
  std::span<float> out;
  WirePrecision precision = WirePrecision::Fp32;
};

// Posts all sends eagerly and returns one Request per recv; waiting on a
// request unpacks into its RecvSpec buffer. Mirrors the PyTorch API WeiPipe's
// reference implementation uses for communication/computation overlap.
std::vector<Request> batch_isend_irecv(Endpoint& ep,
                                       std::span<const SendSpec> sends,
                                       std::span<const RecvSpec> recvs);

}  // namespace weipipe::comm
