// The message-passing fabric: our stand-in for NCCL P2P.
//
// One Endpoint per rank; local ranks run on their own std::thread (see
// run_workers). Semantics mirror what the paper's implementation relies on:
//  * eager, buffered sends — isend never blocks (NCCL P2P with send buffers);
//  * tagged matching by (source, tag) with FIFO order per pair;
//  * irecv/wait for the prefetch overlap the paper gets from
//    torch.distributed.batch_isend_irecv;
//  * an optional LinkModel that delays *delivery* (not the sender), so
//    emulated bandwidth overlaps with compute exactly like an async DMA.
//
// Transport (docs/FABRIC.md, docs/TRANSPORT.md): byte movement is pluggable
// behind comm::Transport — the in-process lock-free SPSC mailbox (default),
// POSIX shared memory for co-located rank processes, or TCP sockets. The
// fabric layers everything message-semantic on top, identically for every
// backend:
//  * payloads are refcounted zero-copy Buffers (comm/buffer.hpp): over the
//    inproc backend a weight shard moves as a handle, never the bytes;
//  * the PR 5 reliability layer (per-(src,dst,tag) stream seq numbers,
//    receiver-side reassembly + dedup, drop-as-retransmission) sits on top
//    of the transport unchanged: seqs are assigned producer-side, reassembly
//    happens consumer-side in a thread-owned inbox — which is what makes the
//    chaos differ hold bitwise across backends;
//  * a blocked receiver spins briefly (budget set by the backend), then
//    parks in the transport — it keeps feeding the PR 6 health board while
//    blocked, and abort_all() still wakes it.
//
// Thread contract: at any moment at most ONE thread acts as a given rank
// (calls its Endpoint methods). The acting thread may change only across a
// happens-before edge; run_workers provides one via thread join at every
// call boundary. Driver-side maintenance (recover, reset_stats, fault plan
// install, destruction) requires the fabric quiescent — no rank threads
// running — which the same join edges guarantee.
//
// Every byte crossing the fabric is counted per (src,dst) pair at the
// SENDING rank (exactly once per logical message, retransmits and dup-fault
// copies excluded): tests assert the paper's central claim — WeiPipe's
// communication volume is independent of microbatch size G and sequence
// length S — directly on these counters. In multi-process mode each process
// holds the counters for its own ranks' sends; summing over processes
// reconstructs the full matrix.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "comm/buffer.hpp"
#include "comm/fault.hpp"
#include "comm/transport.hpp"
#include "comm/wire.hpp"
#include "common/thread_annotations.hpp"

namespace weipipe::comm {

// Returns the transfer delay for a message of `bytes` from src to dst.
// Used only when attached to a Fabric; nullptr = infinitely fast links.
using LinkModel =
    std::function<std::chrono::nanoseconds(int src, int dst, std::size_t bytes)>;

// Simple uniform link: latency + bytes/bandwidth.
LinkModel uniform_link(double bandwidth_bytes_per_sec, double latency_sec);

struct FabricStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  // Messages delivered but not yet received (mailbox depth), and its
  // high-water mark since the last reset_stats(). A growing max_in_flight on
  // one pair is the signature of a receiver pacing the ring.
  std::uint64_t in_flight = 0;
  std::uint64_t max_in_flight = 0;
};

class Fabric;

// A completion handle, as returned by isend/irecv.
class Request {
 public:
  Request() = default;
  // Blocks until the operation completes (no-op for eager sends).
  void wait();
  bool valid() const { return static_cast<bool>(waiter_); }

 private:
  friend class Endpoint;
  explicit Request(std::function<void()> waiter) : waiter_(std::move(waiter)) {}
  std::function<void()> waiter_;
};

class Endpoint {
 public:
  int rank() const { return rank_; }
  int world_size() const;

  // Eager buffered send: enqueues and returns immediately.
  void send(int dst, std::int64_t tag, std::vector<std::uint8_t> payload);
  // Zero-copy send: the fabric takes a reference; over the inproc backend
  // the bytes never move. Treat the buffer contents as frozen once sent
  // (other ranks — and dup-fault copies — read the same storage).
  void send(int dst, std::int64_t tag, Buffer payload);

  // Blocks until a matching message arrives (and its modeled delivery time
  // passes). Throws weipipe::CommError after `recv_timeout`.
  std::vector<std::uint8_t> recv(int src, std::int64_t tag);
  // Buffer receive: over the inproc backend this is the sender's storage
  // (same bytes, no copy); multi-process backends rematerialize the bytes.
  Buffer recv_buffer(int src, std::int64_t tag);

  Request isend(int dst, std::int64_t tag, std::vector<std::uint8_t> payload);
  // out must stay alive until wait() returns.
  Request irecv(int src, std::int64_t tag, std::vector<std::uint8_t>* out);
  // Zero-copy async receive; out must stay alive until wait() returns.
  Request irecv_buffer(int src, std::int64_t tag, Buffer* out);
  // Float-typed async receive: wait() unpacks (and widens) into `out`.
  Request irecv_floats(int src, std::int64_t tag, std::span<float> out,
                       WirePrecision precision);

  // -- float-span conveniences (quantize on send, widen on receive) ----------
  void send_floats(int dst, std::int64_t tag, std::span<const float> values,
                   WirePrecision precision);
  void recv_floats(int src, std::int64_t tag, std::span<float> out,
                   WirePrecision precision);

  FabricStats sent_stats() const;
  FabricStats received_stats() const;

 private:
  friend class Fabric;
  Endpoint(Fabric* fabric, int rank) : fabric_(fabric), rank_(rank) {}

  Fabric* fabric_;
  int rank_;
};

class Fabric {
 public:
  // Rides the process-default transport spec (comm/transport.hpp), which is
  // inproc unless retargeted (weipipe_cli --transport, forked rank mode).
  explicit Fabric(int world_size, LinkModel link_model = nullptr);
  Fabric(int world_size, LinkModel link_model, const TransportSpec& spec);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int world_size() const { return static_cast<int>(endpoints_.size()); }
  Endpoint& endpoint(int rank);

  // ---- transport introspection ---------------------------------------------
  const char* transport_name() const { return transport_->name(); }
  // True when `rank` is hosted by this process; run_workers spawns threads
  // only for local ranks.
  bool is_local(int rank) const { return transport_->is_local(rank); }
  bool transport_zero_copy() const { return transport_->zero_copy(); }
  // Pushes rank's buffered transport output (tcp pending queues). Called by
  // run_workers when a worker body returns; callable from the driver while
  // quiescent.
  void flush(int rank) { transport_->flush(rank); }

  // Aggregate traffic matrix entry: bytes sent src -> dst.
  std::uint64_t bytes_sent(int src, int dst) const;
  // Full per-pair stats entry (messages, bytes, in-flight high-water mark).
  FabricStats pair_stats(int src, int dst) const;
  // Copy of the whole [src * P + dst] stats matrix, for metrics snapshots.
  std::vector<FabricStats> stats_matrix() const;
  // Per-tag traffic since the last reset. Tags carry the message semantics
  // (wire_tags / collective bases), so this is the wire ledger's raw feed:
  // classify tags into MsgKinds and compare against the paper's closed-form
  // per-iteration volumes (core/accounting.hpp).
  std::map<std::int64_t, FabricStats> tag_stats() const;
  std::uint64_t total_bytes() const;
  std::uint64_t total_messages() const;
  // Maximum over pairs of max_in_flight since the last reset.
  std::uint64_t max_in_flight() const;
  void reset_stats();

  // Aggregate lock-free transport counters (spin/park/notify/overflow).
  RingStats ring_stats() const;

  // Maximum time recv() blocks before declaring the schedule deadlocked.
  // Atomic because rank threads read it inside recv() while the driving
  // thread may still be adjusting it.
  void set_recv_timeout(std::chrono::milliseconds timeout) {
    recv_timeout_.store(timeout, std::memory_order_relaxed);
  }

  // ---- fault injection (comm/fault.hpp) ------------------------------------
  //
  // Install/clear only while the fabric is quiescent (no rank threads
  // running): worker threads read the plan without locks, relying on the
  // happens-before edges of thread creation/join.
  void install_fault_plan(const FaultPlan& plan);
  void clear_fault_plan();
  bool has_fault_plan() const { return faults_ != nullptr; }
  const FaultPlan& fault_plan() const;
  FaultStats fault_stats() const;
  // All injected faults so far, in the deterministic fault_event_less order.
  std::vector<FaultEvent> fault_events() const;

  // Marks the fabric failed and wakes every blocked receiver; they throw
  // CommError(kAborted). Used by injected stalls and available to tests.
  // Process-local: peers in other rank processes observe the failure as a
  // recv timeout, not an abort (docs/TRANSPORT.md).
  void abort_all();
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  // Step-boundary repair after an abort: clears the failed flag, drains all
  // undelivered messages (crediting the memory ledger), resets per-stream
  // sequence numbers and re-arms one-shot stall rules' epoch. The trainer
  // restores its own state (core/resilience.hpp) and re-runs the iteration.
  // Single-process only — remote peers' streams cannot be rewound from here.
  void recover();

 private:
  friend class Endpoint;

  // One directed (src,dst) edge's fabric-side bookkeeping: producer-owned
  // per-tag send seqs, the pair/tag stats, and the receiver's spin tally.
  // Byte movement lives in the transport.
  struct Edge {
    // Producer-owned per-tag next sequence number (single producer per
    // edge, so no lock).
    std::map<std::int64_t, std::uint64_t> send_seq;

    struct PairCounters {
      std::atomic<std::uint64_t> messages{0};
      std::atomic<std::uint64_t> bytes{0};
      std::atomic<std::uint64_t> in_flight{0};
      std::atomic<std::uint64_t> max_in_flight{0};
    } pair;
    mutable std::mutex tag_mu;
    std::map<std::int64_t, FabricStats> tags WEIPIPE_GUARDED_BY(tag_mu);

    std::atomic<std::uint64_t> spins{0};
  };

  struct MailKey {
    int src;
    std::int64_t tag;
    bool operator<(const MailKey& o) const {
      return src != o.src ? src < o.src : tag < o.tag;
    }
  };
  // One (src,tag) reassembly stream, owned by the receiving rank's thread.
  // With dedup on (the default), q is kept sorted by seq and next_take_seq
  // is the reassembly cursor; with dedup off (FaultPlan mutation knob) q is
  // raw arrival order.
  struct Stream {
    std::deque<WireFrame> q;
    std::uint64_t next_take_seq = 0;
  };
  // Per-rank inbox: drained-but-unconsumed messages. Touched only by the
  // rank's acting thread (or the driver while quiescent) — no lock.
  struct Inbox {
    std::map<MailKey, Stream> streams;
    std::vector<WireFrame> scratch;  // drain staging, reused per call
  };

  struct Taken {
    Buffer payload;
    std::int64_t flow_id = -1;
  };

  // Mutable fault-injection state; allocated only while a plan is installed.
  struct FaultRuntime {
    explicit FaultRuntime(const FaultPlan& p, int world)
        : plan(p),
          any_stalls(p.has_stalls()),
          op_counts(static_cast<std::size_t>(world)) {}
    FaultPlan plan;
    bool any_stalls = false;
    // Per-rank count of fabric operations (deliver by src, take by dst);
    // advances in program order of that rank's thread, so stall:op=N is
    // deterministic. Atomics: a rank's sends touch its own counter from its
    // own thread, but recover() resets them from the driver thread.
    std::vector<std::atomic<std::int64_t>> op_counts;
    // One-shot latches, one per rule (only stall rules use theirs).
    std::vector<std::unique_ptr<std::atomic<bool>>> fired;
    std::atomic<std::uint32_t> epoch{0};
    mutable std::mutex mu;
    FaultStats stats WEIPIPE_GUARDED_BY(mu);
    std::vector<FaultEvent> events WEIPIPE_GUARDED_BY(mu);
  };

  Edge& edge(int src, int dst) {
    return *edges_[static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(world_size()) +
                   static_cast<std::size_t>(dst)];
  }
  const Edge& edge(int src, int dst) const {
    return *edges_[static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(world_size()) +
                   static_cast<std::size_t>(dst)];
  }

  // Returns the delivered message's flow id.
  std::int64_t deliver(int src, int dst, std::int64_t tag, Buffer payload);
  Taken take(int dst, int src, std::int64_t tag);

  // Consumer side: move everything available on the transport edge into
  // dst's inbox. Returns the number of messages drained.
  std::size_t drain_edge(int src, int dst, Inbox& inbox, bool reliable);
  void inbox_insert(Inbox& inbox, int src, WireFrame frame, bool reliable);
  // Credits the ledger for an undelivered/duplicate message being destroyed.
  static void credit_frame(const WireFrame& frame, int dst);
  // Drains transport + inboxes for every local rank, crediting the ledger
  // (teardown and recover share this).
  void drain_all_local();

  // Fires any matching stall rule for `rank` (throws CommError(kStall) after
  // aborting the fabric); otherwise just advances the rank's op counter.
  void maybe_stall(int rank);
  void record_fault(const FaultEvent& event);

  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::unique_ptr<Transport> transport_;
  std::vector<std::unique_ptr<Edge>> edges_;      // [src * P + dst]
  std::vector<std::unique_ptr<Inbox>> inboxes_;   // [dst]
  LinkModel link_model_;
  std::unique_ptr<FaultRuntime> faults_;
  std::atomic<bool> aborted_{false};
  std::atomic<std::int64_t> next_flow_id_{0};
  std::atomic<std::chrono::milliseconds> recv_timeout_{
      std::chrono::milliseconds(60000)};
};

// Runs fn(rank, endpoint) on one thread per LOCAL rank and joins them all
// (in single-process mode that is every rank; a forked rank process runs
// just its own). When a body returns cleanly its transport output is
// flushed from the same thread. The first exception (if any) is rethrown on
// the caller after every thread has exited, so a failing rank cannot leave
// the fabric with dangling threads.
void run_workers(Fabric& fabric,
                 const std::function<void(int rank, Endpoint& ep)>& fn);

// ---- batched posting (the paper's torch.distributed.batch_isend_irecv) ------

struct SendSpec {
  int dst = 0;
  std::int64_t tag = 0;
  std::span<const float> values;
  WirePrecision precision = WirePrecision::Fp32;
};

struct RecvSpec {
  int src = 0;
  std::int64_t tag = 0;
  // Destination buffer; must stay alive until the returned request completes.
  std::span<float> out;
  WirePrecision precision = WirePrecision::Fp32;
};

// Posts all sends eagerly and returns one Request per recv; waiting on a
// request unpacks into its RecvSpec buffer. Mirrors the PyTorch API WeiPipe's
// reference implementation uses for communication/computation overlap.
std::vector<Request> batch_isend_irecv(Endpoint& ep,
                                       std::span<const SendSpec> sends,
                                       std::span<const RecvSpec> recvs);

}  // namespace weipipe::comm
