// POSIX shared-memory transport: one byte ring per directed rank pair in an
// shm_open'd segment, futex park/wake — the co-located rank *process*
// backend (docs/TRANSPORT.md).
//
// Layout: a segment header (epoch-exchange cell) followed by P*P edge
// blocks; edge (src,dst) holds a cache-line-padded cursor header and a
// power-of-two byte ring. Frames serialize with the shared 48-byte framing
// (comm/transport_stream.hpp) and stream through the ring — a frame larger
// than the ring simply crosses in several pumps, the producer spilling the
// remainder into a process-local pending queue that send/park/flush keep
// pushing. All cross-process synchronization is the two release/acquire
// cursors plus a non-private futex per edge for parking; every process maps
// the segment at its own address, so nothing stored in it is a pointer.
//
// Every rank process shm_open(O_CREAT)s the same "/<name>-g<generation>"
// segment and ftruncates it to the same size: a fresh segment is all zeroes,
// which is exactly the valid empty-ring state, so there is no creation
// handshake to race on. The generation suffix comes from the process-global
// construction counter — rank processes executing the same deterministic
// fabric-construction sequence agree on it without exchanging a single byte.
#include "comm/transport_backends.hpp"

#include <fcntl.h>
#include <linux/futex.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <sstream>
#include <thread>
#include <vector>

#include "comm/spsc_ring.hpp"  // kCacheLine
#include "comm/transport_stream.hpp"
#include "common/check.hpp"
#include "common/stopwatch.hpp"

namespace weipipe::comm::detail {

namespace {

// Bytes per directed-edge ring (power of two). Sized so a P=8 world fits
// comfortably in a default /dev/shm while still passing weight-chunk-scale
// frames in a handful of pumps.
constexpr std::size_t kShmRingBytes = 256 * 1024;

// Ranks on one host share CLOCK_MONOTONIC: a measured rendezvous skew below
// this is transit latency, not clock divergence, and correcting for it would
// *misalign* traces. Only a genuinely distinct clock domain shifts the epoch.
constexpr std::int64_t kSharedClockSkewNs = 100'000'000;  // 100ms

long futex(std::atomic<std::uint32_t>* addr, int op, std::uint32_t val,
           const timespec* timeout) {
  // Non-private futex ops: the word lives in shared memory and must wake
  // waiters in other processes.
  return syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), op, val,
                 timeout, nullptr, 0);
}

struct SegmentHeader {
  // Epoch exchange (forked mode): rank 0 publishes its steady_now_ns() and
  // flips ready; peers measure their skew against it at attach.
  std::atomic<std::int64_t> epoch_ns;
  std::atomic<std::uint32_t> epoch_ready;
  char pad[kCacheLine - 12];
};
static_assert(sizeof(SegmentHeader) == kCacheLine);

// Shared-memory edge header. Cursors are free-running byte counts (the ring
// index is cursor & mask). The futex word counts publications; the consumer
// waits on it with its last observed value, so a publication between
// observe and wait turns the wait into an immediate EAGAIN — no lost wakeup.
struct ShmEdgeHeader {
  alignas(kCacheLine) std::atomic<std::uint64_t> tail;  // producer
  char pad1[kCacheLine - sizeof(std::atomic<std::uint64_t>)];
  alignas(kCacheLine) std::atomic<std::uint64_t> head;  // consumer
  char pad2[kCacheLine - sizeof(std::atomic<std::uint64_t>)];
  alignas(kCacheLine) std::atomic<std::uint32_t> futex_word;
  std::atomic<std::uint32_t> consumer_parked;
  char pad3[kCacheLine - 2 * sizeof(std::atomic<std::uint32_t>)];
};
static_assert(sizeof(ShmEdgeHeader) == 3 * kCacheLine);
static_assert(std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<std::uint32_t>::is_always_lock_free,
              "shared-memory atomics must be address-free");

constexpr std::size_t kEdgeBlockBytes = sizeof(ShmEdgeHeader) + kShmRingBytes;

class ShmTransport final : public Transport {
 public:
  ShmTransport(const TransportSpec& spec, int world_size,
               const std::atomic<bool>* abort_flag, std::uint64_t generation)
      : world_(world_size),
        local_rank_(spec.local_rank),
        abort_flag_(abort_flag) {
    std::ostringstream name;
    name << "/"
         << (spec.shm_name.empty() ? "weipipe-" + std::to_string(getpid())
                                   : spec.shm_name)
         << "-g" << generation;
    seg_name_ = name.str();
    seg_bytes_ = sizeof(SegmentHeader) +
                 static_cast<std::size_t>(world_) *
                     static_cast<std::size_t>(world_) * kEdgeBlockBytes;
    const int fd = shm_open(seg_name_.c_str(), O_CREAT | O_RDWR, 0600);
    WEIPIPE_CHECK_MSG(fd >= 0, "shm_open(" << seg_name_
                                           << "): " << std::strerror(errno));
    if (ftruncate(fd, static_cast<off_t>(seg_bytes_)) != 0) {
      const int err = errno;
      close(fd);
      WEIPIPE_CHECK_MSG(false, "ftruncate(" << seg_name_
                                            << "): " << std::strerror(err));
    }
    base_ = static_cast<std::uint8_t*>(mmap(nullptr, seg_bytes_,
                                            PROT_READ | PROT_WRITE,
                                            MAP_SHARED, fd, 0));
    close(fd);
    WEIPIPE_CHECK_MSG(base_ != MAP_FAILED,
                      "mmap(" << seg_name_ << "): " << std::strerror(errno));
    out_.resize(static_cast<std::size_t>(world_) *
                static_cast<std::size_t>(world_));
    readers_.resize(out_.size());
    exchange_epoch();
  }

  ~ShmTransport() override {
    // Push out whatever the owner did not flush explicitly, bounded: a
    // receiver that already exited leaves its ring full and we must not
    // hang teardown on it.
    for (int r = 0; r < world_; ++r) {
      if (is_local(r)) {
        flush_bounded(r, std::chrono::milliseconds(2000));
      }
    }
    munmap(base_, seg_bytes_);
    // Every process unlinks; the first wins and ENOENT afterwards is fine.
    // The mapping itself stays valid in any process still holding it.
    shm_unlink(seg_name_.c_str());
  }

  const char* name() const override { return "shm"; }
  bool is_local(int rank) const override {
    return local_rank_ < 0 || rank == local_rank_;
  }
  bool zero_copy() const override { return false; }
  int spin_hint() const override { return 256; }

  void send(int src, int dst, WireFrame frame) override {
    Out& out = out_edge(src, dst);
    out.q.push_back(std::move(frame));
    pump(src, dst);
    if (!out.q.empty()) {
      overflow_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::size_t drain(int src, int dst, std::vector<WireFrame>& out) override {
    ShmEdgeHeader& h = edge_header(src, dst);
    std::uint8_t* ring = ring_data(src, dst);
    FrameReader& reader = readers_[edge_index(src, dst)];
    std::size_t drained = 0;
    for (;;) {
      const std::uint64_t head = h.head.load(std::memory_order_relaxed);
      const std::uint64_t tail = h.tail.load(std::memory_order_acquire);
      if (tail == head) {
        break;
      }
      std::uint64_t avail = tail - head;
      std::uint64_t consumed = 0;
      while (avail > 0) {
        const std::span<std::uint8_t> dest = reader.dest();
        std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(avail, dest.size()));
        copy_out(ring, head + consumed, dest.data(), n);
        WireFrame frame;
        if (reader.commit(n, frame)) {
          out.push_back(std::move(frame));
          ++drained;
        }
        consumed += n;
        avail -= n;
      }
      // Release the bytes back to the producer only after they are fully
      // copied out.
      h.head.store(head + consumed, std::memory_order_release);
    }
    return drained;
  }

  void park(int dst, int src,
            std::chrono::steady_clock::time_point deadline) override {
    // Service our own buffered output first: two mutually-parked ranks with
    // full rings toward each other must keep making wire progress.
    const bool have_pending = pump_all(dst);
    ShmEdgeHeader& h = edge_header(src, dst);
    const std::uint32_t observed =
        h.futex_word.load(std::memory_order_seq_cst);
    if (h.tail.load(std::memory_order_acquire) !=
        h.head.load(std::memory_order_relaxed)) {
      return;
    }
    h.consumer_parked.store(1, std::memory_order_seq_cst);
    if (h.tail.load(std::memory_order_seq_cst) !=
            h.head.load(std::memory_order_relaxed) ||
        (abort_flag_ != nullptr &&
         abort_flag_->load(std::memory_order_seq_cst))) {
      h.consumer_parked.store(0, std::memory_order_relaxed);
      return;
    }
    // Bounded wait slices: pending output wants frequent pumping, and a
    // cross-process abort is only observed on the way out of the wait.
    const auto now = std::chrono::steady_clock::now();
    auto slice = deadline - now;
    const auto cap = have_pending ? std::chrono::milliseconds(1)
                                  : std::chrono::milliseconds(100);
    if (slice > cap) {
      slice = cap;
    }
    if (slice.count() > 0) {
      const auto ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(slice);
      timespec ts;
      ts.tv_sec = static_cast<time_t>(ns.count() / 1'000'000'000);
      ts.tv_nsec = static_cast<long>(ns.count() % 1'000'000'000);
      parks_.fetch_add(1, std::memory_order_relaxed);
      futex(&h.futex_word, FUTEX_WAIT, observed, &ts);
    }
    h.consumer_parked.store(0, std::memory_order_relaxed);
  }

  void wake_all() override {
    for (int dst = 0; dst < world_; ++dst) {
      if (!is_local(dst)) {
        continue;
      }
      for (int src = 0; src < world_; ++src) {
        if (src == dst) {
          continue;
        }
        ShmEdgeHeader& h = edge_header(src, dst);
        h.futex_word.fetch_add(1, std::memory_order_seq_cst);
        futex(&h.futex_word, FUTEX_WAKE, INT32_MAX, nullptr);
      }
    }
  }

  void flush(int src) override {
    flush_bounded(src, std::chrono::milliseconds(10000));
  }

  RingStats wire_stats() const override {
    RingStats s;
    s.parks = parks_.load(std::memory_order_relaxed);
    s.notifies = notifies_.load(std::memory_order_relaxed);
    s.overflow = overflow_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  // Process-local producer side of one edge: frames not yet fully written
  // into the shared ring. front() is in progress, `off` bytes of its
  // header||payload already on the wire. Owned by the thread acting as src.
  struct Out {
    std::deque<WireFrame> q;
    std::size_t off = 0;
    std::uint8_t hdr[kFrameHeaderBytes];
    bool hdr_valid = false;
  };

  std::size_t edge_index(int src, int dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(world_) +
           static_cast<std::size_t>(dst);
  }
  ShmEdgeHeader& edge_header(int src, int dst) {
    return *reinterpret_cast<ShmEdgeHeader*>(
        base_ + sizeof(SegmentHeader) + edge_index(src, dst) * kEdgeBlockBytes);
  }
  std::uint8_t* ring_data(int src, int dst) {
    return base_ + sizeof(SegmentHeader) +
           edge_index(src, dst) * kEdgeBlockBytes + sizeof(ShmEdgeHeader);
  }
  Out& out_edge(int src, int dst) { return out_[edge_index(src, dst)]; }

  static void copy_in(std::uint8_t* ring, std::uint64_t cursor,
                      const std::uint8_t* from, std::size_t n) {
    const std::size_t at = static_cast<std::size_t>(cursor) &
                           (kShmRingBytes - 1);
    const std::size_t first = std::min(n, kShmRingBytes - at);
    std::memcpy(ring + at, from, first);
    if (n > first) {
      std::memcpy(ring, from + first, n - first);
    }
  }
  static void copy_out(const std::uint8_t* ring, std::uint64_t cursor,
                       std::uint8_t* to, std::size_t n) {
    const std::size_t at = static_cast<std::size_t>(cursor) &
                           (kShmRingBytes - 1);
    const std::size_t first = std::min(n, kShmRingBytes - at);
    std::memcpy(to, ring + at, first);
    if (n > first) {
      std::memcpy(to + first, ring, n - first);
    }
  }

  // Writes as much buffered output for (src,dst) as ring space allows.
  // Returns true if anything was published.
  bool pump(int src, int dst) {
    Out& out = out_edge(src, dst);
    if (out.q.empty()) {
      return false;
    }
    ShmEdgeHeader& h = edge_header(src, dst);
    std::uint8_t* ring = ring_data(src, dst);
    std::uint64_t tail = h.tail.load(std::memory_order_relaxed);
    bool published = false;
    while (!out.q.empty()) {
      WireFrame& frame = out.q.front();
      if (!out.hdr_valid) {
        encode_frame_header(frame, out.hdr);
        out.hdr_valid = true;
      }
      const std::uint64_t head = h.head.load(std::memory_order_acquire);
      std::uint64_t free = kShmRingBytes - (tail - head);
      if (free == 0) {
        break;
      }
      const std::size_t total = kFrameHeaderBytes + frame.payload.size();
      while (free > 0 && out.off < total) {
        std::size_t n;
        if (out.off < kFrameHeaderBytes) {
          n = static_cast<std::size_t>(std::min<std::uint64_t>(
              free, kFrameHeaderBytes - out.off));
          copy_in(ring, tail, out.hdr + out.off, n);
        } else {
          n = static_cast<std::size_t>(
              std::min<std::uint64_t>(free, total - out.off));
          copy_in(ring, tail,
                  frame.payload.data() + (out.off - kFrameHeaderBytes), n);
        }
        tail += n;
        out.off += n;
        free -= n;
        published = true;
      }
      if (out.off == total) {
        out.q.pop_front();
        out.off = 0;
        out.hdr_valid = false;
      } else {
        break;  // ring full mid-frame; resume on the next pump
      }
    }
    if (published) {
      h.tail.store(tail, std::memory_order_release);
      h.futex_word.fetch_add(1, std::memory_order_seq_cst);
      if (h.consumer_parked.load(std::memory_order_seq_cst) != 0) {
        futex(&h.futex_word, FUTEX_WAKE, INT32_MAX, nullptr);
        notifies_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return !out.q.empty();
  }

  // Pumps every out edge of `src`; returns true while anything stays queued.
  bool pump_all(int src) {
    bool pending = false;
    for (int dst = 0; dst < world_; ++dst) {
      if (dst != src) {
        pending |= pump(src, dst);
      }
    }
    return pending;
  }

  void flush_bounded(int src, std::chrono::milliseconds budget) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (pump_all(src)) {
      if (std::chrono::steady_clock::now() >= deadline) {
        break;  // receiver gone; teardown must not hang on its full ring
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  void exchange_epoch() {
    if (local_rank_ < 0) {
      return;  // single process, single clock
    }
    SegmentHeader& seg = *reinterpret_cast<SegmentHeader*>(base_);
    if (local_rank_ == 0) {
      seg.epoch_ns.store(steady_now_ns(), std::memory_order_relaxed);
      seg.epoch_ready.store(1, std::memory_order_release);
      return;
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (seg.epoch_ready.load(std::memory_order_acquire) == 0) {
      WEIPIPE_CHECK_MSG(std::chrono::steady_clock::now() < deadline,
                        "shm rendezvous: rank 0 never published its epoch in "
                            << seg_name_);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const std::int64_t skew =
        seg.epoch_ns.load(std::memory_order_relaxed) - steady_now_ns();
    // Same-host ranks share CLOCK_MONOTONIC: a sub-threshold "skew" is just
    // the publish-to-read latency and correcting for it would misalign the
    // merged traces. Only a real clock-domain difference installs an offset.
    if (skew > kSharedClockSkewNs || skew < -kSharedClockSkewNs) {
      set_steady_epoch_offset(skew);
    }
  }

  const int world_;
  const int local_rank_;
  const std::atomic<bool>* abort_flag_;
  std::string seg_name_;
  std::size_t seg_bytes_ = 0;
  std::uint8_t* base_ = nullptr;
  std::vector<Out> out_;            // [src * P + dst], producer-thread owned
  std::vector<FrameReader> readers_;  // [src * P + dst], consumer-thread owned
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> notifies_{0};
  std::atomic<std::uint64_t> overflow_{0};
};

}  // namespace

std::unique_ptr<Transport> make_shm_transport(
    const TransportSpec& spec, int world_size,
    const std::atomic<bool>* abort_flag, std::uint64_t generation) {
  return std::make_unique<ShmTransport>(spec, world_size, abort_flag,
                                        generation);
}

}  // namespace weipipe::comm::detail
