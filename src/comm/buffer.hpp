// Refcounted payload buffer for zero-copy in-process transport.
//
// A Buffer is an immutable-after-send byte payload shared by reference
// count: Fabric::send moves the handle into the mailbox ring and the
// receiver takes the same bytes out — a weight shard crosses the fabric
// without a single payload memcpy. Trainers exploit this further by
// *relaying* a received buffer to the next rank unchanged (WeiPipe's W/BW
// flows circulate bit-identical within a turn), so one pack on the owner
// serves the whole ring pass.
//
// Two storage modes:
//  * allocate(n) — tracked storage via the PR 4 ledger (obs::detail::
//    tracked_alloc under MemScope(kCommBuffers)): charged to the allocating
//    thread's rank bucket at allocation and credited exactly when the last
//    reference drops, wherever that happens. Tracked buffers are NOT
//    additionally charged per-mailbox-residency (that would double count).
//  * adopt(vector) — wraps a caller-provided byte vector (the legacy
//    byte-span Endpoint::send path). These are not ledger-tracked
//    themselves; the fabric keeps charging their mailbox residency per
//    message, preserving the PR 4 comm_buffers semantics for small control
//    messages.
//
// Ownership rules (see docs/FABRIC.md): fill a buffer only while unique();
// after handing it to send() treat the contents as frozen — the fabric, a
// dup-fault copy, and downstream ranks may all read it concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace weipipe::comm {

class Buffer {
 public:
  Buffer() = default;

  // Tracked, ledger-charged storage (kCommBuffers, calling thread's rank).
  static Buffer allocate(std::size_t size);
  // Wraps an existing byte vector without copying; not ledger-tracked.
  static Buffer adopt(std::vector<std::uint8_t> bytes);

  std::size_t size() const { return storage_ ? storage_->size : 0; }
  bool empty() const { return size() == 0; }
  explicit operator bool() const { return static_cast<bool>(storage_); }

  const std::uint8_t* data() const {
    return storage_ ? storage_->data() : nullptr;
  }
  std::span<const std::uint8_t> span() const { return {data(), size()}; }

  // Mutable access: only meaningful while unique() (pre-send fill).
  std::uint8_t* mutable_data() { return storage_ ? storage_->data() : nullptr; }

  bool unique() const { return storage_ && storage_.use_count() == 1; }
  long use_count() const { return storage_ ? storage_.use_count() : 0; }
  // True when the bytes live in tracked (ledger-charged) storage.
  bool tracked() const { return storage_ && storage_->tracked; }

  void reset() { storage_.reset(); }

  // Extracts the bytes as a vector: moves the adopted vector out when this
  // is the sole owner (zero copy), copies otherwise.
  std::vector<std::uint8_t> release_vector();

 private:
  struct Storage {
    explicit Storage(std::size_t n);                 // tracked
    explicit Storage(std::vector<std::uint8_t> v);   // adopted
    ~Storage();
    Storage(const Storage&) = delete;
    Storage& operator=(const Storage&) = delete;

    std::uint8_t* data() {
      return tracked ? tracked_data : adopted.data();
    }

    std::size_t size = 0;
    bool tracked = false;
    std::uint8_t* tracked_data = nullptr;
    std::vector<std::uint8_t> adopted;
  };

  std::shared_ptr<Storage> storage_;
};

}  // namespace weipipe::comm
