// Wire packing: float tensors cross the fabric in a declared WirePrecision.
//
// Packing is where mixed-precision *communication* happens (paper §5): a
// chunk sent as fp16 is rounded once on send and widened on receive — exactly
// the precision loss a GPU implementation pays when it keeps fp16 circulating
// buffers. Byte counts therefore reflect the real message sizes the cost
// model reasons about.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/fixed_types.hpp"

namespace weipipe::comm {

std::vector<std::uint8_t> pack_floats(std::span<const float> values,
                                      WirePrecision precision);

// Unpacks into `out`; out.size() must match the packed element count.
void unpack_floats(std::span<const std::uint8_t> bytes,
                   WirePrecision precision, std::span<float> out);

std::size_t packed_size(std::size_t num_elements, WirePrecision precision);

}  // namespace weipipe::comm
