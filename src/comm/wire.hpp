// Wire packing: float tensors cross the fabric in a declared WirePrecision.
//
// Packing is where mixed-precision *communication* happens (paper §5): a
// chunk sent as fp16 is rounded once on send and widened on receive — exactly
// the precision loss a GPU implementation pays when it keeps fp16 circulating
// buffers. Byte counts therefore reflect the real message sizes the cost
// model reasons about.
//
// The fp32<->fp16/bf16 converters are SIMD-packed (F16C/AVX2, 8 lanes per
// iteration) with a runtime CPU dispatch and a portable scalar fallback; the
// SIMD paths are bit-identical to the scalar reference in common/
// fixed_types.hpp for every input, NaN payloads and denormals included (the
// hardware converter's NaN handling differs, so NaN lanes are blended to the
// canonical scalar encoding — see wire.cpp).
//
// Int8 is a block-quantized gradient wire: each 64-element chunk carries one
// fp32 scale (max-abs / 127) followed by the int8 codes. It is meant for the
// weight-gradient flow, where the receiving owner widens to fp32 before
// accumulating (PipeDream-2BW-style low-precision circulation with
// full-precision accumulation). Non-finite inputs saturate: NaN encodes as
// 0, +/-inf clamps to the chunk's max code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "comm/buffer.hpp"
#include "common/fixed_types.hpp"

namespace weipipe::comm {

// Elements per int8 quantization chunk (one fp32 scale per chunk).
inline constexpr std::size_t kInt8ChunkElems = 64;

std::size_t packed_size(std::size_t num_elements, WirePrecision precision);

std::vector<std::uint8_t> pack_floats(std::span<const float> values,
                                      WirePrecision precision);

// Packs straight into a tracked (ledger-charged) zero-copy Buffer: the one
// conversion pass is the only time the payload is touched before the
// receiver unpacks it, however many ranks it is relayed through.
Buffer pack_floats_to_buffer(std::span<const float> values,
                             WirePrecision precision);

// Packs into caller-provided storage of exactly packed_size(...) bytes.
void pack_floats_into(std::span<const float> values, WirePrecision precision,
                      std::uint8_t* dst);

// Unpacks into `out`; bytes.size() must match packed_size(out.size(), ...).
void unpack_floats(std::span<const std::uint8_t> bytes,
                   WirePrecision precision, std::span<float> out);

// Conversion kernels, exposed for the bitwise SIMD-vs-scalar cross-check
// tests and the microbenchmarks. The *_simd variants must only be called
// when simd_available() is true; pack_floats_into dispatches automatically.
namespace wire_detail {

// True when the running CPU has F16C+AVX2 (checked once, cached).
bool simd_available();

void pack_f16_scalar(const float* src, std::size_t n, std::uint16_t* dst);
void unpack_f16_scalar(const std::uint16_t* src, std::size_t n, float* dst);
void pack_bf16_scalar(const float* src, std::size_t n, std::uint16_t* dst);
void unpack_bf16_scalar(const std::uint16_t* src, std::size_t n, float* dst);

void pack_f16_simd(const float* src, std::size_t n, std::uint16_t* dst);
void unpack_f16_simd(const std::uint16_t* src, std::size_t n, float* dst);
void pack_bf16_simd(const float* src, std::size_t n, std::uint16_t* dst);
void unpack_bf16_simd(const std::uint16_t* src, std::size_t n, float* dst);

void pack_int8(const float* src, std::size_t n, std::uint8_t* dst);
void unpack_int8(const std::uint8_t* src, std::size_t n, float* dst);

}  // namespace wire_detail

}  // namespace weipipe::comm
