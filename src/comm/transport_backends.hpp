// Internal: per-backend constructors wired up by make_transport()
// (comm/transport.cpp). Not part of the public transport API.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "comm/transport.hpp"

namespace weipipe::comm::detail {

// `generation` is the process-global construction counter: rank processes
// executing the same deterministic fabric-construction sequence use it to
// rendezvous on matching shm segments / tcp connection epochs.
std::unique_ptr<Transport> make_shm_transport(
    const TransportSpec& spec, int world_size,
    const std::atomic<bool>* abort_flag, std::uint64_t generation);

std::unique_ptr<Transport> make_tcp_transport(
    const TransportSpec& spec, int world_size,
    const std::atomic<bool>* abort_flag, std::uint64_t generation);

}  // namespace weipipe::comm::detail
