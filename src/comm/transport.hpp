// Pluggable wire transports under the fabric (docs/TRANSPORT.md).
//
// comm::Fabric owns everything message-semantic — per-(src,dst,tag) stream
// sequence numbers, receiver-side reassembly + dedup, fault injection,
// per-kind wire accounting, ledger charges, health heartbeats, obs spans.
// Everything byte-moving lives behind comm::Transport:
//
//   * inproc — the original lock-free SPSC mailbox per directed rank pair
//     (comm/spsc_ring.hpp), refcounted zero-copy payload handoff;
//   * shm    — POSIX shared memory (`shm_open`) holding one byte ring per
//     directed edge, futex park/wake, for co-located rank *processes*;
//   * tcp    — nonblocking sockets with a per-peer pending queue and
//     writev/sendmsg scatter-gather framing, for real interconnects.
//
// The reliability layer above is what makes the backends interchangeable: a
// WireFrame that crosses any of the three arrives with the same (tag, seq,
// deliver_at, reordered) tuple, so the chaos differ holds bitwise across
// backends and the closed-form volume predictions keep MATCHing.
//
// Thread contract (inherited from the fabric): at most one thread acts as a
// given rank at a time. send(src, ...) and flush(src) are called only by the
// thread acting as src; drain(src, dst, ...) and park(dst, ...) only by the
// thread acting as dst. wake_all() may be called from any thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/buffer.hpp"

namespace weipipe::comm {

// Lock-free transport counters, aggregated over all edges. spins/parks
// split a blocked receiver's time into the cheap path (spin iterations
// before data arrived) and the expensive one (condvar/futex/poll parks);
// notifies are producer-side wakeups of a parked consumer; overflow counts
// messages that did not fit the bounded fast path and took the spillover
// queue (mutex-guarded deque for inproc, pending byte queue for shm/tcp).
struct RingStats {
  std::uint64_t spins = 0;
  std::uint64_t parks = 0;
  std::uint64_t notifies = 0;
  std::uint64_t overflow = 0;
};

// One message on the wire. The fabric assigns seq/flow_id/deliver_at before
// handing the frame to the transport; the transport moves it (or its bytes)
// to dst unchanged. `ledger_bytes` is fabric bookkeeping for same-process
// mailbox residency and never crosses a process boundary — remote arrivals
// rematerialize as tracked buffers charged to the receiving rank's bucket.
struct WireFrame {
  Buffer payload;
  std::int64_t tag = 0;
  std::uint64_t seq = 0;
  std::int64_t flow_id = -1;
  // Absolute steady-clock deadline (common/stopwatch.hpp steady_now_ns
  // epoch) before which the receiver must not surface the frame — the link
  // model and injected delays live here. Comparable across rank processes
  // on one host (shared CLOCK_MONOTONIC) and via the rendezvous epoch
  // exchange otherwise.
  std::int64_t deliver_at_ns = 0;
  std::int64_t ledger_bytes = 0;
  // nodedup mutation mode: this frame fell behind its successor.
  bool reordered = false;
};

enum class TransportKind { kInproc, kShm, kTcp };

// Which backend a Fabric rides on and where this process sits in the world.
struct TransportSpec {
  TransportKind kind = TransportKind::kInproc;
  // -1 = every rank lives in this process (threads); >= 0 = this process
  // hosts exactly that rank and peers are reached over shm/tcp.
  int local_rank = -1;
  // shm: segment name prefix (a per-construction generation suffix is
  // appended); empty = derived from the process id, which is only correct
  // single-process — forked rank processes must share an explicit name.
  std::string shm_name;
  // tcp: rendezvous host and base port; rank r listens on base_port + r.
  // base_port 0 = ephemeral ports, valid only with local_rank == -1 (the
  // port table is discoverable only inside one process).
  std::string host = "127.0.0.1";
  int base_port = 0;

  bool all_local() const { return local_rank < 0; }
};

const char* transport_kind_name(TransportKind kind);

// "inproc" | "shm[:name=<seg>][:rank=<r>]" |
// "tcp[:host=<h>][:port=<p>][:rank=<r>]". Throws weipipe::Error on junk.
TransportSpec parse_transport_spec(const std::string& text);
std::string to_string(const TransportSpec& spec);

// Process-wide default used by Fabric when no spec is passed explicitly —
// how `weipipe_cli --transport ...` and forked rank children retarget every
// trainer-constructed fabric without threading a spec through each layer.
// Read/written from the driver thread only (before workers start).
TransportSpec default_transport_spec();
void set_default_transport_spec(const TransportSpec& spec);

class Transport {
 public:
  virtual ~Transport() = default;

  virtual const char* name() const = 0;
  // True when `rank` is hosted by this process (run_workers spawns threads
  // only for local ranks).
  virtual bool is_local(int rank) const = 0;
  // True when a payload Buffer crosses send->recv with pointer identity.
  virtual bool zero_copy() const = 0;
  // Receiver spin budget before parking: high for the in-memory mailbox,
  // low where every drain probe costs a syscall.
  virtual int spin_hint() const = 0;

  // Producer side (thread acting as src). Never blocks on the consumer:
  // frames that do not fit the fast path are buffered and pushed out by
  // later send/park/flush calls on src's thread.
  virtual void send(int src, int dst, WireFrame frame) = 0;
  // Consumer side (thread acting as dst): append every frame currently
  // available on edge (src, dst) to `out`, in arrival order. dst must be
  // local.
  virtual std::size_t drain(int src, int dst, std::vector<WireFrame>& out) = 0;
  // Consumer side: block until input may be available on edge (src, dst),
  // wake_all() fires, or `deadline` — spurious returns are allowed and the
  // caller re-drains in a loop. Also services dst's own buffered output so
  // two mutually-parked ranks cannot deadlock on full wires.
  virtual void park(int dst, int src,
                    std::chrono::steady_clock::time_point deadline) = 0;
  // Wakes every parked local consumer (abort path).
  virtual void wake_all() = 0;
  // Best-effort bounded blocking push of src's buffered output (thread
  // acting as src, or any thread while quiescent).
  virtual void flush(int src) { (void)src; }
  virtual RingStats wire_stats() const = 0;
};

// Builds a transport for `world_size` ranks. `abort_flag` is the fabric's
// failed latch: park() must return promptly once it is set (checked in the
// park recheck for inproc, bounded wait slices elsewhere). shm/tcp backends
// consume one process-global generation number per construction so that
// rank processes executing the same deterministic fabric-construction
// sequence rendezvous on matching segments/connections.
std::unique_ptr<Transport> make_transport(const TransportSpec& spec,
                                          int world_size,
                                          const std::atomic<bool>* abort_flag);

}  // namespace weipipe::comm
