// Bounded lock-free single-producer/single-consumer ring.
//
// This is the fabric's per-edge transport (one ring per directed rank pair):
// rank threads exchange Messages without taking a mutex on the hot path. The
// design is the classic bounded SPSC queue (the eskada event-deque idiom):
//
//  * free-running 64-bit head/tail cursors; the slot index is cursor & mask,
//    so full/empty never needs a wasted slot and wraparound is implicit
//    (2^64 pushes outlives any run);
//  * the producer caches the consumer's head (and vice versa) so the common
//    case touches one remote cache line only when its cached view says the
//    ring might be full/empty;
//  * slots are raw storage: elements are placement-new'd by the producer and
//    destroyed by the consumer (or by the destructor for in-flight slots).
//
// Memory ordering: the producer publishes a slot with a seq_cst store of
// tail_ and the consumer retires one with a release store of head_; readers
// use acquire (or seq_cst) loads. Publication is deliberately seq_cst rather
// than plain release because the fabric pairs each push with a Dekker-style
// check of the consumer's "parked" flag (see fabric.cpp): the push must not
// be reordered after the flag load, and we want that guarantee expressed on
// the atomics themselves — not via standalone fences, which TSan does not
// model. On x86 the cost is one xchg per push, far below the mutex+condvar
// wake this replaces.
//
// Thread contract: exactly one thread may call producer methods (try_push)
// and one thread consumer methods (front/pop_front) at any given time. The
// acting thread may change over the ring's lifetime only across an external
// happens-before edge (the fabric gets this from std::thread join at every
// run_workers boundary).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

namespace weipipe::comm {

// Destructive-interference distance. A fixed constant rather than
// std::hardware_destructive_interference_size: the library value varies with
// -mtune (gcc warns when it leaks into headers), and 64 is correct for every
// x86-64/aarch64 target this repo builds on.
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two; 1 is a valid capacity.
  explicit SpscRing(std::size_t capacity)
      : capacity_(round_up_pow2(capacity)),
        mask_(capacity_ - 1),
        slots_(static_cast<Slot*>(::operator new[](
            capacity_ * sizeof(Slot), std::align_val_t(alignof(Slot))))) {}

  ~SpscRing() {
    // Destroy in-flight elements [head, tail). Only safe when no other
    // thread is touching the ring — the fabric destroys rings while
    // quiescent (all rank threads joined).
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (; head != tail; ++head) {
      slot(head)->destroy();
    }
    ::operator delete[](static_cast<void*>(slots_),
                        std::align_val_t(alignof(Slot)));
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  // Producer side. Returns false (and leaves `value` intact) when full.
  bool try_push(T&& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity_) {
        return false;  // genuinely full
      }
    }
    slot(tail)->construct(std::move(value));
    // seq_cst publish: see the header comment (Dekker pairing with the
    // consumer's parked flag in the fabric).
    tail_.store(tail + 1, std::memory_order_seq_cst);
    return true;
  }

  // Consumer side: pointer to the oldest element, or nullptr when empty.
  // The pointer stays valid until pop_front().
  T* front() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      // seq_cst load: orders after the consumer's parked-flag store in the
      // fabric's spin/park loop (the other half of the Dekker pair).
      cached_tail_ = tail_.load(std::memory_order_seq_cst);
      if (head == cached_tail_) {
        return nullptr;
      }
    }
    return slot(head)->get();
  }

  void pop_front() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    slot(head)->destroy();
    head_.store(head + 1, std::memory_order_release);
  }

  // Racy size estimate for diagnostics (timeout reports, metrics). Exact
  // whenever the ring is quiescent.
  std::size_t size_approx() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

 private:
  struct Slot {
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
    void construct(T&& value) { ::new (storage) T(std::move(value)); }
    T* get() { return std::launder(reinterpret_cast<T*>(storage)); }
    void destroy() { get()->~T(); }
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) {
      p <<= 1;
    }
    return p;
  }

  Slot* slot(std::uint64_t cursor) {
    return &slots_[static_cast<std::size_t>(cursor) & mask_];
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  Slot* const slots_;

  // Producer and consumer cursors on their own cache lines; each side's
  // cached view of the other cursor lives next to its own cursor (only that
  // side touches it).
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;  // producer-local
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;  // consumer-local
};

}  // namespace weipipe::comm
