#include "comm/fault.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "obs/health.hpp"
#include "obs/json.hpp"

namespace weipipe::comm {

namespace {

// splitmix64 finalizer (common/rng.hpp uses the same constants): mixes one
// 64-bit word into the running hash.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h + 0x9E3779B97F4A7C15ull + v;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double unit_double(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::int64_t parse_i64(const std::string& clause, const std::string& value) {
  std::size_t used = 0;
  std::int64_t v = 0;
  try {
    v = std::stoll(value, &used);
  } catch (const std::exception&) {
    used = std::string::npos;
  }
  WEIPIPE_CHECK_MSG(used == value.size(),
                    "fault spec: bad integer '" << value << "' in '" << clause
                                                << "'");
  return v;
}

double parse_f64(const std::string& clause, const std::string& value) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &used);
  } catch (const std::exception&) {
    used = std::string::npos;
  }
  WEIPIPE_CHECK_MSG(used == value.size(),
                    "fault spec: bad number '" << value << "' in '" << clause
                                               << "'");
  return v;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "dup";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kStall: return "stall";
  }
  return "?";
}

const char* to_string(CommErrorKind kind) {
  switch (kind) {
    case CommErrorKind::kRecvTimeout: return "recv-timeout";
    case CommErrorKind::kStall: return "stall";
    case CommErrorKind::kAborted: return "aborted";
  }
  return "?";
}

bool FaultPlan::has_stalls() const {
  return std::any_of(rules.begin(), rules.end(), [](const FaultRule& r) {
    return r.kind == FaultKind::kStall;
  });
}

bool FaultPlan::hit(std::size_t rule_index, int src, int dst, std::int64_t tag,
                    std::uint64_t seq, int attempt) const {
  const FaultRule& rule = rules[rule_index];
  if (rule.src >= 0 && rule.src != src) {
    return false;
  }
  if (rule.dst >= 0 && rule.dst != dst) {
    return false;
  }
  if (rule.tag >= 0 && rule.tag != tag) {
    return false;
  }
  if (rule.probability >= 1.0) {
    return true;
  }
  if (rule.probability <= 0.0) {
    return false;
  }
  std::uint64_t h = mix(seed, static_cast<std::uint64_t>(rule.kind));
  h = mix(h, rule_index);
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(src)));
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(dst)));
  h = mix(h, static_cast<std::uint64_t>(tag));
  h = mix(h, seq);
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(attempt)));
  return unit_double(h) < rule.probability;
}

FaultPlan parse_fault_plan(const std::string& spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string clause =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (clause.empty()) {
      continue;
    }

    // Split "kind:key=value:key=value".
    std::vector<std::string> parts;
    std::size_t p = 0;
    while (p <= clause.size()) {
      const std::size_t colon = clause.find(':', p);
      parts.push_back(clause.substr(
          p, colon == std::string::npos ? std::string::npos : colon - p));
      if (colon == std::string::npos) {
        break;
      }
      p = colon + 1;
    }
    const std::string& kind = parts.front();

    if (kind == "nodedup") {
      plan.dedup = false;
      continue;
    }
    if (kind == "retries") {
      WEIPIPE_CHECK_MSG(parts.size() == 2,
                        "fault spec: use retries:N, got '" << clause << "'");
      plan.max_retries = static_cast<int>(parse_i64(clause, parts[1]));
      continue;
    }

    FaultRule rule;
    if (kind == "delay") {
      rule.kind = FaultKind::kDelay;
    } else if (kind == "drop") {
      rule.kind = FaultKind::kDrop;
      rule.delay = std::chrono::nanoseconds(1'000'000);  // backoff base
    } else if (kind == "dup") {
      rule.kind = FaultKind::kDuplicate;
    } else if (kind == "reorder") {
      rule.kind = FaultKind::kReorder;
    } else if (kind == "stall") {
      rule.kind = FaultKind::kStall;
      rule.probability = 1.0;
    } else {
      WEIPIPE_CHECK_MSG(false, "fault spec: unknown kind '"
                                   << kind << "' in '" << clause
                                   << "' (delay | drop | dup | reorder | "
                                      "stall | nodedup | retries)");
    }

    for (std::size_t i = 1; i < parts.size(); ++i) {
      const std::size_t eq = parts[i].find('=');
      WEIPIPE_CHECK_MSG(eq != std::string::npos,
                        "fault spec: expected key=value, got '" << parts[i]
                                                                << "'");
      const std::string key = parts[i].substr(0, eq);
      const std::string value = parts[i].substr(eq + 1);
      if (key == "p") {
        rule.probability = parse_f64(clause, value);
      } else if (key == "src") {
        rule.src = static_cast<int>(parse_i64(clause, value));
      } else if (key == "dst") {
        rule.dst = static_cast<int>(parse_i64(clause, value));
      } else if (key == "tag") {
        rule.tag = parse_i64(clause, value);
      } else if (key == "ns" || key == "us" || key == "ms") {
        const std::int64_t scale =
            key == "ns" ? 1 : key == "us" ? 1'000 : 1'000'000;
        // For stalls the duration keys set the frozen-rank hold; for
        // message faults they set the injected latency / backoff base.
        (rule.kind == FaultKind::kStall ? rule.stall_hold : rule.delay) =
            std::chrono::nanoseconds(scale * parse_i64(clause, value));
      } else if (key == "rank") {
        rule.stall_rank = static_cast<int>(parse_i64(clause, value));
      } else if (key == "op") {
        rule.stall_op = parse_i64(clause, value);
      } else {
        WEIPIPE_CHECK_MSG(false, "fault spec: unknown key '"
                                     << key << "' in '" << clause << "'");
      }
    }
    WEIPIPE_CHECK_MSG(rule.probability >= 0.0 && rule.probability <= 1.0,
                      "fault spec: p must be in [0,1] in '" << clause << "'");
    plan.rules.push_back(rule);
  }
  return plan;
}

std::string to_spec(const FaultPlan& plan) {
  std::ostringstream oss;
  bool first = true;
  auto sep = [&] {
    if (!first) {
      oss << ',';
    }
    first = false;
  };
  if (!plan.dedup) {
    sep();
    oss << "nodedup";
  }
  if (plan.max_retries != FaultPlan{}.max_retries) {
    sep();
    oss << "retries:" << plan.max_retries;
  }
  for (const FaultRule& r : plan.rules) {
    sep();
    oss << to_string(r.kind);
    if (r.kind == FaultKind::kStall) {
      oss << ":rank=" << r.stall_rank << ":op=" << r.stall_op;
      if (r.stall_hold.count() > 0) {
        oss << ":ns=" << r.stall_hold.count();
      }
      continue;
    }
    oss << ":p=" << r.probability;
    if (r.src >= 0) {
      oss << ":src=" << r.src;
    }
    if (r.dst >= 0) {
      oss << ":dst=" << r.dst;
    }
    if (r.tag >= 0) {
      oss << ":tag=" << r.tag;
    }
    oss << ":ns=" << r.delay.count();
  }
  return oss.str();
}

bool fault_event_less(const FaultEvent& a, const FaultEvent& b) {
  const auto key = [](const FaultEvent& e) {
    return std::tuple(e.epoch, e.src, e.dst, e.tag, e.seq, e.attempt,
                      static_cast<int>(e.kind), e.delay_ns);
  };
  return key(a) < key(b);
}

std::string fault_events_to_json(const std::vector<FaultEvent>& events) {
  std::ostringstream oss;
  oss << "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    oss << (i == 0 ? "\n" : ",\n");
    oss << "  {\"kind\":\"" << to_string(e.kind) << "\",\"src\":" << e.src
        << ",\"dst\":" << e.dst << ",\"tag\":" << e.tag << ",\"seq\":" << e.seq
        << ",\"attempt\":" << e.attempt << ",\"delay_ns\":" << e.delay_ns
        << ",\"epoch\":" << e.epoch << "}";
  }
  oss << "\n]\n";
  return oss.str();
}

namespace {
std::string comm_error_message(const CommErrorInfo& info) {
  std::ostringstream oss;
  switch (info.kind) {
    case CommErrorKind::kRecvTimeout:
      oss << "recv timeout: rank " << info.rank << " waiting for (src="
          << info.peer << ", tag=" << info.tag << ", seq="
          << info.expected_seq << "); " << info.pending_messages
          << " other message(s) pending in its mailbox — schedule deadlock?";
      break;
    case CommErrorKind::kStall:
      oss << "injected transient stall on rank " << info.rank
          << " (fabric aborted; recover at the step boundary)";
      break;
    case CommErrorKind::kAborted:
      oss << "fabric aborted while rank " << info.rank
          << " waited for (src=" << info.peer << ", tag=" << info.tag
          << "): another rank failed first";
      break;
  }
  return oss.str();
}
}  // namespace

std::string comm_error_info_to_json(const CommErrorInfo& info) {
  std::string out = "{\"kind\": ";
  obs::append_json_string(out, to_string(info.kind));
  out += ", \"rank\": " + std::to_string(info.rank);
  out += ", \"peer\": " + std::to_string(info.peer);
  out += ", \"tag\": " + std::to_string(info.tag);
  out += ", \"expected_seq\": " + std::to_string(info.expected_seq);
  out += ", \"pending_messages\": " + std::to_string(info.pending_messages);
  out += "}";
  return out;
}

CommErrorInfo comm_error_info_from_json(const std::string& json) {
  const obs::JsonParseResult parsed = obs::parse_json(json);
  WEIPIPE_CHECK_MSG(parsed.ok, "CommErrorInfo JSON: " << parsed.error);
  const obs::JsonValue& v = parsed.value;
  WEIPIPE_CHECK_MSG(v.is_object(), "CommErrorInfo JSON: expected an object");
  const obs::JsonValue* kind = v.find("kind");
  WEIPIPE_CHECK_MSG(kind != nullptr, "CommErrorInfo JSON: missing 'kind'");
  CommErrorInfo info;
  const std::string& name = kind->as_string();
  if (name == to_string(CommErrorKind::kRecvTimeout)) {
    info.kind = CommErrorKind::kRecvTimeout;
  } else if (name == to_string(CommErrorKind::kStall)) {
    info.kind = CommErrorKind::kStall;
  } else if (name == to_string(CommErrorKind::kAborted)) {
    info.kind = CommErrorKind::kAborted;
  } else {
    WEIPIPE_CHECK_MSG(false, "CommErrorInfo JSON: unknown kind '" << name
                                                                  << "'");
  }
  const auto i64 = [&v](const char* key, std::int64_t fallback) {
    const obs::JsonValue* f = v.find(key);
    return f == nullptr ? fallback : static_cast<std::int64_t>(f->as_number());
  };
  info.rank = static_cast<int>(i64("rank", -1));
  info.peer = static_cast<int>(i64("peer", -1));
  info.tag = i64("tag", -1);
  info.expected_seq = static_cast<std::uint64_t>(i64("expected_seq", 0));
  info.pending_messages =
      static_cast<std::uint64_t>(i64("pending_messages", 0));
  return info;
}

CommError::CommError(const CommErrorInfo& info)
    : Error(comm_error_message(info)), info_(info) {
  // Publish the structured context to the live health board (when armed):
  // the watchdog folds it into blocked-on-peer attribution and the black
  // box dumps it per rank. Done here so every throw site — timeout, stall,
  // abort cascade — reports uniformly.
  obs::health().on_comm_error(info_.rank, to_string(info_.kind), info_.peer,
                              info_.tag, info_.expected_seq,
                              info_.pending_messages);
}

}  // namespace weipipe::comm
