#include "comm/fabric.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/check.hpp"
#include "obs/health.hpp"
#include "obs/ledger.hpp"
#include "obs/recorder.hpp"

namespace weipipe::comm {

LinkModel uniform_link(double bandwidth_bytes_per_sec, double latency_sec) {
  WEIPIPE_CHECK(bandwidth_bytes_per_sec > 0.0);
  return [=](int, int, std::size_t bytes) {
    const double sec =
        latency_sec + static_cast<double>(bytes) / bandwidth_bytes_per_sec;
    return std::chrono::nanoseconds(static_cast<std::int64_t>(sec * 1e9));
  };
}

void Request::wait() {
  if (waiter_) {
    waiter_();
    waiter_ = nullptr;
  }
}

int Endpoint::world_size() const { return fabric_->world_size(); }

void Endpoint::send(int dst, std::int64_t tag,
                    std::vector<std::uint8_t> payload) {
  obs::SpanScope span(obs::SpanKind::kSendTransfer);
  const auto bytes = static_cast<std::int64_t>(payload.size());
  const std::int64_t flow = fabric_->deliver(rank_, dst, tag,
                                             std::move(payload));
  if (span.armed()) {
    span.set_rank(rank_);
    span.set_peer(dst);
    span.set_tag(tag);
    span.set_bytes(bytes);
    span.set_flow_id(flow);
  }
}

std::vector<std::uint8_t> Endpoint::recv(int src, std::int64_t tag) {
  return fabric_->take(rank_, src, tag).payload;
}

Request Endpoint::isend(int dst, std::int64_t tag,
                        std::vector<std::uint8_t> payload) {
  // Eager buffered send: complete at post time, like NCCL with send buffers.
  send(dst, tag, std::move(payload));
  return Request([] {});
}

Request Endpoint::irecv(int src, std::int64_t tag,
                        std::vector<std::uint8_t>* out) {
  WEIPIPE_CHECK(out != nullptr);
  Fabric* fabric = fabric_;
  const int rank = rank_;
  return Request([fabric, rank, src, tag, out] {
    *out = fabric->take(rank, src, tag).payload;
  });
}

Request Endpoint::irecv_floats(int src, std::int64_t tag,
                               std::span<float> out,
                               WirePrecision precision) {
  Fabric* fabric = fabric_;
  const int rank = rank_;
  return Request([fabric, rank, src, tag, out, precision] {
    Fabric::Taken taken = fabric->take(rank, src, tag);
    obs::SpanScope span(obs::SpanKind::kRecvTransfer);
    if (span.armed()) {
      span.set_rank(rank);
      span.set_peer(src);
      span.set_tag(tag);
      span.set_bytes(static_cast<std::int64_t>(taken.payload.size()));
      span.set_flow_id(taken.flow_id);
    }
    unpack_floats(taken.payload, precision, out);
  });
}

void Endpoint::send_floats(int dst, std::int64_t tag,
                           std::span<const float> values,
                           WirePrecision precision) {
  // The span covers quantize/pack plus the eager handoff: the full cost the
  // sending rank pays for this message.
  obs::SpanScope span(obs::SpanKind::kSendTransfer);
  std::vector<std::uint8_t> payload = pack_floats(values, precision);
  const auto bytes = static_cast<std::int64_t>(payload.size());
  const std::int64_t flow = fabric_->deliver(rank_, dst, tag,
                                             std::move(payload));
  if (span.armed()) {
    span.set_rank(rank_);
    span.set_peer(dst);
    span.set_tag(tag);
    span.set_bytes(bytes);
    span.set_flow_id(flow);
  }
}

void Endpoint::recv_floats(int src, std::int64_t tag, std::span<float> out,
                           WirePrecision precision) {
  Fabric::Taken taken = fabric_->take(rank_, src, tag);
  obs::SpanScope span(obs::SpanKind::kRecvTransfer);
  if (span.armed()) {
    span.set_rank(rank_);
    span.set_peer(src);
    span.set_tag(tag);
    span.set_bytes(static_cast<std::int64_t>(taken.payload.size()));
    span.set_flow_id(taken.flow_id);
  }
  unpack_floats(taken.payload, precision, out);
}

FabricStats Endpoint::sent_stats() const {
  std::lock_guard<std::mutex> lk(fabric_->stats_mu_);
  FabricStats total;
  const int p = fabric_->world_size();
  for (int dst = 0; dst < p; ++dst) {
    const FabricStats& s =
        fabric_->pair_stats_[static_cast<std::size_t>(rank_ * p + dst)];
    total.messages += s.messages;
    total.bytes += s.bytes;
    total.in_flight += s.in_flight;
    total.max_in_flight = std::max(total.max_in_flight, s.max_in_flight);
  }
  return total;
}

FabricStats Endpoint::received_stats() const {
  std::lock_guard<std::mutex> lk(fabric_->stats_mu_);
  FabricStats total;
  const int p = fabric_->world_size();
  for (int src = 0; src < p; ++src) {
    const FabricStats& s =
        fabric_->pair_stats_[static_cast<std::size_t>(src * p + rank_)];
    total.messages += s.messages;
    total.bytes += s.bytes;
    total.in_flight += s.in_flight;
    total.max_in_flight = std::max(total.max_in_flight, s.max_in_flight);
  }
  return total;
}

Fabric::Fabric(int world_size, LinkModel link_model)
    : link_model_(std::move(link_model)) {
  WEIPIPE_CHECK_MSG(world_size >= 1, "world_size must be >= 1");
  endpoints_.reserve(static_cast<std::size_t>(world_size));
  mailboxes_.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    endpoints_.push_back(std::unique_ptr<Endpoint>(new Endpoint(this, r)));
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  pair_stats_.assign(static_cast<std::size_t>(world_size) *
                         static_cast<std::size_t>(world_size),
                     FabricStats{});
}

Fabric::~Fabric() {
  // Credit any messages still sitting in mailboxes (a trainer torn down
  // mid-schedule, or stats reset between deliver and take) so the ledger's
  // comm_buffers category drains to zero with the fabric.
  for (std::size_t dst = 0; dst < mailboxes_.size(); ++dst) {
    Mailbox& box = *mailboxes_[dst];
    std::lock_guard<std::mutex> lk(box.mu);
    for (auto& [key, stream] : box.streams) {
      for (const Message& msg : stream.q) {
        if (msg.ledger_bytes > 0) {
          obs::ledger().on_free(
              obs::MemKind::kCommBuffers,
              obs::MemoryLedger::bucket_for_rank(static_cast<int>(dst)),
              msg.ledger_bytes);
        }
      }
      stream.q.clear();
    }
  }
}

Endpoint& Fabric::endpoint(int rank) {
  WEIPIPE_CHECK_MSG(rank >= 0 && rank < world_size(),
                    "rank " << rank << " out of range");
  return *endpoints_[static_cast<std::size_t>(rank)];
}

std::uint64_t Fabric::bytes_sent(int src, int dst) const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return pair_stats_[static_cast<std::size_t>(src * world_size() + dst)].bytes;
}

FabricStats Fabric::pair_stats(int src, int dst) const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return pair_stats_[static_cast<std::size_t>(src * world_size() + dst)];
}

std::vector<FabricStats> Fabric::stats_matrix() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return pair_stats_;
}

std::map<std::int64_t, FabricStats> Fabric::tag_stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return tag_stats_;
}

std::uint64_t Fabric::total_bytes() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  std::uint64_t n = 0;
  for (const FabricStats& s : pair_stats_) {
    n += s.bytes;
  }
  return n;
}

std::uint64_t Fabric::total_messages() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  std::uint64_t n = 0;
  for (const FabricStats& s : pair_stats_) {
    n += s.messages;
  }
  return n;
}

std::uint64_t Fabric::max_in_flight() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  std::uint64_t n = 0;
  for (const FabricStats& s : pair_stats_) {
    n = std::max(n, s.max_in_flight);
  }
  return n;
}

void Fabric::reset_stats() {
  std::lock_guard<std::mutex> lk(stats_mu_);
  // Also zeroes in_flight: callers reset between iterations, when every
  // mailbox has drained.
  for (FabricStats& s : pair_stats_) {
    s = FabricStats{};
  }
  tag_stats_.clear();
}

void Fabric::install_fault_plan(const FaultPlan& plan) {
  auto runtime = std::make_unique<FaultRuntime>(plan, world_size());
  runtime->fired.reserve(plan.rules.size());
  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    runtime->fired.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  faults_ = std::move(runtime);
}

void Fabric::clear_fault_plan() { faults_.reset(); }

const FaultPlan& Fabric::fault_plan() const {
  WEIPIPE_CHECK_MSG(faults_ != nullptr, "no fault plan installed");
  return faults_->plan;
}

FaultStats Fabric::fault_stats() const {
  if (!faults_) {
    return FaultStats{};
  }
  std::lock_guard<std::mutex> lk(faults_->mu);
  return faults_->stats;
}

std::vector<FaultEvent> Fabric::fault_events() const {
  if (!faults_) {
    return {};
  }
  std::vector<FaultEvent> events;
  {
    std::lock_guard<std::mutex> lk(faults_->mu);
    events = faults_->events;
  }
  std::sort(events.begin(), events.end(), fault_event_less);
  return events;
}

void Fabric::abort_all() {
  aborted_.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) {
    // Acquire the mutex so a receiver between its aborted_ check and its
    // cv wait cannot miss the notification.
    { std::lock_guard<std::mutex> lk(box->mu); }
    box->cv.notify_all();
  }
}

void Fabric::recover() {
  aborted_.store(false, std::memory_order_release);
  // Drain every undelivered message from the abandoned step and rewind the
  // per-stream sequence numbers so the re-run starts from a clean wire.
  for (std::size_t dst = 0; dst < mailboxes_.size(); ++dst) {
    Mailbox& box = *mailboxes_[dst];
    std::lock_guard<std::mutex> lk(box.mu);
    for (auto& [key, stream] : box.streams) {
      for (const Message& msg : stream.q) {
        if (msg.ledger_bytes > 0) {
          obs::ledger().on_free(
              obs::MemKind::kCommBuffers,
              obs::MemoryLedger::bucket_for_rank(static_cast<int>(dst)),
              msg.ledger_bytes);
        }
      }
      stream.q.clear();
      stream.next_send_seq = 0;
      stream.next_take_seq = 0;
    }
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    for (FabricStats& s : pair_stats_) {
      s.in_flight = 0;
    }
    for (auto& [tag, s] : tag_stats_) {
      s.in_flight = 0;
    }
  }
  if (faults_) {
    for (auto& count : faults_->op_counts) {
      count.store(0, std::memory_order_relaxed);
    }
    // One-shot latches stay latched: a transient stall does not re-fire on
    // the re-run (that is what makes recovery converge).
    faults_->epoch.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(faults_->mu);
    ++faults_->stats.recoveries;
  }
}

void Fabric::maybe_stall(int rank) {
  FaultRuntime* fr = faults_.get();
  if (fr == nullptr) {
    return;
  }
  const std::int64_t op =
      fr->op_counts[static_cast<std::size_t>(rank)].fetch_add(
          1, std::memory_order_relaxed);
  if (!fr->any_stalls) {
    return;
  }
  for (std::size_t i = 0; i < fr->plan.rules.size(); ++i) {
    const FaultRule& rule = fr->plan.rules[i];
    if (rule.kind != FaultKind::kStall || rule.stall_rank != rank ||
        op < rule.stall_op) {
      continue;
    }
    if (fr->fired[i]->exchange(true, std::memory_order_acq_rel)) {
      continue;  // transient: fires once per install
    }
    FaultEvent event;
    event.kind = FaultKind::kStall;
    event.src = rank;
    event.seq = static_cast<std::uint64_t>(op);
    event.epoch = fr->epoch.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(fr->mu);
      ++fr->stats.stalls;
      fr->events.push_back(event);
    }
    const std::int64_t stall_start_ns = obs::now_ns();
    // Hold: the rank freezes heartbeat-silent for stall_hold before pulling
    // the fabric down — a live window in which the health watchdog can
    // observe the wedge and name the blocked peers. Pure latency; the
    // rollback/re-run path is identical to an immediate abort.
    if (rule.stall_hold.count() > 0) {
      std::this_thread::sleep_for(rule.stall_hold);
    }
    if (obs::enabled()) {
      obs::Span span;
      span.kind = obs::SpanKind::kFault;
      span.start_ns = stall_start_ns;
      span.end_ns = obs::now_ns();  // the fault span covers the hold
      span.rank = rank;
      span.tag = static_cast<std::int64_t>(FaultKind::kStall);
      span.bytes = rule.stall_hold.count();
      obs::record(span);
    }
    abort_all();
    CommErrorInfo info;
    info.kind = CommErrorKind::kStall;
    info.rank = rank;
    throw CommError(info);
  }
}

void Fabric::record_fault(const FaultEvent& event) {
  FaultRuntime* fr = faults_.get();
  {
    std::lock_guard<std::mutex> lk(fr->mu);
    switch (event.kind) {
      case FaultKind::kDelay: ++fr->stats.delays; break;
      case FaultKind::kDrop:
        ++fr->stats.drops;
        ++fr->stats.retries;
        break;
      case FaultKind::kDuplicate: ++fr->stats.duplicates; break;
      case FaultKind::kReorder: ++fr->stats.reorders; break;
      case FaultKind::kStall: ++fr->stats.stalls; break;
    }
    fr->events.push_back(event);
  }
  if (obs::enabled()) {
    obs::Span span;
    span.kind = obs::SpanKind::kFault;
    span.start_ns = obs::now_ns();
    span.end_ns = span.start_ns;
    span.rank = event.src;
    span.peer = event.dst;
    span.tag = event.tag;
    span.bytes = event.delay_ns;
    obs::record(span);
  }
}

std::int64_t Fabric::deliver(int src, int dst, std::int64_t tag,
                             std::vector<std::uint8_t> payload) {
  WEIPIPE_CHECK_MSG(dst >= 0 && dst < world_size(),
                    "send to invalid rank " << dst);
  WEIPIPE_CHECK_MSG(dst != src, "self-send (rank " << src << ")");
  maybe_stall(src);
  if (aborted_.load(std::memory_order_acquire)) {
    CommErrorInfo info;
    info.kind = CommErrorKind::kAborted;
    info.rank = src;
    info.peer = dst;
    info.tag = tag;
    throw CommError(info);
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    FabricStats& s =
        pair_stats_[static_cast<std::size_t>(src * world_size() + dst)];
    ++s.messages;
    s.bytes += payload.size();
    ++s.in_flight;
    s.max_in_flight = std::max(s.max_in_flight, s.in_flight);
    FabricStats& t = tag_stats_[tag];
    ++t.messages;
    t.bytes += payload.size();
    ++t.in_flight;
    t.max_in_flight = std::max(t.max_in_flight, t.in_flight);
  }
  Message msg;
  msg.deliver_at = std::chrono::steady_clock::now();
  if (link_model_) {
    msg.deliver_at += link_model_(src, dst, payload.size());
  }
  msg.flow_id = next_flow_id_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t flow_id = msg.flow_id;
  msg.payload = std::move(payload);
  // Eager buffered sends cost real memory on the receiver until consumed:
  // account the mailbox residency as comm_buffers in dst's bucket. The
  // charged size rides on the message so the credit matches exactly even if
  // the ledger is toggled between send and receive.
  if (obs::ledger().enabled() && !msg.payload.empty()) {
    msg.ledger_bytes = static_cast<std::int64_t>(msg.payload.size());
    obs::ledger().on_alloc(obs::MemKind::kCommBuffers,
                           obs::MemoryLedger::bucket_for_rank(dst),
                           msg.ledger_bytes);
  }
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  FaultRuntime* fr = faults_.get();
  // Faults decided under box.mu (seq assignment must be atomic with insert);
  // committed to the fault log after the lock drops.
  std::vector<FaultEvent> local_events;
  {
    std::lock_guard<std::mutex> lk(box.mu);
    Stream& stream = box.streams[MailKey{src, tag}];
    msg.seq = stream.next_send_seq++;

    bool duplicate = false;
    std::chrono::nanoseconds dup_extra{0};
    if (fr != nullptr) {
      const FaultPlan& plan = fr->plan;
      const std::uint32_t epoch = fr->epoch.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < plan.rules.size(); ++i) {
        const FaultRule& rule = plan.rules[i];
        FaultEvent event;
        event.kind = rule.kind;
        event.src = src;
        event.dst = dst;
        event.tag = tag;
        event.seq = msg.seq;
        event.epoch = epoch;
        switch (rule.kind) {
          case FaultKind::kDelay:
            if (plan.hit(i, src, dst, tag, msg.seq, 0)) {
              msg.deliver_at += rule.delay;
              event.delay_ns = rule.delay.count();
              local_events.push_back(event);
            }
            break;
          case FaultKind::kDrop: {
            // Each lost transmission costs one retransmit with doubled
            // backoff; after max_retries the reliability layer force-delivers
            // (a permanently lost message would deadlock the schedule).
            auto backoff = rule.delay;
            for (int attempt = 0; attempt < plan.max_retries &&
                                  plan.hit(i, src, dst, tag, msg.seq, attempt);
                 ++attempt) {
              msg.deliver_at += backoff;
              event.attempt = attempt;
              event.delay_ns = backoff.count();
              local_events.push_back(event);
              backoff *= 2;
            }
            break;
          }
          case FaultKind::kDuplicate:
            if (plan.hit(i, src, dst, tag, msg.seq, 0)) {
              duplicate = true;
              dup_extra = rule.delay;
              event.delay_ns = rule.delay.count();
              local_events.push_back(event);
            }
            break;
          case FaultKind::kReorder:
            if (plan.hit(i, src, dst, tag, msg.seq, 0)) {
              // The message falls behind its successors: extra latency, and
              // with dedup off it is also enqueued behind the current tail.
              msg.deliver_at += rule.delay;
              event.delay_ns = rule.delay.count();
              local_events.push_back(event);
            }
            break;
          case FaultKind::kStall:
            break;  // handled in maybe_stall()
        }
      }
    }

    Message dup_msg;
    if (duplicate) {
      dup_msg.payload = msg.payload;  // deep copy
      dup_msg.deliver_at = msg.deliver_at + dup_extra;
      dup_msg.seq = msg.seq;
      dup_msg.flow_id = next_flow_id_.fetch_add(1, std::memory_order_relaxed);
      if (obs::ledger().enabled() && !dup_msg.payload.empty()) {
        dup_msg.ledger_bytes =
            static_cast<std::int64_t>(dup_msg.payload.size());
        obs::ledger().on_alloc(obs::MemKind::kCommBuffers,
                               obs::MemoryLedger::bucket_for_rank(dst),
                               dup_msg.ledger_bytes);
      }
    }

    const bool reliable = fr == nullptr || fr->plan.dedup;
    auto insert = [&](Message m) {
      if (reliable) {
        // Keep the stream sorted by seq (in-order reassembly). The common
        // in-order case is a plain push_back.
        auto pos = stream.q.end();
        while (pos != stream.q.begin() && std::prev(pos)->seq > m.seq) {
          --pos;
        }
        stream.q.insert(pos, std::move(m));
      } else {
        // Mutation mode: raw arrival order, duplicates and all. A reordered
        // message lands behind the current tail's predecessor swap below.
        stream.q.push_back(std::move(m));
      }
    };
    const bool reordered =
        !reliable && !local_events.empty() &&
        std::any_of(local_events.begin(), local_events.end(),
                    [&](const FaultEvent& e) {
                      return e.kind == FaultKind::kReorder && e.seq == msg.seq;
                    });
    insert(std::move(msg));
    if (reordered && stream.q.size() >= 2) {
      std::swap(stream.q[stream.q.size() - 1], stream.q[stream.q.size() - 2]);
    }
    if (duplicate) {
      insert(std::move(dup_msg));
    }
  }
  box.cv.notify_all();
  for (const FaultEvent& event : local_events) {
    record_fault(event);
  }
  if (obs::health_enabled()) {
    obs::health().on_comm_progress(src);
  }
  return flow_id;
}

Fabric::Taken Fabric::take(int dst, int src, std::int64_t tag) {
  WEIPIPE_CHECK_MSG(src >= 0 && src < world_size(),
                    "recv from invalid rank " << src);
  maybe_stall(dst);
  // Health plane: publish who this rank is about to block on. The watchdog
  // turns a long-lived publication into a STALLED verdict attributed to
  // `src`; the destructor clears it and counts a progress heartbeat (on
  // both the delivery and the CommError unwind paths).
  obs::HealthWaitScope wait_scope(dst, src, tag);
  // The wait span covers blocked-on-arrival time: from entering take() to
  // the matching message being ready (modeled delivery time included).
  const bool traced = obs::enabled();
  const std::int64_t wait_start_ns = traced ? obs::now_ns() : 0;
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  const auto deadline = std::chrono::steady_clock::now() +
                        recv_timeout_.load(std::memory_order_relaxed);
  FaultRuntime* fr = faults_.get();
  const bool reliable = fr == nullptr || fr->plan.dedup;
  std::uint64_t discarded = 0;
  Taken taken;
  {
    std::unique_lock<std::mutex> lk(box.mu);
    const MailKey key{src, tag};
    for (;;) {
      if (aborted_.load(std::memory_order_acquire)) {
        CommErrorInfo info;
        info.kind = CommErrorKind::kAborted;
        info.rank = dst;
        info.peer = src;
        info.tag = tag;
        throw CommError(info);
      }
      auto it = box.streams.find(key);
      Stream* stream =
          it != box.streams.end() ? &it->second : nullptr;
      if (stream != nullptr && reliable) {
        // Duplicate discard: anything below the reassembly cursor was
        // already consumed via another copy.
        while (!stream->q.empty() &&
               stream->q.front().seq < stream->next_take_seq) {
          const Message& dup = stream->q.front();
          if (dup.ledger_bytes > 0) {
            obs::ledger().on_free(obs::MemKind::kCommBuffers,
                                  obs::MemoryLedger::bucket_for_rank(dst),
                                  dup.ledger_bytes);
          }
          stream->q.pop_front();
          ++discarded;
        }
      }
      if (stream != nullptr && !stream->q.empty() &&
          (!reliable || stream->q.front().seq == stream->next_take_seq)) {
        // Honor the modeled delivery time: the message "is still in flight".
        const auto deliver_at = stream->q.front().deliver_at;
        const auto now = std::chrono::steady_clock::now();
        if (deliver_at <= now) {
          Message msg = std::move(stream->q.front());
          stream->q.pop_front();
          if (reliable) {
            stream->next_take_seq = msg.seq + 1;
          }
          if (msg.ledger_bytes > 0) {
            obs::ledger().on_free(obs::MemKind::kCommBuffers,
                                  obs::MemoryLedger::bucket_for_rank(dst),
                                  msg.ledger_bytes);
          }
          taken.payload = std::move(msg.payload);
          taken.flow_id = msg.flow_id;
          break;
        }
        box.cv.wait_until(lk, deliver_at);
        continue;
      }
      if (box.cv.wait_until(lk, deadline) == std::cv_status::timeout) {
        CommErrorInfo info;
        info.kind = CommErrorKind::kRecvTimeout;
        info.rank = dst;
        info.peer = src;
        info.tag = tag;
        info.expected_seq = stream != nullptr ? stream->next_take_seq : 0;
        for (const auto& [k, s] : box.streams) {
          info.pending_messages += s.q.size();
        }
        throw CommError(info);
      }
    }
  }
  if (discarded > 0 && fr != nullptr) {
    std::lock_guard<std::mutex> flk(fr->mu);
    fr->stats.duplicates_discarded += discarded;
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    FabricStats& s =
        pair_stats_[static_cast<std::size_t>(src * world_size() + dst)];
    if (s.in_flight > 0) {  // reset_stats() may have zeroed mid-flight
      --s.in_flight;
    }
    auto it = tag_stats_.find(tag);
    if (it != tag_stats_.end() && it->second.in_flight > 0) {
      --it->second.in_flight;
    }
  }
  if (traced) {
    obs::Span span;
    span.kind = obs::SpanKind::kRecvWait;
    span.start_ns = wait_start_ns;
    span.end_ns = obs::now_ns();
    span.rank = dst;
    span.peer = src;
    span.tag = tag;
    span.bytes = static_cast<std::int64_t>(taken.payload.size());
    span.flow_id = taken.flow_id;
    obs::record(span);
  }
  return taken;
}

void run_workers(Fabric& fabric,
                 const std::function<void(int rank, Endpoint& ep)>& fn) {
  const int p = fabric.world_size();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      try {
        // Tag the thread with its rank so every span recorded inside the
        // worker body (compute, comm, collectives) lands on rank r's track.
        obs::RankScope rank_scope(r);
        // Health heartbeat covering the whole worker body; complete() marks
        // the clean exit so only finished bodies feed the straggler window.
        obs::HealthWorkerScope health_scope(r);
        fn(r, fabric.endpoint(r));
        health_scope.complete();
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

std::vector<Request> batch_isend_irecv(Endpoint& ep,
                                       std::span<const SendSpec> sends,
                                       std::span<const RecvSpec> recvs) {
  for (const SendSpec& s : sends) {
    ep.send_floats(s.dst, s.tag, s.values, s.precision);
  }
  std::vector<Request> requests;
  requests.reserve(recvs.size());
  for (const RecvSpec& r : recvs) {
    requests.push_back(ep.irecv_floats(r.src, r.tag, r.out, r.precision));
  }
  return requests;
}

}  // namespace weipipe::comm
