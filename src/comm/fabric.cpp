#include "comm/fabric.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "obs/health.hpp"
#include "obs/ledger.hpp"
#include "obs/recorder.hpp"

namespace weipipe::comm {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

void fetch_max(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Decrement clamped at zero: reset_stats()/recover() may have zeroed the
// gauge while messages were still in flight.
void decrement_clamped(std::atomic<std::uint64_t>& a) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur > 0 &&
         !a.compare_exchange_weak(cur, cur - 1, std::memory_order_relaxed)) {
  }
}

// steady_clock time_point for an absolute steady_now_ns() deadline.
std::chrono::steady_clock::time_point ns_to_time_point(std::int64_t ns) {
  return std::chrono::steady_clock::now() +
         std::chrono::nanoseconds(ns - steady_now_ns());
}

}  // namespace

LinkModel uniform_link(double bandwidth_bytes_per_sec, double latency_sec) {
  WEIPIPE_CHECK(bandwidth_bytes_per_sec > 0.0);
  return [=](int, int, std::size_t bytes) {
    const double sec =
        latency_sec + static_cast<double>(bytes) / bandwidth_bytes_per_sec;
    return std::chrono::nanoseconds(static_cast<std::int64_t>(sec * 1e9));
  };
}

void Request::wait() {
  if (waiter_) {
    waiter_();
    waiter_ = nullptr;
  }
}

int Endpoint::world_size() const { return fabric_->world_size(); }

void Endpoint::send(int dst, std::int64_t tag,
                    std::vector<std::uint8_t> payload) {
  send(dst, tag, Buffer::adopt(std::move(payload)));
}

void Endpoint::send(int dst, std::int64_t tag, Buffer payload) {
  obs::SpanScope span(obs::SpanKind::kSendTransfer);
  const auto bytes = static_cast<std::int64_t>(payload.size());
  const std::int64_t flow = fabric_->deliver(rank_, dst, tag,
                                             std::move(payload));
  if (span.armed()) {
    span.set_rank(rank_);
    span.set_peer(dst);
    span.set_tag(tag);
    span.set_bytes(bytes);
    span.set_flow_id(flow);
  }
}

std::vector<std::uint8_t> Endpoint::recv(int src, std::int64_t tag) {
  return fabric_->take(rank_, src, tag).payload.release_vector();
}

Buffer Endpoint::recv_buffer(int src, std::int64_t tag) {
  Fabric::Taken taken = fabric_->take(rank_, src, tag);
  obs::SpanScope span(obs::SpanKind::kRecvTransfer);
  if (span.armed()) {
    span.set_rank(rank_);
    span.set_peer(src);
    span.set_tag(tag);
    span.set_bytes(static_cast<std::int64_t>(taken.payload.size()));
    span.set_flow_id(taken.flow_id);
  }
  return std::move(taken.payload);
}

Request Endpoint::isend(int dst, std::int64_t tag,
                        std::vector<std::uint8_t> payload) {
  // Eager buffered send: complete at post time, like NCCL with send buffers.
  send(dst, tag, std::move(payload));
  return Request([] {});
}

Request Endpoint::irecv(int src, std::int64_t tag,
                        std::vector<std::uint8_t>* out) {
  WEIPIPE_CHECK(out != nullptr);
  Fabric* fabric = fabric_;
  const int rank = rank_;
  return Request([fabric, rank, src, tag, out] {
    *out = fabric->take(rank, src, tag).payload.release_vector();
  });
}

Request Endpoint::irecv_buffer(int src, std::int64_t tag, Buffer* out) {
  WEIPIPE_CHECK(out != nullptr);
  Fabric* fabric = fabric_;
  const int rank = rank_;
  return Request([fabric, rank, src, tag, out] {
    Fabric::Taken taken = fabric->take(rank, src, tag);
    obs::SpanScope span(obs::SpanKind::kRecvTransfer);
    if (span.armed()) {
      span.set_rank(rank);
      span.set_peer(src);
      span.set_tag(tag);
      span.set_bytes(static_cast<std::int64_t>(taken.payload.size()));
      span.set_flow_id(taken.flow_id);
    }
    *out = std::move(taken.payload);
  });
}

Request Endpoint::irecv_floats(int src, std::int64_t tag,
                               std::span<float> out,
                               WirePrecision precision) {
  Fabric* fabric = fabric_;
  const int rank = rank_;
  return Request([fabric, rank, src, tag, out, precision] {
    Fabric::Taken taken = fabric->take(rank, src, tag);
    obs::SpanScope span(obs::SpanKind::kRecvTransfer);
    if (span.armed()) {
      span.set_rank(rank);
      span.set_peer(src);
      span.set_tag(tag);
      span.set_bytes(static_cast<std::int64_t>(taken.payload.size()));
      span.set_flow_id(taken.flow_id);
    }
    unpack_floats(taken.payload.span(), precision, out);
  });
}

void Endpoint::send_floats(int dst, std::int64_t tag,
                           std::span<const float> values,
                           WirePrecision precision) {
  // The span covers quantize/pack plus the eager handoff: the full cost the
  // sending rank pays for this message. The pack goes straight into a
  // tracked zero-copy buffer — the single conversion pass is the only time
  // the payload bytes are touched on the send side.
  obs::SpanScope span(obs::SpanKind::kSendTransfer);
  Buffer payload = pack_floats_to_buffer(values, precision);
  const auto bytes = static_cast<std::int64_t>(payload.size());
  const std::int64_t flow = fabric_->deliver(rank_, dst, tag,
                                             std::move(payload));
  if (span.armed()) {
    span.set_rank(rank_);
    span.set_peer(dst);
    span.set_tag(tag);
    span.set_bytes(bytes);
    span.set_flow_id(flow);
  }
}

void Endpoint::recv_floats(int src, std::int64_t tag, std::span<float> out,
                           WirePrecision precision) {
  Fabric::Taken taken = fabric_->take(rank_, src, tag);
  obs::SpanScope span(obs::SpanKind::kRecvTransfer);
  if (span.armed()) {
    span.set_rank(rank_);
    span.set_peer(src);
    span.set_tag(tag);
    span.set_bytes(static_cast<std::int64_t>(taken.payload.size()));
    span.set_flow_id(taken.flow_id);
  }
  unpack_floats(taken.payload.span(), precision, out);
}

FabricStats Endpoint::sent_stats() const {
  FabricStats total;
  const int p = fabric_->world_size();
  for (int dst = 0; dst < p; ++dst) {
    const FabricStats s = fabric_->pair_stats(rank_, dst);
    total.messages += s.messages;
    total.bytes += s.bytes;
    total.in_flight += s.in_flight;
    total.max_in_flight = std::max(total.max_in_flight, s.max_in_flight);
  }
  return total;
}

FabricStats Endpoint::received_stats() const {
  FabricStats total;
  const int p = fabric_->world_size();
  for (int src = 0; src < p; ++src) {
    const FabricStats s = fabric_->pair_stats(src, rank_);
    total.messages += s.messages;
    total.bytes += s.bytes;
    total.in_flight += s.in_flight;
    total.max_in_flight = std::max(total.max_in_flight, s.max_in_flight);
  }
  return total;
}

Fabric::Fabric(int world_size, LinkModel link_model)
    : Fabric(world_size, std::move(link_model), default_transport_spec()) {}

Fabric::Fabric(int world_size, LinkModel link_model,
               const TransportSpec& spec)
    : link_model_(std::move(link_model)) {
  WEIPIPE_CHECK_MSG(world_size >= 1, "world_size must be >= 1");
  transport_ = make_transport(spec, world_size, &aborted_);
  endpoints_.reserve(static_cast<std::size_t>(world_size));
  inboxes_.reserve(static_cast<std::size_t>(world_size));
  edges_.reserve(static_cast<std::size_t>(world_size) *
                 static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    endpoints_.push_back(std::unique_ptr<Endpoint>(new Endpoint(this, r)));
    inboxes_.push_back(std::make_unique<Inbox>());
  }
  for (int i = 0; i < world_size * world_size; ++i) {
    edges_.push_back(std::make_unique<Edge>());
  }
}

Fabric::~Fabric() {
  // Credit any messages still sitting in the transport or the inboxes (a
  // trainer torn down mid-schedule, or stats reset between deliver and take)
  // so the ledger's comm_buffers category drains to zero with the fabric.
  // Payload buffers destroy (and self-credit, if tracked) with the frames.
  drain_all_local();
}

void Fabric::credit_frame(const WireFrame& frame, int dst) {
  if (frame.ledger_bytes > 0) {
    obs::ledger().on_free(obs::MemKind::kCommBuffers,
                          obs::MemoryLedger::bucket_for_rank(dst),
                          frame.ledger_bytes);
  }
}

void Fabric::drain_all_local() {
  // Only legal while quiescent (all rank threads joined). Remote ranks'
  // state lives in their own processes; frames still in flight toward them
  // are either already consumed there or dup copies their dedup layer
  // discards.
  const int p = world_size();
  std::vector<WireFrame> scratch;
  for (int dst = 0; dst < p; ++dst) {
    if (!transport_->is_local(dst)) {
      continue;
    }
    for (int src = 0; src < p; ++src) {
      if (src == dst) {
        continue;
      }
      scratch.clear();
      transport_->drain(src, dst, scratch);
      for (const WireFrame& f : scratch) {
        credit_frame(f, dst);
      }
    }
    Inbox& inbox = *inboxes_[static_cast<std::size_t>(dst)];
    for (auto& [key, stream] : inbox.streams) {
      for (const WireFrame& f : stream.q) {
        credit_frame(f, dst);
      }
      stream.q.clear();
    }
    inbox.streams.clear();
  }
}

Endpoint& Fabric::endpoint(int rank) {
  WEIPIPE_CHECK_MSG(rank >= 0 && rank < world_size(),
                    "rank " << rank << " out of range");
  return *endpoints_[static_cast<std::size_t>(rank)];
}

std::uint64_t Fabric::bytes_sent(int src, int dst) const {
  return edge(src, dst).pair.bytes.load(std::memory_order_relaxed);
}

FabricStats Fabric::pair_stats(int src, int dst) const {
  const Edge::PairCounters& c = edge(src, dst).pair;
  FabricStats s;
  s.messages = c.messages.load(std::memory_order_relaxed);
  s.bytes = c.bytes.load(std::memory_order_relaxed);
  s.in_flight = c.in_flight.load(std::memory_order_relaxed);
  s.max_in_flight = c.max_in_flight.load(std::memory_order_relaxed);
  return s;
}

std::vector<FabricStats> Fabric::stats_matrix() const {
  const int p = world_size();
  std::vector<FabricStats> matrix;
  matrix.reserve(static_cast<std::size_t>(p) * static_cast<std::size_t>(p));
  for (int src = 0; src < p; ++src) {
    for (int dst = 0; dst < p; ++dst) {
      matrix.push_back(pair_stats(src, dst));
    }
  }
  return matrix;
}

std::map<std::int64_t, FabricStats> Fabric::tag_stats() const {
  std::map<std::int64_t, FabricStats> merged;
  for (const auto& e : edges_) {
    std::lock_guard<std::mutex> lk(e->tag_mu);
    for (const auto& [tag, s] : e->tags) {
      FabricStats& m = merged[tag];
      m.messages += s.messages;
      m.bytes += s.bytes;
      m.in_flight += s.in_flight;
      // Edge-local high-water marks cannot be summed into a global
      // concurrent depth; report the worst single edge.
      m.max_in_flight = std::max(m.max_in_flight, s.max_in_flight);
    }
  }
  return merged;
}

std::uint64_t Fabric::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& e : edges_) {
    n += e->pair.bytes.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t Fabric::total_messages() const {
  std::uint64_t n = 0;
  for (const auto& e : edges_) {
    n += e->pair.messages.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t Fabric::max_in_flight() const {
  std::uint64_t n = 0;
  for (const auto& e : edges_) {
    n = std::max(n, e->pair.max_in_flight.load(std::memory_order_relaxed));
  }
  return n;
}

void Fabric::reset_stats() {
  // Also zeroes in_flight: callers reset between iterations, when every
  // mailbox has drained.
  for (const auto& e : edges_) {
    e->pair.messages.store(0, std::memory_order_relaxed);
    e->pair.bytes.store(0, std::memory_order_relaxed);
    e->pair.in_flight.store(0, std::memory_order_relaxed);
    e->pair.max_in_flight.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(e->tag_mu);
    e->tags.clear();
  }
}

RingStats Fabric::ring_stats() const {
  RingStats total = transport_->wire_stats();
  for (const auto& e : edges_) {
    total.spins += e->spins.load(std::memory_order_relaxed);
  }
  return total;
}

void Fabric::install_fault_plan(const FaultPlan& plan) {
  auto runtime = std::make_unique<FaultRuntime>(plan, world_size());
  runtime->fired.reserve(plan.rules.size());
  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    runtime->fired.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  faults_ = std::move(runtime);
}

void Fabric::clear_fault_plan() { faults_.reset(); }

const FaultPlan& Fabric::fault_plan() const {
  WEIPIPE_CHECK_MSG(faults_ != nullptr, "no fault plan installed");
  return faults_->plan;
}

FaultStats Fabric::fault_stats() const {
  if (!faults_) {
    return FaultStats{};
  }
  std::lock_guard<std::mutex> lk(faults_->mu);
  return faults_->stats;
}

std::vector<FaultEvent> Fabric::fault_events() const {
  if (!faults_) {
    return {};
  }
  std::vector<FaultEvent> events;
  {
    std::lock_guard<std::mutex> lk(faults_->mu);
    events = faults_->events;
  }
  std::sort(events.begin(), events.end(), fault_event_less);
  return events;
}

void Fabric::abort_all() {
  // seq_cst so a consumer's parked-state recheck cannot order before this
  // store (same Dekker pairing as the ring tail publication).
  aborted_.store(true, std::memory_order_seq_cst);
  transport_->wake_all();
}

void Fabric::recover() {
  aborted_.store(false, std::memory_order_release);
  // Drain every undelivered message from the abandoned step and rewind the
  // per-stream sequence numbers so the re-run starts from a clean wire.
  // Only legal while quiescent (all rank threads joined).
  drain_all_local();
  for (const auto& e : edges_) {
    e->send_seq.clear();
    e->pair.in_flight.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(e->tag_mu);
    for (auto& [tag, s] : e->tags) {
      s.in_flight = 0;
    }
  }
  if (faults_) {
    for (auto& count : faults_->op_counts) {
      count.store(0, std::memory_order_relaxed);
    }
    // One-shot latches stay latched: a transient stall does not re-fire on
    // the re-run (that is what makes recovery converge).
    faults_->epoch.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(faults_->mu);
    ++faults_->stats.recoveries;
  }
}

void Fabric::maybe_stall(int rank) {
  FaultRuntime* fr = faults_.get();
  if (fr == nullptr) {
    return;
  }
  const std::int64_t op =
      fr->op_counts[static_cast<std::size_t>(rank)].fetch_add(
          1, std::memory_order_relaxed);
  if (!fr->any_stalls) {
    return;
  }
  for (std::size_t i = 0; i < fr->plan.rules.size(); ++i) {
    const FaultRule& rule = fr->plan.rules[i];
    if (rule.kind != FaultKind::kStall || rule.stall_rank != rank ||
        op < rule.stall_op) {
      continue;
    }
    if (fr->fired[i]->exchange(true, std::memory_order_acq_rel)) {
      continue;  // transient: fires once per install
    }
    FaultEvent event;
    event.kind = FaultKind::kStall;
    event.src = rank;
    event.seq = static_cast<std::uint64_t>(op);
    event.epoch = fr->epoch.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(fr->mu);
      ++fr->stats.stalls;
      fr->events.push_back(event);
    }
    const std::int64_t stall_start_ns = obs::now_ns();
    // Hold: the rank freezes heartbeat-silent for stall_hold before pulling
    // the fabric down — a live window in which the health watchdog can
    // observe the wedge and name the blocked peers. Pure latency; the
    // rollback/re-run path is identical to an immediate abort.
    if (rule.stall_hold.count() > 0) {
      std::this_thread::sleep_for(rule.stall_hold);
    }
    if (obs::enabled()) {
      obs::Span span;
      span.kind = obs::SpanKind::kFault;
      span.start_ns = stall_start_ns;
      span.end_ns = obs::now_ns();  // the fault span covers the hold
      span.rank = rank;
      span.tag = static_cast<std::int64_t>(FaultKind::kStall);
      span.bytes = rule.stall_hold.count();
      obs::record(span);
    }
    abort_all();
    CommErrorInfo info;
    info.kind = CommErrorKind::kStall;
    info.rank = rank;
    throw CommError(info);
  }
}

void Fabric::record_fault(const FaultEvent& event) {
  FaultRuntime* fr = faults_.get();
  {
    std::lock_guard<std::mutex> lk(fr->mu);
    switch (event.kind) {
      case FaultKind::kDelay: ++fr->stats.delays; break;
      case FaultKind::kDrop:
        ++fr->stats.drops;
        ++fr->stats.retries;
        break;
      case FaultKind::kDuplicate: ++fr->stats.duplicates; break;
      case FaultKind::kReorder: ++fr->stats.reorders; break;
      case FaultKind::kStall: ++fr->stats.stalls; break;
    }
    fr->events.push_back(event);
  }
  if (obs::enabled()) {
    obs::Span span;
    span.kind = obs::SpanKind::kFault;
    span.start_ns = obs::now_ns();
    span.end_ns = span.start_ns;
    span.rank = event.src;
    span.peer = event.dst;
    span.tag = event.tag;
    span.bytes = event.delay_ns;
    obs::record(span);
  }
}

std::int64_t Fabric::deliver(int src, int dst, std::int64_t tag,
                             Buffer payload) {
  WEIPIPE_CHECK_MSG(dst >= 0 && dst < world_size(),
                    "send to invalid rank " << dst);
  WEIPIPE_CHECK_MSG(dst != src, "self-send (rank " << src << ")");
  maybe_stall(src);
  if (aborted_.load(std::memory_order_acquire)) {
    CommErrorInfo info;
    info.kind = CommErrorKind::kAborted;
    info.rank = src;
    info.peer = dst;
    info.tag = tag;
    throw CommError(info);
  }
  Edge& e = edge(src, dst);
  const std::uint64_t bytes = payload.size();
  e.pair.messages.fetch_add(1, std::memory_order_relaxed);
  e.pair.bytes.fetch_add(bytes, std::memory_order_relaxed);
  const std::uint64_t depth =
      e.pair.in_flight.fetch_add(1, std::memory_order_relaxed) + 1;
  fetch_max(e.pair.max_in_flight, depth);
  {
    // Per-edge tag ledger: single producer, so this lock is uncontended
    // except against the consumer's in-flight decrement and rare aggregate
    // reads — no cross-sender serialization.
    std::lock_guard<std::mutex> lk(e.tag_mu);
    FabricStats& t = e.tags[tag];
    ++t.messages;
    t.bytes += bytes;
    ++t.in_flight;
    t.max_in_flight = std::max(t.max_in_flight, t.in_flight);
  }

  WireFrame frame;
  frame.tag = tag;
  frame.deliver_at_ns = steady_now_ns();
  if (link_model_) {
    frame.deliver_at_ns += link_model_(src, dst, bytes).count();
  }
  frame.flow_id = next_flow_id_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t flow_id = frame.flow_id;
  frame.payload = std::move(payload);
  // Position in the (src,tag) stream: producer-owned, no lock (one producer
  // per edge).
  frame.seq = e.send_seq[tag]++;
  // Eager buffered sends cost real memory on the receiver until consumed.
  // For a same-process receiver, adopted payloads are charged as
  // comm_buffers mailbox residency in dst's bucket (credited at
  // take/teardown); tracked buffers already carry their allocation-time
  // charge. A remote receiver rematerializes the bytes as a tracked buffer
  // in its own process — its drain thread pays the charge there, so the
  // sender must not double count it here.
  const bool local_dst = transport_->is_local(dst);
  if (local_dst && obs::ledger().enabled() && !frame.payload.empty() &&
      !frame.payload.tracked()) {
    frame.ledger_bytes = static_cast<std::int64_t>(frame.payload.size());
    obs::ledger().on_alloc(obs::MemKind::kCommBuffers,
                           obs::MemoryLedger::bucket_for_rank(dst),
                           frame.ledger_bytes);
  }

  // Fault decisions are producer-side and lock-free: hit() is a pure hash
  // of (seed, rule, src, dst, tag, seq, attempt), so the schedule is
  // interleaving- AND transport-independent — every backend sees the exact
  // same fault pattern for a given seed. Events are committed to the shared
  // log after the message is enqueued.
  FaultRuntime* fr = faults_.get();
  std::vector<FaultEvent> local_events;
  bool duplicate = false;
  std::chrono::nanoseconds dup_extra{0};
  if (fr != nullptr) {
    const FaultPlan& plan = fr->plan;
    const std::uint32_t epoch = fr->epoch.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < plan.rules.size(); ++i) {
      const FaultRule& rule = plan.rules[i];
      FaultEvent event;
      event.kind = rule.kind;
      event.src = src;
      event.dst = dst;
      event.tag = tag;
      event.seq = frame.seq;
      event.epoch = epoch;
      switch (rule.kind) {
        case FaultKind::kDelay:
          if (plan.hit(i, src, dst, tag, frame.seq, 0)) {
            frame.deliver_at_ns += rule.delay.count();
            event.delay_ns = rule.delay.count();
            local_events.push_back(event);
          }
          break;
        case FaultKind::kDrop: {
          // Each lost transmission costs one retransmit with doubled
          // backoff; after max_retries the reliability layer force-delivers
          // (a permanently lost message would deadlock the schedule).
          auto backoff = rule.delay;
          for (int attempt = 0; attempt < plan.max_retries &&
                                plan.hit(i, src, dst, tag, frame.seq, attempt);
               ++attempt) {
            frame.deliver_at_ns += backoff.count();
            event.attempt = attempt;
            event.delay_ns = backoff.count();
            local_events.push_back(event);
            backoff *= 2;
          }
          break;
        }
        case FaultKind::kDuplicate:
          if (plan.hit(i, src, dst, tag, frame.seq, 0)) {
            duplicate = true;
            dup_extra = rule.delay;
            event.delay_ns = rule.delay.count();
            local_events.push_back(event);
          }
          break;
        case FaultKind::kReorder:
          if (plan.hit(i, src, dst, tag, frame.seq, 0)) {
            // The message falls behind its successors: extra latency, and
            // with dedup off it is also enqueued behind the current tail.
            frame.deliver_at_ns += rule.delay.count();
            frame.reordered = true;
            event.delay_ns = rule.delay.count();
            local_events.push_back(event);
          }
          break;
        case FaultKind::kStall:
          break;  // handled in maybe_stall()
      }
    }
  }

  WireFrame dup_frame;
  if (duplicate) {
    dup_frame.payload = frame.payload;  // shares the refcounted bytes
    dup_frame.tag = tag;
    dup_frame.deliver_at_ns = frame.deliver_at_ns + dup_extra.count();
    dup_frame.seq = frame.seq;
    dup_frame.flow_id = next_flow_id_.fetch_add(1, std::memory_order_relaxed);
    if (local_dst && obs::ledger().enabled() && !dup_frame.payload.empty() &&
        !dup_frame.payload.tracked()) {
      dup_frame.ledger_bytes =
          static_cast<std::int64_t>(dup_frame.payload.size());
      obs::ledger().on_alloc(obs::MemKind::kCommBuffers,
                             obs::MemoryLedger::bucket_for_rank(dst),
                             dup_frame.ledger_bytes);
    }
  }

  transport_->send(src, dst, std::move(frame));
  if (duplicate) {
    transport_->send(src, dst, std::move(dup_frame));
  }
  for (const FaultEvent& event : local_events) {
    record_fault(event);
  }
  if (obs::health_enabled()) {
    obs::health().on_comm_progress(src);
  }
  return flow_id;
}

std::size_t Fabric::drain_edge(int src, int dst, Inbox& inbox,
                               bool reliable) {
  inbox.scratch.clear();
  const std::size_t drained = transport_->drain(src, dst, inbox.scratch);
  for (WireFrame& f : inbox.scratch) {
    inbox_insert(inbox, src, std::move(f), reliable);
  }
  inbox.scratch.clear();
  return drained;
}

void Fabric::inbox_insert(Inbox& inbox, int src, WireFrame frame,
                          bool reliable) {
  Stream& stream = inbox.streams[MailKey{src, frame.tag}];
  if (reliable) {
    // Keep the stream sorted by seq (in-order reassembly). The common
    // in-order case is a plain push_back.
    auto pos = stream.q.end();
    while (pos != stream.q.begin() && std::prev(pos)->seq > frame.seq) {
      --pos;
    }
    stream.q.insert(pos, std::move(frame));
  } else {
    // Mutation mode: raw arrival order, duplicates and all. A reordered
    // message lands behind its immediate predecessor.
    const bool reordered = frame.reordered;
    stream.q.push_back(std::move(frame));
    if (reordered && stream.q.size() >= 2) {
      std::swap(stream.q[stream.q.size() - 1],
                stream.q[stream.q.size() - 2]);
    }
  }
}

Fabric::Taken Fabric::take(int dst, int src, std::int64_t tag) {
  WEIPIPE_CHECK_MSG(src >= 0 && src < world_size(),
                    "recv from invalid rank " << src);
  WEIPIPE_CHECK_MSG(transport_->is_local(dst),
                    "recv on non-local rank " << dst);
  maybe_stall(dst);
  // Health plane: publish who this rank is about to block on. The watchdog
  // turns a long-lived publication into a STALLED verdict attributed to
  // `src`; the destructor clears it and counts a progress heartbeat (on
  // both the delivery and the CommError unwind paths).
  obs::HealthWaitScope wait_scope(dst, src, tag);
  // The wait span covers blocked-on-arrival time: from entering take() to
  // the matching message being ready (modeled delivery time included).
  const bool traced = obs::enabled();
  const std::int64_t wait_start_ns = traced ? obs::now_ns() : 0;
  Edge& e = edge(src, dst);
  Inbox& inbox = *inboxes_[static_cast<std::size_t>(dst)];
  const auto deadline = std::chrono::steady_clock::now() +
                        recv_timeout_.load(std::memory_order_relaxed);
  FaultRuntime* fr = faults_.get();
  const bool reliable = fr == nullptr || fr->plan.dedup;
  const MailKey key{src, tag};
  std::uint64_t discarded = 0;
  Taken taken;

  // Flush the spin tally even on the CommError unwind paths.
  struct SpinTally {
    Edge& e;
    std::uint64_t n = 0;
    ~SpinTally() {
      if (n > 0) {
        e.spins.fetch_add(n, std::memory_order_relaxed);
      }
    }
  } spin{e, 0};

  // On a single-CPU host spinning is pure waste: the producer cannot run
  // until this thread yields, so burning the timeslice in a pause loop only
  // delays the very send being waited on. Park immediately instead. The
  // budget itself comes from the backend — high for the in-memory mailbox,
  // low where a drain probe costs a syscall.
  static const bool kMultiCpu = std::thread::hardware_concurrency() > 1;
  const int spin_budget = kMultiCpu ? transport_->spin_hint() : 0;
  int spins_left = spin_budget;
  // Critical-path tap: the anatomy analyzer needs the blocked interval even
  // when the wait ends in an exception — record the kRecvWait span (no flow,
  // labeled with how the wait died) right before each CommError throw.
  const auto record_failed_wait = [&](const char* label) {
    if (!traced) {
      return;
    }
    obs::Span span;
    span.kind = obs::SpanKind::kRecvWait;
    span.start_ns = wait_start_ns;
    span.end_ns = obs::now_ns();
    span.rank = dst;
    span.peer = src;
    span.tag = tag;
    span.label = label;
    obs::record(span);
  };
  for (;;) {
    if (aborted_.load(std::memory_order_acquire)) {
      CommErrorInfo info;
      info.kind = CommErrorKind::kAborted;
      info.rank = dst;
      info.peer = src;
      info.tag = tag;
      record_failed_wait("recv-wait-aborted");
      throw CommError(info);
    }
    if (drain_edge(src, dst, inbox, reliable) > 0) {
      spins_left = spin_budget;  // progress: re-arm the spin budget
    }
    auto it = inbox.streams.find(key);
    Stream* stream = it != inbox.streams.end() ? &it->second : nullptr;
    if (stream != nullptr && reliable) {
      // Duplicate discard: anything below the reassembly cursor was
      // already consumed via another copy.
      while (!stream->q.empty() &&
             stream->q.front().seq < stream->next_take_seq) {
        credit_frame(stream->q.front(), dst);
        stream->q.pop_front();
        ++discarded;
      }
    }
    if (stream != nullptr && !stream->q.empty() &&
        (!reliable || stream->q.front().seq == stream->next_take_seq)) {
      // Honor the modeled delivery time: the message "is still in flight".
      const std::int64_t deliver_at_ns = stream->q.front().deliver_at_ns;
      if (deliver_at_ns <= steady_now_ns()) {
        WireFrame frame = std::move(stream->q.front());
        stream->q.pop_front();
        if (reliable) {
          stream->next_take_seq = frame.seq + 1;
        }
        credit_frame(frame, dst);
        taken.payload = std::move(frame.payload);
        taken.flow_id = frame.flow_id;
        break;
      }
      transport_->park(dst, src, ns_to_time_point(deliver_at_ns));
      continue;
    }
    // Nothing matching yet: spin briefly (the paired send is usually one
    // compute slice away), then park until the recv deadline.
    if (spins_left > 0) {
      --spins_left;
      ++spin.n;
      cpu_relax();
      continue;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      CommErrorInfo info;
      info.kind = CommErrorKind::kRecvTimeout;
      info.rank = dst;
      info.peer = src;
      info.tag = tag;
      info.expected_seq = stream != nullptr ? stream->next_take_seq : 0;
      // Exact pending count: pull everything undelivered to this rank into
      // the inbox first (this thread is the consumer of every such edge).
      for (int other = 0; other < world_size(); ++other) {
        if (other != dst) {
          drain_edge(other, dst, inbox, reliable);
        }
      }
      for (const auto& [k, s] : inbox.streams) {
        info.pending_messages += s.q.size();
      }
      record_failed_wait("recv-wait-timeout");
      throw CommError(info);
    }
    transport_->park(dst, src, deadline);
    spins_left = spin_budget;
  }

  if (discarded > 0 && fr != nullptr) {
    std::lock_guard<std::mutex> flk(fr->mu);
    fr->stats.duplicates_discarded += discarded;
  }
  decrement_clamped(e.pair.in_flight);
  {
    std::lock_guard<std::mutex> lk(e.tag_mu);
    auto tag_it = e.tags.find(tag);
    if (tag_it != e.tags.end() && tag_it->second.in_flight > 0) {
      --tag_it->second.in_flight;
    }
  }
  if (traced) {
    obs::Span span;
    span.kind = obs::SpanKind::kRecvWait;
    span.start_ns = wait_start_ns;
    span.end_ns = obs::now_ns();
    span.rank = dst;
    span.peer = src;
    span.tag = tag;
    span.bytes = static_cast<std::int64_t>(taken.payload.size());
    span.flow_id = taken.flow_id;
    obs::record(span);
  }
  return taken;
}

void run_workers(Fabric& fabric,
                 const std::function<void(int rank, Endpoint& ep)>& fn) {
  const int p = fabric.world_size();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (int r = 0; r < p; ++r) {
    if (!fabric.is_local(r)) {
      continue;  // hosted by another rank process
    }
    threads.emplace_back([&, r] {
      try {
        // Tag the thread with its rank so every span recorded inside the
        // worker body (compute, comm, collectives) lands on rank r's track.
        obs::RankScope rank_scope(r);
        // Health heartbeat covering the whole worker body; complete() marks
        // the clean exit so only finished bodies feed the straggler window.
        obs::HealthWorkerScope health_scope(r);
        fn(r, fabric.endpoint(r));
        // A body whose last fabric op was a send may leave bytes buffered in
        // the transport (tcp pending queues); push them out while this
        // thread still owns the rank.
        fabric.flush(r);
        health_scope.complete();
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

std::vector<Request> batch_isend_irecv(Endpoint& ep,
                                       std::span<const SendSpec> sends,
                                       std::span<const RecvSpec> recvs) {
  for (const SendSpec& s : sends) {
    ep.send_floats(s.dst, s.tag, s.values, s.precision);
  }
  std::vector<Request> requests;
  requests.reserve(recvs.size());
  for (const RecvSpec& r : recvs) {
    requests.push_back(ep.irecv_floats(r.src, r.tag, r.out, r.precision));
  }
  return requests;
}

}  // namespace weipipe::comm
