#include "comm/fabric.hpp"

#include <algorithm>
#include <exception>

#include "common/check.hpp"
#include "obs/ledger.hpp"
#include "obs/recorder.hpp"

namespace weipipe::comm {

LinkModel uniform_link(double bandwidth_bytes_per_sec, double latency_sec) {
  WEIPIPE_CHECK(bandwidth_bytes_per_sec > 0.0);
  return [=](int, int, std::size_t bytes) {
    const double sec =
        latency_sec + static_cast<double>(bytes) / bandwidth_bytes_per_sec;
    return std::chrono::nanoseconds(static_cast<std::int64_t>(sec * 1e9));
  };
}

void Request::wait() {
  if (waiter_) {
    waiter_();
    waiter_ = nullptr;
  }
}

int Endpoint::world_size() const { return fabric_->world_size(); }

void Endpoint::send(int dst, std::int64_t tag,
                    std::vector<std::uint8_t> payload) {
  obs::SpanScope span(obs::SpanKind::kSendTransfer);
  const auto bytes = static_cast<std::int64_t>(payload.size());
  const std::int64_t flow = fabric_->deliver(rank_, dst, tag,
                                             std::move(payload));
  if (span.armed()) {
    span.set_rank(rank_);
    span.set_peer(dst);
    span.set_tag(tag);
    span.set_bytes(bytes);
    span.set_flow_id(flow);
  }
}

std::vector<std::uint8_t> Endpoint::recv(int src, std::int64_t tag) {
  return fabric_->take(rank_, src, tag).payload;
}

Request Endpoint::isend(int dst, std::int64_t tag,
                        std::vector<std::uint8_t> payload) {
  // Eager buffered send: complete at post time, like NCCL with send buffers.
  send(dst, tag, std::move(payload));
  return Request([] {});
}

Request Endpoint::irecv(int src, std::int64_t tag,
                        std::vector<std::uint8_t>* out) {
  WEIPIPE_CHECK(out != nullptr);
  Fabric* fabric = fabric_;
  const int rank = rank_;
  return Request([fabric, rank, src, tag, out] {
    *out = fabric->take(rank, src, tag).payload;
  });
}

Request Endpoint::irecv_floats(int src, std::int64_t tag,
                               std::span<float> out,
                               WirePrecision precision) {
  Fabric* fabric = fabric_;
  const int rank = rank_;
  return Request([fabric, rank, src, tag, out, precision] {
    Fabric::Taken taken = fabric->take(rank, src, tag);
    obs::SpanScope span(obs::SpanKind::kRecvTransfer);
    if (span.armed()) {
      span.set_rank(rank);
      span.set_peer(src);
      span.set_tag(tag);
      span.set_bytes(static_cast<std::int64_t>(taken.payload.size()));
      span.set_flow_id(taken.flow_id);
    }
    unpack_floats(taken.payload, precision, out);
  });
}

void Endpoint::send_floats(int dst, std::int64_t tag,
                           std::span<const float> values,
                           WirePrecision precision) {
  // The span covers quantize/pack plus the eager handoff: the full cost the
  // sending rank pays for this message.
  obs::SpanScope span(obs::SpanKind::kSendTransfer);
  std::vector<std::uint8_t> payload = pack_floats(values, precision);
  const auto bytes = static_cast<std::int64_t>(payload.size());
  const std::int64_t flow = fabric_->deliver(rank_, dst, tag,
                                             std::move(payload));
  if (span.armed()) {
    span.set_rank(rank_);
    span.set_peer(dst);
    span.set_tag(tag);
    span.set_bytes(bytes);
    span.set_flow_id(flow);
  }
}

void Endpoint::recv_floats(int src, std::int64_t tag, std::span<float> out,
                           WirePrecision precision) {
  Fabric::Taken taken = fabric_->take(rank_, src, tag);
  obs::SpanScope span(obs::SpanKind::kRecvTransfer);
  if (span.armed()) {
    span.set_rank(rank_);
    span.set_peer(src);
    span.set_tag(tag);
    span.set_bytes(static_cast<std::int64_t>(taken.payload.size()));
    span.set_flow_id(taken.flow_id);
  }
  unpack_floats(taken.payload, precision, out);
}

FabricStats Endpoint::sent_stats() const {
  std::lock_guard<std::mutex> lk(fabric_->stats_mu_);
  FabricStats total;
  const int p = fabric_->world_size();
  for (int dst = 0; dst < p; ++dst) {
    const FabricStats& s =
        fabric_->pair_stats_[static_cast<std::size_t>(rank_ * p + dst)];
    total.messages += s.messages;
    total.bytes += s.bytes;
    total.in_flight += s.in_flight;
    total.max_in_flight = std::max(total.max_in_flight, s.max_in_flight);
  }
  return total;
}

FabricStats Endpoint::received_stats() const {
  std::lock_guard<std::mutex> lk(fabric_->stats_mu_);
  FabricStats total;
  const int p = fabric_->world_size();
  for (int src = 0; src < p; ++src) {
    const FabricStats& s =
        fabric_->pair_stats_[static_cast<std::size_t>(src * p + rank_)];
    total.messages += s.messages;
    total.bytes += s.bytes;
    total.in_flight += s.in_flight;
    total.max_in_flight = std::max(total.max_in_flight, s.max_in_flight);
  }
  return total;
}

Fabric::Fabric(int world_size, LinkModel link_model)
    : link_model_(std::move(link_model)) {
  WEIPIPE_CHECK_MSG(world_size >= 1, "world_size must be >= 1");
  endpoints_.reserve(static_cast<std::size_t>(world_size));
  mailboxes_.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    endpoints_.push_back(std::unique_ptr<Endpoint>(new Endpoint(this, r)));
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  pair_stats_.assign(static_cast<std::size_t>(world_size) *
                         static_cast<std::size_t>(world_size),
                     FabricStats{});
}

Fabric::~Fabric() {
  // Credit any messages still sitting in mailboxes (a trainer torn down
  // mid-schedule, or stats reset between deliver and take) so the ledger's
  // comm_buffers category drains to zero with the fabric.
  for (std::size_t dst = 0; dst < mailboxes_.size(); ++dst) {
    Mailbox& box = *mailboxes_[dst];
    std::lock_guard<std::mutex> lk(box.mu);
    for (auto& [key, queue] : box.queues) {
      while (!queue.empty()) {
        const Message& msg = queue.front();
        if (msg.ledger_bytes > 0) {
          obs::ledger().on_free(
              obs::MemKind::kCommBuffers,
              obs::MemoryLedger::bucket_for_rank(static_cast<int>(dst)),
              msg.ledger_bytes);
        }
        queue.pop();
      }
    }
  }
}

Endpoint& Fabric::endpoint(int rank) {
  WEIPIPE_CHECK_MSG(rank >= 0 && rank < world_size(),
                    "rank " << rank << " out of range");
  return *endpoints_[static_cast<std::size_t>(rank)];
}

std::uint64_t Fabric::bytes_sent(int src, int dst) const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return pair_stats_[static_cast<std::size_t>(src * world_size() + dst)].bytes;
}

FabricStats Fabric::pair_stats(int src, int dst) const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return pair_stats_[static_cast<std::size_t>(src * world_size() + dst)];
}

std::vector<FabricStats> Fabric::stats_matrix() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return pair_stats_;
}

std::map<std::int64_t, FabricStats> Fabric::tag_stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return tag_stats_;
}

std::uint64_t Fabric::total_bytes() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  std::uint64_t n = 0;
  for (const FabricStats& s : pair_stats_) {
    n += s.bytes;
  }
  return n;
}

std::uint64_t Fabric::total_messages() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  std::uint64_t n = 0;
  for (const FabricStats& s : pair_stats_) {
    n += s.messages;
  }
  return n;
}

std::uint64_t Fabric::max_in_flight() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  std::uint64_t n = 0;
  for (const FabricStats& s : pair_stats_) {
    n = std::max(n, s.max_in_flight);
  }
  return n;
}

void Fabric::reset_stats() {
  std::lock_guard<std::mutex> lk(stats_mu_);
  // Also zeroes in_flight: callers reset between iterations, when every
  // mailbox has drained.
  for (FabricStats& s : pair_stats_) {
    s = FabricStats{};
  }
  tag_stats_.clear();
}

std::int64_t Fabric::deliver(int src, int dst, std::int64_t tag,
                             std::vector<std::uint8_t> payload) {
  WEIPIPE_CHECK_MSG(dst >= 0 && dst < world_size(),
                    "send to invalid rank " << dst);
  WEIPIPE_CHECK_MSG(dst != src, "self-send (rank " << src << ")");
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    FabricStats& s =
        pair_stats_[static_cast<std::size_t>(src * world_size() + dst)];
    ++s.messages;
    s.bytes += payload.size();
    ++s.in_flight;
    s.max_in_flight = std::max(s.max_in_flight, s.in_flight);
    FabricStats& t = tag_stats_[tag];
    ++t.messages;
    t.bytes += payload.size();
    ++t.in_flight;
    t.max_in_flight = std::max(t.max_in_flight, t.in_flight);
  }
  Message msg;
  msg.deliver_at = std::chrono::steady_clock::now();
  if (link_model_) {
    msg.deliver_at += link_model_(src, dst, payload.size());
  }
  msg.flow_id = next_flow_id_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t flow_id = msg.flow_id;
  msg.payload = std::move(payload);
  // Eager buffered sends cost real memory on the receiver until consumed:
  // account the mailbox residency as comm_buffers in dst's bucket. The
  // charged size rides on the message so the credit matches exactly even if
  // the ledger is toggled between send and receive.
  if (obs::ledger().enabled() && !msg.payload.empty()) {
    msg.ledger_bytes = static_cast<std::int64_t>(msg.payload.size());
    obs::ledger().on_alloc(obs::MemKind::kCommBuffers,
                           obs::MemoryLedger::bucket_for_rank(dst),
                           msg.ledger_bytes);
  }
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lk(box.mu);
    box.queues[MailKey{src, tag}].push(std::move(msg));
  }
  box.cv.notify_all();
  return flow_id;
}

Fabric::Taken Fabric::take(int dst, int src, std::int64_t tag) {
  WEIPIPE_CHECK_MSG(src >= 0 && src < world_size(),
                    "recv from invalid rank " << src);
  // The wait span covers blocked-on-arrival time: from entering take() to
  // the matching message being ready (modeled delivery time included).
  const bool traced = obs::enabled();
  const std::int64_t wait_start_ns = traced ? obs::now_ns() : 0;
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  const auto deadline = std::chrono::steady_clock::now() +
                        recv_timeout_.load(std::memory_order_relaxed);
  Taken taken;
  {
    std::unique_lock<std::mutex> lk(box.mu);
    const MailKey key{src, tag};
    for (;;) {
      auto it = box.queues.find(key);
      if (it != box.queues.end() && !it->second.empty()) {
        // Honor the modeled delivery time: the message "is still in flight".
        const auto deliver_at = it->second.front().deliver_at;
        const auto now = std::chrono::steady_clock::now();
        if (deliver_at <= now) {
          Message msg = std::move(it->second.front());
          it->second.pop();
          if (msg.ledger_bytes > 0) {
            obs::ledger().on_free(obs::MemKind::kCommBuffers,
                                  obs::MemoryLedger::bucket_for_rank(dst),
                                  msg.ledger_bytes);
          }
          taken.payload = std::move(msg.payload);
          taken.flow_id = msg.flow_id;
          break;
        }
        box.cv.wait_until(lk, deliver_at);
        continue;
      }
      if (box.cv.wait_until(lk, deadline) == std::cv_status::timeout) {
        WEIPIPE_CHECK_MSG(false, "recv timeout: rank "
                                     << dst << " waiting for (src=" << src
                                     << ", tag=" << tag
                                     << ") — schedule deadlock?");
      }
    }
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    FabricStats& s =
        pair_stats_[static_cast<std::size_t>(src * world_size() + dst)];
    if (s.in_flight > 0) {  // reset_stats() may have zeroed mid-flight
      --s.in_flight;
    }
    auto it = tag_stats_.find(tag);
    if (it != tag_stats_.end() && it->second.in_flight > 0) {
      --it->second.in_flight;
    }
  }
  if (traced) {
    obs::Span span;
    span.kind = obs::SpanKind::kRecvWait;
    span.start_ns = wait_start_ns;
    span.end_ns = obs::now_ns();
    span.rank = dst;
    span.peer = src;
    span.tag = tag;
    span.bytes = static_cast<std::int64_t>(taken.payload.size());
    span.flow_id = taken.flow_id;
    obs::record(span);
  }
  return taken;
}

void run_workers(Fabric& fabric,
                 const std::function<void(int rank, Endpoint& ep)>& fn) {
  const int p = fabric.world_size();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      try {
        // Tag the thread with its rank so every span recorded inside the
        // worker body (compute, comm, collectives) lands on rank r's track.
        obs::RankScope rank_scope(r);
        fn(r, fabric.endpoint(r));
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

std::vector<Request> batch_isend_irecv(Endpoint& ep,
                                       std::span<const SendSpec> sends,
                                       std::span<const RecvSpec> recvs) {
  for (const SendSpec& s : sends) {
    ep.send_floats(s.dst, s.tag, s.values, s.precision);
  }
  std::vector<Request> requests;
  requests.reserve(recvs.size());
  for (const RecvSpec& r : recvs) {
    requests.push_back(ep.irecv_floats(r.src, r.tag, r.out, r.precision));
  }
  return requests;
}

}  // namespace weipipe::comm
