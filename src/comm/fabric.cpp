#include "comm/fabric.hpp"

#include <exception>

#include "common/check.hpp"

namespace weipipe::comm {

LinkModel uniform_link(double bandwidth_bytes_per_sec, double latency_sec) {
  WEIPIPE_CHECK(bandwidth_bytes_per_sec > 0.0);
  return [=](int, int, std::size_t bytes) {
    const double sec =
        latency_sec + static_cast<double>(bytes) / bandwidth_bytes_per_sec;
    return std::chrono::nanoseconds(static_cast<std::int64_t>(sec * 1e9));
  };
}

void Request::wait() {
  if (waiter_) {
    waiter_();
    waiter_ = nullptr;
  }
}

int Endpoint::world_size() const { return fabric_->world_size(); }

void Endpoint::send(int dst, std::int64_t tag,
                    std::vector<std::uint8_t> payload) {
  fabric_->deliver(rank_, dst, tag, std::move(payload));
}

std::vector<std::uint8_t> Endpoint::recv(int src, std::int64_t tag) {
  return fabric_->take(rank_, src, tag);
}

Request Endpoint::isend(int dst, std::int64_t tag,
                        std::vector<std::uint8_t> payload) {
  // Eager buffered send: complete at post time, like NCCL with send buffers.
  send(dst, tag, std::move(payload));
  return Request([] {});
}

Request Endpoint::irecv(int src, std::int64_t tag,
                        std::vector<std::uint8_t>* out) {
  WEIPIPE_CHECK(out != nullptr);
  Fabric* fabric = fabric_;
  const int rank = rank_;
  return Request([fabric, rank, src, tag, out] {
    *out = fabric->take(rank, src, tag);
  });
}

Request Endpoint::irecv_floats(int src, std::int64_t tag,
                               std::span<float> out,
                               WirePrecision precision) {
  Fabric* fabric = fabric_;
  const int rank = rank_;
  return Request([fabric, rank, src, tag, out, precision] {
    const std::vector<std::uint8_t> bytes = fabric->take(rank, src, tag);
    unpack_floats(bytes, precision, out);
  });
}

void Endpoint::send_floats(int dst, std::int64_t tag,
                           std::span<const float> values,
                           WirePrecision precision) {
  send(dst, tag, pack_floats(values, precision));
}

void Endpoint::recv_floats(int src, std::int64_t tag, std::span<float> out,
                           WirePrecision precision) {
  const std::vector<std::uint8_t> bytes = recv(src, tag);
  unpack_floats(bytes, precision, out);
}

FabricStats Endpoint::sent_stats() const {
  std::lock_guard<std::mutex> lk(fabric_->stats_mu_);
  FabricStats total;
  const int p = fabric_->world_size();
  for (int dst = 0; dst < p; ++dst) {
    const FabricStats& s =
        fabric_->pair_stats_[static_cast<std::size_t>(rank_ * p + dst)];
    total.messages += s.messages;
    total.bytes += s.bytes;
  }
  return total;
}

FabricStats Endpoint::received_stats() const {
  std::lock_guard<std::mutex> lk(fabric_->stats_mu_);
  FabricStats total;
  const int p = fabric_->world_size();
  for (int src = 0; src < p; ++src) {
    const FabricStats& s =
        fabric_->pair_stats_[static_cast<std::size_t>(src * p + rank_)];
    total.messages += s.messages;
    total.bytes += s.bytes;
  }
  return total;
}

Fabric::Fabric(int world_size, LinkModel link_model)
    : link_model_(std::move(link_model)) {
  WEIPIPE_CHECK_MSG(world_size >= 1, "world_size must be >= 1");
  endpoints_.reserve(static_cast<std::size_t>(world_size));
  mailboxes_.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    endpoints_.push_back(std::unique_ptr<Endpoint>(new Endpoint(this, r)));
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  pair_stats_.assign(static_cast<std::size_t>(world_size) *
                         static_cast<std::size_t>(world_size),
                     FabricStats{});
}

Fabric::~Fabric() = default;

Endpoint& Fabric::endpoint(int rank) {
  WEIPIPE_CHECK_MSG(rank >= 0 && rank < world_size(),
                    "rank " << rank << " out of range");
  return *endpoints_[static_cast<std::size_t>(rank)];
}

std::uint64_t Fabric::bytes_sent(int src, int dst) const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return pair_stats_[static_cast<std::size_t>(src * world_size() + dst)].bytes;
}

std::uint64_t Fabric::total_bytes() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  std::uint64_t n = 0;
  for (const FabricStats& s : pair_stats_) {
    n += s.bytes;
  }
  return n;
}

std::uint64_t Fabric::total_messages() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  std::uint64_t n = 0;
  for (const FabricStats& s : pair_stats_) {
    n += s.messages;
  }
  return n;
}

void Fabric::reset_stats() {
  std::lock_guard<std::mutex> lk(stats_mu_);
  for (FabricStats& s : pair_stats_) {
    s = FabricStats{};
  }
}

void Fabric::deliver(int src, int dst, std::int64_t tag,
                     std::vector<std::uint8_t> payload) {
  WEIPIPE_CHECK_MSG(dst >= 0 && dst < world_size(),
                    "send to invalid rank " << dst);
  WEIPIPE_CHECK_MSG(dst != src, "self-send (rank " << src << ")");
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    FabricStats& s =
        pair_stats_[static_cast<std::size_t>(src * world_size() + dst)];
    ++s.messages;
    s.bytes += payload.size();
  }
  Message msg;
  msg.deliver_at = std::chrono::steady_clock::now();
  if (link_model_) {
    msg.deliver_at += link_model_(src, dst, payload.size());
  }
  msg.payload = std::move(payload);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lk(box.mu);
    box.queues[MailKey{src, tag}].push(std::move(msg));
  }
  box.cv.notify_all();
}

std::vector<std::uint8_t> Fabric::take(int dst, int src, std::int64_t tag) {
  WEIPIPE_CHECK_MSG(src >= 0 && src < world_size(),
                    "recv from invalid rank " << src);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  const auto deadline = std::chrono::steady_clock::now() +
                        recv_timeout_.load(std::memory_order_relaxed);
  std::unique_lock<std::mutex> lk(box.mu);
  const MailKey key{src, tag};
  for (;;) {
    auto it = box.queues.find(key);
    if (it != box.queues.end() && !it->second.empty()) {
      // Honor the modeled delivery time: the message "is still in flight".
      const auto deliver_at = it->second.front().deliver_at;
      const auto now = std::chrono::steady_clock::now();
      if (deliver_at <= now) {
        Message msg = std::move(it->second.front());
        it->second.pop();
        return std::move(msg.payload);
      }
      box.cv.wait_until(lk, deliver_at);
      continue;
    }
    if (box.cv.wait_until(lk, deadline) == std::cv_status::timeout) {
      WEIPIPE_CHECK_MSG(false, "recv timeout: rank " << dst << " waiting for (src="
                                                     << src << ", tag=" << tag
                                                     << ") — schedule deadlock?");
    }
  }
}

void run_workers(Fabric& fabric,
                 const std::function<void(int rank, Endpoint& ep)>& fn) {
  const int p = fabric.world_size();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(r, fabric.endpoint(r));
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

std::vector<Request> batch_isend_irecv(Endpoint& ep,
                                       std::span<const SendSpec> sends,
                                       std::span<const RecvSpec> recvs) {
  for (const SendSpec& s : sends) {
    ep.send_floats(s.dst, s.tag, s.values, s.precision);
  }
  std::vector<Request> requests;
  requests.reserve(recvs.size());
  for (const RecvSpec& r : recvs) {
    requests.push_back(ep.irecv_floats(r.src, r.tag, r.out, r.precision));
  }
  return requests;
}

}  // namespace weipipe::comm
